// Ablation — how the network contention model shapes the Fig. 10 story.
//
// The paper attributes part of the localized approaches' total-time growth
// to "the transfer time gets longer when more component databases transfer
// data simultaneously". Under pure FIFO serialization (SharedBus) contention
// delays transfers but burns no extra bandwidth, so it moves response time
// only; on a CSMA/CD-style medium (CollisionBus) contention burns real
// time, penalizing strategies that deliberately overlap transfers (PL).
// This harness reruns the Fig. 10 sweep under all four network models.
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace isomer;
  using namespace isomer::bench;
  HarnessOptions options = parse_options(argc, argv);
  // Four topologies multiply the sweep; default to a lighter setting unless
  // the user asked for something specific.
  if (!options.samples_set) options.samples = 8;
  if (!options.scale_set) options.scale = 0.5;

  const std::vector<StrategyKind> kinds(std::begin(kPaperStrategies),
                                        std::end(kPaperStrategies));
  const NetworkTopology topologies[] = {
      NetworkTopology::SharedBus, NetworkTopology::PointToPoint,
      NetworkTopology::Contentionless, NetworkTopology::CollisionBus};
  const std::size_t db_counts[] = {2, 4, 6, 8};

  JsonSink json(options.json_path, options);
  for (const NetworkTopology topology : topologies) {
    std::printf("## network model: %s\n",
                std::string(to_string(topology)).c_str());
    std::vector<std::vector<SeriesPoint>> rows;
    for (const std::size_t n_db : db_counts) {
      ParamConfig config;
      config.n_db = n_db;
      apply_scale(config, options.scale);
      rows.push_back(run_point(config, kinds, options.samples, options.seed,
                               options.jobs, topology, 0.3, nullptr, nullptr,
                               options.batch_set ? &options.batch : nullptr));
      const std::string figure =
          "ablation-" + std::string(to_string(topology));
      json.rows(figure.c_str(), "N_db", static_cast<double>(n_db), kinds,
                rows.back());
    }

    print_header("total execution time [s] vs N_db", "N_db", kinds, options);
    for (std::size_t i = 0; i < rows.size(); ++i)
      print_row(static_cast<double>(db_counts[i]), rows[i], false);
    print_header("response time [s] vs N_db", "N_db", kinds, options);
    for (std::size_t i = 0; i < rows.size(); ++i)
      print_row(static_cast<double>(db_counts[i]), rows[i], true);
    std::printf("\n");
  }

  // ---- Access-path ablation: extent indexes (federation/indexes.hpp) let
  // the localized strategies skip full scans. Not in the paper's scan-based
  // cost model; this panel quantifies how much further indexes widen the
  // localized advantage. (CA is unaffected — it ships everything.)
  std::printf("## access-path ablation: BL with extent indexes\n");
  std::printf("%-8s %10s %10s %10s\n", "N_o", "CA", "BL", "BL+idx");
  for (const int center : {1000, 3000, 5000}) {
    ParamConfig config;
    config.n_objects = {center, center + 500};
    apply_scale(config, options.scale);
    StrategyOptions exec_options;
    exec_options.record_trace = false;
    struct Trial {
      double ca_s = 0, bl_s = 0, idx_s = 0;
    };
    std::vector<Trial> trials(static_cast<std::size_t>(options.samples));
    for_each_trial(options.samples, options.seed, options.jobs,
                   [&](std::size_t s, Rng& rng) {
      const SampleParams sample = draw_sample(config, rng);
      const SynthFederation synth = materialize_sample(sample);
      const ExtentIndexes indexes =
          ExtentIndexes::build(*synth.federation, synth.query);
      trials[s].ca_s = to_seconds(
          execute_strategy(StrategyKind::CA, *synth.federation, synth.query,
                           exec_options)
              .total_ns);
      trials[s].bl_s = to_seconds(
          execute_strategy(StrategyKind::BL, *synth.federation, synth.query,
                           exec_options)
              .total_ns);
      StrategyOptions with_indexes = exec_options;
      with_indexes.indexes = &indexes;
      trials[s].idx_s = to_seconds(
          execute_strategy(StrategyKind::BL, *synth.federation, synth.query,
                           with_indexes)
              .total_ns);
    });
    double ca_s = 0, bl_s = 0, idx_s = 0;
    for (const Trial& trial : trials) {
      ca_s += trial.ca_s / options.samples;
      bl_s += trial.bl_s / options.samples;
      idx_s += trial.idx_s / options.samples;
    }
    std::printf("%-8d %10.3f %10.3f %10.3f\n", center, ca_s, bl_s, idx_s);
  }
  return 0;
}
