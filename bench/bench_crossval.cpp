// Cross-validation — the closed-form analytic model vs the discrete-event
// simulator, over random Table-2 samples. Reports per-strategy mean absolute
// percentage error on total execution time and the rate at which the model
// predicts the same CA/BL/PL ordering as the simulator. Also demonstrates
// the model's purpose: a full-scale 500-sample Fig. 9 sweep estimated in
// microseconds.
#include <cmath>
#include <cstdio>

#include "harness.hpp"
#include "isomer/analytic/model.hpp"

int main(int argc, char** argv) {
  using namespace isomer;
  using namespace isomer::bench;
  HarnessOptions options = parse_options(argc, argv);
  if (options.scale == 1.0) options.scale = 0.2;  // DES side stays affordable

  StrategyOptions exec_options;
  exec_options.record_trace = false;

  ParamConfig config;
  apply_scale(config, options.scale);

  const StrategyKind kinds[3] = {StrategyKind::CA, StrategyKind::BL,
                                 StrategyKind::PL};
  struct Trial {
    double err[3] = {0, 0, 0};
    bool ordering_hit = false;
  };
  std::vector<Trial> trials(static_cast<std::size_t>(options.samples));
  for_each_trial(options.samples, options.seed, options.jobs,
                 [&](std::size_t s, Rng& rng) {
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    double des[3], model[3];
    for (int k = 0; k < 3; ++k) {
      const StrategyReport report = execute_strategy(
          kinds[k], *synth.federation, synth.query, exec_options);
      des[k] = to_seconds(report.total_ns);
      model[k] = estimate_strategy(kinds[k], sample).total_s;
      trials[s].err[k] = std::abs(model[k] - des[k]) / des[k];
    }
    const bool des_order = des[0] > des[1];  // CA slower than BL?
    const bool model_order = model[0] > model[1];
    trials[s].ordering_hit = (des_order == model_order);
  });
  // Reduce in trial order so every --jobs value prints the same report.
  double mape[3] = {0, 0, 0};
  int ordering_hits = 0;
  for (const Trial& trial : trials) {
    for (int k = 0; k < 3; ++k) mape[k] += trial.err[k];
    if (trial.ordering_hit) ++ordering_hits;
  }

  std::printf("# Analytic model vs DES (%d samples, scale %.2f)\n",
              options.samples, options.scale);
  for (int k = 0; k < 3; ++k)
    std::printf("%-4s mean abs error on total time: %5.1f%%\n",
                std::string(to_string(kinds[k])).c_str(),
                100.0 * mape[k] / options.samples);
  std::printf("CA-vs-BL ordering agreement: %d/%d\n", ordering_hits,
              options.samples);

  // Full-scale analytic Fig. 9 sweep (paper parameters, 500 samples/point).
  std::printf("\n# Analytic Figure 9(a) at FULL paper scale "
              "(500 samples/point, N_o 5000-6000 band)\n");
  std::printf("%-12s %10s %10s %10s\n", "N_o", "CA", "BL", "PL");
  for (const int center : {1000, 2000, 3000, 4000, 5000, 6000}) {
    ParamConfig full;
    full.n_objects = {center, center + 1000};
    Rng sweep_rng(options.seed);
    double total[3] = {0, 0, 0};
    for (int s = 0; s < 500; ++s) {
      const SampleParams sample = draw_sample(full, sweep_rng);
      for (int k = 0; k < 3; ++k)
        total[k] += estimate_strategy(kinds[k], sample).total_s / 500.0;
    }
    std::printf("%-12d %10.2f %10.2f %10.2f\n", center, total[0], total[1],
                total[2]);
  }
  return 0;
}
