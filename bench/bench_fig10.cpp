// Figure 10 — total execution time (a) and response time (b) as the number
// of component databases is adjusted (paper §4.2, second experiment).
//
// Paper shapes to reproduce:
//   (a) the localized approaches' total time grows faster than CA's, since
//       R_iso = 1 - 0.9^(N_db-1) raises the number of assistant objects to
//       check and simultaneous transfers contend on the shared network;
//       PL's total time eventually crosses above CA's.
//   (b) BL's and PL's response time stays below CA's throughout.
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace isomer;
  using namespace isomer::bench;
  const HarnessOptions options = parse_options(argc, argv);

  std::vector<StrategyKind> kinds(std::begin(kPaperStrategies),
                                  std::end(kPaperStrategies));
  if (options.run_signatures) {
    kinds.push_back(StrategyKind::BLS);
    kinds.push_back(StrategyKind::PLS);
  }

  const std::size_t db_counts[] = {2, 3, 4, 5, 6, 7, 8};

  const bool faulting = options.faults_set && options.faults.plan.enabled();
  const fault::FaultSpec* faults = options.faults_set ? &options.faults
                                                      : nullptr;
  JsonSink json(options.json_path, options);
  TraceSink trace(options.trace_path, "bench_fig10", options);
  std::vector<std::vector<SeriesPoint>> rows;
  for (const std::size_t n_db : db_counts) {
    ParamConfig config;  // Table-2 defaults
    config.n_db = n_db;
    apply_scale(config, options.scale);
    trace.set_point("fig10", "N_db", static_cast<double>(n_db));
    rows.push_back(run_point(config, kinds, options.samples, options.seed,
                             options.jobs, NetworkTopology::SharedBus, 0.3,
                             trace.if_enabled(), faults,
                             options.batch_set ? &options.batch : nullptr));
    json.rows("fig10", "N_db", static_cast<double>(n_db), kinds, rows.back(),
              faulting);
  }

  print_header("Figure 10(a): total execution time [s] vs N_db", "N_db",
               kinds, options);
  for (std::size_t i = 0; i < rows.size(); ++i)
    print_row(static_cast<double>(db_counts[i]), rows[i], /*response=*/false);
  std::printf("\n");
  print_header("Figure 10(b): response time [s] vs N_db", "N_db", kinds,
               options);
  for (std::size_t i = 0; i < rows.size(); ++i)
    print_row(static_cast<double>(db_counts[i]), rows[i], /*response=*/true);

  // Supplementary panel: the same sweep on a collision-prone shared medium
  // (CSMA/CD-style; contention burns bandwidth instead of merely delaying
  // transfers). This is where the paper's "PL's total execution time even
  // passes CA's" crossover emerges — the localized approaches' deliberately
  // simultaneous transfers pay a growing collision tax as N_db rises. See
  // EXPERIMENTS.md and bench_ablation for the full analysis.
  std::vector<std::vector<SeriesPoint>> collision_rows;
  for (const std::size_t n_db : db_counts) {
    ParamConfig config;
    config.n_db = n_db;
    apply_scale(config, options.scale);
    trace.set_point("fig10-collision", "N_db", static_cast<double>(n_db));
    collision_rows.push_back(
        run_point(config, kinds, options.samples, options.seed, options.jobs,
                  NetworkTopology::CollisionBus, 0.3, trace.if_enabled(),
                  faults, options.batch_set ? &options.batch : nullptr));
    json.rows("fig10-collision", "N_db", static_cast<double>(n_db), kinds,
              collision_rows.back(), faulting);
  }
  std::printf("\n");
  print_header(
      "Figure 10(a'), collision-bus network: total execution time [s] vs "
      "N_db",
      "N_db", kinds, options);
  for (std::size_t i = 0; i < collision_rows.size(); ++i)
    print_row(static_cast<double>(db_counts[i]), collision_rows[i], false);
  if (faulting) {
    const std::vector<double> xs(std::begin(db_counts), std::end(db_counts));
    print_quality_table("Figure 10", "N_db", xs, kinds, rows, options);
    print_quality_table("Figure 10 (collision bus)", "N_db", xs, kinds,
                        collision_rows, options);
  }
  return 0;
}
