// Figure 11 — total execution time (a) and response time (b) as the
// selectivity of one local predicate is adjusted (paper §4.2, third
// experiment). N_o is set to 1000-2000 for this experiment, as in the paper.
//
// Paper shapes to reproduce:
//   (a) CA is flat — it ships everything regardless of selectivity — while
//       BL and PL rise with selectivity (fewer objects eliminated locally
//       means more data transferred and integrated), BL rising faster than
//       PL (the selectivity also governs how many assistants BL checks,
//       whereas PL checks them for all objects regardless).
//   (b) same ordering on response time.
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace isomer;
  using namespace isomer::bench;
  const HarnessOptions options = parse_options(argc, argv);

  std::vector<StrategyKind> kinds(std::begin(kPaperStrategies),
                                  std::end(kPaperStrategies));
  if (options.run_signatures) {
    kinds.push_back(StrategyKind::BLS);
    kinds.push_back(StrategyKind::PLS);
  }

  const double selectivities[] = {0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9};

  JsonSink json(options.json_path, options);
  TraceSink trace(options.trace_path, "bench_fig11", options);
  std::vector<std::vector<SeriesPoint>> rows;
  for (const double selectivity : selectivities) {
    ParamConfig config;
    config.n_objects = {1000, 2000};  // the paper's Fig. 11 setting
    config.forced_root_selectivity = selectivity;
    apply_scale(config, options.scale);
    trace.set_point("fig11", "selectivity", selectivity);
    rows.push_back(run_point(config, kinds, options.samples, options.seed,
                             options.jobs, NetworkTopology::SharedBus, 0.3,
                             trace.if_enabled(), nullptr,
                             options.batch_set ? &options.batch : nullptr));
    json.rows("fig11", "selectivity", selectivity, kinds, rows.back());
  }

  print_header("Figure 11(a): total execution time [s] vs selectivity",
               "selectivity", kinds, options);
  for (std::size_t i = 0; i < rows.size(); ++i)
    print_row(selectivities[i], rows[i], /*response=*/false);
  std::printf("\n");
  print_header("Figure 11(b): response time [s] vs selectivity",
               "selectivity", kinds, options);
  for (std::size_t i = 0; i < rows.size(); ++i)
    print_row(selectivities[i], rows[i], /*response=*/true);
  return 0;
}
