// Figure 9 — total execution time (a) and response time (b) as the average
// number of objects in each constituent class is adjusted (paper §4.2,
// first experiment). Everything else is at the Table-2 defaults.
//
// Paper shapes to reproduce:
//   (a) BL and PL total time below CA; BL below PL.
//   (b) BL/PL response time far below CA (inter-site parallelism).
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace isomer;
  using namespace isomer::bench;
  const HarnessOptions options = parse_options(argc, argv);

  std::vector<StrategyKind> kinds(std::begin(kPaperStrategies),
                                  std::end(kPaperStrategies));
  if (options.run_signatures) {
    kinds.push_back(StrategyKind::BLS);
    kinds.push_back(StrategyKind::PLS);
  }

  // Sweep the centre of the N_o range; the paper's default band is
  // 5000-6000, its Fig. 11 variant drops to 1000-2000, so sweep 1000..6000.
  const int centers[] = {1000, 2000, 3000, 4000, 5000, 6000};

  const bool faulting = options.faults_set && options.faults.plan.enabled();
  const fault::FaultSpec* faults = options.faults_set ? &options.faults
                                                      : nullptr;
  JsonSink json(options.json_path, options);
  TraceSink trace(options.trace_path, "bench_fig9", options);
  std::vector<std::vector<SeriesPoint>> rows;
  for (const int center : centers) {
    ParamConfig config;  // Table-2 defaults
    config.n_objects = {center, center + 1000};
    apply_scale(config, options.scale);
    trace.set_point("fig9", "N_o", center);
    rows.push_back(run_point(config, kinds, options.samples, options.seed,
                             options.jobs, NetworkTopology::SharedBus, 0.3,
                             trace.if_enabled(), faults,
                             options.batch_set ? &options.batch : nullptr));
    json.rows("fig9", "N_o", center, kinds, rows.back(), faulting);
  }

  print_header("Figure 9(a): total execution time [s] vs N_o", "N_o", kinds,
               options);
  for (std::size_t i = 0; i < rows.size(); ++i)
    print_row(centers[i], rows[i], /*response=*/false);
  std::printf("\n");
  print_header("Figure 9(b): response time [s] vs N_o", "N_o", kinds, options);
  for (std::size_t i = 0; i < rows.size(); ++i)
    print_row(centers[i], rows[i], /*response=*/true);
  if (faulting)
    print_quality_table("Figure 9", "N_o",
                        std::vector<double>(std::begin(centers),
                                            std::end(centers)),
                        kinds, rows, options);
  return 0;
}
