// bench_impute — the IM strategy's wire-bytes-vs-answer-quality tradeoff
// (docs/IMPUTATION.md).
//
// Panel 1 sweeps a (network-cost multiplier × missingness rate R_m) grid and
// reports, per point, the average wire bytes of CA / BL / PL / IM plus IM's
// answer-quality figures: confident rows (certain with row confidence at or
// above the threshold), their precision against the *complete-data* ground
// truth, and the same restricted to rows whose certification consumed an
// estimate (confidence < 1). Ground truth is exact and free of simulation:
// the same drawn sample is re-materialized with R_m forced to zero — the
// value-null injection happens after every canonical draw, so the clean twin
// federation holds the identical entity universe — and answered through
// reference_answer().
//
// Panel 2 composes IM with fault injection: every assistant home is down for
// the whole run and the execution degrades partially. BL can then only
// return maybe/unavailable rows for anything needing an assistant check; IM
// upgrades the atoms the population model clears and still returns confident
// answers.
//
// The binary *asserts* the tentpole's acceptance criteria at the
// high-network-cost, high-missingness corner (fault-free) and in the outage
// panel, exiting nonzero on violation — registered as bench_impute_smoke in
// ctest. A user --faults spec is composed into an extra, assert-free panel
// (drop faults desynchronize the per-strategy RNG replay, so strict
// certain-row comparisons only hold under the built-in deterministic
// outages). --certcache=on attaches a per-trial cache to every certifying
// execution, exercising the certs-before-impute filter order end to end.
#include <array>
#include <set>

#include "isomer/core/cert_cache.hpp"

#include "harness.hpp"

namespace {

using namespace isomer;
using namespace isomer::bench;

/// Strategies of panel 1, in print order. IM rides last so its column sits
/// next to the quality figures derived from it.
constexpr StrategyKind kGridKinds[] = {StrategyKind::CA, StrategyKind::BL,
                                       StrategyKind::PL, StrategyKind::IM};
constexpr std::size_t kGridN = std::size(kGridKinds);

/// One grid point's trial-order-reduced figures.
struct GridPoint {
  std::array<double, kGridN> bytes_mb{};
  std::array<double, kGridN> response_s{};
  // IM answer quality, pooled over every trial at the point.
  double confident_rows = 0;   ///< certain rows with confidence >= thresh
  double confident_correct = 0;
  double imputed_rows = 0;     ///< confident rows that consumed an estimate
  double imputed_correct = 0;
  double imputed_atoms = 0;
  double declined_atoms = 0;
};

/// The clean twin of a drawn sample: R_m forced to zero everywhere. The
/// injection draws happen after the whole entity universe is drawn, so the
/// twin materializes the identical entities, LOids and GOids — only the
/// value nulls differ.
SampleParams clean_twin(SampleParams sample) {
  for (auto& cls : sample.classes)
    for (auto& db : cls.dbs) db.extra_missing = 0;
  return sample;
}

/// GOids of the ground truth's certain rows (complete data: all of them).
std::set<std::uint64_t> truth_certain(const SynthFederation& clean) {
  std::set<std::uint64_t> certain;
  const QueryResult truth = reference_answer(*clean.federation, clean.query);
  for (const ResultRow& row : truth.rows)
    if (row.status == ResultStatus::Certain) certain.insert(row.entity.value());
  return certain;
}

int failures = 0;
void check(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "bench_impute: ACCEPTANCE FAILED: %s\n", what);
  ++failures;
}

}  // namespace

int main(int argc, char** argv) {
  HarnessOptions options = parse_options(argc, argv);

  // The sweep needs an *enabled* spec; without --impute (or with
  // --impute=off) it runs the documented default below. A missing value's
  // honest confidence ceiling is max(p, 1-p) of its ~0.45..0.67-selective
  // equality atom (times the near-1 resolution rate), i.e. barely above
  // one half for the typical Table-2 draw — thresh=0.5 sits right under
  // that ceiling, so the model clears traffic *and* discharges whole rows
  // at the defaults, while anything stricter keeps only the
  // high-selectivity tail.
  ImputeSpec spec = options.impute;
  if (!spec.enabled) {
    spec = parse_impute_spec("thresh=0.5");
    std::printf("# --impute off or absent: sweeping the default '%s'\n",
                to_string(spec).c_str());
  }
  const bool mar = spec.mechanism == ImputeMechanism::MAR;

  const std::vector<StrategyKind> kinds(std::begin(kGridKinds),
                                        std::end(kGridKinds));
  JsonSink json(options.json_path, options);
  TraceSink trace(options.trace_path, "bench_impute", options);

  // ---- Panel 1: fault-free (net-cost × R_m) grid. ----------------------
  const double net_mults[] = {1.0, 4.0, 16.0};
  const double miss_rates[] = {0.05, 0.15, 0.30};
  std::vector<GridPoint> grid;

  const auto run_grid_point = [&](double mult, double miss,
                                  const fault::FaultSpec* faults) {
    ParamConfig config;  // Table-2 defaults
    config.forced_missing_rate = miss;
    config.missing_mechanism =
        mar ? MissingMechanism::MAR : MissingMechanism::MCAR;
    apply_scale(config, options.scale);

    const bool faulting = faults != nullptr && faults->plan.enabled();
    const bool tracing = trace.enabled();
    std::vector<GridPoint> trials(static_cast<std::size_t>(options.samples));
    std::vector<obs::TraceSession> sessions(
        tracing ? trials.size() : std::size_t{0});
    for_each_trial(options.samples, options.seed, options.jobs,
                   [&](std::size_t s, Rng& rng) {
      const SampleParams sample = draw_sample(config, rng);
      const SynthFederation synth = materialize_sample(sample);
      const SynthFederation clean = materialize_sample(clean_twin(sample));
      const std::set<std::uint64_t> truth = truth_certain(clean);
      const ImputeModel model = ImputeModel::build(*synth.federation);

      fault::FaultPlan plan;
      if (faulting) {
        plan = faults->plan;
        plan.seed = derive_stream(derive_stream(options.seed, faults->plan.seed),
                                  s);
      }
      GridPoint& t = trials[s];
      for (std::size_t k = 0; k < kGridN; ++k) {
        // Each strategy gets its own *cold* cache: one cache shared across
        // the grid's strategies would let CA/BL/PL warm it and hand IM exact
        // verdicts, starving the impute filter of the very atoms the panel
        // measures (the certs filter deliberately runs first).
        CertCache cache(options.cert_cache_entries);
        StrategyOptions exec;
        exec.record_trace = false;
        if (tracing) exec.trace_session = &sessions[s];
        exec.costs.net_ns_per_byte = static_cast<SimTime>(
            static_cast<double>(exec.costs.net_ns_per_byte) * mult);
        if (options.batch_set) exec.batch = options.batch;
        if (options.cert_cache_enabled) exec.cert_cache = &cache;
        if (faulting) {
          exec.faults = &plan;
          exec.retry = faults->retry;
          exec.degrade = faults->degrade;
        }
        if (kGridKinds[k] == StrategyKind::IM) {
          exec.impute = &model;
          exec.impute_threshold = spec.threshold;
          exec.impute_mar = mar;
        }
        const StrategyReport report = execute_strategy(
            kGridKinds[k], *synth.federation, synth.query, exec);
        t.bytes_mb[k] =
            static_cast<double>(report.bytes_transferred) / 1e6;
        t.response_s[k] = to_seconds(report.response_ns);
        if (kGridKinds[k] != StrategyKind::IM) continue;
        t.imputed_atoms = static_cast<double>(report.imputed_atoms);
        t.declined_atoms = static_cast<double>(report.impute_declined);
        for (const ResultRow& row : report.result.rows) {
          if (row.status != ResultStatus::Certain ||
              row.confidence < spec.threshold)
            continue;
          const bool correct = truth.count(row.entity.value()) > 0;
          t.confident_rows += 1;
          t.confident_correct += correct ? 1 : 0;
          if (row.confidence < 1.0) {
            t.imputed_rows += 1;
            t.imputed_correct += correct ? 1 : 0;
          }
        }
      }
    });
    GridPoint point;  // reduce in trial order: --jobs-invariant
    for (std::size_t s = 0; s < trials.size(); ++s) {
      for (std::size_t k = 0; k < kGridN; ++k) {
        point.bytes_mb[k] += trials[s].bytes_mb[k];
        point.response_s[k] += trials[s].response_s[k];
      }
      point.confident_rows += trials[s].confident_rows;
      point.confident_correct += trials[s].confident_correct;
      point.imputed_rows += trials[s].imputed_rows;
      point.imputed_correct += trials[s].imputed_correct;
      point.imputed_atoms += trials[s].imputed_atoms;
      point.declined_atoms += trials[s].declined_atoms;
      if (tracing) trace.write_trial(s, sessions[s]);
    }
    for (std::size_t k = 0; k < kGridN; ++k) {
      point.bytes_mb[k] /= options.samples;
      point.response_s[k] /= options.samples;
    }
    return point;
  };

  std::printf("# bench_impute — avg wire bytes [MB] over the "
              "(T_net multiplier × R_m) grid, %d samples/point, "
              "N_o scale %.2f, impute spec '%s'\n",
              options.samples, options.scale, to_string(spec).c_str());
  std::printf("%-8s %-8s %10s %10s %10s %10s %10s\n", "T_net_x", "R_m", "CA",
              "BL", "PL", "IM", "IM_vs_BL");
  for (const double mult : net_mults)
    for (const double miss : miss_rates) {
      trace.set_point("impute_grid", "R_m", miss);
      const GridPoint point = run_grid_point(mult, miss, nullptr);
      grid.push_back(point);
      std::printf("%-8g %-8g %10.3f %10.3f %10.3f %10.3f %9.1f%%\n", mult,
                  miss, point.bytes_mb[0], point.bytes_mb[1],
                  point.bytes_mb[2], point.bytes_mb[3],
                  point.bytes_mb[1] > 0
                      ? (1.0 - point.bytes_mb[3] / point.bytes_mb[1]) * 100.0
                      : 0.0);
      for (std::size_t k = 0; k < kGridN; ++k) {
        char body[512];
        std::snprintf(body, sizeof body,
                      "\"figure\": \"impute_grid\", \"net_mult\": %.17g, "
                      "\"r_m\": %.17g, \"strategy\": \"%s\", "
                      "\"bytes_mb\": %.17g, \"response_s\": %.17g",
                      mult, miss,
                      std::string(to_string(kGridKinds[k])).c_str(),
                      point.bytes_mb[k], point.response_s[k]);
        json.raw_row(body);
      }
    }

  std::printf("\n# bench_impute — IM answer quality (pooled rows over all "
              "trials; precision vs complete-data ground truth)\n");
  std::printf("%-8s %-8s %10s %10s %10s %10s %12s %12s\n", "T_net_x", "R_m",
              "confident", "precision", "imputed", "precision", "atoms_imp",
              "atoms_decl");
  {
    std::size_t i = 0;
    for (const double mult : net_mults)
      for (const double miss : miss_rates) {
        const GridPoint& p = grid[i++];
        const double prec = p.confident_rows > 0
                                ? p.confident_correct / p.confident_rows
                                : 1.0;
        const double iprec =
            p.imputed_rows > 0 ? p.imputed_correct / p.imputed_rows : 1.0;
        std::printf("%-8g %-8g %10.0f %10.4f %10.0f %10.4f %12.0f %12.0f\n",
                    mult, miss, p.confident_rows, prec, p.imputed_rows, iprec,
                    p.imputed_atoms, p.declined_atoms);
        char body[512];
        std::snprintf(body, sizeof body,
                      "\"figure\": \"impute_quality\", \"net_mult\": %.17g, "
                      "\"r_m\": %.17g, \"confident_rows\": %.17g, "
                      "\"precision\": %.17g, \"imputed_rows\": %.17g, "
                      "\"imputed_precision\": %.17g, "
                      "\"imputed_atoms\": %.17g, \"declined_atoms\": %.17g",
                      mult, miss, p.confident_rows, prec, p.imputed_rows,
                      iprec, p.imputed_atoms, p.declined_atoms);
        json.raw_row(body);
      }
  }

  // Acceptance, tentpole criterion 1, at the high-net-cost high-R_m corner:
  // IM's wire bytes strictly undercut every certifying strategy, the model
  // actually imputed, and the confident rows hit the promised precision.
  {
    const GridPoint& corner = grid.back();
    const double im = corner.bytes_mb[3];
    check(corner.imputed_atoms > 0,
          "corner point imputed no atoms (model never cleared traffic)");
    check(im < corner.bytes_mb[0] && im < corner.bytes_mb[1] &&
              im < corner.bytes_mb[2],
          "IM wire bytes not strictly below min(CA, BL, PL) at the corner");
    check(corner.confident_rows > 0, "corner point has no confident rows");
    check(corner.confident_correct >=
              spec.threshold * corner.confident_rows,
          "confident-row precision below the confidence threshold");
  }

  // ---- Panel 2: every assistant home dead. -----------------------------
  // Built-in deterministic outages (no drops: certain-row comparisons need
  // both strategies to face the identical environment): every database but
  // DB1 is down from t=0, partial degradation. BL's assistant checks all
  // fail; IM's imputed atoms never ship.
  {
    ParamConfig config;
    config.forced_missing_rate = 0.30;
    config.missing_mechanism =
        mar ? MissingMechanism::MAR : MissingMechanism::MCAR;
    apply_scale(config, options.scale);
    fault::FaultSpec outage;
    for (std::uint16_t db = 2; db <= config.n_db; ++db)
      outage.plan.outages.push_back(
          fault::Outage{DbId{db}, 0, fault::kForever});
    outage.degrade = fault::DegradeMode::Partial;
    outage.retry.max_retries = 1;

    struct OutageTrial {
      double bl_certain = 0, im_certain = 0, im_imputed_rows = 0;
      double im_imputed_atoms = 0;
    };
    std::vector<OutageTrial> trials(static_cast<std::size_t>(options.samples));
    for_each_trial(options.samples, options.seed, options.jobs,
                   [&](std::size_t s, Rng& rng) {
      const SampleParams sample = draw_sample(config, rng);
      const SynthFederation synth = materialize_sample(sample);
      const ImputeModel model = ImputeModel::build(*synth.federation);
      for (const bool impute : {false, true}) {
        StrategyOptions exec;
        exec.record_trace = false;
        exec.faults = &outage.plan;
        exec.retry = outage.retry;
        exec.degrade = outage.degrade;
        if (impute) {
          exec.impute = &model;
          exec.impute_threshold = spec.threshold;
          exec.impute_mar = mar;
        }
        const StrategyReport report = execute_strategy(
            impute ? StrategyKind::IM : StrategyKind::BL, *synth.federation,
            synth.query, exec);
        OutageTrial& t = trials[s];
        if (!impute) {
          t.bl_certain = static_cast<double>(report.result.certain_count());
          continue;
        }
        t.im_certain = static_cast<double>(report.result.certain_count());
        t.im_imputed_atoms = static_cast<double>(report.imputed_atoms);
        for (const ResultRow& row : report.result.rows)
          if (row.status == ResultStatus::Certain && row.confidence < 1.0)
            t.im_imputed_rows += 1;
      }
    });
    OutageTrial pooled;
    for (const OutageTrial& t : trials) {
      pooled.bl_certain += t.bl_certain;
      pooled.im_certain += t.im_certain;
      pooled.im_imputed_rows += t.im_imputed_rows;
      pooled.im_imputed_atoms += t.im_imputed_atoms;
    }
    std::printf("\n# bench_impute — all assistant homes down from t=0 "
                "(degrade=partial, R_m=0.3; pooled rows over %d trials)\n",
                options.samples);
    std::printf("%-12s %12s %12s %14s\n", "strategy", "certain", "imputed",
                "atoms_imputed");
    std::printf("%-12s %12.0f %12s %14s\n", "BL", pooled.bl_certain, "-", "-");
    std::printf("%-12s %12.0f %12.0f %14.0f\n", "IM", pooled.im_certain,
                pooled.im_imputed_rows, pooled.im_imputed_atoms);
    char body[320];
    std::snprintf(body, sizeof body,
                  "\"figure\": \"impute_outage\", \"bl_certain\": %.17g, "
                  "\"im_certain\": %.17g, \"im_imputed_rows\": %.17g, "
                  "\"im_imputed_atoms\": %.17g",
                  pooled.bl_certain, pooled.im_certain, pooled.im_imputed_rows,
                  pooled.im_imputed_atoms);
    json.raw_row(body);

    // Acceptance, tentpole criterion 2: with every assistant dead, IM still
    // imputes (the filter runs at the live home before anything ships) and
    // returns strictly more confident answers than BL can certify.
    check(pooled.im_imputed_atoms > 0,
          "outage panel imputed no atoms");
    check(pooled.im_imputed_rows > 0,
          "outage panel produced no confident imputed rows");
    check(pooled.im_certain > pooled.bl_certain,
          "IM not strictly more certain rows than BL with assistants dead");
  }

  // ---- Optional panel 3: the user's --faults spec, composed, no asserts
  // (drop/spike faults desynchronize the per-strategy replay streams).
  if (options.faults_set && options.faults.plan.enabled()) {
    std::printf("\n# bench_impute — composed with --faults=%s "
                "(informational)\n",
                fault::to_string(options.faults).c_str());
    std::printf("%-8s %-8s %10s %10s %10s %10s\n", "T_net_x", "R_m", "CA",
                "BL", "PL", "IM");
    const GridPoint point = run_grid_point(4.0, 0.30, &options.faults);
    std::printf("%-8g %-8g %10.3f %10.3f %10.3f %10.3f\n", 4.0, 0.30,
                point.bytes_mb[0], point.bytes_mb[1], point.bytes_mb[2],
                point.bytes_mb[3]);
  }

  if (failures > 0) {
    std::fprintf(stderr, "bench_impute: %d acceptance check(s) failed\n",
                 failures);
    return 1;
  }
  std::printf("\nbench_impute: all acceptance checks passed\n");
  return 0;
}
