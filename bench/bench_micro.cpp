// Micro-benchmarks (google-benchmark) of the building blocks: extent scans,
// three-valued predicate evaluation, GOid-table probes, outerjoin
// materialization, signature screening, and the discrete-event engine.
// These measure the *wall-clock* cost of the library itself, not simulated
// time — useful when sizing full-scale (--paper) harness runs.
#include <benchmark/benchmark.h>

#include "isomer/analytic/impute.hpp"
#include "isomer/core/cert_cache.hpp"
#include "isomer/core/local_exec.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/federation/goid_table.hpp"
#include "isomer/federation/materializer.hpp"
#include "isomer/query/kernels.hpp"
#include "isomer/obs/trace_session.hpp"
#include "isomer/query/eval.hpp"
#include "isomer/query/eval_cache.hpp"
#include "isomer/schema/translate.hpp"
#include "isomer/sim/barrier.hpp"
#include "isomer/workload/synth.hpp"

namespace {

using namespace isomer;

SynthFederation make_synth(int objects, std::size_t n_db = 3) {
  Rng rng(1234);
  ParamConfig config;
  config.n_db = n_db;
  config.n_objects = {objects, objects};
  config.n_classes = {3, 3};
  config.n_preds = {2, 2};
  SampleParams sample = draw_sample(config, rng);
  return materialize_sample(sample);
}

void BM_ExtentScan(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(0)));
  const ComponentDatabase& db = synth.federation->db(DbId{1});
  for (auto _ : state) {
    AccessMeter meter;
    benchmark::DoNotOptimize(db.scan("C1", &meter));
    benchmark::DoNotOptimize(meter.objects_scanned);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExtentScan)->Arg(1000)->Arg(5000);

void BM_LocalQueryEvaluation(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    LocalExecution exec =
        run_local_query(*synth.federation, synth.query, DbId{1});
    benchmark::DoNotOptimize(exec.rows.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LocalQueryEvaluation)->Arg(1000)->Arg(5000);

// Predicate evaluation over a whole root extent, with and without the
// EvalCache (query/eval_cache.hpp). Arg 0 selects cached (1) or uncached
// (0); the cache is rebuilt per iteration, so the reported time includes
// its warm-up — the realistic "one local execution" usage. The two variants
// perform identical comparisons (asserted in test_eval_cache).
void BM_PredicateEval(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(1)));
  const ComponentDatabase& db = synth.federation->db(DbId{1});
  const auto local =
      derive_local_query(synth.federation->schema(), synth.query, DbId{1});
  const auto& objects = db.extent(local->root_class).objects();
  const bool use_cache = state.range(0) != 0;
  for (auto _ : state) {
    EvalCache cache(db);
    AccessMeter meter;
    for (const Object& obj : objects)
      for (const Predicate& pred : local->local_predicates)
        benchmark::DoNotOptimize(eval_predicate(
            db, obj, pred, &meter, use_cache ? &cache : nullptr));
    benchmark::DoNotOptimize(meter.comparisons);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(objects.size()));
}
BENCHMARK(BM_PredicateEval)
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({0, 5000})
    ->Args({1, 5000});

void BM_GoidProbe(benchmark::State& state) {
  const SynthFederation synth = make_synth(2000);
  const GoidTable& goids = synth.federation->goids();
  const ComponentDatabase& db = synth.federation->db(DbId{1});
  std::vector<LOid> ids;
  for (const Object& obj : db.extent("C1").objects()) ids.push_back(obj.id());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(goids.goid_of(ids[i++ % ids.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoidProbe);

void BM_Materialize(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(0)));
  const auto classes =
      classes_involved(synth.federation->schema(), synth.query);
  for (auto _ : state) {
    MaterializedView view = materialize(*synth.federation, classes);
    benchmark::DoNotOptimize(view.extent(synth.query.range_class).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Materialize)->Arg(1000)->Arg(5000);

void BM_SignatureBuild(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SignatureIndex index = SignatureIndex::build(*synth.federation);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SignatureBuild)->Arg(1000);

void BM_SignatureScreen(benchmark::State& state) {
  const SynthFederation synth = make_synth(2000);
  const SignatureIndex index = SignatureIndex::build(*synth.federation);
  const ComponentDatabase& db = synth.federation->db(DbId{1});
  std::vector<LOid> ids;
  for (const Object& obj : db.extent("C2").objects()) ids.push_back(obj.id());
  const Value literal{std::int64_t{0}};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.screen(ids[i++ % ids.size()], "p0", literal));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignatureScreen);

// ---- Row vs columnar hot loops (docs/PERFORMANCE.md) -----------------------
//
// The pairs below isolate the two hot paths the columnar work targets:
// simple-predicate evaluation over a whole extent, and LOid -> GOid probes.
// Each pair runs the same logical work through the row-at-a-time path and
// the vectorized / batched path so their ratio is the speedup
// tools/check_bench_micro.py watches. All report an explicit objects_per_s
// or probes_per_s rate counter in the JSON output.

/// One class, one Real attribute, ~1/16 of rows null (the missing-data case).
ComponentDatabase make_scan_db(std::int64_t n) {
  ComponentSchema schema(DbId{1}, "DB1");
  schema.add_class("Scan").add_attribute("v", PrimType::Real);
  ComponentDatabase db(std::move(schema));
  db.reserve("Scan", static_cast<std::size_t>(n));
  Rng rng(99);
  for (std::int64_t i = 0; i < n; ++i) {
    if (rng.bernoulli(1.0 / 16.0))
      db.insert("Scan");  // v stays null
    else
      db.insert("Scan", {{"v", Value(rng.uniform_real(0.0, 1000.0))}});
  }
  return db;
}

void BM_PredicateEvalRow(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const ComponentDatabase db = make_scan_db(n);
  const auto& objects = db.extent("Scan").objects();
  const Value literal{500.0};
  for (auto _ : state) {
    std::size_t trues = 0;
    for (const Object& obj : objects)
      trues += is_true(apply(CompOp::Lt, obj.value(0), literal)) ? 1u : 0u;
    benchmark::DoNotOptimize(trues);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["objects_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * n),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PredicateEvalRow)->Arg(100'000)->Arg(1'000'000);

void BM_PredicateEvalColumnar(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const ComponentDatabase db = make_scan_db(n);
  const ColumnarExtent& columnar = db.extent("Scan").columnar();
  const ColumnarExtent::Column& col = columnar.column(0);
  const Value literal{500.0};
  std::vector<Truth> truths(columnar.rows());
  for (auto _ : state) {
    eval_predicate_column(col, columnar.rows(), CompOp::Lt, literal,
                          truths.data());
    benchmark::DoNotOptimize(count_truth(truths, Truth::True));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["objects_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * n),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PredicateEvalColumnar)->Arg(100'000)->Arg(1'000'000);

/// n singleton entities plus a deterministically shuffled probe order, so
/// the probe loops below are cache-miss-bound like a real semijoin batch.
GoidTable make_goid_table(std::int64_t n, std::vector<LOid>& probe_order) {
  GoidTable goids;
  goids.reserve(static_cast<std::size_t>(n));
  probe_order.clear();
  probe_order.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const LOid id{DbId{1}, static_cast<std::uint32_t>(i + 1)};
    goids.register_entity("C", {id});
    probe_order.push_back(id);
  }
  Rng rng(5);
  for (std::size_t i = probe_order.size(); i > 1; --i)
    std::swap(probe_order[i - 1], probe_order[rng.index(i)]);
  return goids;
}

void BM_GoidProbeScalar(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<LOid> order;
  const GoidTable goids = make_goid_table(n, order);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const LOid id : order) sum += goids.goid_of(id)->value();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["probes_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * n),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GoidProbeScalar)->Arg(100'000)->Arg(1'000'000);

void BM_GoidProbeBatch(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<LOid> order;
  const GoidTable goids = make_goid_table(n, order);
  std::vector<GOid> out(order.size());
  for (auto _ : state) {
    goids.goids_of(order, out.data());
    benchmark::DoNotOptimize(out.front().value() + out.back().value());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["probes_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * n),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GoidProbeBatch)->Arg(100'000)->Arg(1'000'000);

/// The pre-sharding probe baseline: one big std::unordered_map, probed in the
/// same shuffled order. Kept as a benchmark (not production code) so the
/// sharded table's advantage stays measurable.
void BM_GoidProbeReferenceMap(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<LOid> order;
  const GoidTable goids = make_goid_table(n, order);
  std::unordered_map<LOid, std::uint64_t> reference;
  reference.reserve(order.size());
  for (const LOid id : order) reference.emplace(id, goids.goid_of(id)->value());
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const LOid id : order) sum += reference.find(id)->second;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["probes_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * n),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GoidProbeReferenceMap)->Arg(100'000)->Arg(1'000'000);

/// Full local query execution, row path vs columnar fast path, on the same
/// synthetic federation. The two are bitwise-identical in results and meter
/// (tests/test_columnar_parity.cpp); this pair measures the wall-clock gap.
void BM_LocalQueryRowVsColumnar(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(1)));
  const bool use_columnar = state.range(0) != 0;
  for (auto _ : state) {
    LocalExecution exec = run_local_query(*synth.federation, synth.query,
                                          DbId{1}, nullptr, use_columnar);
    benchmark::DoNotOptimize(exec.rows.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
  state.counters["objects_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(1)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LocalQueryRowVsColumnar)
    ->Args({0, 20000})
    ->Args({1, 20000});

/// n shuffled (GOid, signature) certificate keys — probe order is
/// cache-miss-bound like a real repeated serving pool.
std::vector<std::pair<GOid, std::uint64_t>> make_cert_keys(std::int64_t n) {
  std::vector<std::pair<GOid, std::uint64_t>> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    keys.emplace_back(GOid{static_cast<std::uint64_t>(i + 1)},
                      0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(i + 1));
  Rng rng(5);
  for (std::size_t i = keys.size(); i > 1; --i)
    std::swap(keys[i - 1], keys[rng.index(i)]);
  return keys;
}

/// Warm certificate-cache path: every lookup hits (the second serving wave
/// of bench_serve's panel 4). Paired with BM_CertCacheColdMisses below —
/// their ratio is the hit path's advantage over the miss+writeback path it
/// replaces, watched by tools/check_bench_micro.py.
void BM_CertCacheWarmHits(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto keys = make_cert_keys(n);
  CertCache cache;
  for (const auto& [goid, sig] : keys)
    cache.insert(goid, sig, /*epoch=*/1, Truth::True);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const auto& [goid, sig] : keys)
      sum += static_cast<std::uint64_t>(*cache.lookup(goid, sig, 1));
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CertCacheWarmHits)->Arg(100'000);

/// Cold certificate-cache path: every lookup misses and writes back — the
/// first wave's cost, including the table growth a fresh cache pays.
void BM_CertCacheColdMisses(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto keys = make_cert_keys(n);
  for (auto _ : state) {
    CertCache cache;
    std::uint64_t found = 0;
    for (const auto& [goid, sig] : keys) {
      found += cache.lookup(goid, sig, 1).has_value() ? 1u : 0u;
      cache.insert(goid, sig, 1, Truth::True);
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CertCacheColdMisses)->Arg(100'000);

/// ImputeModel::build — the IM strategy's population fit: one scan per
/// constituent extent plus the covariate pass (analytic/impute.hpp). The
/// model is an auxiliary replicated structure like the signature index, so
/// this is its uncharged maintenance cost; items are stored objects
/// scanned. Watched by tools/check_bench_micro.py: throughput must not
/// collapse superlinearly between the two extent sizes.
void BM_ImputeModelBuild(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(0)));
  std::uint64_t objects = 0;
  for (auto _ : state) {
    const ImputeModel model = ImputeModel::build(*synth.federation);
    objects = model.stats().objects_scanned;
    benchmark::DoNotOptimize(model.stats().estimators);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(objects));
}
BENCHMARK(BM_ImputeModelBuild)->Arg(1000)->Arg(5000);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Resource resource(sim, "r");
    auto barrier = Barrier::create(10000, [] {});
    for (int i = 0; i < 10000; ++i) resource.use(10, barrier->arrival());
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_FullStrategyExecution(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(1)));
  const auto kind = static_cast<StrategyKind>(state.range(0));
  StrategyOptions options;
  options.record_trace = false;
  for (auto _ : state) {
    StrategyReport report =
        execute_strategy(kind, *synth.federation, synth.query, options);
    benchmark::DoNotOptimize(report.total_ns);
  }
}
BENCHMARK(BM_FullStrategyExecution)
    ->Args({static_cast<int>(StrategyKind::CA), 2000})
    ->Args({static_cast<int>(StrategyKind::BL), 2000})
    ->Args({static_cast<int>(StrategyKind::PL), 2000});

// Observability overhead: compares an execution with no TraceSession (the
// no-op path — a single pointer test per step) against one recording phase
// spans. Tracing *observes* the AccessMeter and simulated clock, it must
// never charge them, so the setup aborts the benchmark if the two paths'
// metered work, simulated times, or wire traffic diverge. Arg 0 selects
// untraced (0) or traced (1); Arg 1 is the strategy.
void BM_StrategyTraceOverhead(benchmark::State& state) {
  const SynthFederation synth = make_synth(2000);
  const auto kind = static_cast<StrategyKind>(state.range(1));
  StrategyOptions untraced;
  untraced.record_trace = false;
  const StrategyReport baseline =
      execute_strategy(kind, *synth.federation, synth.query, untraced);
  obs::TraceSession probe_session;
  StrategyOptions traced = untraced;
  traced.trace_session = &probe_session;
  const StrategyReport probe =
      execute_strategy(kind, *synth.federation, synth.query, traced);
  if (!(probe.work == baseline.work)) {
    state.SkipWithError("tracing changed the execution's metered work");
    return;
  }
  if (probe.total_ns != baseline.total_ns ||
      probe.response_ns != baseline.response_ns ||
      probe.bytes_transferred != baseline.bytes_transferred ||
      probe.messages != baseline.messages) {
    state.SkipWithError("tracing changed the simulated cost figures");
    return;
  }
  if (probe_session.empty()) {
    state.SkipWithError("traced execution recorded no spans");
    return;
  }
  const bool trace_on = state.range(0) != 0;
  for (auto _ : state) {
    obs::TraceSession session;
    StrategyOptions options = untraced;
    if (trace_on) options.trace_session = &session;
    StrategyReport report =
        execute_strategy(kind, *synth.federation, synth.query, options);
    benchmark::DoNotOptimize(report.work.comparisons);
    benchmark::DoNotOptimize(session.size());
  }
}
BENCHMARK(BM_StrategyTraceOverhead)
    ->Args({0, static_cast<int>(StrategyKind::BL)})
    ->Args({1, static_cast<int>(StrategyKind::BL)})
    ->Args({0, static_cast<int>(StrategyKind::CA)})
    ->Args({1, static_cast<int>(StrategyKind::CA)});

}  // namespace

BENCHMARK_MAIN();
