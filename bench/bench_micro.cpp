// Micro-benchmarks (google-benchmark) of the building blocks: extent scans,
// three-valued predicate evaluation, GOid-table probes, outerjoin
// materialization, signature screening, and the discrete-event engine.
// These measure the *wall-clock* cost of the library itself, not simulated
// time — useful when sizing full-scale (--paper) harness runs.
#include <benchmark/benchmark.h>

#include "isomer/core/local_exec.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/federation/materializer.hpp"
#include "isomer/obs/trace_session.hpp"
#include "isomer/query/eval.hpp"
#include "isomer/query/eval_cache.hpp"
#include "isomer/schema/translate.hpp"
#include "isomer/sim/barrier.hpp"
#include "isomer/workload/synth.hpp"

namespace {

using namespace isomer;

SynthFederation make_synth(int objects, std::size_t n_db = 3) {
  Rng rng(1234);
  ParamConfig config;
  config.n_db = n_db;
  config.n_objects = {objects, objects};
  config.n_classes = {3, 3};
  config.n_preds = {2, 2};
  SampleParams sample = draw_sample(config, rng);
  return materialize_sample(sample);
}

void BM_ExtentScan(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(0)));
  const ComponentDatabase& db = synth.federation->db(DbId{1});
  for (auto _ : state) {
    AccessMeter meter;
    benchmark::DoNotOptimize(db.scan("C1", &meter));
    benchmark::DoNotOptimize(meter.objects_scanned);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExtentScan)->Arg(1000)->Arg(5000);

void BM_LocalQueryEvaluation(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    LocalExecution exec =
        run_local_query(*synth.federation, synth.query, DbId{1});
    benchmark::DoNotOptimize(exec.rows.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LocalQueryEvaluation)->Arg(1000)->Arg(5000);

// Predicate evaluation over a whole root extent, with and without the
// EvalCache (query/eval_cache.hpp). Arg 0 selects cached (1) or uncached
// (0); the cache is rebuilt per iteration, so the reported time includes
// its warm-up — the realistic "one local execution" usage. The two variants
// perform identical comparisons (asserted in test_eval_cache).
void BM_PredicateEval(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(1)));
  const ComponentDatabase& db = synth.federation->db(DbId{1});
  const auto local =
      derive_local_query(synth.federation->schema(), synth.query, DbId{1});
  const auto& objects = db.extent(local->root_class).objects();
  const bool use_cache = state.range(0) != 0;
  for (auto _ : state) {
    EvalCache cache(db);
    AccessMeter meter;
    for (const Object& obj : objects)
      for (const Predicate& pred : local->local_predicates)
        benchmark::DoNotOptimize(eval_predicate(
            db, obj, pred, &meter, use_cache ? &cache : nullptr));
    benchmark::DoNotOptimize(meter.comparisons);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(objects.size()));
}
BENCHMARK(BM_PredicateEval)
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({0, 5000})
    ->Args({1, 5000});

void BM_GoidProbe(benchmark::State& state) {
  const SynthFederation synth = make_synth(2000);
  const GoidTable& goids = synth.federation->goids();
  const ComponentDatabase& db = synth.federation->db(DbId{1});
  std::vector<LOid> ids;
  for (const Object& obj : db.extent("C1").objects()) ids.push_back(obj.id());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(goids.goid_of(ids[i++ % ids.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoidProbe);

void BM_Materialize(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(0)));
  const auto classes =
      classes_involved(synth.federation->schema(), synth.query);
  for (auto _ : state) {
    MaterializedView view = materialize(*synth.federation, classes);
    benchmark::DoNotOptimize(view.extent(synth.query.range_class).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Materialize)->Arg(1000)->Arg(5000);

void BM_SignatureBuild(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SignatureIndex index = SignatureIndex::build(*synth.federation);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SignatureBuild)->Arg(1000);

void BM_SignatureScreen(benchmark::State& state) {
  const SynthFederation synth = make_synth(2000);
  const SignatureIndex index = SignatureIndex::build(*synth.federation);
  const ComponentDatabase& db = synth.federation->db(DbId{1});
  std::vector<LOid> ids;
  for (const Object& obj : db.extent("C2").objects()) ids.push_back(obj.id());
  const Value literal{std::int64_t{0}};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.screen(ids[i++ % ids.size()], "p0", literal));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignatureScreen);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Resource resource(sim, "r");
    auto barrier = Barrier::create(10000, [] {});
    for (int i = 0; i < 10000; ++i) resource.use(10, barrier->arrival());
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_FullStrategyExecution(benchmark::State& state) {
  const SynthFederation synth = make_synth(static_cast<int>(state.range(1)));
  const auto kind = static_cast<StrategyKind>(state.range(0));
  StrategyOptions options;
  options.record_trace = false;
  for (auto _ : state) {
    StrategyReport report =
        execute_strategy(kind, *synth.federation, synth.query, options);
    benchmark::DoNotOptimize(report.total_ns);
  }
}
BENCHMARK(BM_FullStrategyExecution)
    ->Args({static_cast<int>(StrategyKind::CA), 2000})
    ->Args({static_cast<int>(StrategyKind::BL), 2000})
    ->Args({static_cast<int>(StrategyKind::PL), 2000});

// Observability overhead: compares an execution with no TraceSession (the
// no-op path — a single pointer test per step) against one recording phase
// spans. Tracing *observes* the AccessMeter and simulated clock, it must
// never charge them, so the setup aborts the benchmark if the two paths'
// metered work, simulated times, or wire traffic diverge. Arg 0 selects
// untraced (0) or traced (1); Arg 1 is the strategy.
void BM_StrategyTraceOverhead(benchmark::State& state) {
  const SynthFederation synth = make_synth(2000);
  const auto kind = static_cast<StrategyKind>(state.range(1));
  StrategyOptions untraced;
  untraced.record_trace = false;
  const StrategyReport baseline =
      execute_strategy(kind, *synth.federation, synth.query, untraced);
  obs::TraceSession probe_session;
  StrategyOptions traced = untraced;
  traced.trace_session = &probe_session;
  const StrategyReport probe =
      execute_strategy(kind, *synth.federation, synth.query, traced);
  if (!(probe.work == baseline.work)) {
    state.SkipWithError("tracing changed the execution's metered work");
    return;
  }
  if (probe.total_ns != baseline.total_ns ||
      probe.response_ns != baseline.response_ns ||
      probe.bytes_transferred != baseline.bytes_transferred ||
      probe.messages != baseline.messages) {
    state.SkipWithError("tracing changed the simulated cost figures");
    return;
  }
  if (probe_session.empty()) {
    state.SkipWithError("traced execution recorded no spans");
    return;
  }
  const bool trace_on = state.range(0) != 0;
  for (auto _ : state) {
    obs::TraceSession session;
    StrategyOptions options = untraced;
    if (trace_on) options.trace_session = &session;
    StrategyReport report =
        execute_strategy(kind, *synth.federation, synth.query, options);
    benchmark::DoNotOptimize(report.work.comparisons);
    benchmark::DoNotOptimize(session.size());
  }
}
BENCHMARK(BM_StrategyTraceOverhead)
    ->Args({0, static_cast<int>(StrategyKind::BL)})
    ->Args({1, static_cast<int>(StrategyKind::BL)})
    ->Args({0, static_cast<int>(StrategyKind::CA)})
    ->Args({1, static_cast<int>(StrategyKind::CA)});

}  // namespace

BENCHMARK_MAIN();
