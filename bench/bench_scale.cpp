// bench_scale — row-vs-columnar scaling sweep (docs/PERFORMANCE.md).
//
// Sweeps the per-constituent object count across decades (default
// 10K -> 1M; pass --sizes=...,10000000 for the full 10M sweep) and, at each
// size, builds one deterministic two-database federation whose root class
// misses one predicate attribute at DB2 — so the sweep exercises both the
// vectorized kernel path (DB1) and the schema-missing bulk path (DB2).
//
// At every size the bench is its own at-scale parity check:
//   * the local query runs row-at-a-time and columnar at every home and the
//     two LocalExecutions must match field for field (rows, statuses,
//     meters) — any divergence aborts with a nonzero exit;
//   * up to --strategy-cap objects (default 200000, 0 = uncapped) CA/BL/PL
//     execute twice, columnar on and off, composed with --faults/--batch,
//     and the full StrategyReports must be bitwise identical.
// Everything reported except the wall_* timings is deterministic in
// (--sizes, --samples, --seed, --faults, --batch) and invariant under
// --jobs: trials run on the pool but reduce in trial order.
//
// Extra flags on top of the common harness set (see --help):
//   --sizes=N[,N...]    per-constituent object counts to sweep
//   --strategy-cap=N    largest size that also runs full CA/BL/PL parity
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness.hpp"
#include "isomer/core/local_exec.hpp"

namespace {

using namespace isomer;
using namespace isomer::bench;

double wall_ms(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// One root class, two databases, both predicates defined at DB1 (with some
/// value-level nulls), p1 schema-missing at DB2. Deterministic in `seed`.
SampleParams make_sample(int n_objects, std::uint64_t seed) {
  SampleParams sample;
  sample.n_db = 2;
  sample.n_targets = 1;
  sample.iso_ratio = 0.3;
  SampleParams::PerClass cls;
  cls.n_preds = 2;
  cls.pred_selectivity = 0.45;
  cls.ref_ratio = 1.0;
  cls.dbs.resize(2);
  cls.dbs[0].n_objects = n_objects;
  cls.dbs[0].present_preds = {0, 1};
  cls.dbs[0].extra_missing = 0.1;
  cls.dbs[1].n_objects = n_objects;
  cls.dbs[1].present_preds = {0};
  sample.classes.push_back(std::move(cls));
  sample.materialize_seed = seed;
  return sample;
}

bool same_status(const PredStatus& a, const PredStatus& b) {
  return a.truth == b.truth && a.item == b.item && a.step == b.step &&
         a.root_level == b.root_level;
}

bool same_exec(const LocalExecution& a, const LocalExecution& b) {
  if (a.db != b.db || !(a.meter == b.meter) || a.considered != b.considered ||
      a.rows.size() != b.rows.size())
    return false;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    const LocalRow& x = a.rows[i];
    const LocalRow& y = b.rows[i];
    if (x.root != y.root || x.entity != y.entity || x.targets != y.targets ||
        x.preds.size() != y.preds.size())
      return false;
    for (std::size_t p = 0; p < x.preds.size(); ++p)
      if (!same_status(x.preds[p], y.preds[p])) return false;
  }
  return true;
}

bool same_report(const StrategyReport& a, const StrategyReport& b) {
  return a.result == b.result && a.response_ns == b.response_ns &&
         a.total_ns == b.total_ns && a.cpu_ns == b.cpu_ns &&
         a.disk_ns == b.disk_ns && a.net_ns == b.net_ns &&
         a.bytes_transferred == b.bytes_transferred &&
         a.messages == b.messages && a.work == b.work &&
         a.unavailable_sites == b.unavailable_sites &&
         a.retries == b.retries && a.failed_messages == b.failed_messages;
}

/// Deterministic per-(size, strategy) figures plus wall-clock timings.
struct SizeResult {
  std::int64_t size = 0;
  // Local parity sweep (summed over trials and home databases).
  std::uint64_t local_rows = 0;
  std::uint64_t local_comparisons = 0;
  std::uint64_t local_table_probes = 0;
  double wall_local_row_ms = 0;
  double wall_local_col_ms = 0;
  // Full-strategy parity (empty when the size exceeds --strategy-cap).
  struct PerStrategy {
    StrategyKind kind{};
    double sim_total_s = 0;     ///< summed over trials (deterministic)
    double sim_response_s = 0;  ///< summed over trials (deterministic)
    double wall_row_ms = 0;
    double wall_col_ms = 0;
  };
  std::vector<PerStrategy> strategies;
  bool parity_ok = true;
};

SizeResult run_size(std::int64_t size, const HarnessOptions& options,
                    bool run_strategies) {
  const int samples = options.samples;
  std::vector<SizeResult> trials(static_cast<std::size_t>(samples));
  const bool faulting = options.faults_set && options.faults.plan.enabled();
  for_each_trial(samples, options.seed, options.jobs, [&](std::size_t s,
                                                          Rng& rng) {
    SizeResult& out = trials[s];
    out.size = size;
    const std::uint64_t trial_seed =
        derive_stream(rng(), static_cast<std::uint64_t>(size));
    const SynthFederation synth =
        materialize_sample(make_sample(static_cast<int>(size), trial_seed),
                           /*extra_attrs=*/0);
    const Federation& fed = *synth.federation;

    for (std::size_t i = 1; i <= 2; ++i) {
      const DbId db{static_cast<std::uint16_t>(i)};
      const auto t0 = std::chrono::steady_clock::now();
      const LocalExecution row_exec =
          run_local_query(fed, synth.query, db, nullptr, /*use_columnar=*/false);
      const auto t1 = std::chrono::steady_clock::now();
      const LocalExecution col_exec =
          run_local_query(fed, synth.query, db, nullptr, /*use_columnar=*/true);
      const auto t2 = std::chrono::steady_clock::now();
      out.wall_local_row_ms += wall_ms(t0, t1);
      out.wall_local_col_ms += wall_ms(t1, t2);
      if (!same_exec(row_exec, col_exec)) out.parity_ok = false;
      out.local_rows += row_exec.rows.size();
      out.local_comparisons += row_exec.meter.comparisons;
      out.local_table_probes += row_exec.meter.table_probes;
    }

    if (!run_strategies) return;
    fault::FaultPlan plan;
    if (faulting) {
      plan = options.faults.plan;
      plan.seed = derive_stream(
          derive_stream(options.seed, options.faults.plan.seed), s);
    }
    for (const StrategyKind kind : kPaperStrategies) {
      StrategyOptions exec_options;
      exec_options.record_trace = false;
      if (options.batch_set) exec_options.batch = options.batch;
      if (faulting) {
        exec_options.faults = &plan;
        exec_options.retry = options.faults.retry;
        exec_options.degrade = options.faults.degrade;
      }
      StrategyOptions row_options = exec_options;
      row_options.columnar = false;
      const auto t0 = std::chrono::steady_clock::now();
      const StrategyReport row_report =
          execute_strategy(kind, fed, synth.query, row_options);
      const auto t1 = std::chrono::steady_clock::now();
      const StrategyReport col_report =
          execute_strategy(kind, fed, synth.query, exec_options);
      const auto t2 = std::chrono::steady_clock::now();
      SizeResult::PerStrategy per;
      per.kind = kind;
      per.sim_total_s = to_seconds(col_report.total_ns);
      per.sim_response_s = to_seconds(col_report.response_ns);
      per.wall_row_ms = wall_ms(t0, t1);
      per.wall_col_ms = wall_ms(t1, t2);
      if (!same_report(row_report, col_report)) out.parity_ok = false;
      out.strategies.push_back(per);
    }
  });

  // Reduce in trial order: deterministic figures are sums over trials, so
  // the report is invariant under --jobs.
  SizeResult total;
  total.size = size;
  if (run_strategies)
    for (const StrategyKind kind : kPaperStrategies)
      total.strategies.push_back({kind, 0, 0, 0, 0});
  for (const SizeResult& t : trials) {
    total.parity_ok = total.parity_ok && t.parity_ok;
    total.local_rows += t.local_rows;
    total.local_comparisons += t.local_comparisons;
    total.local_table_probes += t.local_table_probes;
    total.wall_local_row_ms += t.wall_local_row_ms;
    total.wall_local_col_ms += t.wall_local_col_ms;
    for (std::size_t k = 0; k < t.strategies.size(); ++k) {
      total.strategies[k].sim_total_s += t.strategies[k].sim_total_s;
      total.strategies[k].sim_response_s += t.strategies[k].sim_response_s;
      total.strategies[k].wall_row_ms += t.strategies[k].wall_row_ms;
      total.strategies[k].wall_col_ms += t.strategies[k].wall_col_ms;
    }
  }
  return total;
}

void write_json(const char* path, const HarnessOptions& options,
                const std::vector<SizeResult>& results) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_scale: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(file,
               "[\n  {\"format\": \"isomer-bench-scale-v1\", \"jobs\": %u, "
               "\"samples\": %d, \"seed\": %llu, \"batch\": \"%s\", "
               "\"faulted\": %s},\n",
               effective_jobs(options.jobs), options.samples,
               static_cast<unsigned long long>(options.seed),
               batch_spec_string(options.batch).c_str(),
               options.faults_set && options.faults.plan.enabled() ? "true"
                                                                   : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    std::fprintf(file,
                 "  {\"size\": %lld, \"parity_ok\": %s, \"local_rows\": %llu, "
                 "\"local_comparisons\": %llu, \"local_table_probes\": %llu, "
                 "\"wall_local_row_ms\": %.3f, \"wall_local_col_ms\": %.3f",
                 static_cast<long long>(r.size), r.parity_ok ? "true" : "false",
                 static_cast<unsigned long long>(r.local_rows),
                 static_cast<unsigned long long>(r.local_comparisons),
                 static_cast<unsigned long long>(r.local_table_probes),
                 r.wall_local_row_ms, r.wall_local_col_ms);
    for (const SizeResult::PerStrategy& s : r.strategies)
      std::fprintf(file,
                   ", \"%s\": {\"sim_total_s\": %.9f, \"sim_response_s\": "
                   "%.9f, \"wall_row_ms\": %.3f, \"wall_col_ms\": %.3f}",
                   std::string(to_string(s.kind)).c_str(), s.sim_total_s,
                   s.sim_response_s, s.wall_row_ms, s.wall_col_ms);
    std::fprintf(file, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(file, "]\n");
  std::fclose(file);
}

}  // namespace

int main(int argc, char** argv) {
  // Split off the bench_scale-specific flags, hand the rest to the common
  // harness parser.
  std::vector<std::int64_t> sizes{10'000, 100'000, 1'000'000};
  std::int64_t strategy_cap = 200'000;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--sizes=", 8) == 0) {
      sizes.clear();
      std::string list = arg + 8;
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string item =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        const std::int64_t n = std::atoll(item.c_str());
        if (n <= 0) {
          std::fprintf(stderr, "bench_scale: --sizes wants positive counts\n");
          return 2;
        }
        sizes.push_back(n);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (sizes.empty()) {
        std::fprintf(stderr, "bench_scale: --sizes wants at least one count\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--strategy-cap=", 15) == 0) {
      strategy_cap = std::atoll(arg + 15);
      if (strategy_cap < 0) {
        std::fprintf(stderr,
                     "bench_scale: --strategy-cap wants a size (0 = none)\n");
        return 2;
      }
    } else {
      rest.push_back(argv[i]);
    }
  }
  HarnessOptions options =
      parse_options(static_cast<int>(rest.size()), rest.data());
  if (!options.samples_set) options.samples = 1;

  std::printf("# bench_scale: row vs columnar, %d sample(s)/size, seed %llu, "
              "jobs %u, batch %s%s\n",
              options.samples, static_cast<unsigned long long>(options.seed),
              effective_jobs(options.jobs),
              batch_spec_string(options.batch).c_str(),
              options.faults_set ? ", faulted" : "");
  std::printf("%12s %10s %14s %14s %8s  %s\n", "objects/db", "rows",
              "local row ms", "local col ms", "speedup", "strategies");

  std::vector<SizeResult> results;
  bool all_ok = true;
  for (const std::int64_t size : sizes) {
    const bool run_strategies = strategy_cap == 0 || size <= strategy_cap;
    SizeResult r = run_size(size, options, run_strategies);
    all_ok = all_ok && r.parity_ok;
    std::string strategy_note;
    for (const SizeResult::PerStrategy& s : r.strategies) {
      strategy_note += std::string(to_string(s.kind)) + " " +
                       std::to_string(s.wall_row_ms / 1e3).substr(0, 5) +
                       "s/" + std::to_string(s.wall_col_ms / 1e3).substr(0, 5) +
                       "s ";
    }
    if (r.strategies.empty()) strategy_note = "(skipped: over --strategy-cap)";
    std::printf("%12lld %10llu %14.2f %14.2f %7.2fx  %s%s\n",
                static_cast<long long>(r.size),
                static_cast<unsigned long long>(r.local_rows),
                r.wall_local_row_ms, r.wall_local_col_ms,
                r.wall_local_col_ms > 0
                    ? r.wall_local_row_ms / r.wall_local_col_ms
                    : 0.0,
                strategy_note.c_str(), r.parity_ok ? "" : "  PARITY BROKEN");
    results.push_back(std::move(r));
  }
  if (!options.json_path.empty())
    write_json(options.json_path.c_str(), options, results);
  if (!all_ok) {
    std::fprintf(stderr,
                 "bench_scale: row and columnar executions diverged\n");
    return 1;
  }
  std::printf("# parity: every row/columnar pair identical (rows, meters, "
              "reports)\n");
  return 0;
}
