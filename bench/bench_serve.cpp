// Serving-layer experiment — throughput and latency percentiles vs load.
//
// The figure harnesses measure one query at a time; bench_stream measures a
// fixed schedule. This harness measures the full serving stack
// (serve/server.hpp): queries *arrive*, pass admission, and a scheduling
// policy picks what runs next. Two panels:
//
//  1. Open loop: Poisson arrivals swept from light load to past the
//     cluster's calibrated capacity, per scheduling policy — throughput and
//     p50/p95/p99 latency per offered-load fraction. As the offered rate
//     crosses capacity, queueing delay dominates and the tail percentiles
//     blow up first.
//  2. Closed loop: N think-less clients over a bounded concurrency,
//     FIFO vs shortest-predicted-cost — the classic SJF result, mean
//     latency drops when short queries overtake long ones in the queue.
//
// Percentiles printed here are exact nearest-rank values over the
// completed submissions of all --samples trials (not the power-of-two
// histogram estimates; those go to --trace via the metrics summary). Every
// trial derives its own RNG stream and results reduce in trial order, so
// all output is byte-identical at any --jobs value. Composes with
// --faults (per-trial derived fault streams), --batch and --serve (which
// overrides the pool size-independent spec knobs: n, queue, inflight,
// think, clients, seed).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "isomer/serve/planner.hpp"
#include "isomer/serve/server.hpp"
#include "isomer/workload/arrivals.hpp"

namespace {

using namespace isomer;

/// Latencies of one (load, policy) cell, pooled across trials.
struct CellStats {
  std::vector<SimTime> latencies;  ///< completed submissions, trial order
  double throughput_sum = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  int trials = 0;

  void fold(const serve::ServeReport& report) {
    for (const serve::ServeOutcome& outcome : report.outcomes)
      if (!outcome.rejected) latencies.push_back(outcome.latency());
    throughput_sum += report.throughput_qps();
    completed += report.completed;
    rejected += report.rejected;
    ++trials;
  }

  [[nodiscard]] double mean_ms() const {
    if (latencies.empty()) return 0;
    double total = 0;
    for (const SimTime latency : latencies) total += to_milliseconds(latency);
    return total / static_cast<double>(latencies.size());
  }

  /// Exact nearest-rank percentile over the pooled latencies, milliseconds.
  [[nodiscard]] double percentile_ms(double q) {
    if (latencies.empty()) return 0;
    std::sort(latencies.begin(), latencies.end());
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(latencies.size())));
    if (rank == 0) rank = 1;
    return to_milliseconds(latencies[rank - 1]);
  }

  [[nodiscard]] double throughput() const {
    return trials == 0 ? 0 : throughput_sum / trials;
  }
};

/// One serve() trial under the harness's fault/batch composition.
serve::ServeReport run_trial(const Federation& federation,
                             const std::vector<serve::ServeRequest>& pool,
                             serve::ServeSpec spec, std::size_t trial,
                             const bench::HarnessOptions& options,
                             std::vector<obs::TraceSession>* sessions) {
  serve::ServeOptions serve_options;
  serve_options.exec.record_trace = false;
  serve_options.exec.batch = options.batch;
  serve_options.sessions = sessions;
  fault::FaultPlan plan;
  if (options.faults_set && options.faults.plan.enabled()) {
    // Same trial-seed mixing as run_point: each trial faces its own
    // reproducible fault environment (serve() further derives one stream
    // per submission from this).
    plan = options.faults.plan;
    plan.seed = derive_stream(
        derive_stream(options.seed, options.faults.plan.seed), trial);
    serve_options.exec.faults = &plan;
    serve_options.exec.retry = options.faults.retry;
    serve_options.exec.degrade = options.faults.degrade;
  }
  spec.seed = derive_stream(derive_stream(options.seed, spec.seed), trial);
  return serve::serve(federation, pool, spec, serve_options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isomer;
  bench::HarnessOptions options = bench::parse_options(argc, argv);
  // Serving runs execute n_queries full strategy simulations per trial, so
  // the unset defaults are lighter than the figure sweeps'.
  if (!options.samples_set) options.samples = 3;
  if (!options.scale_set) options.scale = 0.1;

  // One federation for the whole experiment (the serving layer multiplexes
  // queries over one deployment; re-drawing it per trial would measure the
  // generator, not the scheduler).
  Rng fed_rng(options.seed);
  ParamConfig config;
  config.n_classes = {3, 4};
  config.n_preds = {1, 3};
  config.n_targets = {1, 2};  // >= 1 target keeps the pool variants distinct
  config.n_objects = {static_cast<int>(5000 * options.scale),
                      static_cast<int>(6000 * options.scale)};
  const SampleParams sample = draw_sample(config, fed_rng);
  const SynthFederation synth = materialize_sample(sample);

  // A pool of query variants so concurrent requests are heterogeneous —
  // heterogeneity is what gives shortest-predicted-cost room to act.
  Rng pool_rng(derive_stream(options.seed, 1));
  const std::vector<GlobalQuery> queries =
      workload::derive_query_pool(synth.query, 6, pool_rng);

  // Advisor-planned pool: per-query strategy choice + SPC priority.
  serve::PlannerOptions planner;
  planner.advisor.batch = options.batch;
  const std::vector<serve::ServeRequest> pool =
      serve::plan_pool(*synth.federation, queries, planner);

  // Calibrate the capacity from measured solo responses: with C = inflight
  // concurrent executions and mean solo response s̄, the cluster absorbs
  // roughly C/s̄ queries per second (contention makes the true knee lower,
  // which is exactly what the sweep shows).
  StrategyOptions solo_options;
  solo_options.record_trace = false;
  solo_options.batch = options.batch;
  double solo_sum = 0;
  for (const serve::ServeRequest& request : pool)
    solo_sum += to_seconds(execute_strategy(request.kind, *synth.federation,
                                            request.query, solo_options)
                               .response_ns);
  const double mean_solo_s = solo_sum / static_cast<double>(pool.size());

  serve::ServeSpec base = options.serve;  // defaults unless --serve given
  if (!options.serve_set) {
    base.n_queries = 32;
    base.queue_limit = 0;  // unbounded: percentiles track queueing, not drops
    base.site_inflight = 2;
  }
  const double capacity_qps =
      static_cast<double>(base.site_inflight == 0 ? 4 : base.site_inflight) /
      mean_solo_s;

  bench::TraceSink trace(options.trace_path, "bench_serve", options);
  bench::JsonSink json(options.json_path, options);

  const std::vector<double> load_fractions{0.3, 0.6, 0.9, 1.2};
  const serve::SchedPolicy policies[] = {serve::SchedPolicy::Fifo,
                                         serve::SchedPolicy::Spc};

  std::printf("# Serving layer: open-loop Poisson sweep — %d trials/point, "
              "pool of %zu queries, n=%zu submissions/trial,\n"
              "# calibrated capacity %.1f q/s (inflight %zu, mean solo "
              "response %.1f ms). Latencies in ms, exact percentiles.\n",
              options.samples, pool.size(), base.n_queries, capacity_qps,
              base.site_inflight, mean_solo_s * 1e3);
  std::printf("%-10s %-8s %10s %10s %10s %10s %12s %9s\n", "load", "policy",
              "mean", "p50", "p95", "p99", "thrpt[q/s]", "rejected");

  for (const double fraction : load_fractions) {
    for (const serve::SchedPolicy policy : policies) {
      serve::ServeSpec spec = base;
      spec.mode = serve::ArrivalMode::Open;
      spec.rate_qps = fraction * capacity_qps;
      spec.policy = policy;

      const auto samples = static_cast<std::size_t>(options.samples);
      std::vector<serve::ServeReport> reports(samples);
      std::vector<std::vector<obs::TraceSession>> sessions(
          trace.enabled() ? samples : 0);
      bench::for_each_trial(options.samples, options.seed, options.jobs,
                            [&](std::size_t trial, Rng&) {
                              reports[trial] = run_trial(
                                  *synth.federation, pool, spec, trial,
                                  options,
                                  trace.enabled() ? &sessions[trial] : nullptr);
                            });

      // Reduce in trial order — output independent of --jobs.
      CellStats cell;
      obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
      trace.set_point("serve_open", "load_fraction", fraction);
      for (std::size_t trial = 0; trial < reports.size(); ++trial) {
        cell.fold(reports[trial]);
        serve::record_serve_metrics(reports[trial], metrics);
        if (trace.enabled())
          for (const obs::TraceSession& session : sessions[trial])
            trace.write_trial(trial, session);
      }

      const double mean = cell.mean_ms();
      const double p50 = cell.percentile_ms(0.50);
      const double p95 = cell.percentile_ms(0.95);
      const double p99 = cell.percentile_ms(0.99);
      std::printf("%-10.2f %-8s %10.2f %10.2f %10.2f %10.2f %12.2f %9llu\n",
                  fraction, std::string(to_string(policy)).c_str(), mean, p50,
                  p95, p99, cell.throughput(),
                  static_cast<unsigned long long>(cell.rejected));

      char body[512];
      std::snprintf(
          body, sizeof body,
          "\"figure\": \"serve_open\", \"x_name\": \"load_fraction\", "
          "\"x\": %.17g, \"policy\": \"%s\", \"rate_qps\": %.17g, "
          "\"mean_ms\": %.17g, \"p50_ms\": %.17g, \"p95_ms\": %.17g, "
          "\"p99_ms\": %.17g, \"throughput_qps\": %.17g, "
          "\"completed\": %llu, \"rejected\": %llu",
          fraction, std::string(to_string(policy)).c_str(), spec.rate_qps,
          mean, p50, p95, p99, cell.throughput(),
          static_cast<unsigned long long>(cell.completed),
          static_cast<unsigned long long>(cell.rejected));
      json.raw_row(body);
    }
  }

  // Closed loop: more clients than execution slots, zero think time — the
  // queue is never empty, so scheduling policy is the only difference.
  std::printf("\n# Closed loop: %s clients, zero think, FIFO vs SPC\n",
              options.serve_set ? "spec" : "8");
  std::printf("%-8s %10s %10s %10s %12s\n", "policy", "mean", "p95", "p99",
              "thrpt[q/s]");
  for (const serve::SchedPolicy policy : policies) {
    serve::ServeSpec spec = base;
    spec.mode = serve::ArrivalMode::Closed;
    if (!options.serve_set) {
      spec.clients = 8;
      spec.think_ns = 0;
    }
    spec.policy = policy;

    const auto samples = static_cast<std::size_t>(options.samples);
    std::vector<serve::ServeReport> reports(samples);
    bench::for_each_trial(options.samples, options.seed, options.jobs,
                          [&](std::size_t trial, Rng&) {
                            reports[trial] =
                                run_trial(*synth.federation, pool, spec,
                                          trial, options, nullptr);
                          });
    CellStats cell;
    for (const serve::ServeReport& report : reports) cell.fold(report);
    const double mean = cell.mean_ms();
    const double p95 = cell.percentile_ms(0.95);
    const double p99 = cell.percentile_ms(0.99);
    std::printf("%-8s %10.2f %10.2f %10.2f %12.2f\n",
                std::string(to_string(policy)).c_str(), mean, p95, p99,
                cell.throughput());

    char body[384];
    std::snprintf(body, sizeof body,
                  "\"figure\": \"serve_closed\", \"x_name\": \"policy\", "
                  "\"x\": %d, \"policy\": \"%s\", \"mean_ms\": %.17g, "
                  "\"p95_ms\": %.17g, \"p99_ms\": %.17g, "
                  "\"throughput_qps\": %.17g, \"completed\": %llu, "
                  "\"rejected\": %llu",
                  policy == serve::SchedPolicy::Spc ? 1 : 0,
                  std::string(to_string(policy)).c_str(), mean, p95, p99,
                  cell.throughput(),
                  static_cast<unsigned long long>(cell.completed),
                  static_cast<unsigned long long>(cell.rejected));
    json.raw_row(body);
  }

  std::printf(
      "\nOpen loop: past the capacity knee the tail percentiles grow first —\n"
      "every arrival queues behind unfinished work. Closed loop: SPC beats\n"
      "FIFO on mean latency by letting cheap queries overtake expensive ones\n"
      "(SJF), at identical throughput; the p99 gap narrows because the most\n"
      "expensive query pays for everyone's queue-jumping.\n");
  return 0;
}
