// Serving-layer experiment — throughput and latency percentiles vs load.
//
// The figure harnesses measure one query at a time; bench_stream measures a
// fixed schedule. This harness measures the full serving stack
// (serve/server.hpp): queries *arrive*, pass admission, and a scheduling
// policy picks what runs next. Two panels:
//
//  1. Open loop: Poisson arrivals swept from light load to past the
//     cluster's calibrated capacity, per scheduling policy — throughput and
//     p50/p95/p99 latency per offered-load fraction. As the offered rate
//     crosses capacity, queueing delay dominates and the tail percentiles
//     blow up first.
//  2. Closed loop: N think-less clients over a bounded concurrency,
//     FIFO vs shortest-predicted-cost — the classic SJF result, mean
//     latency drops when short queries overtake long ones in the queue.
//
// Later panels add per-site planning on a skewed federation (3), the
// cross-query certificate cache (4), a multi-tenant mix — heavy vs light
// tenants under FIFO vs WFQ vs EDF, with per-tenant fairness and
// deadline-miss figures (5) — and in-flight cap autoscaling (6).
//
// Percentiles printed here are exact nearest-rank values over the
// completed submissions of all --samples trials (not the power-of-two
// histogram estimates; those go to --trace via the metrics summary). Every
// trial derives its own RNG stream and results reduce in trial order, so
// all output is byte-identical at any --jobs value. Composes with
// --faults (per-trial derived fault streams), --batch, --serve (which
// overrides the pool size-independent spec knobs: n, queue, inflight,
// think, clients, seed) and --certcache (panel 4: the cross-query
// certificate cache, docs/CONDITIONS.md).
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "isomer/core/cert_cache.hpp"
#include "isomer/serve/planner.hpp"
#include "isomer/serve/server.hpp"
#include "isomer/workload/arrivals.hpp"

namespace {

using namespace isomer;

/// Latencies of one (load, policy) cell, pooled across trials.
struct CellStats {
  std::vector<SimTime> latencies;  ///< completed submissions, trial order
  double throughput_sum = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  int trials = 0;

  void fold(const serve::ServeReport& report) {
    for (const serve::ServeOutcome& outcome : report.outcomes)
      if (!outcome.rejected) latencies.push_back(outcome.latency());
    throughput_sum += report.throughput_qps();
    completed += report.completed;
    rejected += report.rejected;
    ++trials;
  }

  [[nodiscard]] double mean_ms() const {
    if (latencies.empty()) return 0;
    double total = 0;
    for (const SimTime latency : latencies) total += to_milliseconds(latency);
    return total / static_cast<double>(latencies.size());
  }

  /// Exact nearest-rank percentile over the pooled latencies, milliseconds.
  [[nodiscard]] double percentile_ms(double q) {
    if (latencies.empty()) return 0;
    std::sort(latencies.begin(), latencies.end());
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(latencies.size())));
    if (rank == 0) rank = 1;
    return to_milliseconds(latencies[rank - 1]);
  }

  [[nodiscard]] double throughput() const {
    return trials == 0 ? 0 : throughput_sum / trials;
  }
};

/// One serve() trial under the harness's fault/batch/plan composition.
/// Non-static planning gets a per-trial stats book: completed hybrid
/// executions feed observations back, and requests carrying replan knobs
/// re-plan at launch against it. The book lives and dies with the trial,
/// so trials stay independent and the run stays --jobs-invariant.
serve::ServeReport run_trial(const Federation& federation,
                             const std::vector<serve::ServeRequest>& pool,
                             serve::ServeSpec spec, std::size_t trial,
                             const bench::HarnessOptions& options,
                             serve::PlanMode planning,
                             std::vector<obs::TraceSession>* sessions,
                             CertCache* cert_cache = nullptr,
                             NetworkTopology topology =
                                 NetworkTopology::SharedBus) {
  serve::ServeOptions serve_options;
  serve_options.exec.record_trace = false;
  serve_options.exec.batch = options.batch;
  serve_options.exec.cert_cache = cert_cache;
  serve_options.exec.topology = topology;
  serve_options.sessions = sessions;
  SiteStatsBook book;
  if (planning != serve::PlanMode::Static) serve_options.stats_book = &book;
  fault::FaultPlan plan;
  if (options.faults_set && options.faults.plan.enabled()) {
    // Same trial-seed mixing as run_point: each trial faces its own
    // reproducible fault environment (serve() further derives one stream
    // per submission from this).
    plan = options.faults.plan;
    plan.seed = derive_stream(
        derive_stream(options.seed, options.faults.plan.seed), trial);
    serve_options.exec.faults = &plan;
    serve_options.exec.retry = options.faults.retry;
    serve_options.exec.degrade = options.faults.degrade;
  }
  spec.seed = derive_stream(derive_stream(options.seed, spec.seed), trial);
  return serve::serve(federation, pool, spec, serve_options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isomer;
  bench::HarnessOptions options = bench::parse_options(argc, argv);
  // Serving runs execute n_queries full strategy simulations per trial, so
  // the unset defaults are lighter than the figure sweeps'.
  if (!options.samples_set) options.samples = 3;
  if (!options.scale_set) options.scale = 0.1;

  // One federation for the whole experiment (the serving layer multiplexes
  // queries over one deployment; re-drawing it per trial would measure the
  // generator, not the scheduler).
  Rng fed_rng(options.seed);
  ParamConfig config;
  config.n_classes = {3, 4};
  config.n_preds = {1, 3};
  config.n_targets = {1, 2};  // >= 1 target keeps the pool variants distinct
  config.n_objects = {static_cast<int>(5000 * options.scale),
                      static_cast<int>(6000 * options.scale)};
  const SampleParams sample = draw_sample(config, fed_rng);
  const SynthFederation synth = materialize_sample(sample);

  // A pool of query variants so concurrent requests are heterogeneous —
  // heterogeneity is what gives shortest-predicted-cost room to act.
  Rng pool_rng(derive_stream(options.seed, 1));
  const std::vector<GlobalQuery> queries =
      workload::derive_query_pool(synth.query, 6, pool_rng);

  // Planned pool: per-query strategy choice + SPC priority. --plan picks
  // the planning mode (docs/PLANNING.md): "static" asks the advisor for one
  // whole-federation strategy per query; "adaptive"/"hybrid" plan per home
  // site and re-plan at launch from each trial's stats book.
  const serve::PlanMode plan_mode = serve::parse_plan_mode(options.plan);
  serve::PlannerOptions planner;
  planner.mode = plan_mode;
  planner.advisor.batch = options.batch;
  const std::vector<serve::ServeRequest> pool =
      serve::plan_pool(*synth.federation, queries, planner);

  // Calibrate the capacity from measured solo responses: with C = inflight
  // concurrent executions and mean solo response s̄, the cluster absorbs
  // roughly C/s̄ queries per second (contention makes the true knee lower,
  // which is exactly what the sweep shows).
  StrategyOptions solo_options;
  solo_options.record_trace = false;
  solo_options.batch = options.batch;
  double solo_sum = 0;
  for (const serve::ServeRequest& request : pool)
    solo_sum += to_seconds(execute_strategy(request.kind, *synth.federation,
                                            request.query, solo_options)
                               .response_ns);
  const double mean_solo_s = solo_sum / static_cast<double>(pool.size());

  serve::ServeSpec base = options.serve;  // defaults unless --serve given
  if (!options.serve_set) {
    base.n_queries = 32;
    base.queue_limit = 0;  // unbounded: percentiles track queueing, not drops
    base.site_inflight = 2;
  }
  // Tenant clauses configure the tenant-mix panel below; the single-tenant
  // panels always run the untagged pool.
  base.tenants.clear();
  const double capacity_qps =
      static_cast<double>(base.site_inflight == 0 ? 4 : base.site_inflight) /
      mean_solo_s;

  bench::TraceSink trace(options.trace_path, "bench_serve", options);
  bench::JsonSink json(options.json_path, options);

  const std::vector<double> load_fractions{0.3, 0.6, 0.9, 1.2};
  const serve::SchedPolicy policies[] = {serve::SchedPolicy::Fifo,
                                         serve::SchedPolicy::Spc};

  std::printf("# Serving layer: open-loop Poisson sweep — %d trials/point, "
              "pool of %zu queries (plan=%s), n=%zu submissions/trial,\n"
              "# calibrated capacity %.1f q/s (inflight %zu, mean solo "
              "response %.1f ms). Latencies in ms, exact percentiles.\n",
              options.samples, pool.size(),
              std::string(to_string(plan_mode)).c_str(), base.n_queries,
              capacity_qps, base.site_inflight, mean_solo_s * 1e3);
  std::printf("%-10s %-8s %10s %10s %10s %10s %12s %9s\n", "load", "policy",
              "mean", "p50", "p95", "p99", "thrpt[q/s]", "rejected");

  for (const double fraction : load_fractions) {
    for (const serve::SchedPolicy policy : policies) {
      serve::ServeSpec spec = base;
      spec.mode = serve::ArrivalMode::Open;
      spec.rate_qps = fraction * capacity_qps;
      spec.policy = policy;

      const auto samples = static_cast<std::size_t>(options.samples);
      std::vector<serve::ServeReport> reports(samples);
      std::vector<std::vector<obs::TraceSession>> sessions(
          trace.enabled() ? samples : 0);
      bench::for_each_trial(options.samples, options.seed, options.jobs,
                            [&](std::size_t trial, Rng&) {
                              reports[trial] = run_trial(
                                  *synth.federation, pool, spec, trial,
                                  options, plan_mode,
                                  trace.enabled() ? &sessions[trial] : nullptr);
                            });

      // Reduce in trial order — output independent of --jobs.
      CellStats cell;
      obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
      trace.set_point("serve_open", "load_fraction", fraction);
      for (std::size_t trial = 0; trial < reports.size(); ++trial) {
        cell.fold(reports[trial]);
        serve::record_serve_metrics(reports[trial], metrics);
        if (trace.enabled())
          for (const obs::TraceSession& session : sessions[trial])
            trace.write_trial(trial, session);
      }

      const double mean = cell.mean_ms();
      const double p50 = cell.percentile_ms(0.50);
      const double p95 = cell.percentile_ms(0.95);
      const double p99 = cell.percentile_ms(0.99);
      std::printf("%-10.2f %-8s %10.2f %10.2f %10.2f %10.2f %12.2f %9llu\n",
                  fraction, std::string(to_string(policy)).c_str(), mean, p50,
                  p95, p99, cell.throughput(),
                  static_cast<unsigned long long>(cell.rejected));

      char body[512];
      std::snprintf(
          body, sizeof body,
          "\"figure\": \"serve_open\", \"x_name\": \"load_fraction\", "
          "\"x\": %.17g, \"policy\": \"%s\", \"rate_qps\": %.17g, "
          "\"mean_ms\": %.17g, \"p50_ms\": %.17g, \"p95_ms\": %.17g, "
          "\"p99_ms\": %.17g, \"throughput_qps\": %.17g, "
          "\"completed\": %llu, \"rejected\": %llu",
          fraction, std::string(to_string(policy)).c_str(), spec.rate_qps,
          mean, p50, p95, p99, cell.throughput(),
          static_cast<unsigned long long>(cell.completed),
          static_cast<unsigned long long>(cell.rejected));
      json.raw_row(body);
    }
  }

  // Closed loop: more clients than execution slots, zero think time — the
  // queue is never empty, so scheduling policy is the only difference.
  std::printf("\n# Closed loop: %s clients, zero think, FIFO vs SPC\n",
              options.serve_set ? "spec" : "8");
  std::printf("%-8s %10s %10s %10s %12s\n", "policy", "mean", "p95", "p99",
              "thrpt[q/s]");
  for (const serve::SchedPolicy policy : policies) {
    serve::ServeSpec spec = base;
    spec.mode = serve::ArrivalMode::Closed;
    if (!options.serve_set) {
      spec.clients = 8;
      spec.think_ns = 0;
    }
    spec.policy = policy;

    const auto samples = static_cast<std::size_t>(options.samples);
    std::vector<serve::ServeReport> reports(samples);
    bench::for_each_trial(options.samples, options.seed, options.jobs,
                          [&](std::size_t trial, Rng&) {
                            reports[trial] =
                                run_trial(*synth.federation, pool, spec,
                                          trial, options, plan_mode, nullptr);
                          });
    CellStats cell;
    for (const serve::ServeReport& report : reports) cell.fold(report);
    const double mean = cell.mean_ms();
    const double p95 = cell.percentile_ms(0.95);
    const double p99 = cell.percentile_ms(0.99);
    std::printf("%-8s %10.2f %10.2f %10.2f %12.2f\n",
                std::string(to_string(policy)).c_str(), mean, p95, p99,
                cell.throughput());

    char body[384];
    std::snprintf(body, sizeof body,
                  "\"figure\": \"serve_closed\", \"x_name\": \"policy\", "
                  "\"x\": %d, \"policy\": \"%s\", \"mean_ms\": %.17g, "
                  "\"p95_ms\": %.17g, \"p99_ms\": %.17g, "
                  "\"throughput_qps\": %.17g, \"completed\": %llu, "
                  "\"rejected\": %llu",
                  policy == serve::SchedPolicy::Spc ? 1 : 0,
                  std::string(to_string(policy)).c_str(), mean, p95, p99,
                  cell.throughput(),
                  static_cast<unsigned long long>(cell.completed),
                  static_cast<unsigned long long>(cell.rejected));
    json.raw_row(body);
  }

  // Panel 3 — per-site planning on a *skewed* federation. The pool panels
  // above draw statistically-alike sites, where one whole-federation
  // strategy is already near-optimal; this panel hand-builds the skew the
  // adaptive planner exists for (docs/PLANNING.md). DB1 is large and
  // evaluates every predicate locally (selective — a handful of rows beat
  // its wide extent), while DB2/DB3 cannot evaluate any predicate
  // (survive ~ 1 — their full row sets ship under BL, but their projected
  // extents are narrow because the predicate attributes are schema-level
  // missing). Pure CA overpays at DB1, pure BL/PL overpay at DB2/DB3; the
  // per-site plan ships rows from DB1 and extents from DB2/DB3.
  SampleParams skew;
  skew.n_db = 3;
  skew.n_targets = 2;
  skew.iso_ratio = 0.15;
  {
    SampleParams::PerClass root;
    root.n_preds = 2;
    root.pred_selectivity = 0.25;
    root.ref_ratio = 0.8;
    SampleParams::PerDb evaluating;  // DB1: all predicates present
    evaluating.n_objects =
        std::max(1, static_cast<int>(6000 * options.scale));
    evaluating.present_preds = {0, 1};
    SampleParams::PerDb blind;  // DB2/DB3: every predicate missing
    blind.n_objects = std::max(1, static_cast<int>(1000 * options.scale));
    root.dbs = {evaluating, blind, blind};
    skew.classes.push_back(std::move(root));
  }
  skew.materialize_seed = derive_stream(options.seed, 7);
  const SynthFederation skewed = materialize_sample(skew);
  Rng skew_rng(derive_stream(options.seed, 8));
  const std::vector<GlobalQuery> skew_queries =
      workload::derive_query_pool(skewed.query, 4, skew_rng);

  // One serving run per planning mode over the identical workload: the
  // paper's whole-federation strategies verbatim (CA/BL/PL), the advisor's
  // per-query pick (static), per-site planning with launch-time replanning
  // (adaptive), and adaptive with the armed mid-flight switch (hybrid).
  struct PlanRow {
    std::string mode;
    serve::PlanMode planning;
    std::vector<serve::ServeRequest> pool;
  };
  const auto pure_pool = [&](StrategyKind kind) {
    std::vector<serve::ServeRequest> pure;
    for (const GlobalQuery& query : skew_queries) {
      serve::ServeRequest request;
      request.query = query;
      request.kind = kind;
      pure.push_back(std::move(request));
    }
    return pure;
  };
  serve::PlannerOptions skew_planner;
  skew_planner.advisor.batch = options.batch;
  std::vector<PlanRow> plan_rows;
  for (const StrategyKind kind :
       {StrategyKind::CA, StrategyKind::BL, StrategyKind::PL})
    plan_rows.push_back(PlanRow{std::string(to_string(kind)),
                                serve::PlanMode::Static, pure_pool(kind)});
  for (const serve::PlanMode mode :
       {serve::PlanMode::Static, serve::PlanMode::Adaptive,
        serve::PlanMode::Hybrid}) {
    skew_planner.mode = mode;
    plan_rows.push_back(
        PlanRow{std::string(to_string(mode)), mode,
                serve::plan_pool(*skewed.federation, skew_queries,
                                 skew_planner)});
  }

  serve::ServeSpec plan_spec;  // FIFO: isolate wire traffic from scheduling
  plan_spec.mode = serve::ArrivalMode::Closed;
  plan_spec.clients = 4;
  plan_spec.think_ns = 0;
  plan_spec.n_queries = 24;
  plan_spec.queue_limit = 0;
  plan_spec.site_inflight = 2;
  plan_spec.policy = serve::SchedPolicy::Fifo;

  std::printf("\n# Skewed federation: DB1 evaluates both predicates locally "
              "(%d objects), DB2/DB3 neither (%d each) — per-site plans\n"
              "# vs the paper's whole-federation strategies. Closed loop, "
              "%zu submissions/trial, FIFO. Wire figures are per-trial "
              "cluster totals.\n",
              skew.classes[0].dbs[0].n_objects,
              skew.classes[0].dbs[1].n_objects, plan_spec.n_queries);
  std::printf("%-9s %12s %10s %10s %9s %9s\n", "mode", "wire[KB]", "msgs",
              "mean_ms", "hybrid", "switches");

  double best_static_wire = 0, adaptive_wire = 0;
  for (std::size_t m = 0; m < plan_rows.size(); ++m) {
    const PlanRow& row = plan_rows[m];
    const auto samples = static_cast<std::size_t>(options.samples);
    std::vector<serve::ServeReport> reports(samples);
    std::vector<std::vector<obs::TraceSession>> sessions(
        trace.enabled() ? samples : 0);
    bench::for_each_trial(
        options.samples, options.seed, options.jobs,
        [&](std::size_t trial, Rng&) {
          reports[trial] =
              run_trial(*skewed.federation, row.pool, plan_spec, trial,
                        options, row.planning,
                        trace.enabled() ? &sessions[trial] : nullptr);
        });

    CellStats cell;
    double wire_bytes = 0, messages = 0;
    std::uint64_t hybrid_runs = 0, switches = 0;
    trace.set_point("serve_plan", "mode", static_cast<double>(m));
    for (std::size_t trial = 0; trial < reports.size(); ++trial) {
      const serve::ServeReport& report = reports[trial];
      cell.fold(report);
      wire_bytes += static_cast<double>(report.bytes_transferred);
      messages += static_cast<double>(report.messages);
      for (const serve::ServeOutcome& outcome : report.outcomes) {
        hybrid_runs += outcome.hybrid ? 1 : 0;
        switches += outcome.plan_switches;
      }
      if (trace.enabled())
        for (const obs::TraceSession& session : sessions[trial])
          trace.write_trial(trial, session);
    }
    wire_bytes /= static_cast<double>(reports.size());
    messages /= static_cast<double>(reports.size());
    // "static" covers the pure strategies too: the advisor never prices
    // worse than its own candidates, but the pure rows anchor the paper's
    // baselines explicitly.
    if (row.planning == serve::PlanMode::Static)
      best_static_wire = best_static_wire == 0
                             ? wire_bytes
                             : std::min(best_static_wire, wire_bytes);
    if (row.mode == "adaptive") adaptive_wire = wire_bytes;

    const double mean = cell.mean_ms();
    std::printf("%-9s %12.1f %10.0f %10.2f %9llu %9llu\n", row.mode.c_str(),
                wire_bytes / 1e3, messages, mean,
                static_cast<unsigned long long>(hybrid_runs),
                static_cast<unsigned long long>(switches));

    char body[512];
    std::snprintf(
        body, sizeof body,
        "\"figure\": \"serve_plan\", \"x_name\": \"mode\", \"x\": %zu, "
        "\"mode\": \"%s\", \"wire_bytes\": %.17g, \"messages\": %.17g, "
        "\"mean_ms\": %.17g, \"throughput_qps\": %.17g, "
        "\"hybrid_runs\": %llu, \"plan_switches\": %llu",
        m, row.mode.c_str(), wire_bytes, messages, mean, cell.throughput(),
        static_cast<unsigned long long>(hybrid_runs),
        static_cast<unsigned long long>(switches));
    json.raw_row(body);
  }
  std::printf("adaptive wire %.1f KB vs best static %.1f KB (%s)\n",
              adaptive_wire / 1e3, best_static_wire / 1e3,
              adaptive_wire <= best_static_wire ? "adaptive <= best static"
                                                : "ADAPTIVE REGRESSION");

  // Panel 4 — cross-query certificate cache (docs/CONDITIONS.md). The SAME
  // pool is replayed as two identical waves per trial through ONE shared
  // CertCache: wave 1 runs cold and writes discharged certificates back,
  // wave 2 finds them warm, answers first-round check atoms locally, and
  // ships fewer assistant requests — so its wire total drops below wave
  // 1's. Open loop deliberately: the arrival schedule and pool picks are
  // pre-drawn from the spec seed, so both waves run the *identical*
  // submission sequence no matter how much faster the warm one finishes (a
  // closed loop would let completion times reshuffle the client picks and
  // the waves would no longer be comparable). With --certcache=off (the
  // default) no cache is attached and the waves are bitwise-identical by
  // construction; with --faults composed, degraded executions suppress
  // writeback, so the warm-wave saving shrinks but correctness is
  // untouched.
  serve::ServeSpec cert_spec = plan_spec;  // FIFO, 24 queries, inflight 2
  cert_spec.mode = serve::ArrivalMode::Open;
  cert_spec.rate_qps = 0.9 * capacity_qps;
  constexpr std::size_t kWaves = 2;
  const auto cert_samples = static_cast<std::size_t>(options.samples);
  std::vector<std::array<serve::ServeReport, kWaves>> cert_reports(
      cert_samples);
  std::vector<std::array<std::vector<obs::TraceSession>, kWaves>>
      cert_sessions(trace.enabled() ? cert_samples : 0);
  bench::for_each_trial(
      options.samples, options.seed, options.jobs,
      [&](std::size_t trial, Rng&) {
        // One cache per trial: waves share it (that is the experiment),
        // trials do not (that keeps them --jobs-invariant).
        CertCache cache(options.cert_cache_entries);
        CertCache* attached = options.cert_cache_enabled ? &cache : nullptr;
        for (std::size_t wave = 0; wave < kWaves; ++wave)
          cert_reports[trial][wave] = run_trial(
              *synth.federation, pool, cert_spec, trial, options, plan_mode,
              trace.enabled() ? &cert_sessions[trial][wave] : nullptr,
              attached);
      });

  std::printf("\n# Certificate cache (--certcache=%s): identical pool "
              "replayed twice per trial through one shared cache —\n"
              "# wave 1 cold, wave 2 warm. Wire figures are per-trial "
              "cluster totals averaged over %zu trials.\n",
              bench::certcache_spec_string(options).c_str(), cert_samples);
  std::printf("%-6s %12s %10s %10s %10s %10s\n", "wave", "wire[KB]", "msgs",
              "hits", "misses", "mean_ms");
  std::array<double, kWaves> wave_wire{};
  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    CellStats cell;
    double wire = 0, msgs = 0;
    std::uint64_t hits = 0, misses = 0;
    trace.set_point("serve_cert", "wave", static_cast<double>(wave + 1));
    for (std::size_t trial = 0; trial < cert_samples; ++trial) {
      const serve::ServeReport& report = cert_reports[trial][wave];
      cell.fold(report);
      wire += static_cast<double>(report.bytes_transferred);
      msgs += static_cast<double>(report.messages);
      hits += report.cert_hits;
      misses += report.cert_misses;
      if (trace.enabled())
        for (const obs::TraceSession& session : cert_sessions[trial][wave])
          trace.write_trial(trial, session);
    }
    wire /= static_cast<double>(cert_samples);
    msgs /= static_cast<double>(cert_samples);
    wave_wire[wave] = wire;
    const double mean = cell.mean_ms();
    std::printf("%-6zu %12.1f %10.0f %10llu %10llu %10.2f\n", wave + 1,
                wire / 1e3, msgs, static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses), mean);

    char body[384];
    std::snprintf(body, sizeof body,
                  "\"figure\": \"serve_cert\", \"x_name\": \"wave\", "
                  "\"x\": %zu, \"certcache\": \"%s\", \"wire_bytes\": %.17g, "
                  "\"messages\": %.17g, \"cert_hits\": %llu, "
                  "\"cert_misses\": %llu, \"mean_ms\": %.17g",
                  wave + 1, bench::certcache_spec_string(options).c_str(),
                  wire, msgs, static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(misses), mean);
    json.raw_row(body);
  }
  if (options.cert_cache_enabled)
    std::printf("warm wave wire %.1f KB vs cold %.1f KB (%s)\n",
                wave_wire[1] / 1e3, wave_wire[0] / 1e3,
                wave_wire[1] < wave_wire[0]
                    ? "warm < cold"
                    : (options.faults_set
                           ? "faults suppressed writeback this run"
                           : "CACHE REGRESSION"));
  else
    std::printf("cache off: waves identical by construction "
                "(%.1f KB both)\n",
                wave_wire[0] / 1e3);

  // Panel 5 — tenant mix (docs/SERVING.md). Two traffic classes run the
  // SAME query mix over the same cluster: "gold" (weight 3, tight SLO) vs
  // "free" (weight 1, loose SLO), a closed loop with enough clients that
  // the queue never drains — so the scheduling policy alone decides who is
  // served. FIFO splits service evenly and lets gold blow its SLO; WFQ
  // converges each tenant's share of served work to its weight share;
  // EDF runs the tightest deadlines first and meets SLOs FIFO misses.
  // A --serve spec carrying tenant clauses overrides the whole panel spec.
  serve::ServeSpec tenant_spec;
  if (options.serve_set && !options.serve.tenants.empty()) {
    tenant_spec = options.serve;
  } else {
    serve::TenantSpec gold;
    gold.id = "gold";
    gold.weight = 3.0;
    gold.quota = 16;
    gold.slo_ns = static_cast<SimTime>(6.0 * mean_solo_s * 1e9);
    serve::TenantSpec free_tier;
    free_tier.id = "free";
    free_tier.weight = 1.0;
    free_tier.quota = 16;
    free_tier.slo_ns = static_cast<SimTime>(60.0 * mean_solo_s * 1e9);
    tenant_spec.mode = serve::ArrivalMode::Closed;
    tenant_spec.clients = 8;
    tenant_spec.think_ns = 0;
    tenant_spec.n_queries = 4 * base.n_queries;
    tenant_spec.queue_limit = 0;
    tenant_spec.site_inflight = 2;
    tenant_spec.seed = 0;
    tenant_spec.tenants = {gold, free_tier};
  }
  const std::vector<serve::TenantSpec>& tenants = tenant_spec.tenants;
  const std::vector<serve::ServeRequest> tenant_pool =
      serve::tag_tenants(pool, tenants);

  std::printf("\n# Tenant mix: %zu tenants share one cluster (", tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t)
    std::printf("%s%s w=%.3g slo=%.0fms", t == 0 ? "" : ", ",
                tenants[t].id.c_str(), tenants[t].weight,
                to_milliseconds(tenants[t].slo_ns));
  std::printf("),\n# %s, %zu submissions/trial. fairness = served-cost share "
              "/ weight share; miss = completed past arrival+SLO.\n",
              tenant_spec.mode == serve::ArrivalMode::Closed
                  ? "closed loop, zero think"
                  : "open loop",
              tenant_spec.n_queries);
  std::printf("%-8s %-8s %9s %9s %9s %10s %10s %10s %9s\n", "policy",
              "tenant", "completed", "rejected", "fairness", "p50", "p95",
              "p99", "miss");

  const serve::SchedPolicy mix_policies[] = {serve::SchedPolicy::Fifo,
                                             serve::SchedPolicy::Wfq,
                                             serve::SchedPolicy::Edf};
  std::uint64_t fifo_misses = 0, edf_misses = 0;
  double worst_wfq_skew = 0;  // max |fairness - 1| across tenants under WFQ
  for (std::size_t p = 0; p < std::size(mix_policies); ++p) {
    const serve::SchedPolicy policy = mix_policies[p];
    serve::ServeSpec spec = tenant_spec;
    spec.policy = policy;

    const auto samples = static_cast<std::size_t>(options.samples);
    std::vector<serve::ServeReport> reports(samples);
    std::vector<std::vector<obs::TraceSession>> sessions(
        trace.enabled() ? samples : 0);
    bench::for_each_trial(options.samples, options.seed, options.jobs,
                          [&](std::size_t trial, Rng&) {
                            reports[trial] = run_trial(
                                *synth.federation, tenant_pool, spec, trial,
                                options, plan_mode,
                                trace.enabled() ? &sessions[trial] : nullptr);
                          });

    // Reduce in trial order: pooled per-tenant latencies and summed
    // per-tenant work, so fairness is the long-run share across all trials.
    struct TenantCell {
      std::vector<SimTime> latencies;
      std::uint64_t completed = 0, rejected = 0, misses = 0;
      double served_cost = 0, weight = 0;
    };
    std::vector<TenantCell> cells(tenants.size());
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
    trace.set_point("serve_tenants", "policy", static_cast<double>(p));
    for (std::size_t trial = 0; trial < reports.size(); ++trial) {
      const serve::ServeReport& report = reports[trial];
      for (const serve::ServeOutcome& outcome : report.outcomes)
        if (!outcome.rejected)
          cells[outcome.tenant].latencies.push_back(outcome.latency());
      for (std::size_t t = 0; t < tenants.size(); ++t) {
        cells[t].completed += report.tenants[t].completed;
        cells[t].rejected += report.tenants[t].rejected;
        cells[t].misses += report.tenants[t].deadline_misses;
        cells[t].served_cost += report.tenants[t].served_cost_s;
        cells[t].weight = report.tenants[t].weight;
      }
      serve::record_serve_metrics(report, metrics);
      if (trace.enabled())
        for (const obs::TraceSession& session : sessions[trial])
          trace.write_trial(trial, session);
    }

    double total_cost = 0, total_weight = 0;
    for (const TenantCell& cell : cells) {
      total_cost += cell.served_cost;
      total_weight += cell.weight;
    }
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      TenantCell& cell = cells[t];
      std::sort(cell.latencies.begin(), cell.latencies.end());
      const auto pct = [&](double q) {
        if (cell.latencies.empty()) return 0.0;
        auto rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(cell.latencies.size())));
        if (rank == 0) rank = 1;
        return to_milliseconds(cell.latencies[rank - 1]);
      };
      const double fairness =
          total_cost <= 0 || cell.weight <= 0
              ? 0.0
              : (cell.served_cost / total_cost) /
                    (cell.weight / total_weight);
      const double miss_rate =
          cell.completed == 0 ? 0.0
                              : static_cast<double>(cell.misses) /
                                    static_cast<double>(cell.completed);
      if (policy == serve::SchedPolicy::Wfq)
        worst_wfq_skew = std::max(worst_wfq_skew, std::abs(fairness - 1.0));
      if (policy == serve::SchedPolicy::Fifo) fifo_misses += cell.misses;
      if (policy == serve::SchedPolicy::Edf) edf_misses += cell.misses;

      const double p50 = pct(0.50), p95 = pct(0.95), p99 = pct(0.99);
      std::printf("%-8s %-8s %9llu %9llu %9.3f %10.2f %10.2f %10.2f %8.1f%%\n",
                  std::string(to_string(policy)).c_str(), tenants[t].id.c_str(),
                  static_cast<unsigned long long>(cell.completed),
                  static_cast<unsigned long long>(cell.rejected), fairness,
                  p50, p95, p99, miss_rate * 100.0);

      char body[512];
      std::snprintf(
          body, sizeof body,
          "\"figure\": \"serve_tenants\", \"x_name\": \"policy\", "
          "\"x\": %zu, \"policy\": \"%s\", \"tenant\": \"%s\", "
          "\"weight\": %.17g, \"completed\": %llu, \"rejected\": %llu, "
          "\"fairness\": %.17g, \"p50_ms\": %.17g, \"p95_ms\": %.17g, "
          "\"p99_ms\": %.17g, \"deadline_miss_rate\": %.17g",
          p, std::string(to_string(policy)).c_str(), tenants[t].id.c_str(),
          cell.weight, static_cast<unsigned long long>(cell.completed),
          static_cast<unsigned long long>(cell.rejected), fairness, p50, p95,
          p99, miss_rate);
      json.raw_row(body);
    }
  }
  std::printf("wfq worst fairness skew %.1f%% (%s); edf deadline misses "
              "%llu vs fifo %llu (%s)\n",
              worst_wfq_skew * 100.0,
              worst_wfq_skew <= 0.10 ? "within 10% of weights"
                                     : "WFQ FAIRNESS REGRESSION",
              static_cast<unsigned long long>(edf_misses),
              static_cast<unsigned long long>(fifo_misses),
              edf_misses < fifo_misses
                  ? "edf < fifo"
                  : (edf_misses == fifo_misses ? "tie" : "EDF REGRESSION"));

  // Panel 6 — in-flight autoscaling. Runs on the contention-free ablation
  // network (NetworkTopology::Contentionless), where concurrent executions
  // genuinely overlap — so a deliberately tight cap (inflight=1) is the
  // ONLY cross-query serialization. (On the default shared bus the wire is
  // the bottleneck and no cap setting changes throughput; the autoscaler's
  // site-utilization gate correctly refuses to scale there.) Open loop at
  // 1.2x the one-slot capacity: with autoscale=off every arrival queues
  // behind a single execution slot; with autoscale=on the server notices
  // queue-wait p95 growing over idle sites and raises the cap.
  StrategyOptions solo_free_options = solo_options;
  solo_free_options.topology = NetworkTopology::Contentionless;
  double solo_free_sum = 0;
  for (const serve::ServeRequest& request : pool)
    solo_free_sum += to_seconds(
        execute_strategy(request.kind, *synth.federation, request.query,
                         solo_free_options)
            .response_ns);
  const double solo_free_s = solo_free_sum / static_cast<double>(pool.size());
  // The cap ramps one step per observation window, so the run needs enough
  // submissions for the ramp to amortize: 4x the sweep's n per trial.
  const std::size_t scale_n = 4 * base.n_queries;
  std::printf("\n# Autoscale: contention-free network, open loop at 1.2x "
              "the inflight=1 capacity (%.1f q/s), %zu submissions/trial.\n",
              1.2 / solo_free_s, scale_n);
  std::printf("%-10s %10s %10s %12s %9s\n", "autoscale", "p95", "p99",
              "thrpt[q/s]", "cap");
  for (const bool scaled : {false, true}) {
    serve::ServeSpec spec = base;
    spec.mode = serve::ArrivalMode::Open;
    spec.rate_qps = 1.2 / solo_free_s;
    spec.policy = serve::SchedPolicy::Fifo;
    spec.site_inflight = 1;
    spec.n_queries = scale_n;
    spec.autoscale = scaled;
    spec.tenants.clear();

    const auto samples = static_cast<std::size_t>(options.samples);
    std::vector<serve::ServeReport> reports(samples);
    bench::for_each_trial(options.samples, options.seed, options.jobs,
                          [&](std::size_t trial, Rng&) {
                            reports[trial] = run_trial(
                                *synth.federation, pool, spec, trial, options,
                                plan_mode, nullptr, nullptr,
                                NetworkTopology::Contentionless);
                          });
    CellStats cell;
    std::size_t cap_high = 0, cap_low = spec.site_inflight;
    for (const serve::ServeReport& report : reports) {
      cell.fold(report);
      cap_high = std::max(cap_high, report.inflight_cap_high);
      cap_low = std::min(cap_low, report.inflight_cap_low);
    }
    const double p95 = cell.percentile_ms(0.95);
    const double p99 = cell.percentile_ms(0.99);
    std::printf("%-10s %10.2f %10.2f %12.2f %5zu..%zu\n",
                scaled ? "on" : "off", p95, p99, cell.throughput(), cap_low,
                cap_high);

    char body[384];
    std::snprintf(body, sizeof body,
                  "\"figure\": \"serve_autoscale\", \"x_name\": "
                  "\"autoscale\", \"x\": %d, \"p95_ms\": %.17g, "
                  "\"p99_ms\": %.17g, \"throughput_qps\": %.17g, "
                  "\"cap_low\": %zu, \"cap_high\": %zu",
                  scaled ? 1 : 0, p95, p99, cell.throughput(), cap_low,
                  cap_high);
    json.raw_row(body);
  }

  std::printf(
      "\nOpen loop: past the capacity knee the tail percentiles grow first —\n"
      "every arrival queues behind unfinished work. Closed loop: SPC beats\n"
      "FIFO on mean latency by letting cheap queries overtake expensive ones\n"
      "(SJF), at identical throughput; the p99 gap narrows because the most\n"
      "expensive query pays for everyone's queue-jumping. Skewed panel: one\n"
      "strategy per federation overpays somewhere; pricing each home site\n"
      "separately ships rows where predicates filter and extents where they\n"
      "cannot, so adaptive wire stays at or below the best static column.\n"
      "Tenant mix: FIFO serves whoever queued first, so the heavy tenant's\n"
      "tight SLO starves; WFQ's virtual clock spaces each tenant's backlog\n"
      "by cost/weight, pinning long-run shares to the weights; EDF spends\n"
      "exactly the slack the loose tenant's SLO offers. Autoscale trades a\n"
      "little contention for queue-wait when the cap, not the cluster, is\n"
      "the bottleneck — and its site-utilization gate keeps it from buying\n"
      "pure contention when the cluster (the shared bus) is.\n");
  return 0;
}
