// Extension experiment — signature-assisted localized approaches (paper §3
// intro and §5 future work; Table 1's S_s, Table 2's R_ss).
//
// A replicated signature index lets the home database discard candidate
// assistant objects that provably violate an equality predicate without
// shipping them, reducing data transfer at no change in the answers. This
// harness reruns the Fig. 10 sweep with BL/PL against BL-S/PL-S and reports
// both total time and bytes shipped.
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace isomer;
  using namespace isomer::bench;
  HarnessOptions options = parse_options(argc, argv);
  if (!options.samples_set) options.samples = 10;
  if (!options.scale_set) options.scale = 0.5;

  const std::vector<StrategyKind> kinds = {
      StrategyKind::BL, StrategyKind::BLS, StrategyKind::PL,
      StrategyKind::PLS};

  const std::size_t db_counts[] = {2, 4, 6, 8};

  JsonSink json(options.json_path, options);
  std::vector<std::vector<SeriesPoint>> rows;
  for (const std::size_t n_db : db_counts) {
    ParamConfig config;
    config.n_db = n_db;
    apply_scale(config, options.scale);
    rows.push_back(run_point(config, kinds, options.samples, options.seed,
                             options.jobs, NetworkTopology::SharedBus, 0.3,
                             nullptr, nullptr,
                             options.batch_set ? &options.batch : nullptr));
    json.rows("signatures", "N_db", static_cast<double>(n_db), kinds,
              rows.back());
  }

  print_header("Signatures: total execution time [s] vs N_db", "N_db", kinds,
               options);
  for (std::size_t i = 0; i < rows.size(); ++i)
    print_row(static_cast<double>(db_counts[i]), rows[i], /*response=*/false);

  std::printf("\n# Signatures: network bytes shipped [MB] vs N_db\n");
  std::printf("%-12s", "N_db");
  for (const StrategyKind kind : kinds)
    std::printf(" %10s", std::string(to_string(kind)).c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-12zu", db_counts[i]);
    for (const SeriesPoint& point : rows[i])
      std::printf(" %10.4f", point.bytes_mb);
    std::printf("\n");
  }
  return 0;
}
