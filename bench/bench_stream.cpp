// Extension experiment — concurrent query streams.
//
// The paper evaluates one query at a time; this harness submits a stream of
// identical global queries at decreasing interarrival times to ONE shared
// cluster, per strategy. As the offered load approaches the cluster's
// capacity, queueing between queries dominates: the strategy with the
// smaller per-query footprint sustains a higher arrival rate before latency
// blows up — strategy choice becomes a capacity decision, not just a
// single-query one.
#include <cstdio>

#include "isomer/core/stream.hpp"
#include "isomer/workload/synth.hpp"

int main(int argc, char** argv) {
  using namespace isomer;
  const int queries = argc > 1 ? std::atoi(argv[1]) : 8;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  Rng rng(2024);
  ParamConfig config;
  config.n_objects = {static_cast<int>(5000 * scale),
                      static_cast<int>(6000 * scale)};
  config.n_classes = {3, 4};
  config.n_preds = {1, 3};
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  StrategyOptions options;
  options.record_trace = false;

  // Solo response time calibrates the interarrival sweep.
  const SimTime solo = execute_strategy(StrategyKind::BL, *synth.federation,
                                        synth.query, options)
                           .response_ns;

  std::printf("# Query streams: %d queries, N_o scale %.2f, interarrival as "
              "a fraction of the solo BL response (%.1f ms)\n",
              queries, scale, to_milliseconds(solo));
  std::printf("%-14s %12s %12s %12s\n", "interarrival", "CA mean[ms]",
              "BL mean[ms]", "PL mean[ms]");
  for (const double fraction : {2.0, 1.0, 0.5, 0.25, 0.1}) {
    const SimTime gap = static_cast<SimTime>(fraction * double(solo));
    std::printf("%-14.2f", fraction);
    for (const StrategyKind kind :
         {StrategyKind::CA, StrategyKind::BL, StrategyKind::PL}) {
      std::vector<StreamQuery> stream;
      for (int i = 0; i < queries; ++i)
        stream.push_back({synth.query, i * gap, kind});
      const StreamReport report =
          run_query_stream(*synth.federation, stream, options);
      std::printf(" %12.1f", report.mean_latency_ms());
    }
    std::printf("\n");
  }
  std::printf(
      "\nLower is better. Two regimes: while the cluster keeps up, latency\n"
      "tracks the solo response time and the localized strategies dominate;\n"
      "at saturation every query queues behind all earlier work, so mean\n"
      "latency tracks TOTAL work per query instead — and whichever strategy\n"
      "does less total work on this federation wins, which can flip the\n"
      "ordering. Capacity planning needs both numbers (the paper's response\n"
      "time and total execution time), which is precisely its point.\n");
  return 0;
}
