// Table 1 — the system parameters. Prints the table and verifies that the
// library defaults are exactly the paper's values (exits non-zero on any
// mismatch, so the harness doubles as a regression check).
#include <cstdio>

#include "isomer/sim/cost_params.hpp"

int main() {
  using namespace isomer;
  const CostParams params;

  std::printf("# Table 1: the system parameters\n");
  std::printf("%-8s %-55s %s\n", "param", "description", "setting");
  std::printf("%-8s %-55s %llu bytes\n", "S_a", "average size of attributes",
              static_cast<unsigned long long>(params.attr_bytes));
  std::printf("%-8s %-55s %llu bytes\n", "S_GOid", "size of GOid",
              static_cast<unsigned long long>(params.goid_bytes));
  std::printf("%-8s %-55s %llu bytes\n", "S_LOid", "size of LOid",
              static_cast<unsigned long long>(params.loid_bytes));
  std::printf("%-8s %-55s %llu bytes\n", "S_s", "size of object signatures",
              static_cast<unsigned long long>(params.sig_bytes));
  std::printf("%-8s %-55s %.0f us/byte\n", "T_d", "average disk access time",
              static_cast<double>(params.disk_ns_per_byte) / 1000.0);
  std::printf("%-8s %-55s %.0f us/byte\n", "T_net",
              "average network transfer time",
              static_cast<double>(params.net_ns_per_byte) / 1000.0);
  std::printf("%-8s %-55s %.1f us/comparison\n", "T_c",
              "average cpu processing time",
              static_cast<double>(params.cpu_ns_per_cmp) / 1000.0);
  std::printf("%-8s %-55s %.0f\n", "N_iso",
              "average number of isomeric objects per real-world entity",
              params.avg_isomers);

  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "MISMATCH vs paper: %s\n", what);
      ++failures;
    }
  };
  check(params.attr_bytes == 32, "S_a must be 32 bytes");
  check(params.goid_bytes == 16, "S_GOid must be 16 bytes");
  check(params.loid_bytes == 16, "S_LOid must be 16 bytes");
  check(params.sig_bytes == 32, "S_s must be 32 bytes");
  check(params.disk_ns_per_byte == 15'000, "T_d must be 15 us/byte");
  check(params.net_ns_per_byte == 8'000, "T_net must be 8 us/byte");
  check(params.cpu_ns_per_cmp == 500, "T_c must be 0.5 us/comparison");
  check(params.avg_isomers == 2.0, "N_iso must be 2");
  std::printf("\n%s\n", failures == 0 ? "all defaults match the paper"
                                      : "DEFAULTS DIVERGE FROM THE PAPER");
  return failures == 0 ? 0 : 1;
}
