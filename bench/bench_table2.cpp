// Table 2 — the database and query parameters. Prints the parameter table
// with its sampling formulas, then validates the workload generator
// empirically: drawn values must stay within the paper's ranges, the
// derived ratios must follow the paper's formulas, and materialized
// federations must realize the drawn statistics (predicate selectivity,
// isomerism ratio, missing-data ratio) within sampling tolerance.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "isomer/workload/synth.hpp"

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

void check_near(double actual, double expected, double tolerance,
                const char* what) {
  if (std::abs(actual - expected) > tolerance) {
    std::fprintf(stderr, "FAIL: %s (actual %.4f, expected %.4f +- %.4f)\n",
                 what, actual, expected, tolerance);
    ++failures;
  }
}

}  // namespace

int main() {
  using namespace isomer;

  std::printf("# Table 2: the database and query parameters\n");
  std::printf("%-11s %-52s %s\n", "param", "description", "default setting");
  std::printf("%-11s %-52s %s\n", "N_db", "number of component databases",
              "3");
  std::printf("%-11s %-52s %s\n", "N_c", "number of global classes involved",
              "1 ~ 4");
  std::printf("%-11s %-52s %s\n", "N_p^k", "predicates on the class", "0 ~ 3");
  std::printf("%-11s %-52s %s\n", "R_ps^k", "selectivity of the predicates",
              "0.45^sqrt(N_p^k)");
  std::printf("%-11s %-52s %s\n", "R_r^k", "ratio of objects to be referenced",
              "0.5 ~ 1");
  std::printf("%-11s %-52s %s\n", "R_iso^k",
              "ratio of objects having isomeric objects",
              "1 - 0.9^(N_db-1)");
  std::printf("%-11s %-52s %s\n", "N_o^{i,k}", "number of objects",
              "5000 ~ 6000");
  std::printf("%-11s %-52s %s\n", "N_pa^{i,k}",
              "attributes involved in the local predicates", "0 ~ N_p^k");
  std::printf("%-11s %-52s %s\n", "N_ta^{i,k}",
              "target attributes in the subquery", "0 ~ 2");
  std::printf("%-11s %-52s %s\n", "R_pps^{i,k}",
              "selectivity of the local predicates",
              "0.45^sqrt(N_pa^{i,k})");
  std::printf("%-11s %-52s %s\n", "R_m^{i,k}",
              "ratio of objects which have missing data",
              "1 if N_p^k > N_pa^{i,k}, else 0 ~ 0.2");
  std::printf("%-11s %-52s %s\n", "R_as^{i,k}",
              "selectivity of predicates on assistant objects",
              "0.55^sqrt(N_p^k - N_pa^{i,k})");
  std::printf("%-11s %-52s %s\n", "R_ss^{i,k}",
              "selectivity on signatures of assistant objects",
              "0.6^sqrt(N_p^k - N_pa^{i,k})");

  // ---- Range validation over many drawn samples.
  {
    ParamConfig config;
    Rng rng(1);
    double sum_objects = 0;
    std::uint64_t n_objects_draws = 0;
    for (int s = 0; s < 5000; ++s) {
      const SampleParams sample = draw_sample(config, rng);
      check(sample.n_classes() >= 1 && sample.n_classes() <= 4,
            "N_c within 1..4");
      check(sample.n_db == 3, "N_db default is 3");
      check_near(sample.iso_ratio, 1.0 - std::pow(0.9, 2), 1e-12,
                 "R_iso = 1 - 0.9^(N_db-1)");
      for (const auto& cls : sample.classes) {
        check(cls.n_preds >= 0 && cls.n_preds <= 3, "N_p within 0..3");
        check(cls.ref_ratio >= 0.5 && cls.ref_ratio <= 1.0,
              "R_r within 0.5..1");
        if (cls.n_preds > 0) {
          const double combined =
              std::pow(cls.pred_selectivity, cls.n_preds);
          check_near(combined,
                     std::pow(0.45, std::sqrt((double)cls.n_preds)), 1e-9,
                     "R_ps = 0.45^sqrt(N_p)");
        }
        for (const auto& db : cls.dbs) {
          check(db.n_objects >= 5000 && db.n_objects <= 6000,
                "N_o within 5000..6000");
          sum_objects += db.n_objects;
          ++n_objects_draws;
          check(db.present_preds.size() <=
                    static_cast<std::size_t>(cls.n_preds),
                "N_pa <= N_p");
          if (db.present_preds.size() ==
              static_cast<std::size_t>(cls.n_preds))
            check(db.extra_missing >= 0.0 && db.extra_missing <= 0.2,
                  "R_m within 0..0.2 when nothing schema-missing");
          else
            check(db.extra_missing == 0.0,
                  "R_m implied 1 via schema-missing attributes");
        }
      }
    }
    check_near(sum_objects / static_cast<double>(n_objects_draws), 5500.0,
               25.0, "mean N_o ~ 5500");
  }

  // ---- Realized statistics on materialized federations (small N_o).
  {
    ParamConfig config;
    config.n_objects = {800, 1000};
    Rng rng(2);
    for (int s = 0; s < 5; ++s) {
      const SampleParams sample = draw_sample(config, rng);
      const SynthFederation synth = materialize_sample(sample);
      const Federation& fed = *synth.federation;

      // Realized isomerism ratio across root-class objects.
      std::uint64_t with_isomers = 0, total = 0;
      const GoidTable& goids = fed.goids();
      for (std::size_t e = 0; e < goids.entity_count(); ++e) {
        const GOid entity{static_cast<std::uint64_t>(e + 1)};
        const std::size_t copies = goids.isomers_of(entity).size();
        total += copies;
        if (copies > 1) with_isomers += copies;
      }
      check_near(static_cast<double>(with_isomers) /
                     static_cast<double>(total),
                 sample.iso_ratio, 0.05, "realized R_iso matches drawn");

      // Realized selectivity of the root class's first predicate attribute.
      const auto& root = sample.classes[0];
      if (root.n_preds > 0) {
        for (const DbId db_id : fed.db_ids()) {
          const std::size_t i = static_cast<std::size_t>(db_id.value() - 1);
          const auto& present = root.dbs[i].present_preds;
          if (present.empty()) continue;
          const std::string attr = "p" + std::to_string(present[0]);
          const ComponentDatabase& db = fed.db(db_id);
          const ClassDef& cls = db.schema().cls("C1");
          const auto index = cls.find_attribute(attr);
          std::uint64_t zero = 0, nonnull = 0;
          for (const Object& obj : db.extent("C1").objects()) {
            const Value& v = obj.value(*index);
            if (v.is_null()) continue;
            ++nonnull;
            if (v == Value(0)) ++zero;
          }
          if (nonnull > 200)
            check_near(static_cast<double>(zero) /
                           static_cast<double>(nonnull),
                       root.pred_selectivity, 0.08,
                       "realized predicate selectivity matches drawn");
        }
      }

      check(fed.check_consistency().empty(),
            "materialized federation is consistent");
    }
  }

  std::printf("\n%s\n", failures == 0
                            ? "generator conforms to Table 2"
                            : "GENERATOR DIVERGES FROM TABLE 2");
  return failures == 0 ? 0 : 1;
}
