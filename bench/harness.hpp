// Shared infrastructure for the figure-regeneration harnesses.
//
// Each bench_figN binary sweeps one Table-2 parameter exactly as §4.2
// describes, runs `--samples` random parameter sets per point through the
// discrete-event simulator (the paper uses 500; the default here is smaller
// so the full suite finishes in minutes — pass --samples=500 --scale=1 for
// the paper's exact setting), and prints the averaged total execution time
// and response time per strategy.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "isomer/core/strategy.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer::bench {

struct HarnessOptions {
  int samples = 15;      ///< parameter sets per sweep point (paper: 500)
  double scale = 1.0;    ///< multiplier on N_o (1.0 = paper scale)
  std::uint64_t seed = 1996;
  bool run_signatures = false;  ///< also run BL-S / PL-S
  bool samples_set = false;     ///< user passed --samples / --paper / --quick
  bool scale_set = false;       ///< user passed --scale / --paper / --quick
};

inline HarnessOptions parse_options(int argc, char** argv) {
  HarnessOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--samples=")) {
      options.samples = std::atoi(v);
      options.samples_set = true;
    } else if (const char* v = value("--scale=")) {
      options.scale = std::atof(v);
      options.scale_set = true;
    } else if (const char* v = value("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--signatures") {
      options.run_signatures = true;
    } else if (arg == "--paper") {
      options.samples = 500;
      options.scale = 1.0;
      options.samples_set = options.scale_set = true;
    } else if (arg == "--quick") {
      options.samples = 8;
      options.scale = 0.1;
      options.samples_set = options.scale_set = true;
    }
    else {
      std::fprintf(stderr,
                   "usage: %s [--samples=N] [--scale=F] [--seed=S] "
                   "[--signatures] [--paper] [--quick]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return options;
}

/// Applies the scale factor to the Table-2 object-count range.
inline void apply_scale(ParamConfig& config, double scale) {
  config.n_objects.first =
      std::max(1, static_cast<int>(config.n_objects.first * scale));
  config.n_objects.second =
      std::max(config.n_objects.first,
               static_cast<int>(config.n_objects.second * scale));
}

/// Averaged simulated times (seconds) for one strategy at one sweep point.
struct SeriesPoint {
  double total_s = 0;
  double response_s = 0;
  double bytes_mb = 0;
  double messages = 0;
};

/// Runs `samples` random parameter sets drawn from `config` and averages
/// each requested strategy's figures.
inline std::vector<SeriesPoint> run_point(
    const ParamConfig& config, const std::vector<StrategyKind>& kinds,
    int samples, std::uint64_t seed,
    NetworkTopology topology = NetworkTopology::SharedBus,
    double collision_alpha = 0.3) {
  Rng rng(seed);
  StrategyOptions exec_options;
  exec_options.record_trace = false;
  exec_options.topology = topology;
  exec_options.costs.collision_alpha = collision_alpha;
  std::vector<SeriesPoint> points(kinds.size());
  for (int s = 0; s < samples; ++s) {
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    // Reuse one signature index across the signature variants.
    std::unique_ptr<SignatureIndex> signatures;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      StrategyOptions options = exec_options;
      if (kinds[k] == StrategyKind::BLS || kinds[k] == StrategyKind::PLS) {
        if (!signatures)
          signatures = std::make_unique<SignatureIndex>(
              SignatureIndex::build(*synth.federation));
        options.signatures = signatures.get();
      }
      const StrategyReport report =
          execute_strategy(kinds[k], *synth.federation, synth.query, options);
      points[k].total_s += to_seconds(report.total_ns);
      points[k].response_s += to_seconds(report.response_ns);
      points[k].bytes_mb +=
          static_cast<double>(report.bytes_transferred) / 1e6;
      points[k].messages += static_cast<double>(report.messages);
    }
  }
  for (SeriesPoint& point : points) {
    point.total_s /= samples;
    point.response_s /= samples;
    point.bytes_mb /= samples;
    point.messages /= samples;
  }
  return points;
}

inline void print_header(const char* figure, const char* x_name,
                         const std::vector<StrategyKind>& kinds,
                         const HarnessOptions& options) {
  std::printf("# %s — %d samples/point, N_o scale %.2f (paper: 500 / 1.0)\n",
              figure, options.samples, options.scale);
  std::printf("%-12s", x_name);
  for (const StrategyKind kind : kinds)
    std::printf(" %10s", std::string(to_string(kind)).c_str());
  std::printf("\n");
}

inline void print_row(double x, const std::vector<SeriesPoint>& points,
                      bool response) {
  std::printf("%-12g", x);
  for (const SeriesPoint& point : points)
    std::printf(" %10.3f", response ? point.response_s : point.total_s);
  std::printf("\n");
}

}  // namespace isomer::bench
