// Shared infrastructure for the figure-regeneration harnesses.
//
// Each bench_figN binary sweeps one Table-2 parameter exactly as §4.2
// describes, runs `--samples` random parameter sets per point through the
// discrete-event simulator (the paper uses 500; the default here is smaller
// so the full suite finishes in minutes — pass --samples=500 --scale=1 for
// the paper's exact setting), and prints the averaged total execution time
// and response time per strategy.
//
// Trials are independent deterministic simulations, so they run in parallel
// across `--jobs` threads (default: hardware concurrency). Every trial owns
// an RNG stream derived as Rng(derive_stream(seed, trial)) and per-trial
// figures are reduced in trial order, which makes the printed tables
// bitwise-identical at every job count. (This per-trial seed derivation
// replaced the original shared sequential Rng — a one-time shift in absolute
// benchmark numbers, recorded in EXPERIMENTS.md.)
//
// Pass --json=FILE to additionally emit machine-readable per-point rows for
// CI trajectory files (see JsonSink), and --trace=FILE to dump every
// simulated execution's phase spans as JSON Lines (see TraceSink and
// docs/TRACING.md). Both report the effective --jobs value in their
// headers; both are --jobs-invariant byte for byte.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "isomer/analytic/impute.hpp"
#include "isomer/common/parallel.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/obs/jsonl.hpp"
#include "isomer/obs/metrics.hpp"
#include "isomer/obs/trace_session.hpp"
#include "isomer/serve/serve_spec.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer::bench {

struct HarnessOptions {
  int samples = 15;      ///< parameter sets per sweep point (paper: 500)
  double scale = 1.0;    ///< multiplier on N_o (1.0 = paper scale)
  std::uint64_t seed = 1996;
  int jobs = 0;          ///< trial-level threads; 0 = hardware concurrency
  std::string json_path;        ///< --json=FILE; empty = stdout tables only
  std::string trace_path;       ///< --trace=FILE; empty = no span dump
  bool run_signatures = false;  ///< also run BL-S / PL-S
  bool samples_set = false;     ///< user passed --samples / --paper / --quick
  bool scale_set = false;       ///< user passed --scale / --paper / --quick
  /// --faults=SPEC (fault::parse_fault_spec grammar): inject the described
  /// faults into every trial, degrade per the spec, and report answer
  /// quality next to the timing figures. A spec whose plan injects nothing
  /// (e.g. "drop=0") leaves every output byte-identical to a run without
  /// --faults.
  fault::FaultSpec faults;
  bool faults_set = false;
  /// --batch=on|off|N (StrategyOptions::batch): batched semijoin shipping.
  /// "off" (the default) leaves every output bitwise-identical to a build
  /// without the batching layer; "on" enables unbounded same-instant
  /// frames; a positive N additionally caps a frame at N records.
  BatchOptions batch;
  bool batch_set = false;
  /// --serve=SPEC (serve::parse_serve_spec grammar): arrival process and
  /// scheduler configuration for the serving-layer harness (bench_serve).
  /// Other benches accept and archive the spec but ignore it.
  serve::ServeSpec serve;
  bool serve_set = false;
  /// --plan=static|adaptive|hybrid (serve::PlanMode): how bench_serve plans
  /// its query pool. "static" (the default) uses the whole-federation
  /// advisor; "adaptive" plans per home site and re-plans at launch from the
  /// stats book; "hybrid" additionally arms the mid-flight switch (see
  /// docs/PLANNING.md). Other benches accept and archive the value but
  /// ignore it.
  std::string plan = "static";
  bool plan_set = false;
  /// --certcache=on|off|N (StrategyOptions::cert_cache): cross-query
  /// certificate cache. "off" (the default) runs without a cache — every
  /// output bitwise-identical to a build without it; "on" attaches one
  /// unbounded cache per serve trial; a positive N additionally caps the
  /// resident certificate count (core/cert_cache.hpp). Consumed by
  /// bench_serve's repeated-pool panel; other benches accept and archive
  /// the value but ignore it.
  bool cert_cache_enabled = false;
  std::size_t cert_cache_entries = 0;
  bool certcache_set = false;
  /// --impute=off|thresh=P[,mech=mcar|mar] (parse_impute_spec grammar): the
  /// IM strategy's confidence threshold and missingness-mechanism
  /// assumption. "off" (the default) never builds a population model.
  /// Consumed by bench_impute; other benches accept and archive the spec
  /// but ignore it.
  ImputeSpec impute;
  bool impute_set = false;
};

/// The canonical --batch spec string for provenance headers: "off", "on"
/// (unbounded frames) or the per-frame record cap.
[[nodiscard]] inline std::string batch_spec_string(const BatchOptions& batch) {
  if (!batch.enabled) return "off";
  if (batch.max_records == 0) return "on";
  return std::to_string(batch.max_records);
}

/// The canonical --certcache spec string for provenance headers: "off",
/// "on" (unbounded) or the resident-certificate cap.
[[nodiscard]] inline std::string certcache_spec_string(
    const HarnessOptions& options) {
  if (!options.cert_cache_enabled) return "off";
  if (options.cert_cache_entries == 0) return "on";
  return std::to_string(options.cert_cache_entries);
}

/// The thread count a --jobs value resolves to (0 = all hardware threads) —
/// what the --json and --trace headers report.
[[nodiscard]] inline unsigned effective_jobs(int jobs) {
  return jobs <= 0 ? ThreadPool::hardware_jobs()
                   : static_cast<unsigned>(jobs);
}

[[noreturn]] inline void usage_error(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--samples=N] [--scale=F] [--seed=S] [--jobs=N] "
               "[--json=FILE] [--trace=FILE] [--faults=SPEC] "
               "[--batch=on|off|N] [--serve=SPEC] "
               "[--plan=static|adaptive|hybrid] [--certcache=on|off|N] "
               "[--impute=off|thresh=P[,mech=mcar|mar]] "
               "[--signatures] [--paper] "
               "[--quick]\n"
               "  --faults SPEC items (comma-separated): drop=P, spike=P:DUR,"
               " down=DB[@DUR..[DUR]],\n"
               "  seed=N, retries=N, timeout=DUR, backoff=DUR,"
               " degrade=fail|partial (see docs/FAULTS.md)\n"
               "  --batch batched semijoin shipping: on, off (default), or a"
               " positive per-frame record cap\n"
               "  --serve SPEC: (open|closed)[:items][/tenant:ID,items...]"
               " with rate=R, clients=N, think=DUR, n=N,\n"
               "  policy=fifo|spc|wfq|edf, queue=N, inflight=N,"
               " autoscale=on|off, seed=N; tenant items weight=W,\n"
               "  quota=N, slo=DUR, rate=R"
               " (see docs/SERVING.md)\n"
               "  --plan pool planning mode for bench_serve: static"
               " (advisor, default), adaptive, hybrid"
               " (see docs/PLANNING.md)\n"
               "  --certcache cross-query certificate cache for bench_serve:"
               " on, off (default), or a\n"
               "  positive resident-certificate cap"
               " (see docs/CONDITIONS.md)\n"
               "  --impute IM-strategy imputation for bench_impute: off"
               " (default), or thresh=P in [0,1]\n"
               "  with optional mech=mcar|mar"
               " (see docs/IMPUTATION.md)\n",
               argv0);
  std::exit(2);
}

inline HarnessOptions parse_options(int argc, char** argv) {
  HarnessOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--samples=")) {
      options.samples = std::atoi(v);
      options.samples_set = true;
    } else if (const char* v = value("--scale=")) {
      options.scale = std::atof(v);
      options.scale_set = true;
    } else if (const char* v = value("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--jobs=")) {
      options.jobs = std::atoi(v);
      if (options.jobs <= 0) {
        std::fprintf(stderr, "%s: --jobs wants a positive thread count\n",
                     argv[0]);
        usage_error(argv[0]);
      }
    } else if (const char* v = value("--json=")) {
      options.json_path = v;
      if (options.json_path.empty()) {
        std::fprintf(stderr, "%s: --json wants a file path\n", argv[0]);
        usage_error(argv[0]);
      }
    } else if (const char* v = value("--trace=")) {
      options.trace_path = v;
      if (options.trace_path.empty()) {
        std::fprintf(stderr, "%s: --trace wants a file path\n", argv[0]);
        usage_error(argv[0]);
      }
    } else if (const char* v = value("--faults=")) {
      try {
        options.faults = fault::parse_fault_spec(v);
      } catch (const FaultError& error) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.what());
        usage_error(argv[0]);
      }
      options.faults_set = true;
    } else if (const char* v = value("--batch=")) {
      const std::string mode = v;
      if (mode == "on") {
        options.batch.enabled = true;
      } else if (mode == "off") {
        options.batch = BatchOptions{};
      } else {
        const int cap = std::atoi(v);
        if (cap <= 0) {
          std::fprintf(stderr,
                       "%s: --batch wants on, off or a positive record cap\n",
                       argv[0]);
          usage_error(argv[0]);
        }
        options.batch.enabled = true;
        options.batch.max_records = static_cast<std::size_t>(cap);
      }
      options.batch_set = true;
    } else if (const char* v = value("--serve=")) {
      try {
        options.serve = serve::parse_serve_spec(v);
      } catch (const ServeError& error) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.what());
        usage_error(argv[0]);
      }
      options.serve_set = true;
    } else if (const char* v = value("--plan=")) {
      options.plan = v;
      if (options.plan != "static" && options.plan != "adaptive" &&
          options.plan != "hybrid") {
        std::fprintf(stderr,
                     "%s: --plan wants static, adaptive or hybrid\n",
                     argv[0]);
        usage_error(argv[0]);
      }
      options.plan_set = true;
    } else if (const char* v = value("--certcache=")) {
      const std::string mode = v;
      if (mode == "on") {
        options.cert_cache_enabled = true;
        options.cert_cache_entries = 0;
      } else if (mode == "off") {
        options.cert_cache_enabled = false;
        options.cert_cache_entries = 0;
      } else {
        const int cap = std::atoi(v);
        if (cap <= 0) {
          std::fprintf(
              stderr,
              "%s: --certcache wants on, off or a positive entry cap\n",
              argv[0]);
          usage_error(argv[0]);
        }
        options.cert_cache_enabled = true;
        options.cert_cache_entries = static_cast<std::size_t>(cap);
      }
      options.certcache_set = true;
    } else if (const char* v = value("--impute=")) {
      try {
        options.impute = parse_impute_spec(v);
      } catch (const ImputeError& error) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.what());
        usage_error(argv[0]);
      }
      options.impute_set = true;
    } else if (arg == "--signatures") {
      options.run_signatures = true;
    } else if (arg == "--paper") {
      options.samples = 500;
      options.scale = 1.0;
      options.samples_set = options.scale_set = true;
    } else if (arg == "--quick") {
      options.samples = 8;
      options.scale = 0.1;
      options.samples_set = options.scale_set = true;
    }
    else {
      usage_error(argv[0]);
    }
  }
  if (options.samples <= 0) {
    // Averaging divides by --samples; zero or negative counts are a usage
    // error, not a division by zero.
    std::fprintf(stderr, "%s: --samples wants a positive trial count\n",
                 argv[0]);
    usage_error(argv[0]);
  }
  if (options.scale <= 0) {
    std::fprintf(stderr, "%s: --scale wants a positive factor\n", argv[0]);
    usage_error(argv[0]);
  }
  return options;
}

/// Applies the scale factor to the Table-2 object-count range.
inline void apply_scale(ParamConfig& config, double scale) {
  config.n_objects.first =
      std::max(1, static_cast<int>(config.n_objects.first * scale));
  config.n_objects.second =
      std::max(config.n_objects.first,
               static_cast<int>(config.n_objects.second * scale));
}

/// Averaged simulated times (seconds) for one strategy at one sweep point.
/// The answer-quality fields are only populated (and only printed) when a
/// --faults plan is active.
struct SeriesPoint {
  double total_s = 0;
  double response_s = 0;
  double bytes_mb = 0;
  double messages = 0;
  double certain_rows = 0;     ///< avg certain rows per trial
  double maybe_rows = 0;       ///< avg maybe rows per trial
  double unavailable_rows = 0; ///< avg rows tagged unavailable per trial
  double dead_sites = 0;       ///< avg sites declared unreachable per trial
  double retries = 0;          ///< avg shipments retransmitted per trial

  SeriesPoint& operator+=(const SeriesPoint& other) noexcept {
    total_s += other.total_s;
    response_s += other.response_s;
    bytes_mb += other.bytes_mb;
    messages += other.messages;
    certain_rows += other.certain_rows;
    maybe_rows += other.maybe_rows;
    unavailable_rows += other.unavailable_rows;
    dead_sites += other.dead_sites;
    retries += other.retries;
    return *this;
  }
};

/// Runs `samples` trials on `jobs` threads (0 = hardware concurrency),
/// handing trial i the independent stream Rng(derive_stream(seed, i)).
/// `fn(i, rng)` must be thread-safe across distinct trials; reduce whatever
/// it produces in trial order afterwards to stay jobs-invariant.
template <typename Fn>
inline void for_each_trial(int samples, std::uint64_t seed, int jobs,
                           Fn&& fn) {
  ThreadPool pool(jobs <= 0 ? 0u : static_cast<unsigned>(jobs));
  pool.for_each(static_cast<std::size_t>(samples), [&](std::size_t i) {
    Rng rng(derive_stream(seed, i));
    fn(i, rng);
  });
}

/// Streams --trace output: the "isomer-trace-v1" JSONL contract of
/// docs/TRACING.md. Line 1 is a header reporting the harness's *effective*
/// --jobs value; then one span record per simulated step, tagged with the
/// sweep point and trial that produced it; the destructor appends a
/// metrics summary from MetricsRegistry::global(). Span lines are written
/// in (sweep point, trial) order regardless of the thread count, so trace
/// files are --jobs-invariant byte for byte.
class TraceSink {
 public:
  /// Disabled when `path` is empty. Exits with a usage error when the file
  /// cannot be opened.
  ///
  /// The sink writes to `path + ".tmp"` and renames onto `path` only when
  /// the run completes (the destructor runs): an aborted sweep — usage
  /// error after the sink was built, uncaught exception, crash — leaves any
  /// existing trace file at `path` untouched instead of truncating it.
  TraceSink(const std::string& path, const char* tool,
            const HarnessOptions& options) {
    if (path.empty()) return;
    final_path_ = path;
    tmp_path_ = path + ".tmp";
    file_.open(tmp_path_, std::ios::trunc);
    if (!file_) {
      std::fprintf(stderr, "cannot open --trace file %s for writing\n",
                   tmp_path_.c_str());
      std::exit(2);
    }
    file_ << obs::trace_header_json(tool, effective_jobs(options.jobs),
                                    options.samples, options.scale,
                                    options.seed)
          << "\n";
  }
  ~TraceSink() {
    if (file_.is_open()) {
      file_ << obs::metrics_to_json(obs::MetricsRegistry::global()) << "\n";
      file_.close();
      if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0)
        std::fprintf(stderr, "cannot move trace file %s to %s\n",
                     tmp_path_.c_str(), final_path_.c_str());
    }
  }
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return file_.is_open(); }
  /// Null when disabled — pass the result straight to run_point.
  [[nodiscard]] TraceSink* if_enabled() noexcept {
    return enabled() ? this : nullptr;
  }

  /// Tags subsequent spans with the sweep point they belong to.
  void set_point(const char* figure, const char* x_name, double x) {
    context_.figure = figure;
    context_.x_name = x_name;
    context_.x = x;
  }

  /// Writes one trial's spans. run_point calls this in trial order.
  void write_trial(std::uint64_t trial, const obs::TraceSession& session) {
    if (!file_.is_open()) return;
    context_.trial = trial;
    obs::write_spans(file_, session, &context_);
  }

 private:
  std::ofstream file_;
  std::string final_path_;
  std::string tmp_path_;
  obs::SpanContext context_;
};

/// Runs `samples` random parameter sets drawn from `config` and averages
/// each requested strategy's figures. Bitwise-identical at every `jobs`.
/// With `trace` attached, every execution records phase spans into a
/// per-trial TraceSession (serialized to the sink in trial order), and the
/// shared MetricsRegistry counts trials / executions / spans.
inline std::vector<SeriesPoint> run_point(
    const ParamConfig& config, const std::vector<StrategyKind>& kinds,
    int samples, std::uint64_t seed, int jobs = 1,
    NetworkTopology topology = NetworkTopology::SharedBus,
    double collision_alpha = 0.3, TraceSink* trace = nullptr,
    const fault::FaultSpec* faults = nullptr,
    const BatchOptions* batch = nullptr) {
  expects(samples > 0, "run_point needs a positive trial count");
  const bool tracing = trace != nullptr && trace->enabled();
  // A disabled plan (e.g. --faults=drop=0) takes the exact fault-free code
  // path below, keeping every output byte identical to a run without it.
  const bool faulting = faults != nullptr && faults->plan.enabled();
  StrategyOptions exec_options;
  exec_options.record_trace = false;
  exec_options.topology = topology;
  exec_options.costs.collision_alpha = collision_alpha;
  // Null or a disabled BatchOptions keeps ship_record an exact passthrough
  // to ship(): --batch=off output is bitwise-identical to pre-batching.
  if (batch != nullptr) exec_options.batch = *batch;
  std::vector<std::vector<SeriesPoint>> trials(
      static_cast<std::size_t>(samples),
      std::vector<SeriesPoint>(kinds.size()));
  std::vector<obs::TraceSession> sessions(
      tracing ? static_cast<std::size_t>(samples) : 0);
  for_each_trial(samples, seed, jobs, [&](std::size_t s, Rng& rng) {
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    // Each trial faces its own reproducible fault environment: the plan's
    // RNG stream mixes the bench seed, the spec's fault seed and the trial
    // index, so results stay --jobs-invariant. Every strategy within the
    // trial replays the same plan.
    fault::FaultPlan plan;
    if (faulting) {
      plan = faults->plan;
      plan.seed = derive_stream(derive_stream(seed, faults->plan.seed), s);
    }
    // Reuse one signature index across the signature variants (within this
    // trial only — nothing is shared between threads).
    std::unique_ptr<SignatureIndex> signatures;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      StrategyOptions options = exec_options;
      if (tracing) options.trace_session = &sessions[s];
      if (faulting) {
        options.faults = &plan;
        options.retry = faults->retry;
        options.degrade = faults->degrade;
      }
      if (kinds[k] == StrategyKind::BLS || kinds[k] == StrategyKind::PLS) {
        if (!signatures)
          signatures = std::make_unique<SignatureIndex>(
              SignatureIndex::build(*synth.federation));
        options.signatures = signatures.get();
      }
      const StrategyReport report =
          execute_strategy(kinds[k], *synth.federation, synth.query, options);
      trials[s][k].total_s = to_seconds(report.total_ns);
      trials[s][k].response_s = to_seconds(report.response_ns);
      trials[s][k].bytes_mb =
          static_cast<double>(report.bytes_transferred) / 1e6;
      trials[s][k].messages = static_cast<double>(report.messages);
      if (faulting) {
        trials[s][k].certain_rows =
            static_cast<double>(report.result.certain_count());
        trials[s][k].maybe_rows =
            static_cast<double>(report.result.maybe_count());
        trials[s][k].unavailable_rows =
            static_cast<double>(report.result.unavailable_count());
        trials[s][k].dead_sites =
            static_cast<double>(report.unavailable_sites.size());
        trials[s][k].retries = static_cast<double>(report.retries);
      }
    }
  });
  // Reduce (and serialize spans / record metrics) in trial order: the
  // output is independent of execution order and thus of `jobs`.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.counter("bench.trials").add(static_cast<std::uint64_t>(samples));
  metrics.counter("bench.executions")
      .add(static_cast<std::uint64_t>(samples) * kinds.size());
  obs::Histogram& response_hist = metrics.histogram("bench.response_ms");
  std::vector<SeriesPoint> points(kinds.size());
  for (std::size_t s = 0; s < trials.size(); ++s) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      points[k] += trials[s][k];
      response_hist.record(trials[s][k].response_s * 1e3);
    }
    if (tracing) {
      metrics.counter("bench.spans").add(sessions[s].size());
      trace->write_trial(s, sessions[s]);
    }
  }
  for (SeriesPoint& point : points) {
    point.total_s /= samples;
    point.response_s /= samples;
    point.bytes_mb /= samples;
    point.messages /= samples;
    point.certain_rows /= samples;
    point.maybe_rows /= samples;
    point.unavailable_rows /= samples;
    point.dead_sites /= samples;
    point.retries /= samples;
  }
  return points;
}

inline void print_header(const char* figure, const char* x_name,
                         const std::vector<StrategyKind>& kinds,
                         const HarnessOptions& options) {
  std::printf("# %s — %d samples/point, N_o scale %.2f (paper: 500 / 1.0)\n",
              figure, options.samples, options.scale);
  std::printf("%-12s", x_name);
  for (const StrategyKind kind : kinds)
    std::printf(" %10s", std::string(to_string(kind)).c_str());
  std::printf("\n");
}

inline void print_row(double x, const std::vector<SeriesPoint>& points,
                      bool response) {
  std::printf("%-12g", x);
  for (const SeriesPoint& point : points)
    std::printf(" %10.3f", response ? point.response_s : point.total_s);
  std::printf("\n");
}

/// Answer-quality panel printed only when a --faults plan is active: average
/// per-trial (certain, maybe, unavailable) row counts plus the fault-side
/// figures, one line per (sweep point, strategy). This is what lets fig9 /
/// fig10 plot time *and* answer quality against the failure rate.
inline void print_quality_table(
    const char* figure, const char* x_name, const std::vector<double>& xs,
    const std::vector<StrategyKind>& kinds,
    const std::vector<std::vector<SeriesPoint>>& rows,
    const HarnessOptions& options) {
  std::printf("\n# %s — answer quality under --faults "
              "(avg rows/trial; degrade=%s)\n",
              figure, std::string(to_string(options.faults.degrade)).c_str());
  std::printf("%-12s %-8s %10s %10s %12s %10s %10s\n", x_name, "strategy",
              "certain", "maybe", "unavailable", "dead_dbs", "retries");
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const SeriesPoint& p = rows[i][k];
      std::printf("%-12g %-8s %10.2f %10.2f %12.2f %10.2f %10.2f\n", xs[i],
                  std::string(to_string(kinds[k])).c_str(), p.certain_rows,
                  p.maybe_rows, p.unavailable_rows, p.dead_sites, p.retries);
    }
}

/// Machine-readable results (--json=FILE): one JSON array whose first
/// element is a header object
///   {"format": "isomer-bench-v1", "jobs", "samples", "scale", "seed"}
/// ("jobs" is the *effective* thread count) followed by per-(sweep point,
/// strategy) rows
///   {"figure", "x_name", "x", "strategy", "total_s", "response_s",
///    "bytes_mb", "messages"}
/// so CI can build BENCH_*.json trajectory files without scraping stdout.
class JsonSink {
 public:
  /// Disabled when `path` is empty. Exits with a usage error when the file
  /// cannot be opened.
  JsonSink(const std::string& path, const HarnessOptions& options) {
    if (path.empty()) return;
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr) {
      std::fprintf(stderr, "cannot open --json file %s for writing\n",
                   path.c_str());
      std::exit(2);
    }
    std::fprintf(file_,
                 "[\n  {\"format\": \"isomer-bench-v1\", \"jobs\": %u, "
                 "\"samples\": %d, \"scale\": %.17g, \"seed\": %llu",
                 effective_jobs(options.jobs), options.samples, options.scale,
                 static_cast<unsigned long long>(options.seed));
    // The batch field exists iff batching is enabled, so --batch=off (or no
    // --batch at all) leaves the header byte-identical to older outputs.
    // 0 = unbounded same-instant frames.
    if (options.batch.enabled)
      std::fprintf(file_, ", \"batch_max_records\": %llu",
                   static_cast<unsigned long long>(options.batch.max_records));
    // Provenance: the *resolved* spec strings of whichever spec flags the
    // run was given (canonical re-prints — parse(to_string(x)) == x), so an
    // archived result file names its exact fault / batch / serve
    // environment. Each field exists iff its flag was passed, keeping
    // flagless outputs byte-identical to older ones.
    if (options.faults_set)
      std::fprintf(file_, ", \"faults_spec\": \"%s\"",
                   fault::to_string(options.faults).c_str());
    if (options.batch_set)
      std::fprintf(file_, ", \"batch_spec\": \"%s\"",
                   batch_spec_string(options.batch).c_str());
    if (options.serve_set)
      std::fprintf(file_, ", \"serve_spec\": \"%s\"",
                   serve::to_string(options.serve).c_str());
    if (options.plan_set)
      std::fprintf(file_, ", \"plan_mode\": \"%s\"", options.plan.c_str());
    if (options.certcache_set)
      std::fprintf(file_, ", \"certcache_spec\": \"%s\"",
                   certcache_spec_string(options).c_str());
    if (options.impute_set)
      std::fprintf(file_, ", \"impute_spec\": \"%s\"",
                   isomer::to_string(options.impute).c_str());
    std::fputs("}", file_);
    first_ = false;  // rows always follow the header element
  }
  ~JsonSink() {
    if (file_ != nullptr) {
      std::fputs("\n]\n", file_);
      std::fclose(file_);
    }
  }
  JsonSink(const JsonSink&) = delete;
  JsonSink& operator=(const JsonSink&) = delete;

  /// Emits one row per strategy for the sweep point at `x`. With `quality`
  /// set (a --faults plan was active) each row carries the answer-quality
  /// fields as well; without it the rows are byte-identical to the
  /// pre-fault-injection format.
  void rows(const char* figure, const char* x_name, double x,
            const std::vector<StrategyKind>& kinds,
            const std::vector<SeriesPoint>& points, bool quality = false) {
    if (file_ == nullptr) return;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      std::fprintf(
          file_,
          "%s\n  {\"figure\": \"%s\", \"x_name\": \"%s\", \"x\": %.17g, "
          "\"strategy\": \"%s\", \"total_s\": %.17g, \"response_s\": %.17g, "
          "\"bytes_mb\": %.17g, \"messages\": %.17g",
          first_ ? "" : ",", figure, x_name, x,
          std::string(to_string(kinds[k])).c_str(), points[k].total_s,
          points[k].response_s, points[k].bytes_mb, points[k].messages);
      if (quality)
        std::fprintf(
            file_,
            ", \"certain_rows\": %.17g, \"maybe_rows\": %.17g, "
            "\"unavailable_rows\": %.17g, \"dead_sites\": %.17g, "
            "\"retries\": %.17g",
            points[k].certain_rows, points[k].maybe_rows,
            points[k].unavailable_rows, points[k].dead_sites,
            points[k].retries);
      std::fputs("}", file_);
      first_ = false;
    }
  }

  /// Emits one preformatted row object — for harnesses whose row shape
  /// differs from the figure sweeps' (bench_serve). `body` is the object's
  /// contents without the enclosing braces.
  void raw_row(const std::string& body) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\n  {%s}", first_ ? "" : ",", body.c_str());
    first_ = false;
  }

 private:
  std::FILE* file_ = nullptr;
  bool first_ = true;
};

}  // namespace isomer::bench
