// A second domain scenario: three clinics sharing patients.
//
// Each clinic's schema covers what it measures — the downtown clinic stores
// blood panels, the lakeside clinic stores imaging, the university hospital
// stores both plus the attending physician's department. The same patient
// (identified by a national health id) may be registered at several clinics,
// so a screening query that no single clinic can answer — "patients with
// high glucose whose attending physician works in endocrinology and whose
// last scan was abnormal" — becomes answerable, or at least a *maybe*, once
// the federation combines isomeric patient records.
//
//   $ ./hospital_network
#include <iostream>

#include "isomer/core/strategy.hpp"
#include "isomer/federation/isomerism.hpp"
#include "isomer/query/printer.hpp"
#include "isomer/schema/integrator.hpp"

using namespace isomer;

namespace {

std::unique_ptr<ComponentDatabase> downtown() {
  ComponentSchema schema(DbId{1}, "downtown-clinic");
  schema.add_class("Physician")
      .add_attribute("name", PrimType::String)
      .add_attribute("department", PrimType::String);
  schema.add_class("Patient")
      .add_attribute("nhid", PrimType::Int)
      .add_attribute("name", PrimType::String)
      .add_attribute("glucose", PrimType::Real)
      .add_attribute("attending", ComplexType{"Physician"});
  auto db = std::make_unique<ComponentDatabase>(std::move(schema));
  const LOid chen = db->insert(
      "Physician", {{"name", "Dr. Chen"}, {"department", "endocrinology"}});
  const LOid royce = db->insert(
      "Physician", {{"name", "Dr. Royce"}, {"department", "cardiology"}});
  db->insert("Patient", {{"nhid", 1001},
                         {"name", "Ada"},
                         {"glucose", 9.1},
                         {"attending", LocalRef{chen}}});
  db->insert("Patient", {{"nhid", 1002},
                         {"name", "Bo"},
                         {"glucose", 5.0},
                         {"attending", LocalRef{royce}}});
  db->insert("Patient", {{"nhid", 1003},
                         {"name", "Cal"},
                         {"glucose", 8.4},
                         {"attending", LocalRef{chen}}});
  return db;
}

std::unique_ptr<ComponentDatabase> lakeside() {
  ComponentSchema schema(DbId{2}, "lakeside-clinic");
  schema.add_class("Patient")
      .add_attribute("nhid", PrimType::Int)
      .add_attribute("name", PrimType::String)
      .add_attribute("scan_result", PrimType::String);
  auto db = std::make_unique<ComponentDatabase>(std::move(schema));
  db->insert("Patient",
             {{"nhid", 1001}, {"name", "Ada"}, {"scan_result", "abnormal"}});
  db->insert("Patient",
             {{"nhid", 1003}, {"name", "Cal"}, {"scan_result", "normal"}});
  db->insert("Patient",
             {{"nhid", 1004}, {"name", "Dee"}, {"scan_result", "abnormal"}});
  return db;
}

std::unique_ptr<ComponentDatabase> university() {
  ComponentSchema schema(DbId{3}, "university-hospital");
  schema.add_class("Physician")
      .add_attribute("name", PrimType::String)
      .add_attribute("department", PrimType::String);
  schema.add_class("Patient")
      .add_attribute("nhid", PrimType::Int)
      .add_attribute("name", PrimType::String)
      .add_attribute("glucose", PrimType::Real)
      .add_attribute("scan_result", PrimType::String)
      .add_attribute("attending", ComplexType{"Physician"});
  auto db = std::make_unique<ComponentDatabase>(std::move(schema));
  const LOid osei = db->insert(
      "Physician", {{"name", "Dr. Osei"}, {"department", "endocrinology"}});
  db->insert("Patient", {{"nhid", 1004},
                         {"name", "Dee"},
                         {"glucose", 8.8},
                         {"attending", LocalRef{osei}}});  // scan null here
  db->insert("Patient", {{"nhid", 1005},
                         {"name", "Eli"},
                         {"glucose", 9.4},
                         {"scan_result", "abnormal"},
                         {"attending", LocalRef{osei}}});
  return db;
}

}  // namespace

int main() {
  auto db1 = downtown();
  auto db2 = lakeside();
  auto db3 = university();

  IntegrationSpec spec;
  ClassSpec& patient = spec.add_class("Patient");
  patient.constituents = {
      {DbId{1}, "Patient"}, {DbId{2}, "Patient"}, {DbId{3}, "Patient"}};
  patient.identity_attribute = "nhid";
  ClassSpec& physician = spec.add_class("Physician");
  physician.constituents = {{DbId{1}, "Physician"}, {DbId{3}, "Physician"}};
  physician.identity_attribute = "name";

  GlobalSchema global =
      integrate({&db1->schema(), &db2->schema(), &db3->schema()}, spec);
  GoidTable goids =
      detect_isomerism(global, {db1.get(), db2.get(), db3.get()});

  std::vector<std::unique_ptr<ComponentDatabase>> databases;
  databases.push_back(std::move(db1));
  databases.push_back(std::move(db2));
  databases.push_back(std::move(db3));
  Federation federation(std::move(global), std::move(databases),
                        std::move(goids));

  GlobalQuery screening;
  screening.range_class = "Patient";
  screening.select("name");
  screening.where("glucose", CompOp::Gt, 7.5);
  screening.where("attending.department", CompOp::Eq, "endocrinology");
  screening.where("scan_result", CompOp::Eq, "abnormal");
  std::cout << "screening query: " << to_sqlx(screening) << "\n\n";

  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport report =
        execute_strategy(kind, federation, screening);
    std::cout << "=== " << to_string(kind) << " ===\n" << report.result
              << "response " << to_milliseconds(report.response_ns)
              << " ms, total " << to_milliseconds(report.total_ns) << " ms\n\n";
  }

  std::cout
      << "Reading the answer:\n"
      << " * Ada is certain: downtown knows her glucose and physician, the\n"
      << "   lakeside scan is abnormal — certification joined the pieces.\n"
      << " * Dee is certain the same way (university + lakeside).\n"
      << " * Eli's record is complete at the university hospital alone.\n"
      << " * Bo and Cal are eliminated (normal glucose / normal scan).\n";
  return 0;
}
