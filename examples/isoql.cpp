// isoql — an interactive shell over a federation.
//
// Type SQL/X queries against the built-in university federation (the
// paper's running example) or the hospital demo; switch execution
// strategies, compare all of them, ask the advisor, and have maybe results
// explained.
//
//   $ ./isoql                  # university federation (paper Figs. 1-5)
//   $ ./isoql hospital         # the clinic scenario
//   $ ./isoql mydata.catalog   # any federation saved with .save
//   $ echo "Select X.name From Student X Where X.age>25" | ./isoql
//
// Commands:
//   <SQL/X query>        run under the current strategy
//   .strategy [CA|BL|PL|BLS|PLS]   show or set the strategy
//   .compare             rerun the last query under all five strategies
//   .advise              ask the advisor about the last query
//   .explain <goid>      explain one entity of the last query, e.g. .explain 4
//   .save <path>         write the federation as a catalog file
//   .schema              print the global schema
//   .goids               print the GOid mapping tables
//   .trace               print the last run's execution trace
//   .gantt               ASCII timeline of the last run (Fig. 8, live)
//   .help                this text
//   .quit                leave
#include <iostream>
#include <sstream>
#include <string>

#include "isomer/analytic/advisor.hpp"
#include "isomer/core/explain.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/federation/isomerism.hpp"
#include "isomer/io/catalog.hpp"
#include "isomer/query/parser.hpp"
#include "isomer/query/printer.hpp"
#include "isomer/sim/trace_export.hpp"
#include "isomer/schema/integrator.hpp"
#include "isomer/workload/paper_example.hpp"

namespace {

using namespace isomer;

/// The hospital scenario, reusable here (mirrors examples/hospital_network).
std::unique_ptr<Federation> make_hospital() {
  ComponentSchema s1(DbId{1}, "downtown");
  s1.add_class("Physician")
      .add_attribute("name", PrimType::String)
      .add_attribute("department", PrimType::String);
  s1.add_class("Patient")
      .add_attribute("nhid", PrimType::Int)
      .add_attribute("name", PrimType::String)
      .add_attribute("glucose", PrimType::Real)
      .add_attribute("attending", ComplexType{"Physician"});
  ComponentSchema s2(DbId{2}, "lakeside");
  s2.add_class("Patient")
      .add_attribute("nhid", PrimType::Int)
      .add_attribute("name", PrimType::String)
      .add_attribute("scan_result", PrimType::String);
  auto db1 = std::make_unique<ComponentDatabase>(std::move(s1));
  auto db2 = std::make_unique<ComponentDatabase>(std::move(s2));
  const LOid chen = db1->insert(
      "Physician", {{"name", "Dr. Chen"}, {"department", "endocrinology"}});
  db1->insert("Patient", {{"nhid", 1001},
                          {"name", "Ada"},
                          {"glucose", 9.1},
                          {"attending", LocalRef{chen}}});
  db1->insert("Patient", {{"nhid", 1002}, {"name", "Bo"}, {"glucose", 5.0}});
  db2->insert("Patient",
              {{"nhid", 1001}, {"name", "Ada"}, {"scan_result", "abnormal"}});
  db2->insert("Patient",
              {{"nhid", 1003}, {"name", "Cal"}, {"scan_result", "normal"}});

  IntegrationSpec spec;
  ClassSpec& patient = spec.add_class("Patient");
  patient.constituents = {{DbId{1}, "Patient"}, {DbId{2}, "Patient"}};
  patient.identity_attribute = "nhid";
  ClassSpec& physician = spec.add_class("Physician");
  physician.constituents = {{DbId{1}, "Physician"}};
  GlobalSchema schema = integrate({&db1->schema(), &db2->schema()}, spec);
  GoidTable goids = detect_isomerism(schema, {db1.get(), db2.get()});
  std::vector<std::unique_ptr<ComponentDatabase>> dbs;
  dbs.push_back(std::move(db1));
  dbs.push_back(std::move(db2));
  return std::make_unique<Federation>(std::move(schema), std::move(dbs),
                                      std::move(goids));
}

struct Shell {
  const Federation& federation;
  StrategyKind strategy = StrategyKind::BL;
  std::optional<GlobalQuery> last_query;
  std::optional<StrategyReport> last_report;

  void run_query(const GlobalQuery& query) {
    const StrategyReport report =
        execute_strategy(strategy, federation, query);
    std::cout << report.result;
    std::cout << report.result.certain_count() << " certain, "
              << report.result.maybe_count() << " maybe  ["
              << to_string(strategy) << ": response "
              << to_milliseconds(report.response_ns) << " ms, total "
              << to_milliseconds(report.total_ns) << " ms, "
              << report.bytes_transferred << " B shipped]\n";
    last_query = query;
    last_report = report;
  }

  void compare() {
    if (!last_query) {
      std::cout << "no query yet\n";
      return;
    }
    std::cout << "strategy   response[ms]   total[ms]       bytes\n";
    for (const StrategyKind kind : kAllStrategies) {
      const StrategyReport report =
          execute_strategy(kind, federation, *last_query);
      std::printf("%-10s %12.3f %11.3f %11llu\n",
                  std::string(to_string(kind)).c_str(),
                  to_milliseconds(report.response_ns),
                  to_milliseconds(report.total_ns),
                  static_cast<unsigned long long>(report.bytes_transferred));
    }
  }

  void advise() {
    if (!last_query) {
      std::cout << "no query yet\n";
      return;
    }
    const Advice advice = advise_strategy(federation, *last_query);
    for (const StrategyEstimate& estimate : advice.estimates)
      std::printf("%-4s est. total %.3f s, response %.3f s\n",
                  std::string(to_string(estimate.kind)).c_str(),
                  estimate.total_s, estimate.response_s);
    std::cout << advice.rationale << "\n";
  }

  void explain_entity(const std::string& arg) {
    if (!last_query) {
      std::cout << "no query yet\n";
      return;
    }
    std::uint64_t id = 0;
    std::istringstream in(arg[0] == 'g' ? arg.substr(1) : arg);
    if (!(in >> id)) {
      std::cout << "usage: .explain <goid>, e.g. .explain 4\n";
      return;
    }
    std::cout << explain(federation, *last_query, GOid{id})
                     .to_text(*last_query);
  }

  void dispatch(const std::string& line);
};

void Shell::dispatch(const std::string& line) {
  if (line.empty()) return;
  if (line[0] != '.') {
    try {
      run_query(parse_sqlx(line));
    } catch (const Error& e) {
      std::cout << "error: " << e.what() << "\n";
    }
    return;
  }
  std::istringstream in(line);
  std::string command, arg;
  in >> command;
  std::getline(in >> std::ws, arg);
  if (command == ".quit" || command == ".exit") std::exit(0);
  if (command == ".help") {
    std::cout << "SQL/X query | .strategy [CA|BL|PL|BLS|PLS] | .compare | "
                 ".advise | .explain <goid> | .save <path> | .schema | "
                 ".goids | .trace | .gantt | .quit\n";
  } else if (command == ".save") {
    if (arg.empty()) {
      std::cout << "usage: .save <path>\n";
    } else {
      try {
        save_catalog_file(federation, arg);
        std::cout << "saved " << arg << "\n";
      } catch (const Error& e) {
        std::cout << "error: " << e.what() << "\n";
      }
    }
  } else if (command == ".schema") {
    std::cout << federation.schema();
  } else if (command == ".goids") {
    std::cout << federation.goids();
  } else if (command == ".trace") {
    if (last_report)
      std::cout << last_report->trace;
    else
      std::cout << "no query yet\n";
  } else if (command == ".gantt") {
    if (last_report)
      std::cout << to_gantt(last_report->trace);
    else
      std::cout << "no query yet\n";
  } else if (command == ".strategy") {
    if (!arg.empty()) {
      bool found = false;
      for (const StrategyKind kind : kAllStrategies)
        if (arg == to_string(kind)) {
          strategy = kind;
          found = true;
        }
      if (!found) {
        std::cout << "unknown strategy '" << arg << "'\n";
        return;
      }
    }
    std::cout << "strategy: " << to_string(strategy) << "\n";
  } else if (command == ".compare") {
    compare();
  } else if (command == ".advise") {
    advise();
  } else if (command == ".explain") {
    explain_entity(arg);
  } else {
    std::cout << "unknown command " << command << " (try .help)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<Federation> owned;
  paper::UniversityExample university;
  const Federation* federation = nullptr;
  const std::string source = argc > 1 ? argv[1] : "";
  if (source == "hospital") {
    owned = make_hospital();
    federation = owned.get();
    std::cout << "loaded the hospital federation (Patient, Physician)\n";
  } else if (!source.empty()) {
    try {
      owned = load_catalog_file(source);
    } catch (const Error& e) {
      std::cerr << "cannot load " << source << ": " << e.what() << "\n";
      return 1;
    }
    federation = owned.get();
    std::cout << "loaded catalog " << source << "\n";
  } else {
    university = paper::make_university();
    federation = university.federation.get();
    std::cout << "loaded the university federation of the paper's running "
                 "example\n";
  }

  Shell shell{*federation};
  std::cout << "try: Select X.name, X.advisor.name From Student X Where "
               "X.address.city=Taipei\n(.help for commands)\n";
  std::string line;
  while (true) {
    std::cout << "isoql> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    shell.dispatch(line);
  }
  std::cout << "\n";
  return 0;
}
