// Quickstart: build two tiny object databases, integrate them, let the
// isomerism detector link objects representing the same real-world entity,
// and run one global query under every execution strategy.
//
//   $ ./quickstart
#include <iostream>

#include "isomer/core/strategy.hpp"
#include "isomer/federation/isomerism.hpp"
#include "isomer/query/printer.hpp"
#include "isomer/schema/integrator.hpp"

using namespace isomer;

int main() {
  // --- Component database A: products with a price but no stock level.
  ComponentSchema schema_a(DbId{1}, "warehouse-east");
  schema_a.add_class("Product")
      .add_attribute("sku", PrimType::Int)
      .add_attribute("name", PrimType::String)
      .add_attribute("price", PrimType::Real);
  auto db_a = std::make_unique<ComponentDatabase>(std::move(schema_a));
  db_a->insert("Product", {{"sku", 1}, {"name", "anvil"}, {"price", 99.5}});
  db_a->insert("Product", {{"sku", 2}, {"name", "rocket"}, {"price", 5.0}});
  db_a->insert("Product", {{"sku", 3}, {"name", "magnet"}});  // price null

  // --- Component database B: the same catalogue, but with stock levels and
  // no prices ("stock" is a missing attribute of warehouse-east's Product).
  ComponentSchema schema_b(DbId{2}, "warehouse-west");
  schema_b.add_class("Product")
      .add_attribute("sku", PrimType::Int)
      .add_attribute("name", PrimType::String)
      .add_attribute("stock", PrimType::Int);
  auto db_b = std::make_unique<ComponentDatabase>(std::move(schema_b));
  db_b->insert("Product", {{"sku", 1}, {"name", "anvil"}, {"stock", 12}});
  db_b->insert("Product", {{"sku", 2}, {"name", "rocket"}, {"stock", 0}});
  db_b->insert("Product", {{"sku", 4}, {"name", "tunnel"}, {"stock", 3}});

  // --- Integrate: one global Product class with the union of attributes.
  IntegrationSpec spec;
  ClassSpec& product = spec.add_class("Product");
  product.constituents = {{DbId{1}, "Product"}, {DbId{2}, "Product"}};
  product.identity_attribute = "sku";
  GlobalSchema global = integrate({&db_a->schema(), &db_b->schema()}, spec);
  std::cout << global << "\n";

  // --- Detect isomeric objects (same sku => same real-world product).
  GoidTable goids = detect_isomerism(global, {db_a.get(), db_b.get()});
  std::cout << "GOid mapping tables:\n" << goids << "\n";

  std::vector<std::unique_ptr<ComponentDatabase>> databases;
  databases.push_back(std::move(db_a));
  databases.push_back(std::move(db_b));
  Federation federation(std::move(global), std::move(databases),
                        std::move(goids));

  // --- A query touching both databases' exclusive attributes: in-stock
  // products cheaper than 50. Neither database can answer it alone.
  GlobalQuery query;
  query.range_class = "Product";
  query.select("name").select("price");
  query.where("price", CompOp::Lt, 50.0);
  query.where("stock", CompOp::Gt, 0);
  std::cout << "query: " << to_sqlx(query) << "\n\n";

  for (const StrategyKind kind : kAllStrategies) {
    const StrategyReport report = execute_strategy(kind, federation, query);
    std::cout << "=== " << to_string(kind) << " ===\n"
              << report.result
              << "simulated: response " << to_milliseconds(report.response_ns)
              << " ms, total " << to_milliseconds(report.total_ns)
              << " ms, " << report.bytes_transferred << " bytes shipped in "
              << report.messages << " messages\n\n";
  }
  // Expected: the rocket (price 5, stock 0) is eliminated; the anvil is too
  // expensive; the magnet is a maybe (its price is null and no isomeric
  // object supplies it); the tunnel is a maybe (price unknown in the west
  // warehouse and absent from the east one).
  return 0;
}
