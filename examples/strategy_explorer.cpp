// Strategy explorer: which execution strategy should a federation use?
//
// Sweeps the two parameters the paper found decisive — the number of
// component databases (Fig. 10) and the local-predicate selectivity
// (Fig. 11) — over generated Table-2 workloads, compares the strategies with
// both the discrete-event simulator and the closed-form analytic model, and
// prints a recommendation per regime.
//
//   $ ./strategy_explorer [samples] [scale]
#include <cstdio>
#include <cstdlib>

#include "isomer/analytic/model.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/workload/synth.hpp"

using namespace isomer;

namespace {

struct Outcome {
  double total[3] = {0, 0, 0};
  double response[3] = {0, 0, 0};
};

constexpr StrategyKind kKinds[3] = {StrategyKind::CA, StrategyKind::BL,
                                    StrategyKind::PL};

Outcome measure(const ParamConfig& config, int samples, std::uint64_t seed) {
  Rng rng(seed);
  StrategyOptions options;
  options.record_trace = false;
  Outcome outcome;
  for (int s = 0; s < samples; ++s) {
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    for (int k = 0; k < 3; ++k) {
      const StrategyReport report = execute_strategy(
          kKinds[k], *synth.federation, synth.query, options);
      outcome.total[k] += to_seconds(report.total_ns) / samples;
      outcome.response[k] += to_seconds(report.response_ns) / samples;
    }
  }
  return outcome;
}

std::string best(const double (&xs)[3]) {
  int argmin = 0;
  for (int k = 1; k < 3; ++k)
    if (xs[k] < xs[argmin]) argmin = k;
  return std::string(to_string(kKinds[argmin]));
}

}  // namespace

int main(int argc, char** argv) {
  const int samples = argc > 1 ? std::atoi(argv[1]) : 6;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  std::printf("sweeping N_db (simulated, %d samples/point):\n", samples);
  std::printf("%-6s %28s %28s  %s\n", "N_db", "total CA/BL/PL [s]",
              "response CA/BL/PL [s]", "winner(total,resp)");
  for (const std::size_t n_db : {2ul, 4ul, 6ul, 8ul}) {
    ParamConfig config;
    config.n_db = n_db;
    config.n_objects = {static_cast<int>(5000 * scale),
                        static_cast<int>(6000 * scale)};
    const Outcome o = measure(config, samples, 77);
    std::printf("%-6zu %8.2f %9.2f %9.2f %8.2f %9.2f %9.2f   %s, ", n_db,
                o.total[0], o.total[1], o.total[2], o.response[0],
                o.response[1], o.response[2], best(o.total).c_str());
    std::printf("%s\n", best(o.response).c_str());
  }

  std::printf("\nsweeping local-predicate selectivity "
              "(simulated, %d samples/point):\n", samples);
  std::printf("%-6s %28s %28s  %s\n", "sel", "total CA/BL/PL [s]",
              "response CA/BL/PL [s]", "winner(total,resp)");
  for (const double sel : {0.1, 0.45, 0.9}) {
    ParamConfig config;
    config.n_objects = {static_cast<int>(1000 * scale) + 1,
                        static_cast<int>(2000 * scale) + 1};
    config.forced_root_selectivity = sel;
    const Outcome o = measure(config, samples, 78);
    std::printf("%-6.2f %8.2f %9.2f %9.2f %8.2f %9.2f %9.2f   %s, ", sel,
                o.total[0], o.total[1], o.total[2], o.response[0],
                o.response[1], o.response[2], best(o.total).c_str());
    std::printf("%s\n", best(o.response).c_str());
  }

  std::printf("\nanalytic estimate at full paper scale (no simulation):\n");
  ParamConfig full;
  Rng rng(79);
  double total[3] = {0, 0, 0};
  for (int s = 0; s < 200; ++s) {
    const SampleParams sample = draw_sample(full, rng);
    for (int k = 0; k < 3; ++k)
      total[k] += estimate_strategy(kKinds[k], sample).total_s / 200.0;
  }
  std::printf("  CA %.1f s, BL %.1f s, PL %.1f s -> recommend %s\n", total[0],
              total[1], total[2], best(total).c_str());

  std::printf(
      "\nrule of thumb (matches the paper's conclusion): BL is the best\n"
      "all-round strategy; CA only wins on tiny extents where its single\n"
      "round trip beats the localized protocol's extra hops.\n");
  return 0;
}
