// The paper's running example, end to end (Figures 1-8).
//
// Reconstructs DB1/DB2/DB3 of Fig. 1/4, the integrated global schema of
// Fig. 2, the GOid mapping tables of Fig. 5, query Q1 of Fig. 3 with its
// derived local queries Q1'/Q1'', the materialized global classes of Fig. 6,
// and runs all three strategies, printing the certified answers (Fig. 7) and
// the executing flows (Fig. 8).
//
//   $ ./university_federation
#include <iostream>

#include "isomer/core/strategy.hpp"
#include "isomer/federation/materializer.hpp"
#include "isomer/query/printer.hpp"
#include "isomer/schema/translate.hpp"
#include "isomer/workload/paper_example.hpp"

using namespace isomer;

int main() {
  const paper::UniversityExample example = paper::make_university();
  const Federation& federation = *example.federation;
  const GlobalQuery query = paper::q1();

  std::cout << "=== Figure 2: the constructed global schema ===\n"
            << federation.schema() << "\n";

  std::cout << "=== Figure 5: the GOid mapping tables ===\n"
            << federation.goids() << "\n";

  std::cout << "=== Figure 3: Q1 and its local queries ===\n"
            << "Q1:   " << to_sqlx(query) << "\n";
  for (const DbId db : local_query_sites(federation.schema(), query)) {
    const auto local = derive_local_query(federation.schema(), query, db);
    std::cout << "Q1@DB" << db.value() << ": " << to_sqlx(*local) << "\n";
  }
  std::cout << "\n";

  std::cout << "=== Figure 6: materialized global classes (outerjoin over "
               "GOids) ===\n";
  const MaterializedView view = materialize(
      federation, classes_involved(federation.schema(), query));
  for (const char* class_name : {"Student", "Teacher"}) {
    const MaterializedExtent& extent = view.extent(class_name);
    std::cout << class_name << ":\n";
    for (const MaterializedObject& obj : extent.objects()) {
      std::cout << "  g" << obj.id.value() << " {";
      const ClassDef& def = extent.cls().def();
      for (std::size_t a = 0; a < def.attribute_count(); ++a)
        std::cout << " " << def.attribute(a).name << "=" << obj.values[a];
      std::cout << " }\n";
    }
  }
  std::cout << "\n";

  std::cout << "=== Figures 7/8: strategy execution ===\n";
  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport report = execute_strategy(kind, federation, query);
    std::cout << "--- " << to_string(kind) << " (phases:";
    for (const Phase phase : report.trace.phase_order())
      std::cout << " " << to_string(phase);
    std::cout << ") ---\n" << report.result;
    std::cout << "response " << to_milliseconds(report.response_ns)
              << " ms, total " << to_milliseconds(report.total_ns) << " ms\n\n";
  }

  std::cout << "The paper's answer: (Hedy, Kelly) certain; (Tony, Haley) "
               "maybe.\n";
  return 0;
}
