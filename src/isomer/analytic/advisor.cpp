#include "isomer/analytic/advisor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "isomer/common/parallel.hpp"
#include "isomer/common/rng.hpp"
#include "isomer/core/checks.hpp"
#include "isomer/core/exec_common.hpp"
#include "isomer/core/local_exec.hpp"
#include "isomer/federation/materializer.hpp"
#include "isomer/schema/translate.hpp"

namespace isomer {

namespace {

double per_byte_s(SimTime rate_ns) { return static_cast<double>(rate_ns) / 1e9; }

/// Per-database quantities measured by sampling.
struct DbProfile {
  AdvisorStats::PerDb stats;
  double stored_root_bytes = 0;     ///< one root object on disk
  double avg_branch_bytes = 0;      ///< one navigated branch object on disk
  double row_bytes = 0;             ///< one shipped result row on the wire
};

DbProfile profile_database(const Federation& federation,
                           const GlobalQuery& query, DbId db,
                           const AdvisorOptions& options, Rng& rng) {
  const GlobalSchema& schema = federation.schema();
  const GlobalClass& range = schema.cls(query.range_class);
  const auto constituent = range.constituent_in(db);
  expects(constituent.has_value(), "profiling a non-root database");
  const ComponentDatabase& database = federation.db(db);
  const std::string& root_class =
      range.constituents()[*constituent].local_class;
  const auto& objects = database.extent(root_class).objects();

  DbProfile profile;
  profile.stats.db = db;
  profile.stats.root_objects = objects.size();
  profile.stored_root_bytes = static_cast<double>(
      options.costs.stored_object_bytes(database.schema().cls(root_class)));

  // Average stored width over the branch classes the query navigates —
  // what one assistant-check fetch or nested navigation costs on disk.
  {
    double total = 0;
    std::size_t count = 0;
    for (const std::string& class_name :
         classes_involved(schema, query)) {
      if (class_name == query.range_class) continue;
      for (const DbId other : federation.db_ids()) {
        const GlobalClass& cls = schema.cls(class_name);
        if (const auto c = cls.constituent_in(other)) {
          total += static_cast<double>(options.costs.stored_object_bytes(
              federation.db(other).schema().cls(
                  cls.constituents()[*c].local_class)));
          ++count;
        }
      }
    }
    profile.avg_branch_bytes = count > 0 ? total / static_cast<double>(count)
                                         : profile.stored_root_bytes;
  }

  if (objects.empty()) return profile;
  const std::size_t k = std::min(options.sample_size, objects.size());
  const std::vector<std::size_t> picks =
      rng.sample_indices(objects.size(), k);
  profile.stats.sampled = k;

  std::size_t survivors = 0, unknowns = 0, nested_rows = 0, nested_all = 0;
  std::size_t assistant_probes = 0, assistants = 0;
  AccessMeter nav_meter;
  FetchCache cache;  // shared across the sample, like one local execution
  for (const std::size_t pick : picks) {
    const Object& obj = objects[pick];
    std::vector<Truth> truths;
    std::vector<UnsolvedItem> items;
    truths.reserve(query.predicates.size());
    for (std::size_t p = 0; p < query.predicates.size(); ++p) {
      const LocalPredOutcome outcome = eval_global_predicate_at(
          federation, db, obj, range, query.predicates[p], 0, &nav_meter,
          &cache);
      truths.push_back(outcome.truth);
      if (is_unknown(outcome.truth) && outcome.step > 0) {
        const auto entity = federation.goids().goid_of(outcome.holder);
        if (entity)
          items.push_back(UnsolvedItem{*entity, p, outcome.step, *entity});
      }
    }
    nested_all += items.size();
    const Truth overall = query.combine(truths);
    if (!is_false(overall)) {
      ++survivors;
      nested_rows += items.size();
      unknowns += static_cast<std::size_t>(
          std::count(truths.begin(), truths.end(), Truth::Unknown));
    }
    // Assistant fan-out for the sampled items.
    for (const UnsolvedItem& item : items) {
      ++assistant_probes;
      const CheckPlan plan = plan_checks(federation, query, db, {item});
      assistants += plan.task_count();
    }
  }

  const double dk = static_cast<double>(k);
  profile.stats.survive_rate = static_cast<double>(survivors) / dk;
  profile.stats.unknowns_per_row =
      survivors > 0 ? static_cast<double>(unknowns) /
                          static_cast<double>(survivors)
                    : 0.0;
  profile.stats.nested_items_per_object =
      static_cast<double>(nested_all) / dk;
  profile.stats.nested_items_per_row =
      survivors > 0 ? static_cast<double>(nested_rows) /
                          static_cast<double>(survivors)
                    : 0.0;
  profile.stats.assistants_per_item =
      assistant_probes > 0 ? static_cast<double>(assistants) /
                                 static_cast<double>(assistant_probes)
                           : 0.0;
  profile.stats.fetches_per_object =
      static_cast<double>(nav_meter.objects_fetched) / dk;

  const CostParams& c = options.costs;
  profile.row_bytes =
      static_cast<double>(c.loid_bytes + c.goid_bytes) +
      static_cast<double>(query.targets.size()) *
          static_cast<double>(c.attr_bytes) +
      profile.stats.unknowns_per_row *
          static_cast<double>(c.goid_bytes + 8);
  return profile;
}

}  // namespace

Advice advise_strategy(const Federation& federation, const GlobalQuery& query,
                       const AdvisorOptions& options) {
  const GlobalSchema& schema = federation.schema();
  // Resolve up front: malformed queries fail loudly.
  for (const Predicate& pred : query.predicates)
    (void)resolve_path(schema.lookup(), query.range_class, pred.path);
  for (const PathExpr& target : query.targets)
    (void)resolve_path(schema.lookup(), query.range_class, target);

  const CostParams& c = options.costs;
  const double disk_s = per_byte_s(c.disk_ns_per_byte);
  const double net_s = per_byte_s(c.net_ns_per_byte);
  const double cmp_s = per_byte_s(c.cpu_ns_per_cmp);

  Advice advice;

  // ---------------- CA: exact catalog arithmetic, no sampling needed.
  const auto involved = detail::involved_attributes(schema, query);
  double ca_disk = 0, ca_net = 0, ca_cmp = 0, ca_max_local = 0;
  double total_objects = 0;
  for (const DbId db : federation.db_ids()) {
    double disk_i = 0, cmp_i = 0;
    for (const std::string& class_name : classes_involved(schema, query)) {
      const GlobalClass& cls = schema.cls(class_name);
      const auto constituent = cls.constituent_in(db);
      if (!constituent) continue;
      const auto& extent = federation.db(db).extent(
          cls.constituents()[*constituent].local_class);
      disk_i += static_cast<double>(extent.size()) *
                static_cast<double>(c.stored_object_bytes(
                    federation.db(db).schema().cls(
                        cls.constituents()[*constituent].local_class)));
      cmp_i += static_cast<double>(extent.size());
      total_objects += static_cast<double>(extent.size());
    }
    ca_disk += disk_i;
    ca_cmp += cmp_i;
    ca_net += static_cast<double>(
        detail::ca_projected_bytes(federation, db, involved, c));
    ca_max_local = std::max(ca_max_local, disk_i * disk_s + cmp_i * cmp_s);
  }
  const double ca_global_cmp =
      2.0 * total_objects +
      static_cast<double>(federation.goids().entity_count());
  StrategyEstimate ca{StrategyKind::CA, 0, 0, ca_net};
  ca.total_s =
      ca_disk * disk_s + ca_net * net_s + (ca_cmp + ca_global_cmp) * cmp_s;
  ca.response_s = ca_max_local + ca_net * net_s + ca_global_cmp * cmp_s;

  // ---------------- BL / PL: sampled profiles per home database. Databases
  // profile independently on `options.jobs` threads; each site's sample
  // draws from its own derived RNG stream, so the profiles (and hence the
  // advice) do not depend on the thread count.
  const std::vector<DbId> sites = local_query_sites(schema, query);
  std::vector<DbProfile> profiles(sites.size());
  double rows_total = 0;
  parallel_for_each(options.jobs <= 0 ? 0u
                                      : static_cast<unsigned>(options.jobs),
                    sites.size(), [&](std::size_t i) {
                      Rng rng(derive_stream(options.seed, i));
                      profiles[i] = profile_database(federation, query,
                                                     sites[i], options, rng);
                    });
  for (const DbProfile& profile : profiles)
    advice.stats.dbs.push_back(profile.stats);

  const auto localized = [&](bool eager) {
    double disk = 0, net = 0, cmp = 0, max_local = 0, check_disk = 0;
    double tasks_total = 0;
    rows_total = 0;
    for (const DbProfile& profile : profiles) {
      const double n = static_cast<double>(profile.stats.root_objects);
      const double rows = n * profile.stats.survive_rate;
      rows_total += rows;
      const double disk_i =
          n * (profile.stored_root_bytes +
               profile.stats.fetches_per_object * profile.avg_branch_bytes);
      const double cmp_i =
          n * static_cast<double>(query.predicates.size()) + rows;
      const double item_insts =
          eager ? n * profile.stats.nested_items_per_object
                : rows * profile.stats.nested_items_per_row;
      const double tasks = item_insts * profile.stats.assistants_per_item;
      tasks_total += tasks;
      check_disk += tasks * profile.avg_branch_bytes;
      disk += disk_i;
      cmp += cmp_i + item_insts * 2.0 + tasks;
      net += rows * profile.row_bytes;
      max_local = std::max(max_local, disk_i * disk_s + cmp_i * cmp_s);
    }
    // Batched executors ship only the GOid semijoin per task; unbatched
    // ones ship the full check task record.
    const double task_bytes =
        options.batch.enabled
            ? static_cast<double>(c.semijoin_task_bytes(false))
            : static_cast<double>(c.check_task_bytes());
    const double check_net =
        tasks_total * (task_bytes + static_cast<double>(c.verdict_bytes()));
    const double certify_cmp =
        rows_total * (static_cast<double>(query.predicates.size()) + 1.0) +
        tasks_total;
    StrategyEstimate est{eager ? StrategyKind::PL : StrategyKind::BL, 0, 0,
                         net + check_net};
    est.total_s = (disk + check_disk) * disk_s + (net + check_net) * net_s +
                  (cmp + certify_cmp) * cmp_s;
    const double check_s =
        (check_disk / static_cast<double>(std::max<std::size_t>(
                          1, profiles.size()))) * disk_s +
        check_net * net_s;
    est.response_s = (eager ? std::max(max_local, check_s)
                            : max_local + check_s) +
                     net * net_s + certify_cmp * cmp_s;
    return est;
  };

  advice.estimates = {ca, localized(false), localized(true)};

  const auto best = [&](auto key) {
    return std::min_element(advice.estimates.begin(), advice.estimates.end(),
                            [&](const auto& a, const auto& b) {
                              return key(a) < key(b);
                            })
        ->kind;
  };
  advice.best_total =
      best([](const StrategyEstimate& e) { return e.total_s; });
  advice.best_response =
      best([](const StrategyEstimate& e) { return e.response_s; });

  std::ostringstream rationale;
  rationale.setf(std::ios::fixed);
  rationale.precision(2);
  rationale << "CA ships every involved extent (" << ca_net / 1e6
            << " MB projected) and pays " << ca_disk * disk_s
            << " s of component disk; the localized strategies ship "
            << advice.estimates[1].bytes / 1e6 << " MB of rows and checks ("
            << "mean survive rate "
            << (profiles.empty()
                    ? 0.0
                    : std::accumulate(profiles.begin(), profiles.end(), 0.0,
                                      [](double acc, const DbProfile& p) {
                                        return acc + p.stats.survive_rate;
                                      }) /
                          static_cast<double>(profiles.size()))
            << "). Best total: " << to_string(advice.best_total)
            << "; best response: " << to_string(advice.best_response) << ".";
  advice.rationale = rationale.str();
  return advice;
}

}  // namespace isomer
