// Strategy advisor.
//
// The analytic model (model.hpp) prices strategies from Table-2 *parameter
// samples*; real deployments have a federation and a query, not parameters.
// The advisor bridges the gap the way a query optimizer would: exact
// catalog quantities (extent sizes, stored object widths, projection
// widths) are computed from the schemas, and data-dependent quantities
// (local selectivity, unsolved rates, assistant fan-out, navigation
// footprint) are estimated by evaluating the query on a small random sample
// of each database's root extent. The resulting per-strategy cost estimates
// use the same Table-1 arithmetic as the simulator.
//
// The advisor never moves simulated time — it is a planning-time tool; its
// own (real) cost is O(sample_size) evaluations per database.
#pragma once

#include <string>
#include <vector>

#include "isomer/core/strategy.hpp"

namespace isomer {

struct AdvisorOptions {
  CostParams costs{};
  /// Root objects sampled per database (capped by the extent size).
  std::size_t sample_size = 100;
  std::uint64_t seed = 1;
  /// Threads profiling databases concurrently (0 = hardware concurrency).
  /// Each database's sample uses the stream derive_stream(seed, site index),
  /// so the advice is identical at every jobs value.
  int jobs = 1;
  /// Price the plan as the batched executors would ship it: check tasks
  /// shrink to semijoin GOid shipping (CostParams::semijoin_task_bytes)
  /// instead of full check_task_bytes.
  BatchOptions batch{};
};

/// One strategy's estimated costs (seconds of simulated time).
struct StrategyEstimate {
  StrategyKind kind = StrategyKind::CA;
  double total_s = 0;
  double response_s = 0;
  double bytes = 0;
};

/// What the advisor measured, exposed for diagnostics and tests.
struct AdvisorStats {
  struct PerDb {
    DbId db{};
    std::size_t root_objects = 0;
    std::size_t sampled = 0;
    double survive_rate = 0;        ///< fraction passing the local formula
    double unknowns_per_row = 0;    ///< unsolved predicates per shipped row
    double nested_items_per_object = 0;  ///< eager (PL) item rate
    double nested_items_per_row = 0;     ///< lazy (BL) item rate
    double assistants_per_item = 0;      ///< capable isomers per item
    double fetches_per_object = 0;       ///< distinct navigations, sampled
  };
  std::vector<PerDb> dbs;
};

struct Advice {
  std::vector<StrategyEstimate> estimates;  ///< CA, BL, PL order
  StrategyKind best_total = StrategyKind::BL;
  StrategyKind best_response = StrategyKind::BL;
  AdvisorStats stats;
  std::string rationale;  ///< one-paragraph human-readable explanation
};

/// Estimates all three paper strategies for `query` on `federation` and
/// recommends one per objective. Throws QueryError when the query does not
/// resolve against the global schema.
[[nodiscard]] Advice advise_strategy(const Federation& federation,
                                     const GlobalQuery& query,
                                     const AdvisorOptions& options = {});

}  // namespace isomer
