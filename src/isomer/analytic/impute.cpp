#include "isomer/analytic/impute.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "isomer/common/error.hpp"
#include "isomer/federation/federation.hpp"
#include "isomer/query/query.hpp"

namespace isomer {

namespace {

/// MCAR gate: a missing rate diverging across the covariate split by more
/// than this refutes missing-completely-at-random, so the marginal estimate
/// would be biased and the null stays un-upgradable under mech=mcar.
constexpr double kMcarTolerance = 0.2;
/// A MAR stratum with fewer observations than this falls back to the
/// marginal histogram — a handful of values is noise, not a distribution.
constexpr std::uint64_t kMinStratum = 8;

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw ImputeError("malformed --impute spec '" + std::string(spec) + "': " +
                    why);
}

double parse_probability(std::string_view spec, std::string_view text) {
  char* end = nullptr;
  const std::string owned(text);
  const double value = std::strtod(owned.c_str(), &end);
  // The negated form also catches NaN, whose every comparison is false.
  if (end == owned.c_str() || *end != '\0' || !(value >= 0 && value <= 1))
    bad_spec(spec, "expected a real in [0, 1], got '" + owned + "'");
  return value;
}

/// Covariate bucket of a value relative to the split: 0 for `v <= split`,
/// 1 for `v > split`, under the exact ValueOrder (total over every kind,
/// unlike three-valued compare_less which refuses e.g. bools).
std::size_t bucket_of(const Value& split, const Value& v) {
  return ValueOrder{}(split, v) ? 1 : 0;
}

/// Smoothed probability that a value drawn from the histogram satisfies the
/// predicate's comparison: (sat + 1) / (n + 2). An empty histogram (e.g. a
/// complex terminal attribute, never histogrammed) degenerates to 1/2 —
/// maximally uninformative, never confident.
double satisfaction_rate(const ValueHistogram& hist, const Predicate& pred) {
  std::uint64_t n = 0, sat = 0;
  for (const auto& [value, count] : hist) {
    n += count;
    if (is_true(apply(pred.op, value, pred.literal))) sat += count;
  }
  return (static_cast<double>(sat) + 1.0) / (static_cast<double>(n) + 2.0);
}

}  // namespace

std::string_view to_string(ImputeMechanism mech) noexcept {
  return mech == ImputeMechanism::MAR ? "mar" : "mcar";
}

ImputeSpec parse_impute_spec(std::string_view spec) {
  if (spec.empty()) bad_spec(spec, "empty specification");
  if (spec == "off") return ImputeSpec{};

  ImputeSpec out;
  out.enabled = true;
  std::set<std::string, std::less<>> seen;
  const auto note = [&](std::string_view key) {
    if (!seen.emplace(key).second)
      bad_spec(spec, "duplicate key '" + std::string(key) + "'");
  };
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::string_view item =
        spec.substr(begin, comma == std::string_view::npos
                               ? std::string_view::npos
                               : comma - begin);
    begin = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) bad_spec(spec, "empty item");
    if (item == "off") bad_spec(spec, "'off' must stand alone");

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      bad_spec(spec, "item '" + std::string(item) + "' has no '='");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (value.empty())
      bad_spec(spec, "item '" + std::string(item) + "' has no value");

    if (key == "thresh") {
      note(key);
      out.threshold = parse_probability(spec, value);
    } else if (key == "mech") {
      note(key);
      if (value == "mcar")
        out.mechanism = ImputeMechanism::MCAR;
      else if (value == "mar")
        out.mechanism = ImputeMechanism::MAR;
      else
        bad_spec(spec, "mech wants 'mcar' or 'mar'");
    } else {
      bad_spec(spec, "unknown key '" + std::string(key) + "'");
    }
  }
  if (seen.find("thresh") == seen.end())
    bad_spec(spec, "missing required key 'thresh'");
  return out;
}

std::string to_string(const ImputeSpec& spec) {
  if (!spec.enabled) return "off";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", spec.threshold);
  return "thresh=" + std::string(buf) +
         ",mech=" + std::string(to_string(spec.mechanism));
}

ImputeModel ImputeModel::build(const Federation& federation) {
  ImputeModel model;
  model.epoch_ = federation.epoch();
  const GoidTable& goids = federation.goids();
  for (const GlobalClass& gc : federation.schema().classes()) {
    const ClassDef& def = gc.def();
    const std::size_t attrs = def.attribute_count();
    std::vector<AttrEstimator> est(attrs);
    for (std::size_t a = 0; a < attrs; ++a)
      est[a].complex_ref =
          std::holds_alternative<ComplexType>(def.attribute(a).type);

    // Per-constituent resolution: the extent plus the global-attribute ->
    // local-slot map (nullopt when that constituent holds the attribute as
    // schema-level missing).
    struct View {
      const Extent* extent;
      std::vector<std::optional<std::size_t>> slot;
    };
    std::vector<View> views;
    views.reserve(gc.constituents().size());
    for (std::size_t ci = 0; ci < gc.constituents().size(); ++ci) {
      const Constituent& cons = gc.constituents()[ci];
      View view;
      view.extent = &federation.db(cons.db).extent(cons.local_class);
      view.slot.resize(attrs);
      for (std::size_t a = 0; a < attrs; ++a) {
        const std::optional<std::string>& local = gc.local_attr(ci, a);
        if (local.has_value())
          view.slot[a] = view.extent->cls().find_attribute(*local);
      }
      views.push_back(std::move(view));
    }

    // Entity-level visitor: outerjoin each entity's isomers through the
    // GOid table exactly the way certification merges rows (ascending DbId,
    // first non-null wins), exposing the merged value plus the per-attr gap
    // flags. Buffers are reused across entities.
    std::vector<Value> merged(attrs);
    std::vector<unsigned char> defined(attrs);
    std::vector<unsigned char> null_at(attrs);
    std::vector<unsigned char> absent_at(attrs);
    std::vector<std::uint32_t> copy_total(attrs);
    std::vector<std::uint32_t> copy_null(attrs);
    const auto each_entity = [&](bool count_scan, auto&& visit) {
      for (const GOid entity : goids.entities_of(gc.name())) {
        std::fill(merged.begin(), merged.end(), Value{});
        std::fill(defined.begin(), defined.end(), 0);
        std::fill(null_at.begin(), null_at.end(), 0);
        std::fill(absent_at.begin(), absent_at.end(), 0);
        std::fill(copy_total.begin(), copy_total.end(), 0);
        std::fill(copy_null.begin(), copy_null.end(), 0);
        for (const LOid& isomer : goids.isomers_of(entity)) {
          const std::optional<std::size_t> ci = gc.constituent_in(isomer.db);
          if (!ci.has_value()) continue;
          const View& view = views[*ci];
          const Object* obj = view.extent->find(isomer);
          if (obj == nullptr) continue;
          if (count_scan) ++model.stats_.objects_scanned;
          for (std::size_t a = 0; a < attrs; ++a) {
            if (!view.slot[a].has_value()) {
              absent_at[a] = 1;
              continue;
            }
            defined[a] = 1;
            ++copy_total[a];
            const Value& v = obj->value(*view.slot[a]);
            if (v.is_null()) {
              null_at[a] = 1;
              ++copy_null[a];
            } else if (merged[a].is_null()) {
              merged[a] = v;
            }
          }
        }
        visit();
      }
    };

    // Pass 1: entity-level marginal and gap tallies — counts, histograms,
    // numeric sums over the merged values.
    std::vector<double> sums(attrs, 0.0);
    std::vector<std::uint64_t> numeric_n(attrs, 0);
    each_entity(true, [&] {
      for (std::size_t a = 0; a < attrs; ++a) {
        if (!defined[a]) {
          ++est[a].absent;
        } else if (merged[a].is_null()) {
          ++est[a].nulls;
        } else {
          ++est[a].observed;
          if (merged[a].is_primitive()) {
            ++est[a].histogram[merged[a]];
            if (merged[a].is_numeric()) {
              sums[a] += merged[a].as_number();
              ++numeric_n[a];
            }
          }
        }
        if (null_at[a]) {
          ++est[a].null_gap;
          if (!merged[a].is_null()) ++est[a].null_gap_nonnull;
        }
        if (absent_at[a]) {
          ++est[a].absent_gap;
          if (defined[a]) ++est[a].absent_gap_defined;
        }
        est[a].copies += copy_total[a];
        est[a].copies_null += copy_null[a];
        // Injection-rate evidence: with two or more stored copies and at
        // least one non-null among them, the canonical value provably
        // exists, so every null copy here was injected. Single-copy
        // entities are excluded — conditioning on "some copy non-null"
        // would make their contribution identically zero and bias r down.
        if (copy_total[a] >= 2 && copy_null[a] < copy_total[a]) {
          est[a].inj_trials += copy_total[a];
          est[a].inj_nulls += copy_null[a];
        }
      }
    });

    // Plug-in point estimates off the histograms.
    for (std::size_t a = 0; a < attrs; ++a) {
      if (numeric_n[a] > 0)
        est[a].mean = sums[a] / static_cast<double>(numeric_n[a]);
      std::uint64_t total = 0;
      for (const auto& [value, count] : est[a].histogram) {
        total += count;
        if (count > est[a].mode_count) {
          est[a].mode = value;
          est[a].mode_count = count;
        }
      }
      if (total > 0) {
        const std::uint64_t target = (total - 1) / 2;  // lower median
        std::uint64_t cumulative = 0;
        for (const auto& [value, count] : est[a].histogram) {
          cumulative += count;
          if (cumulative > target) {
            est[a].median = value;
            break;
          }
        }
      }
    }

    // Pass 2: mechanism evidence. For every (attribute, primitive covariate)
    // pair, count the entities with a stored null at the attribute (the
    // injectable, imputable gap) in the two buckets of the covariate's
    // median split; the covariate with the largest missing-rate divergence
    // becomes the attribute's mechanism witness.
    std::vector<std::size_t> candidates;
    for (std::size_t c = 0; c < attrs; ++c)
      if (std::holds_alternative<PrimType>(def.attribute(c).type) &&
          !est[c].histogram.empty())
        candidates.push_back(c);
    // counters[a * attrs + c] = {miss_lo, total_lo, miss_hi, total_hi}.
    std::vector<std::array<std::uint64_t, 4>> counters(
        attrs * attrs, std::array<std::uint64_t, 4>{});
    if (!candidates.empty()) {
      each_entity(false, [&] {
        for (const std::size_t c : candidates) {
          if (merged[c].is_null()) continue;
          const std::size_t b = bucket_of(est[c].median, merged[c]);
          for (std::size_t a = 0; a < attrs; ++a) {
            if (a == c || !defined[a]) continue;
            auto& cell = counters[a * attrs + c];
            ++cell[2 * b + 1];
            if (null_at[a]) ++cell[2 * b];
          }
        }
      });
      for (std::size_t a = 0; a < attrs; ++a) {
        for (const std::size_t c : candidates) {
          if (a == c) continue;
          const auto& cell = counters[a * attrs + c];
          if (cell[1] == 0 || cell[3] == 0) continue;
          const double divergence =
              std::abs(static_cast<double>(cell[0]) /
                           static_cast<double>(cell[1]) -
                       static_cast<double>(cell[2]) /
                           static_cast<double>(cell[3]));
          if (divergence > est[a].divergence) {
            est[a].divergence = divergence;
            est[a].covariate = c;
            est[a].covariate_split = est[c].median;
          }
        }
      }
    }

    // Pass 3: stratified value histograms for the chosen covariates — the
    // MAR estimate's conditional distribution.
    bool any_covariate = false;
    for (std::size_t a = 0; a < attrs; ++a)
      any_covariate = any_covariate || est[a].covariate.has_value();
    if (any_covariate) {
      each_entity(false, [&] {
        for (std::size_t a = 0; a < attrs; ++a) {
          if (!est[a].covariate.has_value()) continue;
          const std::size_t c = *est[a].covariate;
          if (merged[a].is_null() || !merged[a].is_primitive() ||
              merged[c].is_null())
            continue;
          const std::size_t b = bucket_of(est[a].covariate_split, merged[c]);
          ++est[a].stratum_hist[b][merged[a]];
          ++est[a].stratum_n[b];
        }
      });
    }

    model.stats_.estimators += attrs;
    model.by_class_.emplace(gc.name(), std::move(est));
  }
  return model;
}

const AttrEstimator* ImputeModel::estimator(std::string_view global_class,
                                            std::size_t attr) const {
  const auto it = by_class_.find(global_class);
  if (it == by_class_.end() || attr >= it->second.size()) return nullptr;
  return &it->second[attr];
}

ImputeOracle::Decision ImputeModel::decide(const Federation& federation,
                                           const GlobalQuery& query,
                                           GOid item, std::size_t predicate,
                                           std::size_t step, DbId home,
                                           bool mar) const {
  Decision out;  // not upgradable until proven otherwise
  if (federation.epoch() != epoch_) return out;
  if (predicate >= query.predicates.size()) return out;
  const Predicate& pred = query.predicates[predicate];
  const ResolvedPath resolved =
      resolve_path(federation.schema().lookup(), query.range_class, pred.path);
  if (step >= resolved.steps.size()) return out;
  const std::size_t last = resolved.steps.size() - 1;

  // The attribute actually missing at the home: the mechanism evidence
  // gates on it, and its covariate is what the home can observe locally.
  const AttrEstimator* first =
      estimator(resolved.steps[step].class_name, resolved.steps[step].attr_index);
  if (first == nullptr) return out;
  if (!mar && first->divergence > kMcarTolerance) return out;

  // Does the home's constituent define the missing attribute? A defined
  // slot means the gap is a stored null; an undefined slot is schema-level
  // absence, recoverable only where another isomer defines it.
  const GlobalClass* first_gc =
      federation.schema().find_class(resolved.steps[step].class_name);
  if (first_gc == nullptr) return out;
  const std::optional<std::size_t> home_ci = first_gc->constituent_in(home);
  const bool home_defines =
      home_ci.has_value() &&
      first_gc->local_attr(*home_ci, resolved.steps[step].attr_index)
          .has_value();

  // The atom's canonical truth is *three*-valued, and the estimate must be
  // too: a canonically-null reference on the suffix makes the predicate
  // Unknown (the assistants would report Unknown, the complete-data answer
  // keeps the row maybe), never False. So the model first prices
  //   p_resolve = P(the suffix is canonically decided): every step's value
  //               canonically non-null — the gap step conditioned on the
  //               kind of gap the home actually has (the Bayes posterior of
  //               a stored null, or the recovery rate of a schema absence),
  //               deeper steps at the deconvolved canonical marginal;
  // and splits the remainder by the terminal's satisfaction rate:
  //   P(True) = p_resolve x sat,  P(False) = p_resolve x (1 - sat),
  //   P(Unknown) = 1 - p_resolve.
  // Canonical rates, not observed ones: the ground truth the verdict is
  // scored against is the complete-data twin, where injected nulls are
  // restored and only canonical nulls survive. With each attribute's
  // injection rate identified from isomer pairs (header comment), a
  // mostly-injected attribute (a value null under R_m) imputes near its
  // satisfaction rate while a structurally null one (a reference to
  // nothing) honestly stays Unknown. An imputed Unknown still strips the
  // check from the wire: it predicts the protocol would come back
  // undecided, and the row keeps the exact maybe status BL would have
  // produced after paying for the round trip.
  double p_resolve = 1.0;
  for (std::size_t s = step; s <= last; ++s) {
    const AttrEstimator* e =
        estimator(resolved.steps[s].class_name, resolved.steps[s].attr_index);
    if (e == nullptr) return out;
    if (s == step)
      p_resolve *= home_defines
                       ? e->gap_rate()
                       : e->recoverable_given_absent() * e->canonical_rate();
    else
      p_resolve *= e->canonical_rate();
  }
  const AttrEstimator* terminal =
      estimator(resolved.steps[last].class_name, resolved.steps[last].attr_index);
  if (terminal == nullptr) return out;

  // MAR stratification applies when the missing attribute *is* the terminal
  // (the item's own class carries both it and the covariate): read the
  // item's covariate from the home's local object and switch to the
  // matching stratum, unless that stratum is too thin to trust.
  const ValueHistogram* hist = &terminal->histogram;
  if (mar && step == last && first->covariate.has_value()) {
    const std::optional<LOid> local =
        federation.goids().loid_in(item, home);
    const GlobalClass* gc =
        federation.schema().find_class(resolved.steps[step].class_name);
    const std::optional<std::size_t> ci =
        gc != nullptr && local.has_value() ? gc->constituent_in(home)
                                           : std::nullopt;
    if (ci.has_value()) {
      const std::optional<std::string>& local_name =
          gc->local_attr(*ci, *first->covariate);
      if (local_name.has_value()) {
        const Extent& extent = federation.db(home).extent(
            gc->constituents()[*ci].local_class);
        const std::optional<std::size_t> slot =
            extent.cls().find_attribute(*local_name);
        const Object* obj = slot.has_value() ? extent.find(*local) : nullptr;
        if (obj != nullptr && !obj->value(*slot).is_null()) {
          const std::size_t b =
              bucket_of(first->covariate_split, obj->value(*slot));
          if (first->stratum_n[b] >= kMinStratum)
            hist = &first->stratum_hist[b];
        }
      }
    }
  }

  const double sat = satisfaction_rate(*hist, pred);
  const double p_true = p_resolve * sat;
  const double p_false = p_resolve * (1.0 - sat);
  const double p_unknown = 1.0 - p_resolve;

  out.upgradable = true;
  if (p_true >= p_false && p_true >= p_unknown) {
    out.verdict = Truth::True;
    out.confidence = p_true;
  } else if (p_false >= p_unknown) {
    out.verdict = Truth::False;
    out.confidence = p_false;
  } else {
    out.verdict = Truth::Unknown;
    out.confidence = p_unknown;
  }
  return out;
}

double ImputeModel::clear_rate(const Federation& federation,
                               const GlobalQuery& query,
                               const ImputeSpec& spec) const {
  if (!spec.enabled || federation.epoch() != epoch_) return 0.0;
  std::uint64_t considered = 0, cleared = 0;
  for (const Predicate& pred : query.predicates) {
    const ResolvedPath resolved = resolve_path(
        federation.schema().lookup(), query.range_class, pred.path);
    const std::size_t last = resolved.steps.size() - 1;
    // Root-level (step 0) missing attributes are decided by the row pool,
    // never by check traffic; only deeper steps generate the atoms IM can
    // replace, so only they enter the pricing estimate.
    for (std::size_t step = 1; step < resolved.steps.size(); ++step) {
      const GlobalClass* gc =
          federation.schema().find_class(resolved.steps[step].class_name);
      if (gc == nullptr) continue;
      // Two atom populations feed this step: homes whose constituent lacks
      // the attribute outright (schema absence) and homes holding a stored
      // null (the injected kind, witnessed by the model's null_gap tally).
      bool absent_somewhere = false;
      for (std::size_t ci = 0;
           !absent_somewhere && ci < gc->constituents().size(); ++ci)
        absent_somewhere =
            gc->is_missing(ci, resolved.steps[step].attr_index);
      const AttrEstimator* first = estimator(
          resolved.steps[step].class_name, resolved.steps[step].attr_index);
      if (first == nullptr) continue;
      const bool null_somewhere = first->null_gap > 0;
      if (!absent_somewhere && !null_somewhere) continue;
      const std::uint64_t variants = (absent_somewhere ? 1u : 0u) +
                                     (null_somewhere ? 1u : 0u);
      considered += variants;
      if (spec.mechanism == ImputeMechanism::MCAR &&
          first->divergence > kMcarTolerance)
        continue;  // considered, never cleared

      // Suffix factors shared by both variants: the deeper steps' canonical
      // navigability and the terminal's satisfaction rate (decide()'s rate
      // choices, at the population level).
      double tail_nav = 1.0;
      bool known = true;
      for (std::size_t s = step + 1; s <= last && known; ++s) {
        const AttrEstimator* e = estimator(resolved.steps[s].class_name,
                                           resolved.steps[s].attr_index);
        known = e != nullptr;
        if (known) tail_nav *= e->canonical_rate();
      }
      const AttrEstimator* terminal = estimator(
          resolved.steps[last].class_name, resolved.steps[last].attr_index);
      if (!known || terminal == nullptr) continue;
      const double sat = satisfaction_rate(terminal->histogram, pred);

      // decide()'s three-way split: the atom clears when its most likely
      // verdict (True / False / Unknown) reaches the threshold.
      const auto clears = [&](bool home_defines) {
        double p_resolve = tail_nav;
        if (home_defines)
          p_resolve *= first->gap_rate();
        else
          p_resolve *= first->recoverable_given_absent() *
                       first->canonical_rate();
        const double best = std::max({p_resolve * sat, p_resolve * (1.0 - sat),
                                      1.0 - p_resolve});
        return best >= spec.threshold;
      };
      if (null_somewhere && clears(true)) ++cleared;
      if (absent_somewhere && clears(false)) ++cleared;
    }
  }
  return considered == 0
             ? 0.0
             : static_cast<double>(cleared) / static_cast<double>(considered);
}

}  // namespace isomer
