// On-the-fly imputation: population statistics + missingness mechanics.
//
// The IM strategy (core/im.cpp, ROADMAP item 2) answers an assistant-check
// atom *locally* by estimating the missing attribute from the constituent
// population instead of shipping the check, when the estimate's confidence
// clears a threshold. This header holds everything above the core execution
// layer:
//
//   * ImputeSpec / parse_impute_spec — the `--impute=off|thresh=P[,mech=..]`
//     harness grammar, following the --faults / --serve spec conventions
//     (duplicate-key and out-of-range hard errors, canonical to_string with
//     parse(to_string(s)) == s);
//   * AttrEstimator — per-(global class, attribute) plug-in statistics:
//     count/null/absent tallies, mean, mode, median and the full empirical
//     value histogram, plus the missingness-mechanism evidence (the
//     same-class covariate whose median split shows the largest divergence
//     in missing rate);
//   * ImputeModel — built once per federation from the local extents (an
//     auxiliary replicated structure like the signature index: its
//     maintenance is not charged to any query), deciding per check atom
//     whether the null is *upgradable* under the declared mechanism and
//     with what verdict/confidence.
//
// The statistics are *entity-level*: each entity's isomeric objects are
// merged through the replicated GOid table exactly the way certification
// merges rows — an attribute counts as observed when any constituent stores
// a value, as null when some constituent defines it but every stored copy
// is null, as absent when no constituent of the entity defines it. That is
// the population a check verdict speaks about (the assistant answers from
// *its* copy), so per-slot tallies would systematically understate e.g.
// reference attributes, which are stored only where the referenced entity
// is co-located. Alongside the marginals, each estimator keeps two
// gap-conditional rates — among entities missing the attribute somewhere,
// how often does the merged view still have it? — because a check atom
// exists precisely because the value is missing at its home.
//
// Mechanism deconvolution: an observed null is either *canonical* (the
// entity genuinely has no value — e.g. a reference to nothing, which the
// complete-data answer also cannot navigate) or *injected* (the R_m
// value-null mechanism hid an existing value — restored in the clean twin).
// The two are indistinguishable on any single copy, but isomer pairs
// identify the injection rate: a null copy next to a non-null copy of the
// same entity is provably injected (the canonical value exists). From its
// own pair discordance each attribute estimates a per-copy injection rate r
// and splits its copy-null rate q = u + (1-u)r into the canonical null rate
// u = (q - r)/(1 - r). Verdict probabilities then target the *canonical*
// value — what the complete-data ground truth evaluates — so the model
// imputes through injected nulls while honestly reporting Unknown for
// canonically null references. Reference attributes never deconvolve: a
// null reference copy is structural (the entity's reference is the union of
// its copies — there is no hidden value a mechanism could have nulled), so
// they always use the observed entity-level rates, as does any attribute
// whose pair evidence is thinner than kMinInjectionTrials.
//
// Confidence semantics: every probability is Laplace-smoothed,
// p = (hits + 1) / (n + 2), so confidence = max(p, 1 - p) < 1 *strictly*.
// A threshold of 1.0 therefore never clears and IM degenerates to the
// plain BL residual-condition path bitwise — the property the 200-seed
// suite in tests/test_impute.cpp pins down.
//
// Mechanism semantics (MCAR vs MAR, cf. the missingness-mechanisms paper in
// PAPERS.md): under `mech=mcar` an attribute whose missing rate diverges
// across the covariate split by more than a fixed tolerance is *not*
// upgradable — the data refute the missing-completely-at-random assumption
// the marginal histogram needs. Under `mech=mar` the estimate instead comes
// from the stratum histogram matching the item's observed covariate value
// (missing-at-random given the observables), falling back to the marginal
// histogram when the covariate is itself unobserved or the stratum is thin.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "isomer/common/ids.hpp"
#include "isomer/common/truth.hpp"
#include "isomer/common/value.hpp"
#include "isomer/core/strategy.hpp"

namespace isomer {

class Federation;
struct GlobalQuery;

/// Missingness mechanism the estimator is allowed to assume.
enum class ImputeMechanism : unsigned char { MCAR, MAR };

[[nodiscard]] std::string_view to_string(ImputeMechanism mech) noexcept;

/// Parsed `--impute` setting.
///
/// Grammar (all errors are hard ImputeError throws):
///   spec      := "off" | item ("," item)*
///   item      := "thresh=" REAL          (required; in [0, 1])
///              | "mech=" ("mcar"|"mar")  (optional; default mcar)
/// Every key may appear at most once. `to_string` re-prints the canonical
/// form ("off", or "thresh=<%.17g>,mech=<m>") and round-trips exactly.
struct ImputeSpec {
  bool enabled = false;
  /// Confidence an estimate must reach before the check is imputed away.
  /// Smoothed confidences are strictly below 1, so 1.0 (the default) never
  /// imputes — pure fallback to the certified path.
  double threshold = 1.0;
  ImputeMechanism mechanism = ImputeMechanism::MCAR;

  friend bool operator==(const ImputeSpec&, const ImputeSpec&) = default;
};

[[nodiscard]] ImputeSpec parse_impute_spec(std::string_view spec);
[[nodiscard]] std::string to_string(const ImputeSpec& spec);

/// Strict weak order over Values for histogram keys: by variant alternative,
/// then by the alternative's own ordering (exact, non-SQL: nulls compare
/// equal to each other and before everything else).
struct ValueOrder {
  bool operator()(const Value& a, const Value& b) const {
    return a.storage() < b.storage();
  }
};

using ValueHistogram = std::map<Value, std::uint64_t, ValueOrder>;

/// Pair evidence thinner than this leaves an attribute's injection rate
/// untrusted: the estimators then use the observed gap-conditional rates
/// instead of the deconvolved canonical ones.
inline constexpr std::uint64_t kMinInjectionTrials = 16;

/// Population statistics for one (global class, global attribute), at the
/// entity level (isomers merged through the GOid table — see the header
/// comment).
struct AttrEstimator {
  std::uint64_t observed = 0;  ///< entities with a stored non-null value
  std::uint64_t nulls = 0;     ///< defined somewhere, every stored copy null
  std::uint64_t absent = 0;    ///< no constituent of the entity defines it
  /// Plug-in point estimates over the observed values.
  double mean = 0.0;  ///< numeric attributes only (else 0)
  Value mode;         ///< most frequent observed value (null when none)
  std::uint64_t mode_count = 0;
  Value median;  ///< lower median of the observed distribution
  ValueHistogram histogram;

  /// Missingness-mechanism evidence: the same-class primitive covariate
  /// whose median split maximizes the divergence between the attribute's
  /// missing rates in the two buckets. No candidate (or no informative
  /// one) leaves `covariate` empty with divergence 0 — indistinguishable
  /// from MCAR.
  std::optional<std::size_t> covariate;
  Value covariate_split;   ///< lower median of the covariate
  double divergence = 0.0; ///< |missing-rate(lo) - missing-rate(hi)|
  /// The attribute's observed values stratified by the covariate bucket
  /// (0: covariate <= split, 1: covariate > split) — the MAR estimate.
  ValueHistogram stratum_hist[2];
  std::uint64_t stratum_n[2] = {0, 0};

  /// Gap-conditional evidence: the populations a check atom is actually
  /// drawn from (an atom exists because the value is missing at its home).
  std::uint64_t null_gap = 0;  ///< entities with a stored null somewhere
  std::uint64_t null_gap_nonnull = 0;  ///< ...whose merged value exists
  std::uint64_t absent_gap = 0;  ///< entities with a non-defining constituent
  std::uint64_t absent_gap_defined = 0;  ///< ...defined somewhere else

  /// Copy-level tallies feeding the mechanism deconvolution (see the header
  /// comment): stored copies across every entity, and how many are null.
  std::uint64_t copies = 0;
  std::uint64_t copies_null = 0;
  /// Injection-rate evidence: copies in entities holding two or more of
  /// them with at least one non-null (the canonical value provably exists,
  /// so every null copy there was injected), and the injected nulls seen.
  std::uint64_t inj_trials = 0;
  std::uint64_t inj_nulls = 0;
  /// Reference (ComplexType) attribute: nulls are structural, never
  /// deconvolved — see the header comment.
  bool complex_ref = false;

  /// Smoothed probability that the attribute is non-null where it exists.
  [[nodiscard]] double nonnull_rate() const noexcept {
    return (static_cast<double>(observed) + 1.0) /
           (static_cast<double>(observed + nulls) + 2.0);
  }
  /// Smoothed P(merged value exists | some constituent stored a null) —
  /// what a null reference at the home is worth: reference nulls are
  /// canonical (the entity points nowhere, or the child is not co-located),
  /// so the suffix below one resolves only as often as this.
  [[nodiscard]] double navigable_given_gap() const noexcept {
    return (static_cast<double>(null_gap_nonnull) + 1.0) /
           (static_cast<double>(null_gap) + 2.0);
  }
  /// Smoothed P(defined at some constituent | absent at one) — what a
  /// schema-level missing attribute at the home is worth: the entity's
  /// value exists only where an isomer at a defining database stores it
  /// (a stored-but-null copy counts as defined: the value-level null is
  /// the injected, imputable kind).
  [[nodiscard]] double recoverable_given_absent() const noexcept {
    return (static_cast<double>(absent_gap_defined) + 1.0) /
           (static_cast<double>(absent_gap) + 2.0);
  }

  /// Smoothed per-attribute per-copy injection rate r.
  [[nodiscard]] double injection_rate() const noexcept {
    return (static_cast<double>(inj_nulls) + 1.0) /
           (static_cast<double>(inj_trials) + 2.0);
  }
  /// Whether the deconvolved canonical estimates are trusted: never for
  /// references, and only on enough pair evidence.
  [[nodiscard]] bool injection_informed() const noexcept {
    return !complex_ref && inj_trials >= kMinInjectionTrials;
  }
  /// Smoothed per-copy observed null rate q = u + (1 - u) r.
  [[nodiscard]] double copy_null_rate() const noexcept {
    return (static_cast<double>(copies_null) + 1.0) /
           (static_cast<double>(copies) + 2.0);
  }
  /// The canonical null rate u deconvolved from q under the attribute's
  /// injection rate, clamped away from {0, 1} by the evidence's own
  /// smoothing floor so every derived probability stays strictly inside
  /// (0, 1).
  [[nodiscard]] double canonical_null_rate() const noexcept {
    const double floor = 1.0 / (static_cast<double>(copies) + 2.0);
    const double inj = injection_rate();
    const double u = (copy_null_rate() - inj) / (1.0 - inj);
    return std::clamp(u, floor, 1.0 - floor);
  }
  /// P(the canonical value exists): what a value reached through navigation
  /// is worth in the complete-data answer, where injected nulls are
  /// restored but canonical ones are not. Falls back to the observed
  /// entity-level rate when the deconvolution is untrusted.
  [[nodiscard]] double canonical_rate() const noexcept {
    return injection_informed() ? 1.0 - canonical_null_rate()
                                : nonnull_rate();
  }
  /// What a stored null at the atom's home is worth: the Bayes posterior
  /// P(canonically non-null | one observed-null copy) — a canonical null
  /// shows a null copy always, a canonical value only at the injection
  /// rate, so the posterior is (1-u) r / (u + (1-u) r) — or the observed
  /// gap-conditional rate when the deconvolution is untrusted.
  [[nodiscard]] double gap_rate() const noexcept {
    if (!injection_informed()) return navigable_given_gap();
    const double u = canonical_null_rate();
    const double inj = injection_rate();
    return ((1.0 - u) * inj) / (u + (1.0 - u) * inj);
  }
};

/// The federation-wide population model. Build cost is one scan per extent
/// plus one covariate pass; bench_micro's BM_ImputeModelBuild tracks it.
class ImputeModel final : public ImputeOracle {
 public:
  struct BuildStats {
    std::uint64_t objects_scanned = 0;
    std::uint64_t estimators = 0;
  };

  /// Scans every constituent extent and fits the per-attribute estimators
  /// and mechanism evidence. Deterministic in the federation contents.
  [[nodiscard]] static ImputeModel build(const Federation& federation);

  /// Federation::epoch() at build time: a model built against mutated data
  /// never upgrades (decide() reports not-upgradable on epoch mismatch).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const BuildStats& stats() const noexcept { return stats_; }

  /// The estimator for a global class attribute; nullptr when the class or
  /// attribute is unknown to the model.
  [[nodiscard]] const AttrEstimator* estimator(std::string_view global_class,
                                               std::size_t attr) const;

  /// ImputeOracle: decide one first-round check atom — the unsolved suffix
  /// of query.predicates[predicate] starting at `step` on `item`, planned
  /// by home database `home`. See the confidence/mechanism semantics in
  /// the header comment.
  [[nodiscard]] Decision decide(const Federation& federation,
                                const GlobalQuery& query, GOid item,
                                std::size_t predicate, std::size_t step,
                                DbId home, bool mar) const override;

  /// Population-level estimate of the fraction of nested (checkable)
  /// predicates the spec would clear — the planner's pricing input.
  [[nodiscard]] double clear_rate(const Federation& federation,
                                  const GlobalQuery& query,
                                  const ImputeSpec& spec) const;

 private:
  /// Estimators per global class, aligned with GlobalClass::def() attrs.
  std::map<std::string, std::vector<AttrEstimator>, std::less<>> by_class_;
  std::uint64_t epoch_ = 0;
  BuildStats stats_;
};

}  // namespace isomer
