#include "isomer/analytic/model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "isomer/common/error.hpp"

namespace isomer {

namespace {

/// All per-sample expected quantities the strategy formulas share.
struct Derived {
  std::size_t K = 0;  ///< classes
  std::size_t D = 0;  ///< databases
  int total_preds = 0;

  // Indexing: [class][db]
  std::vector<std::vector<double>> objects;       // N_o
  std::vector<std::vector<double>> present;       // N_pa
  std::vector<std::vector<double>> null_prob;     // per present attr
  std::vector<std::vector<double>> stored_bytes;  // per object
  std::vector<std::vector<double>> reach;         // root reaches class k
  std::vector<double> entities;                   // E_k

  // Per (class, pred-on-class, db):
  // probability vectors flattened as [class][db] per-pred (preds of one
  // class share presence statistics via the random subset, so we use the
  // per-attribute presence probability m/P).
  std::vector<std::vector<double>> p_true;    // per pred
  std::vector<std::vector<double>> p_false;   // per pred
  std::vector<std::vector<double>> p_unknown; // per pred
  std::vector<std::vector<double>> p_nested;  // unknown past step 0

  std::vector<double> survive;  // sigma per db: object passes all preds
  std::vector<double> rows;     // expected shipped rows per db
};

Derived derive(const SampleParams& sample, const CostParams& costs,
               std::size_t extra_attrs) {
  Derived d;
  d.K = sample.classes.size();
  d.D = sample.n_db;
  const double sa = static_cast<double>(costs.attr_bytes);
  const double sl = static_cast<double>(costs.loid_bytes);

  // Entities per class: a fraction q of entities are two-database pairs so
  // that the fraction of *objects* with isomers is R_iso.
  const double q = sample.iso_ratio / (2.0 - sample.iso_ratio);

  d.objects.assign(d.K, std::vector<double>(d.D, 0));
  d.present.assign(d.K, std::vector<double>(d.D, 0));
  d.null_prob.assign(d.K, std::vector<double>(d.D, 0));
  d.stored_bytes.assign(d.K, std::vector<double>(d.D, 0));
  d.reach.assign(d.K, std::vector<double>(d.D, 1.0));
  d.entities.assign(d.K, 0);
  d.p_true.assign(d.K, std::vector<double>(d.D, 0));
  d.p_false.assign(d.K, std::vector<double>(d.D, 0));
  d.p_unknown.assign(d.K, std::vector<double>(d.D, 0));
  d.p_nested.assign(d.K, std::vector<double>(d.D, 0));

  for (std::size_t k = 0; k < d.K; ++k) {
    const auto& cls = sample.classes[k];
    d.total_preds += cls.n_preds;
    double total_objects = 0;
    for (std::size_t i = 0; i < d.D; ++i) {
      const auto& db = cls.dbs[i];
      d.objects[k][i] = db.n_objects;
      total_objects += d.objects[k][i];
      d.present[k][i] = static_cast<double>(db.present_preds.size());
      d.null_prob[k][i] =
          d.present[k][i] > 0 ? db.extra_missing / d.present[k][i] : 0.0;
      const double attrs = 1.0 /*id*/ + d.present[k][i] +
                           (k == 0 ? sample.n_targets : 0) +
                           static_cast<double>(extra_attrs);
      d.stored_bytes[k][i] =
          sl + attrs * sa + (k + 1 < d.K ? sl : 0.0);
    }
    d.entities[k] = total_objects / (1.0 + q);
  }

  // Reachability: probability a root object in db i navigates to a class-k
  // object within db i (each hop: entity-level reference non-null times the
  // child entity having a constituent here).
  for (std::size_t k = 1; k < d.K; ++k)
    for (std::size_t i = 0; i < d.D; ++i) {
      const double h =
          std::min(1.0, d.objects[k][i] / std::max(1.0, d.entities[k]));
      d.reach[k][i] =
          d.reach[k - 1][i] * sample.classes[k - 1].ref_ratio * h;
    }

  // Per-predicate outcome probabilities at each database. Presence of a
  // specific predicate attribute is approximated by N_pa / N_p (the subset
  // is uniform); conjuncts are treated as independent.
  for (std::size_t k = 0; k < d.K; ++k) {
    const auto& cls = sample.classes[k];
    if (cls.n_preds == 0) continue;
    for (std::size_t i = 0; i < d.D; ++i) {
      const double pres =
          d.present[k][i] / static_cast<double>(cls.n_preds);
      const double evaluable =
          d.reach[k][i] * pres * (1.0 - d.null_prob[k][i]);
      d.p_true[k][i] = evaluable * cls.pred_selectivity;
      d.p_false[k][i] = evaluable * (1.0 - cls.pred_selectivity);
      d.p_unknown[k][i] = 1.0 - d.p_true[k][i] - d.p_false[k][i];
      // Unknown at step 0 (on the root itself): for root-class predicates
      // every unknown is root-level; for nested predicates it is failing
      // the very first hop.
      double step0;
      if (k == 0) {
        step0 = d.p_unknown[k][i];
      } else {
        const double h1 =
            std::min(1.0, d.objects[1][i] / std::max(1.0, d.entities[1]));
        step0 = 1.0 - sample.classes[0].ref_ratio * h1;
      }
      d.p_nested[k][i] = std::max(0.0, d.p_unknown[k][i] - step0);
    }
  }

  // Local survival and shipped rows.
  d.survive.assign(d.D, 1.0);
  d.rows.assign(d.D, 0.0);
  for (std::size_t i = 0; i < d.D; ++i) {
    for (std::size_t k = 0; k < d.K; ++k)
      d.survive[i] *= std::pow(1.0 - d.p_false[k][i],
                               sample.classes[k].n_preds);
    d.rows[i] = d.objects[0][i] * d.survive[i];
  }
  return d;
}

/// Expected distinct class-k objects touched in db i when `draws` root
/// navigations land uniformly on the local extent (occupancy bound).
double distinct_touched(double draws, double extent) {
  if (extent <= 0) return 0;
  return extent * (1.0 - std::exp(-draws / extent));
}

struct Accumulator {
  double disk_bytes = 0;
  double cpu_cmps = 0;
  double net_bytes = 0;
};

double seconds(const Accumulator& acc, const CostParams& costs) {
  return acc.disk_bytes * static_cast<double>(costs.disk_ns_per_byte) / 1e9 +
         acc.cpu_cmps * static_cast<double>(costs.cpu_ns_per_cmp) / 1e9 +
         acc.net_bytes * static_cast<double>(costs.net_ns_per_byte) / 1e9;
}

AnalyticEstimate estimate_ca(const SampleParams& sample, const Derived& d,
                             const CostParams& costs, bool batched) {
  const double sa = static_cast<double>(costs.attr_bytes);
  const double sl = static_cast<double>(costs.loid_bytes);
  const double sg = static_cast<double>(costs.goid_bytes);

  // Does navigating past class k happen (is the reference involved)?
  std::vector<bool> need_ref(d.K, false);
  for (std::size_t k = 0; k + 1 < d.K; ++k)
    for (std::size_t k2 = k + 1; k2 < d.K; ++k2)
      if (sample.classes[k2].n_preds > 0) need_ref[k] = true;

  double disk = 0, proj_cmp = 0, net = 0;
  double max_local_s = 0;
  for (std::size_t i = 0; i < d.D; ++i) {
    double disk_i = 0, net_i = 0, cmp_i = 0;
    for (std::size_t k = 0; k < d.K; ++k) {
      disk_i += d.objects[k][i] * d.stored_bytes[k][i];
      cmp_i += d.objects[k][i];
      double proj = sl + d.present[k][i] * sa +
                    (k == 0 ? sample.n_targets * sa : 0.0) +
                    (need_ref[k] ? sg : 0.0);
      net_i += d.objects[k][i] * proj;
    }
    disk += disk_i;
    proj_cmp += cmp_i;
    net += net_i;
    const double local_s =
        disk_i * static_cast<double>(costs.disk_ns_per_byte) / 1e9 +
        cmp_i * static_cast<double>(costs.cpu_ns_per_cmp) / 1e9;
    max_local_s = std::max(max_local_s, local_s);
  }

  // Global site: outerjoin probes + merges, then predicate evaluation over
  // the materialized root extent.
  double total_objects = 0, nonnull_refs = 0;
  for (std::size_t k = 0; k < d.K; ++k)
    for (std::size_t i = 0; i < d.D; ++i) {
      total_objects += d.objects[k][i];
      if (k + 1 < d.K)
        nonnull_refs += d.objects[k][i] * sample.classes[k].ref_ratio;
    }
  const double global_cmp =
      2.0 * total_objects + nonnull_refs + d.entities[0] * d.total_preds;

  // Batched framing: the CA_G1 broadcast collapses into one frame and each
  // constituent shipment is already a single message, so the frame tax is
  // one header per site plus the broadcast frame.
  if (batched)
    net += static_cast<double>(kBatchHeaderBytes) *
           (1.0 + static_cast<double>(d.D));

  Accumulator acc{disk, proj_cmp + global_cmp, net};
  AnalyticEstimate est;
  est.disk_s = disk * static_cast<double>(costs.disk_ns_per_byte) / 1e9;
  est.cpu_s = (proj_cmp + global_cmp) *
              static_cast<double>(costs.cpu_ns_per_cmp) / 1e9;
  est.net_s = net * static_cast<double>(costs.net_ns_per_byte) / 1e9;
  est.total_s = seconds(acc, costs);
  est.bytes = net;
  est.response_s = max_local_s +
                   net * static_cast<double>(costs.net_ns_per_byte) / 1e9 +
                   global_cmp * static_cast<double>(costs.cpu_ns_per_cmp) / 1e9;
  return est;
}

AnalyticEstimate estimate_localized(const SampleParams& sample,
                                    const Derived& d, const CostParams& costs,
                                    bool eager, bool signatures, bool batched,
                                    std::size_t /*extra_attrs*/) {
  const double sa = static_cast<double>(costs.attr_bytes);
  const double sl = static_cast<double>(costs.loid_bytes);
  const double sg = static_cast<double>(costs.goid_bytes);

  // need_touch(k): local evaluation navigates into class k at all.
  std::vector<bool> need_touch(d.K, false);
  for (std::size_t k = 1; k < d.K; ++k)
    for (std::size_t k2 = k; k2 < d.K; ++k2)
      if (sample.classes[k2].n_preds > 0) need_touch[k] = true;

  double disk = 0, cmp = 0, net = 0, bytes = 0;
  double max_local_s = 0;

  // Check volume per (class, db): expected assistant-check task instances
  // dispatched by db i for predicates on class k.
  double tasks_total = 0, screened_total = 0, check_disk = 0, check_cmp = 0;

  for (std::size_t i = 0; i < d.D; ++i) {
    // --- local disk: root scan plus distinct fetched branch objects.
    double disk_i = d.objects[0][i] * d.stored_bytes[0][i];
    for (std::size_t k = 1; k < d.K; ++k) {
      if (!need_touch[k]) continue;
      const double draws = d.objects[0][i] * d.reach[k][i];
      disk_i += distinct_touched(draws, d.objects[k][i]) *
                d.stored_bytes[k][i];
    }

    // --- local cpu: one comparison per evaluable predicate instance, plus
    // GOid probes for rows and their unsolved items.
    double cmp_i = 0;
    double unknown_insts = 0, nested_rows = 0, nested_all = 0;
    for (std::size_t k = 0; k < d.K; ++k) {
      const auto& cls = sample.classes[k];
      if (cls.n_preds == 0) continue;
      const double pres = d.present[k][i] / cls.n_preds;
      cmp_i += d.objects[0][i] * cls.n_preds * d.reach[k][i] * pres;
      const double guard =
          d.survive[i] / std::max(1e-12, 1.0 - d.p_false[k][i]);
      unknown_insts +=
          d.objects[0][i] * cls.n_preds * d.p_unknown[k][i] * guard;
      nested_rows +=
          d.objects[0][i] * cls.n_preds * d.p_nested[k][i] * guard;
      nested_all += d.objects[0][i] * cls.n_preds * d.p_nested[k][i];

      // Assistant capability in the pair database: probability the paired
      // database defines the suffix's first attribute (approximated by the
      // average presence ratio over the other databases).
      double pres_other = 0;
      for (std::size_t j = 0; j < d.D; ++j)
        if (j != i) pres_other += d.present[k][j] / cls.n_preds;
      pres_other /= static_cast<double>(std::max<std::size_t>(1, d.D - 1));

      const double item_insts = eager ? (d.objects[0][i] * cls.n_preds *
                                         d.p_nested[k][i])
                                      : (d.objects[0][i] * cls.n_preds *
                                         d.p_nested[k][i] * guard);
      double tasks = item_insts * sample.iso_ratio * pres_other;
      if (signatures) {
        // Table 2's R_ss: fraction of assistants passing the signature
        // screen and still being shipped.
        const double miss = std::max(
            0.0, static_cast<double>(cls.n_preds) - d.present[k][i]);
        const double r_ss = std::pow(0.6, std::sqrt(std::max(1.0, miss)));
        screened_total += tasks * (1.0 - r_ss);
        cmp_i += tasks;  // one signature comparison per candidate
        tasks *= r_ss;
      }
      tasks_total += tasks;
      // Target-side cost per task: fetch the assistant object and compare.
      double so_other = 0;
      for (std::size_t j = 0; j < d.D; ++j)
        if (j != i) so_other += d.stored_bytes[k][j];
      so_other /= static_cast<double>(std::max<std::size_t>(1, d.D - 1));
      check_disk += tasks * so_other;
      check_cmp += tasks;
      cmp_i += item_insts * 2.0;  // mapping-table probes while planning
    }
    cmp_i += d.rows[i];  // row entity probes

    // --- row message bytes.
    const double row_bytes =
        d.rows[i] * (sl + sg + sample.n_targets * sa) +
        unknown_insts * (sg + 8.0);

    disk += disk_i;
    cmp += cmp_i;
    net += row_bytes;
    bytes += row_bytes;
    const double local_s =
        disk_i * static_cast<double>(costs.disk_ns_per_byte) / 1e9 +
        cmp_i * static_cast<double>(costs.cpu_ns_per_cmp) / 1e9;
    max_local_s = std::max(max_local_s, local_s);
  }

  // Check traffic: request tasks out, verdicts back. The executors pack the
  // tasks for one target site into one message carrying an attr-sized
  // header (check_request_wire_bytes / check_response_wire_bytes); the
  // expected number of (home, assistant) message pairs follows the
  // occupancy bound over the D*(D-1) ordered site pairs.
  const double pairs = d.D > 1
                           ? static_cast<double>(d.D) *
                                 static_cast<double>(d.D - 1)
                           : 0.0;
  const double req_msgs =
      pairs > 0 ? pairs * (1.0 - std::exp(-tasks_total / pairs)) : 0.0;
  double check_net;
  if (batched) {
    // Semijoin shipping: each task travels as a GOid + step tag; assistant
    // LOids are re-derived from the replicated GOid table. Per-message attr
    // headers are absorbed by the frame headers priced below.
    check_net =
        tasks_total * static_cast<double>(costs.semijoin_task_bytes(false)) +
        (tasks_total + screened_total) *
            static_cast<double>(costs.verdict_bytes());
  } else {
    check_net =
        tasks_total * static_cast<double>(costs.check_task_bytes()) +
        (tasks_total + screened_total) *
            static_cast<double>(costs.verdict_bytes()) +
        2.0 * req_msgs * static_cast<double>(costs.attr_bytes);
  }
  net += check_net;
  bytes += check_net;
  disk += check_disk;
  cmp += check_cmp;

  // Certification at the global site.
  double rows_total = 0;
  for (std::size_t i = 0; i < d.D; ++i) rows_total += d.rows[i];
  const double certify_cmp =
      rows_total * (d.total_preds + 1.0) + tasks_total + screened_total;
  cmp += certify_cmp;

  // Request messages.
  double req_net =
      static_cast<double>(d.D) *
      static_cast<double>(costs.request_bytes(
          static_cast<std::uint64_t>(d.total_preds)));
  if (batched) {
    // The attr-sized G1 header drops per site; frames cost
    // kBatchHeaderBytes each: one broadcast G1 frame, one flush per home
    // site (rows plus outgoing check requests), and one per expected
    // assistant response message.
    req_net -= static_cast<double>(d.D) *
               static_cast<double>(costs.attr_bytes);
    req_net += static_cast<double>(kBatchHeaderBytes) *
               (1.0 + static_cast<double>(d.D) + req_msgs);
  }
  net += req_net;
  bytes += req_net;

  AnalyticEstimate est;
  est.disk_s = disk * static_cast<double>(costs.disk_ns_per_byte) / 1e9;
  est.cpu_s = cmp * static_cast<double>(costs.cpu_ns_per_cmp) / 1e9;
  est.net_s = net * static_cast<double>(costs.net_ns_per_byte) / 1e9;
  est.total_s = est.disk_s + est.cpu_s + est.net_s;
  est.bytes = bytes;

  // Response: slowest local pipeline, then the serialized shared-bus
  // transfers, then checking (overlapped with evaluation under PL) and the
  // global certification.
  const double check_s =
      (check_disk / static_cast<double>(std::max<std::size_t>(1, d.D))) *
          static_cast<double>(costs.disk_ns_per_byte) / 1e9 +
      check_net * static_cast<double>(costs.net_ns_per_byte) / 1e9;
  const double transfers_s =
      (net - check_net) * static_cast<double>(costs.net_ns_per_byte) / 1e9;
  const double certify_s =
      certify_cmp * static_cast<double>(costs.cpu_ns_per_cmp) / 1e9;
  if (eager)
    est.response_s =
        std::max(max_local_s, check_s) + transfers_s + certify_s;
  else
    est.response_s = max_local_s + check_s + transfers_s + certify_s;
  return est;
}

}  // namespace

AnalyticEstimate estimate_strategy(StrategyKind kind,
                                   const SampleParams& sample,
                                   const CostParams& costs,
                                   std::size_t extra_attrs, bool batched) {
  expects(!sample.classes.empty(), "sample needs at least one class");
  const Derived d = derive(sample, costs, extra_attrs);
  switch (kind) {
    case StrategyKind::CA:
      return estimate_ca(sample, d, costs, batched);
    case StrategyKind::BL:
      return estimate_localized(sample, d, costs, false, false, batched,
                                extra_attrs);
    case StrategyKind::PL:
      return estimate_localized(sample, d, costs, true, false, batched,
                                extra_attrs);
    case StrategyKind::BLS:
      return estimate_localized(sample, d, costs, false, true, batched,
                                extra_attrs);
    case StrategyKind::PLS:
      return estimate_localized(sample, d, costs, true, true, batched,
                                extra_attrs);
    case StrategyKind::IM:
      // IM is BL plus the impute filter. The closed-form model cannot see
      // the population model, so it prices the undiscounted BL protocol;
      // the planner applies the model's clear_rate discount on top
      // (analytic/planner.cpp).
      return estimate_localized(sample, d, costs, false, false, batched,
                                extra_attrs);
  }
  throw ContractViolation("unknown strategy kind");
}

}  // namespace isomer
