// Closed-form expected-cost model.
//
// Mirrors the executors' message flow with expected values computed directly
// from a Table-2 parameter sample — no objects, no event simulation — so a
// full-scale 500-sample sweep costs microseconds per point. Used as a fast
// estimator and cross-validated against the discrete-event simulator
// (bench_crossval, tests/test_analytic.cpp).
//
// Approximations (all documented at the formula site):
//   * predicate outcomes are treated as independent across conjuncts;
//   * the unsolved-site class of a nested unknown is approximated by the
//     predicate's final class;
//   * distinct fetched branch objects follow the standard occupancy bound;
//   * response time is approximated as the slowest local pipeline plus the
//     serialized network and the global site's CPU (shared-bus model).
// Accuracy target (enforced by tests): totals within ~35% of the DES and
// matching strategy orderings on typical workloads.
#pragma once

#include "isomer/core/strategy.hpp"
#include "isomer/workload/params.hpp"

namespace isomer {

/// Expected simulated costs of one strategy on one parameter sample.
struct AnalyticEstimate {
  double total_s = 0;
  double response_s = 0;
  double disk_s = 0;
  double cpu_s = 0;
  double net_s = 0;
  double bytes = 0;
};

/// Estimates the expected cost of `kind` on `sample` under `costs`.
/// Signature variants estimate the screened task reduction with Table 2's
/// R_ss formula. With `batched` the estimate mirrors the wire under
/// ShipmentBatcher framing: check tasks shrink to semijoin GOid shipping,
/// per-message attr-sized headers disappear, and kBatchHeaderBytes is paid
/// per estimated frame instead.
[[nodiscard]] AnalyticEstimate estimate_strategy(
    StrategyKind kind, const SampleParams& sample,
    const CostParams& costs = {}, std::size_t extra_attrs = 3,
    bool batched = false);

}  // namespace isomer
