#include "isomer/analytic/planner.hpp"

#include <algorithm>
#include <sstream>

#include "isomer/analytic/advisor.hpp"
#include "isomer/core/exec_common.hpp"

namespace isomer {

PlanChoice plan_adaptive(const Federation& federation,
                         const GlobalQuery& query, const PlannerKnobs& knobs,
                         const SiteStatsBook* book) {
  AdvisorOptions advisor;
  advisor.costs = knobs.costs;
  advisor.sample_size = knobs.sample_size;
  advisor.seed = knobs.seed;
  advisor.jobs = knobs.jobs;
  advisor.batch = knobs.batch;
  const Advice advice = advise_strategy(federation, query, advisor);

  const CostParams& c = knobs.costs;
  const auto involved =
      detail::involved_attributes(federation.schema(), query);
  const double task_bytes =
      knobs.batch.enabled ? static_cast<double>(c.semijoin_task_bytes(false))
                          : static_cast<double>(c.check_task_bytes());

  PlanChoice choice;
  choice.ca_bytes = advice.estimates[0].bytes;  // exact catalog arithmetic
  choice.est_total_s = advice.estimates[0].total_s;
  choice.est_response_s = advice.estimates[0].response_s;
  for (const StrategyEstimate& estimate : advice.estimates) {
    choice.est_total_s = std::min(choice.est_total_s, estimate.total_s);
    choice.est_response_s =
        std::min(choice.est_response_s, estimate.response_s);
  }
  for (const AdvisorStats::PerDb& db : advice.stats.dbs) {
    SitePlanEstimate site;
    site.db = db.db;
    const double n = static_cast<double>(db.root_objects);
    const double rows = n * db.survive_rate;
    // The advisor's shipped-row width: ids, target values, unsolved markers.
    const double row_bytes =
        static_cast<double>(c.loid_bytes + c.goid_bytes) +
        static_cast<double>(query.targets.size()) *
            static_cast<double>(c.attr_bytes) +
        db.unknowns_per_row * static_cast<double>(c.goid_bytes + 8);
    site.sampled_rows_bytes = rows * row_bytes;
    site.est_rows_bytes = site.sampled_rows_bytes;
    if (book != nullptr) {
      if (const auto observed = book->rows_bytes(db.db)) {
        site.est_rows_bytes = *observed;
        site.from_book = true;
      }
    }
    site.extent_bytes = static_cast<double>(
        detail::ca_projected_bytes(federation, db.db, involved, c));
    site.path = site.extent_bytes < site.est_rows_bytes
                    ? SitePath::Central
                    : SitePath::Localized;
    // Check traffic rides either path identically (lazy protocol).
    const double tasks =
        rows * db.nested_items_per_row * db.assistants_per_item;
    choice.check_bytes +=
        tasks * (task_bytes + static_cast<double>(c.verdict_bytes()));
    choice.localized_bytes += site.est_rows_bytes;
    choice.hybrid_bytes += std::min(site.est_rows_bytes, site.extent_bytes);
    choice.sites.push_back(site);
  }
  choice.localized_bytes += choice.check_bytes;
  choice.hybrid_bytes += choice.check_bytes;

  // IM pricing: rows ship like BL, but the population model answers a
  // clear_rate fraction of the check atoms locally, discounting the check
  // traffic. Estimated answers are not exact, so IM must win *strictly*
  // before the planner trades certainty for wire bytes.
  const bool im_enabled =
      knobs.impute_model != nullptr && knobs.impute_spec.enabled;
  if (im_enabled) {
    choice.im_clear_rate =
        knobs.impute_model->clear_rate(federation, query, knobs.impute_spec);
    choice.im_bytes = choice.localized_bytes -
                      choice.check_bytes * choice.im_clear_rate;
  }

  const bool any_central = std::any_of(
      choice.sites.begin(), choice.sites.end(),
      [](const SitePlanEstimate& s) { return s.path == SitePath::Central; });
  std::ostringstream rationale;
  rationale.setf(std::ios::fixed);
  rationale.precision(1);
  if (im_enabled && choice.im_clear_rate > 0 &&
      choice.im_bytes < choice.localized_bytes &&
      choice.im_bytes < choice.hybrid_bytes &&
      choice.im_bytes < choice.ca_bytes) {
    choice.plan = ExecPlan::pure(StrategyKind::IM);
    rationale << "population model clears "
              << choice.im_clear_rate * 100.0
              << "% of check traffic at thresh="
              << knobs.impute_spec.threshold << " -> pure IM (~"
              << choice.im_bytes / 1e3 << "KB vs BL ~"
              << choice.localized_bytes / 1e3 << "KB)";
  } else if (!any_central) {
    // Rows win everywhere: the pure localized strategy (bitwise BL).
    choice.plan = ExecPlan::pure(StrategyKind::BL);
    rationale << "every home site ships fewer row bytes than extent bytes"
              << " -> pure BL (~" << choice.localized_bytes / 1e3 << "KB)";
  } else if (choice.ca_bytes <= choice.hybrid_bytes &&
             choice.ca_bytes <= choice.localized_bytes) {
    // Shipping everything (including branch extents, which the hybrid
    // Central path replaces with check traffic) is cheapest outright.
    choice.plan = ExecPlan::pure(StrategyKind::CA);
    rationale << "full extent shipping (~" << choice.ca_bytes / 1e3
              << "KB) undercuts rows+checks (~"
              << choice.localized_bytes / 1e3 << "KB) -> pure CA";
  } else {
    choice.plan.label = StrategyKind::BL;  // Localized homes run lazy BL
    choice.plan.hybrid = true;
    choice.plan.switch_factor = knobs.switch_factor;
    for (const SitePlanEstimate& site : choice.sites)
      choice.plan.sites.push_back(SiteAssignment{
          site.db, site.path, site.est_rows_bytes, site.extent_bytes});
    std::size_t central = 0;
    for (const SitePlanEstimate& site : choice.sites)
      if (site.path == SitePath::Central) ++central;
    rationale << central << "/" << choice.sites.size()
              << " home sites ship their extent, the rest ship rows -> "
              << "hybrid (~" << choice.hybrid_bytes / 1e3 << "KB vs CA ~"
              << choice.ca_bytes / 1e3 << "KB, BL ~"
              << choice.localized_bytes / 1e3 << "KB)";
  }
  choice.rationale = rationale.str();
  return choice;
}

}  // namespace isomer
