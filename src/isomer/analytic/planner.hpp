// Adaptive runtime planner: per-site strategy choice over the composable
// operators (core/plan.hpp), refreshed from observed executions.
//
// The paper (and the advisor, advisor.hpp) picks ONE strategy for the whole
// federation. That is the right call when the sites are statistically alike
// — but a skewed federation wants both at once: a site whose local
// predicates eliminate most objects should run the Localized path (ship a
// few rows), while a site that cannot evaluate the predicates at all
// (survive rate ~1, narrow projected extent) should run the Central path
// (ship the extent, evaluate at the global site). The planner prices each
// home site independently:
//
//   est_rows_bytes  sampled survive-rate x row width — replaced by the
//                   SiteStatsBook's observed moving average once the site
//                   has executed (adaptive feedback);
//   extent_bytes    exact catalog arithmetic (detail::ca_projected_bytes).
//
// Check traffic is path-independent (the same unsolved items spawn the same
// check tasks either way), so the per-site comparison is rows-vs-extent
// alone. Uniform verdicts collapse to the pure strategies — which execute
// bitwise-identically to the paper's CA/BL — and mixed verdicts yield a
// hybrid ExecPlan, optionally armed with a mid-flight switch factor
// (ExecPlan::switch_factor) as insurance against estimation error. See
// docs/PLANNING.md for the worked example.
#pragma once

#include <string>
#include <vector>

#include "isomer/analytic/impute.hpp"
#include "isomer/analytic/site_stats.hpp"
#include "isomer/core/plan.hpp"

namespace isomer {

struct PlannerKnobs {
  CostParams costs{};
  /// Root objects sampled per database (advisor machinery).
  std::size_t sample_size = 100;
  std::uint64_t seed = 1;
  /// Threads profiling databases concurrently (advice is jobs-invariant).
  int jobs = 1;
  /// Price check tasks as the batched executors ship them.
  BatchOptions batch{};
  /// Armed on hybrid plans: a Localized home re-decides mid-flight when its
  /// observed row payload reaches this factor times the estimate (and the
  /// extent is by then cheaper). 0 disables switching.
  double switch_factor = 2.0;
  /// IM pricing (docs/IMPUTATION.md): when a population model is supplied
  /// and the spec is enabled, the planner discounts the check traffic by
  /// the model's clear_rate and emits a pure IM plan when the discounted
  /// localized payload undercuts every alternative. Left null, IM is never
  /// considered — the planner stays exact-answer-only.
  const ImputeModel* impute_model = nullptr;
  ImputeSpec impute_spec{};
};

/// One home site's economics, for EXPLAIN and tests.
struct SitePlanEstimate {
  DbId db{};
  SitePath path = SitePath::Localized;
  double est_rows_bytes = 0;      ///< what the plan uses (book-corrected)
  double sampled_rows_bytes = 0;  ///< the raw sampling estimate
  double extent_bytes = 0;        ///< exact projected-extent payload
  bool from_book = false;         ///< estimate came from observations
};

/// The planner's decision with its pricing, ready to execute_plan /
/// launch_plan.
struct PlanChoice {
  ExecPlan plan;
  std::vector<SitePlanEstimate> sites;  ///< home-site order
  double ca_bytes = 0;         ///< predicted pure-CA wire payload (exact)
  double localized_bytes = 0;  ///< predicted pure-BL wire payload
  double hybrid_bytes = 0;     ///< predicted per-site-best wire payload
  double check_bytes = 0;      ///< path-independent check traffic estimate
  /// Predicted pure-IM wire payload: row bytes plus the check traffic that
  /// the population model does NOT clear. 0 when IM was not priced.
  double im_bytes = 0;
  /// The model's clear_rate for this query/spec (0 when IM was not priced).
  double im_clear_rate = 0;
  /// The advisor's cheapest pure-strategy estimates (seconds) — a cost
  /// proxy for schedulers that prioritize by predicted cost.
  double est_total_s = 0;
  double est_response_s = 0;
  std::string rationale;
};

/// Plans `query` adaptively: samples (or recalls from `book`, when
/// non-null and the site has been observed) each home site's row payload,
/// compares against the exact extent payload, and emits the cheapest plan —
/// pure when one path wins everywhere, hybrid otherwise. Deterministic for
/// fixed inputs and book state.
[[nodiscard]] PlanChoice plan_adaptive(const Federation& federation,
                                       const GlobalQuery& query,
                                       const PlannerKnobs& knobs = {},
                                       const SiteStatsBook* book = nullptr);

}  // namespace isomer
