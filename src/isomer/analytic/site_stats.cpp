#include "isomer/analytic/site_stats.hpp"

namespace isomer {

void SiteStatsBook::observe(DbId db, double rows_bytes) {
  auto [it, inserted] = stats_.try_emplace(db);
  Entry& entry = it->second;
  if (inserted || entry.observations == 0)
    entry.rows_bytes = rows_bytes;
  else
    entry.rows_bytes =
        (1.0 - alpha_) * entry.rows_bytes + alpha_ * rows_bytes;
  ++entry.observations;
}

void SiteStatsBook::fold(const PlanTelemetry& telemetry) {
  for (const SiteDecision& decision : telemetry.decisions)
    observe(decision.db, decision.observed_rows_bytes);
}

std::optional<double> SiteStatsBook::rows_bytes(DbId db) const {
  const auto it = stats_.find(db);
  if (it == stats_.end() || it->second.observations == 0)
    return std::nullopt;
  return it->second.rows_bytes;
}

std::uint64_t SiteStatsBook::observations(DbId db) const {
  const auto it = stats_.find(db);
  return it == stats_.end() ? 0 : it->second.observations;
}

}  // namespace isomer
