// Per-site runtime statistics the adaptive planner learns from.
//
// Every plan execution observes, per home database, the payload its
// surviving rows would occupy on the wire (SiteDecision::observed_rows_bytes
// — measured on either path, since the Central path evaluates the shipped
// extent at the global site). The book keeps an exponentially weighted
// moving average of that payload per database; the planner
// (analytic/planner.hpp) prefers the book's figure over its sampling
// estimate whenever the site has been observed, so a fleet of queries
// converges onto measured behavior instead of re-sampling forever
// (docs/PLANNING.md).
//
// The book is plain deterministic arithmetic — no clocks, no RNG — so a
// serving run that folds telemetry in submission order reproduces bit-equal
// plans across runs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "isomer/core/plan.hpp"

namespace isomer {

class SiteStatsBook {
 public:
  /// `alpha` weights the newest observation (0 < alpha <= 1); the default
  /// follows fresh skew quickly while smoothing per-query noise.
  explicit SiteStatsBook(double alpha = 0.5) noexcept : alpha_(alpha) {}

  /// Folds one observed row payload for `db` into the moving average. The
  /// first observation seeds the average directly.
  void observe(DbId db, double rows_bytes);

  /// Folds every decision of one execution's telemetry.
  void fold(const PlanTelemetry& telemetry);

  /// The smoothed row payload for `db`; empty until first observed.
  [[nodiscard]] std::optional<double> rows_bytes(DbId db) const;

  [[nodiscard]] std::uint64_t observations(DbId db) const;
  [[nodiscard]] std::size_t sites() const noexcept { return stats_.size(); }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  struct Entry {
    double rows_bytes = 0;
    std::uint64_t observations = 0;
  };
  double alpha_;
  std::map<DbId, Entry> stats_;
};

}  // namespace isomer
