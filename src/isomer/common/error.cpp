#include "isomer/common/error.hpp"

// Exceptions are header-only; this translation unit pins the vtables so the
// types have a single home in the static library.
namespace isomer {
namespace {
[[maybe_unused]] void pin_vtables() {
  (void)sizeof(Error);
  (void)sizeof(SchemaError);
  (void)sizeof(QueryError);
  (void)sizeof(FederationError);
  (void)sizeof(SimError);
  (void)sizeof(ContractViolation);
}
}  // namespace
}  // namespace isomer
