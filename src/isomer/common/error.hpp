// Error handling for the isomer library.
//
// Following the C++ Core Guidelines we use exceptions for errors that the
// immediate caller cannot be expected to handle locally:
//   * SchemaError     — malformed schemas / integration specs,
//   * QueryError      — queries that do not type-check against a schema,
//   * FederationError — inconsistent GOid mappings or federation state,
//   * SimError        — misuse of the discrete-event simulator.
// Contract violations (preconditions that indicate a bug in the calling code)
// go through `expects()` / `ensures()` and throw ContractViolation.
#pragma once

#include <stdexcept>
#include <string>

namespace isomer {

/// Base class for all isomer exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A schema or schema-integration specification is malformed.
class SchemaError : public Error {
 public:
  using Error::Error;
};

/// A query does not type-check against the schema it is run on.
class QueryError : public Error {
 public:
  using Error::Error;
};

/// Federation metadata (GOid mapping tables, isomerism assertions) is
/// inconsistent.
class FederationError : public Error {
 public:
  using Error::Error;
};

/// The discrete-event simulator was driven into an invalid state.
class SimError : public Error {
 public:
  using Error::Error;
};

/// A fault-injection failure: a component site stayed unreachable after the
/// retry policy was exhausted while the strategy was not allowed to degrade
/// (fault::DegradeMode::Fail), or a --faults specification is malformed.
class FaultError : public Error {
 public:
  using Error::Error;
};

/// A query-serving failure: a --serve specification is malformed, or the
/// serving layer was configured into an unservable state.
class ServeError : public Error {
 public:
  using Error::Error;
};

/// An imputation failure: a --impute specification is malformed, or the IM
/// strategy was launched without the population model it needs.
class ImputeError : public Error {
 public:
  using Error::Error;
};

/// A precondition or postcondition stated by the library was violated; this
/// always indicates a bug in the code that triggered it.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Precondition check. Kept as a function (not a macro) per the guidelines;
/// call sites pass a static description of the violated condition.
inline void expects(bool condition, const char* what) {
  if (!condition) throw ContractViolation(std::string("precondition: ") + what);
}

/// Postcondition check.
inline void ensures(bool condition, const char* what) {
  if (!condition)
    throw ContractViolation(std::string("postcondition: ") + what);
}

}  // namespace isomer
