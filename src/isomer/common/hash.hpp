// Shared hashing utilities.
//
// TransparentStringHash lets unordered containers keyed by std::string be
// probed with std::string_view (heterogeneous lookup) so hot probe paths do
// not allocate a temporary std::string per call.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "isomer/common/ids.hpp"

namespace isomer {

/// Heterogeneous (transparent) hash for string-keyed unordered containers:
/// `map.find(string_view)` works without materializing a std::string.
struct TransparentStringHash {
  using is_transparent = void;

  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  [[nodiscard]] std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  [[nodiscard]] std::size_t operator()(const char* s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Finalizer-quality 64-bit mix of an LOid (same splitmix construction as
/// std::hash<LOid>, exposed as a free function so open-addressed tables can
/// derive both their shard and their slot from one well-mixed word).
[[nodiscard]] inline std::uint64_t hash_loid(const LOid& id) noexcept {
  const auto combined = (static_cast<std::uint64_t>(id.db.value()) << 32) |
                        static_cast<std::uint64_t>(id.local);
  std::uint64_t x = combined + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace isomer
