// Strongly-typed identifiers used across the federation.
//
// The paper distinguishes three identifier spaces:
//   * a component database identifier (which site an object lives at),
//   * local object identifiers (LOids), unique only within one component
//     database and mutually incompatible across databases, and
//   * global object identifiers (GOids), assigned by the federation; isomeric
//     objects (same real-world entity in different databases) share one GOid.
//
// Strong typedefs keep these spaces from being mixed up at compile time.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace isomer {

/// CRTP-free strong integer id. `Tag` makes each instantiation a distinct
/// type; `Rep` is the underlying representation.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep value) noexcept : value_(value) {}

  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

 private:
  Rep value_{0};
};

template <typename Tag, typename Rep>
std::ostream& operator<<(std::ostream& os, StrongId<Tag, Rep> id) {
  return os << id.value();
}

/// Identifies one component database (site) in the federation.
using DbId = StrongId<struct DbIdTag, std::uint16_t>;

/// Global object identifier. Isomeric objects share the same GOid.
using GOid = StrongId<struct GOidTag, std::uint64_t>;

/// Local object identifier: unique within a single component database.
/// A LOid is meaningless without knowing which database issued it, so the
/// database id is part of the identifier, mirroring the paper's `t2'@DB2`
/// notation.
struct LOid {
  DbId db;
  std::uint32_t local{0};

  friend constexpr auto operator<=>(const LOid&, const LOid&) noexcept =
      default;
};

inline std::ostream& operator<<(std::ostream& os, const LOid& id) {
  return os << "o" << id.local << "@DB" << id.db.value();
}

[[nodiscard]] inline std::string to_string(const LOid& id) {
  return "o" + std::to_string(id.local) + "@DB" + std::to_string(id.db.value());
}

}  // namespace isomer

template <typename Tag, typename Rep>
struct std::hash<isomer::StrongId<Tag, Rep>> {
  std::size_t operator()(isomer::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

template <>
struct std::hash<isomer::LOid> {
  std::size_t operator()(const isomer::LOid& id) const noexcept {
    // Splitmix-style mix of the two fields; dbs are small so shifting the db
    // into the high bits keeps local ids from colliding across databases.
    const auto combined = (static_cast<std::uint64_t>(id.db.value()) << 32) |
                          static_cast<std::uint64_t>(id.local);
    std::uint64_t x = combined + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
