#include "isomer/common/parallel.hpp"

#include "isomer/common/error.hpp"

namespace isomer {

unsigned ThreadPool::hardware_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(jobs == 0 ? hardware_jobs() : jobs) {
  workers_.reserve(jobs_ - 1);
  for (unsigned i = 0; i + 1 < jobs_; ++i)
    workers_.emplace_back([this] { worker(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen && task_ != nullptr);
      });
      if (stop_) return;
      seen = generation_;
      task = task_;
      n = task_n_;
    }
    drain(task, n);
  }
}

void ThreadPool::drain(const std::function<void(std::size_t)>* task,
                       std::size_t n) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    if (!has_error_.load(std::memory_order_relaxed)) {
      try {
        (*task)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
        has_error_.store(true, std::memory_order_relaxed);
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::for_each(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Serial fast path: strict index order, no synchronization.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    expects(task_ == nullptr, "ThreadPool::for_each is not reentrant");
    task_ = &fn;
    task_n_ = n;
    remaining_ = n;
    error_ = nullptr;
    has_error_.store(false, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  drain(&fn, n);  // the calling thread works alongside the pool
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    task_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for_each(unsigned jobs, std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  ThreadPool pool(jobs);
  pool.for_each(n, fn);
}

}  // namespace isomer
