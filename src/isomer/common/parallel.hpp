// Trial-level parallelism for the Monte-Carlo drivers.
//
// The performance study (paper §4) averages hundreds of independent,
// deterministic simulations per sweep point. A small fixed-size thread pool
// runs those trials across cores; determinism is preserved by giving every
// trial its own RNG stream (rng.hpp's derive_stream) and reducing per-trial
// results in index order, so a run at any job count is bitwise-identical to
// a serial one.
//
// The pool is deliberately minimal: one blocking for_each at a time, indices
// handed out through a shared atomic counter, the calling thread working
// alongside the workers. With `jobs == 1` (or a single iteration) for_each
// degenerates to a plain in-order loop on the caller's thread with no
// synchronization at all.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace isomer {

/// Fixed-size pool of worker threads executing indexed batches.
class ThreadPool {
 public:
  /// Number of jobs to use when the user asked for "all cores": the
  /// hardware concurrency, but never 0.
  [[nodiscard]] static unsigned hardware_jobs() noexcept;

  /// A pool running batches on `jobs` threads in total (the caller counts
  /// as one, so `jobs - 1` workers are spawned). `jobs == 0` means
  /// hardware_jobs().
  explicit ThreadPool(unsigned jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Runs `fn(i)` for every i in [0, n), distributing iterations across the
  /// pool, and blocks until all complete. Not reentrant. If an iteration
  /// throws, the remaining unclaimed iterations are skipped and the first
  /// exception is rethrown here.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// for_each that collects one result per index, in index order.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map(std::size_t n, Fn fn) {
    std::vector<T> out(n);
    for_each(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void worker();
  void drain(const std::function<void(std::size_t)>* task, std::size_t n);

  unsigned jobs_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;                    // bumped per batch
  const std::function<void(std::size_t)>* task_ = nullptr;  // active batch
  std::size_t task_n_ = 0;
  std::size_t remaining_ = 0;  // iterations not yet completed (guarded)
  std::exception_ptr error_;   // first failure of the batch (guarded)

  std::atomic<std::size_t> next_{0};      // next unclaimed index
  std::atomic<bool> has_error_{false};    // fast-path skip flag
};

/// One-shot convenience: run `fn(i)` for i in [0, n) on `jobs` threads.
void parallel_for_each(unsigned jobs, std::size_t n,
                       const std::function<void(std::size_t)>& fn);

/// One-shot convenience collecting one result per index, in index order.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(unsigned jobs, std::size_t n,
                                          Fn fn) {
  std::vector<T> out(n);
  parallel_for_each(jobs, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace isomer
