#include "isomer/common/rng.hpp"

#include <algorithm>
#include <numeric>

namespace isomer {

namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  expects(lo <= hi, "Rng::uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<std::int64_t>((*this)());
  }
  // Debiased modulo (Lemire-style rejection on the low zone).
  const std::uint64_t zone = Rng::max() - Rng::max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= zone) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform_real(double lo, double hi) {
  expects(lo <= hi, "Rng::uniform_real requires lo <= hi");
  // 53 random mantissa bits -> uniform double in [0, 1).
  const double unit =
      static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

bool Rng::bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return uniform_real(0.0, 1.0) < clamped;
}

std::size_t Rng::index(std::size_t size) {
  expects(size > 0, "Rng::index requires a non-empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size - 1)));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  expects(k <= n, "Rng::sample_indices requires k <= n");
  // Partial Fisher-Yates: only the first k slots are needed.
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(
                uniform_int(0, static_cast<std::int64_t>(n - i - 1)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::fork() noexcept {
  return Rng((*this)());
}

std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Two chained splitmix64 steps: mix the stream index, then fold in the
  // base seed and mix again. Sequential stream indices therefore produce
  // decorrelated seeds, and distinct (seed, stream) pairs collide only with
  // generic 64-bit-hash probability.
  std::uint64_t x = stream;
  std::uint64_t mixed = splitmix64(x);
  x = mixed ^ seed;
  mixed = splitmix64(x);
  return mixed;
}

}  // namespace isomer
