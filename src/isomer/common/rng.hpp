// Deterministic random number generation.
//
// The performance study draws 500 random parameter sets per configuration
// (paper §4.1). Reproducibility of the whole study — and of every property
// test — requires a seedable generator whose stream is identical across
// platforms, so we ship xoshiro256++ rather than relying on the
// implementation-defined std::default_random_engine, and implement our own
// bounded-draw helpers rather than std::uniform_int_distribution (whose
// output differs between standard libraries).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isomer/common/error.hpp"

namespace isomer {

/// xoshiro256++ PRNG (Blackman & Vigna), seeded via splitmix64. Satisfies
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1996'0602'1cdc'5a17ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);

  /// A uniformly random index in [0, size). Requires size > 0.
  [[nodiscard]] std::size_t index(std::size_t size);

  /// Draws k distinct indices from [0, n) (k <= n), in random order.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

  /// Derives an independent child generator; used to give each simulated
  /// sample / site its own stream so adding draws in one place does not
  /// perturb another.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// Mixes a base seed and a stream index into the seed of an independent
/// per-stream generator: `Rng(derive_stream(seed, i))` gives trial i its own
/// reproducible stream regardless of what any other trial draws, which is
/// what lets the Monte-Carlo drivers run trials in parallel while staying
/// bitwise-identical to a serial run (see common/parallel.hpp). Adjacent
/// stream indices land in unrelated regions of xoshiro256++'s state space
/// (the seed is splitmix64-mixed twice, then expanded again by Rng's
/// constructor), so streams do not overlap in practice.
[[nodiscard]] std::uint64_t derive_stream(std::uint64_t seed,
                                         std::uint64_t stream) noexcept;

}  // namespace isomer
