#include "isomer/common/truth.hpp"

namespace isomer {

std::string_view to_string(Truth t) noexcept {
  switch (t) {
    case Truth::False:
      return "false";
    case Truth::Unknown:
      return "unknown";
    case Truth::True:
      return "true";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, Truth t) {
  return os << to_string(t);
}

}  // namespace isomer
