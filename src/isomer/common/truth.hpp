// Kleene three-valued logic.
//
// Missing data (missing attributes and null values) makes predicate
// evaluation three-valued: an object whose predicates all evaluate to True is
// a *certain* result; one whose predicates evaluate to True or Unknown (with
// at least one Unknown) is a *maybe* result; any False eliminates the object.
#pragma once

#include <array>
#include <ostream>
#include <string_view>

namespace isomer {

/// Kleene truth value. The enumerator order (False < Unknown < True) is the
/// standard information ordering used by min/max formulations of and/or.
enum class Truth : unsigned char { False = 0, Unknown = 1, True = 2 };

[[nodiscard]] constexpr Truth truth_of(bool b) noexcept {
  return b ? Truth::True : Truth::False;
}

/// Kleene conjunction: min under False < Unknown < True.
[[nodiscard]] constexpr Truth operator&&(Truth a, Truth b) noexcept {
  return a < b ? a : b;
}

/// Kleene disjunction: max under False < Unknown < True.
[[nodiscard]] constexpr Truth operator||(Truth a, Truth b) noexcept {
  return a < b ? b : a;
}

/// Kleene negation: swaps True/False, fixes Unknown.
[[nodiscard]] constexpr Truth operator!(Truth a) noexcept {
  switch (a) {
    case Truth::False:
      return Truth::True;
    case Truth::True:
      return Truth::False;
    case Truth::Unknown:
      return Truth::Unknown;
  }
  return Truth::Unknown;
}

[[nodiscard]] constexpr bool is_true(Truth t) noexcept {
  return t == Truth::True;
}
[[nodiscard]] constexpr bool is_false(Truth t) noexcept {
  return t == Truth::False;
}
[[nodiscard]] constexpr bool is_unknown(Truth t) noexcept {
  return t == Truth::Unknown;
}

[[nodiscard]] std::string_view to_string(Truth t) noexcept;

std::ostream& operator<<(std::ostream& os, Truth t);

/// Folds a range of truth values with Kleene conjunction; empty ranges are
/// vacuously True (matching conjunctive predicate lists).
template <typename Range>
[[nodiscard]] constexpr Truth conjunction(const Range& range) noexcept {
  Truth acc = Truth::True;
  for (Truth t : range) acc = acc && t;
  return acc;
}

/// Folds a range of truth values with Kleene disjunction; empty ranges are
/// vacuously False.
template <typename Range>
[[nodiscard]] constexpr Truth disjunction(const Range& range) noexcept {
  Truth acc = Truth::False;
  for (Truth t : range) acc = acc || t;
  return acc;
}

}  // namespace isomer
