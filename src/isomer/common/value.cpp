#include "isomer/common/value.hpp"

#include <sstream>

#include "isomer/common/error.hpp"

namespace isomer {

std::string_view to_string(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::Null:
      return "null";
    case ValueKind::Bool:
      return "bool";
    case ValueKind::Int:
      return "int";
    case ValueKind::Real:
      return "real";
    case ValueKind::String:
      return "string";
    case ValueKind::LocalRef:
      return "local-ref";
    case ValueKind::GlobalRef:
      return "global-ref";
    case ValueKind::LocalRefSet:
      return "local-ref-set";
    case ValueKind::GlobalRefSet:
      return "global-ref-set";
  }
  return "null";
}

ValueKind Value::kind() const noexcept {
  return static_cast<ValueKind>(storage_.index());
}

bool Value::as_bool() const {
  expects(std::holds_alternative<bool>(storage_), "Value::as_bool on non-bool");
  return std::get<bool>(storage_);
}

std::int64_t Value::as_int() const {
  expects(std::holds_alternative<std::int64_t>(storage_),
          "Value::as_int on non-int");
  return std::get<std::int64_t>(storage_);
}

double Value::as_real() const {
  expects(std::holds_alternative<double>(storage_),
          "Value::as_real on non-real");
  return std::get<double>(storage_);
}

const std::string& Value::as_string() const {
  expects(std::holds_alternative<std::string>(storage_),
          "Value::as_string on non-string");
  return std::get<std::string>(storage_);
}

LOid Value::as_local_ref() const {
  expects(std::holds_alternative<LocalRef>(storage_),
          "Value::as_local_ref on non-local-ref");
  return std::get<LocalRef>(storage_).target;
}

GOid Value::as_global_ref() const {
  expects(std::holds_alternative<GlobalRef>(storage_),
          "Value::as_global_ref on non-global-ref");
  return std::get<GlobalRef>(storage_).target;
}

const std::vector<LOid>& Value::as_local_ref_set() const {
  expects(std::holds_alternative<LocalRefSet>(storage_),
          "Value::as_local_ref_set on non-local-ref-set");
  return std::get<LocalRefSet>(storage_).targets;
}

const std::vector<GOid>& Value::as_global_ref_set() const {
  expects(std::holds_alternative<GlobalRefSet>(storage_),
          "Value::as_global_ref_set on non-global-ref-set");
  return std::get<GlobalRefSet>(storage_).targets;
}

double Value::as_number() const {
  if (const auto* i = std::get_if<std::int64_t>(&storage_))
    return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&storage_)) return *d;
  throw ContractViolation("Value::as_number on non-numeric value");
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case ValueKind::Null:
      return os << "-";
    case ValueKind::Bool:
      return os << (v.as_bool() ? "true" : "false");
    case ValueKind::Int:
      return os << v.as_int();
    case ValueKind::Real:
      return os << v.as_real();
    case ValueKind::String:
      return os << v.as_string();
    case ValueKind::LocalRef:
      return os << v.as_local_ref();
    case ValueKind::GlobalRef:
      return os << "g" << v.as_global_ref().value();
    case ValueKind::LocalRefSet: {
      os << "{";
      const char* sep = "";
      for (const LOid& t : v.as_local_ref_set()) {
        os << sep << t;
        sep = ", ";
      }
      return os << "}";
    }
    case ValueKind::GlobalRefSet: {
      os << "{";
      const char* sep = "";
      for (const GOid& t : v.as_global_ref_set()) {
        os << sep << "g" << t.value();
        sep = ", ";
      }
      return os << "}";
    }
  }
  return os;
}

std::string to_string(const Value& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

namespace {

[[noreturn]] void incomparable(const Value& a, const Value& b,
                               const char* op) {
  std::ostringstream os;
  os << "cannot apply " << op << " to values of kind " << to_string(a.kind())
     << " and " << to_string(b.kind());
  throw QueryError(os.str());
}

}  // namespace

Truth compare_eq(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Truth::Unknown;
  if (a.is_numeric() && b.is_numeric())
    return truth_of(a.as_number() == b.as_number());
  if (a.kind() != b.kind()) incomparable(a, b, "=");
  switch (a.kind()) {
    case ValueKind::Bool:
      return truth_of(a.as_bool() == b.as_bool());
    case ValueKind::String:
      return truth_of(a.as_string() == b.as_string());
    case ValueKind::LocalRef:
      return truth_of(a.as_local_ref() == b.as_local_ref());
    case ValueKind::GlobalRef:
      return truth_of(a.as_global_ref() == b.as_global_ref());
    case ValueKind::LocalRefSet:
      return truth_of(a.as_local_ref_set() == b.as_local_ref_set());
    case ValueKind::GlobalRefSet:
      return truth_of(a.as_global_ref_set() == b.as_global_ref_set());
    default:
      incomparable(a, b, "=");
  }
}

Truth compare_less(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Truth::Unknown;
  if (a.is_numeric() && b.is_numeric())
    return truth_of(a.as_number() < b.as_number());
  if (a.kind() == ValueKind::String && b.kind() == ValueKind::String)
    return truth_of(a.as_string() < b.as_string());
  incomparable(a, b, "<");
}

}  // namespace isomer
