// Attribute values.
//
// A value stored in a component database is one of:
//   * null            — the paper's "original null values", one of the two
//                       sources of missing data,
//   * a primitive     — bool / integer / real / string,
//   * a reference     — the LOid of an object of the attribute's domain class
//                       (a *complex* attribute value),
//   * a reference set — multi-valued complex attribute (paper §5 future work).
//
// After materialization at the global site, LOid references are rewritten to
// GOid references (`GlobalRef`), mirroring Fig. 6 of the paper.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "isomer/common/ids.hpp"
#include "isomer/common/truth.hpp"

namespace isomer {

/// Tag type for the null (missing) value.
struct Null {
  friend constexpr auto operator<=>(const Null&, const Null&) noexcept =
      default;
};

/// Reference to a local object (complex attribute value inside one component
/// database).
struct LocalRef {
  LOid target;
  friend constexpr auto operator<=>(const LocalRef&, const LocalRef&) noexcept =
      default;
};

/// Reference to a global object (complex attribute value after integration).
struct GlobalRef {
  GOid target;
  friend constexpr auto operator<=>(const GlobalRef&,
                                    const GlobalRef&) noexcept = default;
};

/// Multi-valued local reference (set-valued complex attribute).
struct LocalRefSet {
  std::vector<LOid> targets;
  friend auto operator<=>(const LocalRefSet&, const LocalRefSet&) = default;
};

/// Multi-valued global reference.
struct GlobalRefSet {
  std::vector<GOid> targets;
  friend auto operator<=>(const GlobalRefSet&, const GlobalRefSet&) = default;
};

/// Discriminates Value alternatives without exposing variant indices.
enum class ValueKind : unsigned char {
  Null,
  Bool,
  Int,
  Real,
  String,
  LocalRef,
  GlobalRef,
  LocalRefSet,
  GlobalRefSet,
};

[[nodiscard]] std::string_view to_string(ValueKind kind) noexcept;

/// A single attribute value. Value is a regular type (copyable, equality
/// comparable with *exact* equality); three-valued SQL-style comparison lives
/// in `compare_eq` / `compare_less`, which map nulls to Truth::Unknown.
class Value {
 public:
  using Storage = std::variant<Null, bool, std::int64_t, double, std::string,
                               LocalRef, GlobalRef, LocalRefSet, GlobalRefSet>;

  /// Default-constructed values are null, matching a freshly created object
  /// whose attributes have not been set.
  Value() noexcept : storage_(Null{}) {}
  Value(bool b) : storage_(b) {}
  Value(std::int64_t i) : storage_(i) {}
  Value(int i) : storage_(static_cast<std::int64_t>(i)) {}
  Value(double d) : storage_(d) {}
  Value(std::string s) : storage_(std::move(s)) {}
  Value(const char* s) : storage_(std::string(s)) {}
  Value(LocalRef r) : storage_(r) {}
  Value(GlobalRef r) : storage_(r) {}
  Value(LocalRefSet r) : storage_(std::move(r)) {}
  Value(GlobalRefSet r) : storage_(std::move(r)) {}

  [[nodiscard]] static Value null() { return Value{}; }

  [[nodiscard]] ValueKind kind() const noexcept;
  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<Null>(storage_);
  }
  [[nodiscard]] bool is_ref() const noexcept {
    return std::holds_alternative<LocalRef>(storage_) ||
           std::holds_alternative<GlobalRef>(storage_);
  }
  [[nodiscard]] bool is_ref_set() const noexcept {
    return std::holds_alternative<LocalRefSet>(storage_) ||
           std::holds_alternative<GlobalRefSet>(storage_);
  }
  [[nodiscard]] bool is_primitive() const noexcept {
    return !is_null() && !is_ref() && !is_ref_set();
  }

  /// Typed accessors; throw ContractViolation when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_real() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] LOid as_local_ref() const;
  [[nodiscard]] GOid as_global_ref() const;
  [[nodiscard]] const std::vector<LOid>& as_local_ref_set() const;
  [[nodiscard]] const std::vector<GOid>& as_global_ref_set() const;

  /// Numeric view: Int and Real both convert; anything else throws.
  [[nodiscard]] double as_number() const;
  [[nodiscard]] bool is_numeric() const noexcept {
    return std::holds_alternative<std::int64_t>(storage_) ||
           std::holds_alternative<double>(storage_);
  }

  [[nodiscard]] const Storage& storage() const noexcept { return storage_; }

  /// Exact (non-SQL) equality: null == null here. Used for container
  /// membership and tests, not for predicate evaluation.
  friend bool operator==(const Value&, const Value&) = default;

 private:
  Storage storage_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);
[[nodiscard]] std::string to_string(const Value& v);

/// Three-valued equality: Unknown when either side is null; numeric kinds
/// compare numerically; comparing incompatible kinds throws QueryError (a
/// type-checked query never does this).
[[nodiscard]] Truth compare_eq(const Value& a, const Value& b);

/// Three-valued `<` over numbers and strings; Unknown when either side is
/// null; refs and bools are not ordered (throws QueryError).
[[nodiscard]] Truth compare_less(const Value& a, const Value& b);

}  // namespace isomer
