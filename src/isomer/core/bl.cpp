// Localized-path operators (paper §3.2 and §3.3) and the pure BL/PL
// compositions.
//
// BL — basic localized, phase order P -> O -> I:
//   BL_G1  the global site derives a local query per home database (those
//          holding a constituent of the range class) and ships it
//          (ShipLocalQuery).
//   BL_C1  each home database evaluates its local predicates (phase P);
//          objects violating a local predicate are eliminated on the spot
//          (LocalFilter).
//   BL_C2  for the unsolved items of the surviving local maybe results, the
//          home database probes the GOid tables for assistant objects
//          (AssistantLookup) and ships check requests to their databases
//          (CheckProtocol::dispatch); the local result rows go to the
//          global site (ShipRows).
//   BL_C3  a database receiving a check request evaluates the appended
//          suffix predicates on the listed assistants and reports verdicts
//          to the global site (CheckProtocol::serve).
//   BL_G2  once every local result and every announced verdict has arrived,
//          the global site certifies (phase I) and produces the answer
//          (maybe_certify).
//
// PL — parallel localized, phase order O -> P -> I: identical protocol
// except that each home database *first* walks every root object's nested
// complex attributes that hold schema-level missing data, looks up their
// assistants, and ships those check requests (EagerLookup / PL_C1) — so
// remote checking (PL_C3) overlaps with its own predicate evaluation
// (PL_C2). The price is checking assistants for objects that local
// evaluation would have eliminated: more mapping-table probes, transfers
// and remote work, which is exactly the overhead the paper measures in
// Fig. 10. Unsolved sites discovered only during evaluation (null values)
// are dispatched in a second wave.
//
// The signature variants (BLS/PLS) screen candidate assistants against the
// replicated signature index while planning checks: provably violating
// assistants become local False verdicts that ride along with the row
// message instead of being shipped for checking.
//
// Each operator lives here as a free function over the shared
// OperatorContext (core/operators.hpp); hybrid plans reuse the same
// functions per site, with maybe_switch_to_central hooked between
// AssistantLookup and ShipRows.
#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <tuple>

#include "isomer/core/cert_cache.hpp"
#include "isomer/core/certify.hpp"
#include "isomer/core/operators.hpp"
#include "isomer/fault/degrade.hpp"
#include "isomer/query/condition.hpp"
#include "isomer/schema/translate.hpp"

namespace isomer::detail {

std::uint64_t CertWriteback::key_signature(DbId home, std::size_t predicate,
                                           std::size_t step) const noexcept {
  std::uint64_t sig = signatures[predicate];
  sig ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(step) + 1);
  sig ^=
      0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(home.value()) + 1);
  return sig;
}

void CertWriteback::filter(ExecEnv& env, SiteIndex from, DbId home,
                           CheckPlan& plan) {
  if (cache == nullptr || plan.by_target.empty()) return;
  // One probe per distinct first-round atom instance (item, predicate,
  // step) — duplicated tasks (two maybe rows advised by the same item)
  // share the probe's outcome, exactly as their verdicts would have pooled.
  std::map<std::tuple<GOid, std::size_t, std::size_t>, std::optional<Truth>>
      probed;
  std::uint64_t hit_count = 0, miss_count = 0;
  for (auto target = plan.by_target.begin();
       target != plan.by_target.end();) {
    std::vector<CheckTask>& tasks = target->second;
    std::erase_if(tasks, [&](const CheckTask& task) {
      if (task.origin != task.item) return false;  // cascaded: never cached
      const auto key = std::tuple{task.item, task.predicate, task.step};
      auto it = probed.find(key);
      if (it == probed.end()) {
        const std::optional<Truth> found = cache->lookup(
            task.item, key_signature(home, task.predicate, task.step),
            epoch);
        it = probed.emplace(key, found).first;
        if (found.has_value()) {
          ++hit_count;
          // The synthesized verdict rides with the plan's screen verdicts;
          // the atom's pool now mixes cached evidence, so never re-cache it.
          tainted.insert(std::pair{task.item, task.predicate});
          plan.local_verdicts.push_back(
              CheckVerdict{task.origin, task.predicate, *found});
        } else {
          ++miss_count;
          dispatched[std::pair{task.item, task.predicate}].insert(
              std::pair{home, task.step});
        }
      }
      return it->second.has_value();
    });
    // A fully-answered target must not receive an empty check request.
    if (tasks.empty())
      target = plan.by_target.erase(target);
    else
      ++target;
  }
  hits += hit_count;
  misses += miss_count;
  const SimTime now = env.sim().now();
  if (hit_count > 0)
    env.record_cert_event(from, "cert.hit/" + std::to_string(hit_count), now,
                          now);
  if (miss_count > 0)
    env.record_cert_event(from, "cert.miss/" + std::to_string(miss_count),
                          now, now);
}

void CertWriteback::writeback(const std::vector<CheckVerdict>& verdicts) {
  if (cache == nullptr || dispatched.empty()) return;
  // Pool every verdict per atom with certify()'s merge rule (False
  // dominates, else Kleene-or); the pool is associative and idempotent, so
  // it equals what any later run would reconstruct from the same evidence.
  std::map<std::pair<GOid, std::size_t>, Truth> pooled;
  for (const CheckVerdict& verdict : verdicts) {
    auto [it, inserted] = pooled.try_emplace(
        std::pair{verdict.item, verdict.predicate}, verdict.truth);
    if (!inserted) {
      if (is_false(verdict.truth) || is_false(it->second))
        it->second = Truth::False;
      else
        it->second = it->second || verdict.truth;
    }
  }
  for (const auto& [atom, sources] : dispatched) {
    // Only a single (home, step) source makes the atom's evidence stream
    // attributable to one key; and a pool partly synthesized from the cache
    // must not be written back under a fresh key.
    if (sources.size() != 1 || tainted.count(atom) != 0) continue;
    const auto it = pooled.find(atom);
    if (it == pooled.end()) continue;
    const auto& [home, step] = *sources.begin();
    cache->insert(atom.first, key_signature(home, atom.second, step), epoch,
                  it->second);
  }
}

void maybe_certify(ExecEnv& env, const std::shared_ptr<GlobalState>& state) {
  if (state->done || !state->complete()) return;
  state->done = true;
  AccessMeter meter;
  CertifyStats stats;
  const std::set<DbId>& dead = env.unavailable();
  state->result = certify(env.fed(), env.query(), state->locals,
                          state->verdicts, &meter, &stats,
                          dead.empty() ? nullptr : &dead,
                          state->impute != nullptr
                              ? &state->impute->confidences
                              : nullptr);
  if (state->impute != nullptr) {
    // IM's residual discharge: estimate the atoms the dispatch filter could
    // not reach (root-level sites, unanswered assistants) straight out of
    // the certified rows' conditions — before degradation tagging, so a row
    // the model confidently answers is an answer, not an unavailability.
    state->impute->discharge(env, state->locals, state->result);
    stats.certain += state->impute->upgraded_rows;
    stats.maybe -= std::min(stats.maybe, state->impute->upgraded_rows +
                                             state->impute->eliminated_rows);
    stats.eliminated += state->impute->eliminated_rows;
  }
  if (env.degraded()) {
    fault::tag_unavailable(state->result, env.fed(), env.query(), dead);
    env.record_fault_event(kGlobalSite, "fault.degrade", env.sim().now(),
                           env.sim().now());
  }
  if (state->certs != nullptr) {
    // Writeback only from complete evidence: a degraded run's abandoned
    // shipments leave the pools partial, and caching those would poison
    // every later query at this epoch.
    if (!env.degraded()) state->certs->writeback(state->verdicts);
    env.note_cert_outcome(state->certs->hits, state->certs->misses);
    // The discharge marker carries the residual-atom histogram: how many
    // atoms of the maybe rows' conditions stayed unresolved, per predicate.
    std::string discharge =
        "cert.discharge atoms=" + std::to_string(stats.unresolved_atoms);
    for (const auto& [predicate, count] : stats.unresolved_by_predicate)
      discharge +=
          " p" + std::to_string(predicate) + "=" + std::to_string(count);
    env.record_cert_event(kGlobalSite, discharge, env.sim().now(),
                          env.sim().now());
  }
  if (state->impute != nullptr) {
    env.note_impute_outcome(state->impute->imputed, state->impute->declined);
    // The certification marker: how many atoms the model answered vs left
    // on the certified path across all homes of this run.
    env.record_impute_event(
        kGlobalSite,
        "im.certify imputed=" + std::to_string(state->impute->imputed) +
            " declined=" + std::to_string(state->impute->declined),
        env.sim().now(), env.sim().now());
  }
  AccessMeter cpu_only;  // certification merges in memory at the global site
  cpu_only.comparisons = meter.comparisons + meter.table_probes;
  SpanCounts counts;
  counts.objects_in = stats.entities;
  counts.objects_out = stats.certain + stats.maybe;
  counts.certs_resolved = stats.certain;
  counts.certs_eliminated = stats.eliminated;
  env.charge(kGlobalSite, cpu_only, Phase::I, "G2 certify", counts,
             [&env, state] {
               state->response = env.sim().now();
               state->on_done(std::move(state->result), state->response);
             });
}

AccessMeter meter_minus(const AccessMeter& a, const AccessMeter& b) {
  const auto sub = [](std::uint64_t x, std::uint64_t y) {
    return x > y ? x - y : 0;
  };
  AccessMeter out;
  out.objects_scanned = sub(a.objects_scanned, b.objects_scanned);
  out.objects_fetched = sub(a.objects_fetched, b.objects_fetched);
  out.comparisons = sub(a.comparisons, b.comparisons);
  out.table_probes = sub(a.table_probes, b.table_probes);
  out.prim_slots = sub(a.prim_slots, b.prim_slots);
  out.ref_slots = sub(a.ref_slots, b.ref_slots);
  return out;
}

/// Under batching the request degrades to a semijoin: only the item GOids
/// (+ predicate indexes) travel, and the target re-derives the assistant
/// LOids from its replicated GOid table (serve() charges the extra probes).
void CheckProtocol::dispatch(SiteIndex from, CheckPlan& plan,
                             const DbId* home) {
  // First-round dispatches consult the certificate cache (when one is
  // attached): tasks whose atom is already certified at this epoch are
  // stripped before anything is announced or shipped. The imputation
  // filter (the IM strategy, core/im.cpp) runs second — exact cached
  // knowledge always beats an estimate — and may strip more tasks, with
  // their estimated verdicts riding as local verdicts.
  if (home != nullptr && state->certs != nullptr)
    state->certs->filter(env, from, *home, plan);
  if (home != nullptr && state->impute != nullptr)
    state->impute->filter(env, from, *home, plan, state->certs.get());
  state->verdicts_announced += plan.task_count();
  auto self = shared_from_this();
  for (const auto& [target, tasks] : plan.by_target)
    env.ship_record(
        from, env.site_of(target),
        env.batching() ? semijoin_check_request_bytes(env.costs(), tasks)
                       : check_request_wire_bytes(env.costs(), tasks.size()),
        "C2 check request",
        [self, target, tasks] { self->serve(target, tasks); },
        // Abandoned request: its announced verdicts will never
        // come — account for them so certification can release.
        [self, n = tasks.size()](SiteIndex) {
          self->state->verdicts_received += n;
          maybe_certify(self->env, self->state);
        });
}

void CheckProtocol::serve(DbId target, const std::vector<CheckTask>& tasks) {
  const SiteIndex site = env.site_of(target);
  auto outcome = std::make_shared<CheckOutcome>(
      run_checks(env.fed(), env.query(), target, tasks, signatures));
  // Semijoin requests carry GOids, not assistant LOids: the target
  // re-derives each task's assistant through its replicated GOid table.
  // One batched probe pass over all assistants charges exactly one
  // table probe per task.
  if (env.batching() && !tasks.empty()) {
    std::vector<LOid> assistants;
    assistants.reserve(tasks.size());
    for (const CheckTask& task : tasks)
      assistants.push_back(task.assistant);
    std::vector<GOid> derived(tasks.size());
    env.fed().goids().goids_of(assistants, derived.data(), &outcome->meter);
    for (std::size_t i = 0; i < tasks.size(); ++i)
      ensures(derived[i] == tasks[i].item,
              "semijoin re-derivation disagrees with the shipped task");
  }
  auto self = shared_from_this();
  SpanCounts counts;
  counts.objects_in = tasks.size();
  counts.objects_out = outcome->verdicts.size();
  env.charge(
      site, outcome->meter, Phase::O, "C3 check assistants", counts,
      [self, site, outcome] {
        // Cascaded follow-up checks fan out from here; their local
        // signature verdicts ride along with this response.
        self->dispatch(site, outcome->follow_up);
        auto verdicts = std::make_shared<std::vector<CheckVerdict>>(
            std::move(outcome->verdicts));
        self->state->verdicts_announced +=
            outcome->follow_up.local_verdicts.size();
        verdicts->insert(verdicts->end(),
                         outcome->follow_up.local_verdicts.begin(),
                         outcome->follow_up.local_verdicts.end());
        self->env.ship_record(
            site, kGlobalSite,
            self->env.batching()
                ? static_cast<Bytes>(verdicts->size()) *
                      self->env.costs().verdict_bytes()
                : check_response_wire_bytes(self->env.costs(),
                                            verdicts->size()),
            "C3 verdicts",
            [self, verdicts] {
              self->state->verdicts_received += verdicts->size();
              self->state->verdicts.insert(self->state->verdicts.end(),
                                           verdicts->begin(),
                                           verdicts->end());
              maybe_certify(self->env, self->state);
            },
            [self, n = verdicts->size()](SiteIndex) {
              self->state->verdicts_received += n;
              maybe_certify(self->env, self->state);
            });
      });
}

// ---- ShipRows: send the surviving rows (plus any signature verdicts) to
// the global site.
void ship_rows(const std::shared_ptr<OperatorContext>& ctx,
               const std::shared_ptr<HomeRun>& run,
               const CheckPlan& lazy_plan) {
  ExecEnv& env = ctx->env;
  const std::shared_ptr<GlobalState>& state = ctx->state;
  auto local_verdicts = std::make_shared<std::vector<CheckVerdict>>(
      run->eager_plan.local_verdicts);
  local_verdicts->insert(local_verdicts->end(),
                         lazy_plan.local_verdicts.begin(),
                         lazy_plan.local_verdicts.end());
  state->verdicts_announced += local_verdicts->size();
  const Bytes bytes = rows_wire_bytes(env.costs(), run->exec.rows) +
                      static_cast<Bytes>(local_verdicts->size()) *
                          env.costs().verdict_bytes();
  env.ship_record(run->site, kGlobalSite, bytes, "C2 local results",
                  [&env, state, run, local_verdicts] {
                    state->locals.push_back(std::move(run->exec));
                    state->verdicts.insert(state->verdicts.end(),
                                           local_verdicts->begin(),
                                           local_verdicts->end());
                    state->verdicts_received += local_verdicts->size();
                    --state->homes_pending;
                    maybe_certify(env, state);
                  },
                  // The home went dark after evaluating: neither its rows
                  // nor the attached local verdicts will ever arrive.
                  [&env, state, n = local_verdicts->size()](SiteIndex) {
                    state->verdicts_received += n;
                    --state->homes_pending;
                    maybe_certify(env, state);
                  });
}

// ---- AssistantLookup: lazy phase O — plan checks for the unsolved items
// of the surviving rows (minus anything PL already dispatched eagerly).
void assistant_lookup(const std::shared_ptr<OperatorContext>& ctx,
                      const std::shared_ptr<HomeRun>& run) {
  ExecEnv& env = ctx->env;
  std::vector<UnsolvedItem> items = unsolved_items_of_rows(run->exec.rows);
  if (!run->eager.empty()) {
    std::vector<UnsolvedItem> wave2;
    std::set_difference(items.begin(), items.end(), run->eager.begin(),
                        run->eager.end(), std::back_inserter(wave2));
    items = std::move(wave2);
  }
  const auto items_in = static_cast<std::uint64_t>(items.size());
  auto plan = std::make_shared<CheckPlan>(plan_checks(
      env.fed(), env.query(), run->home, items, ctx->signatures));
  SpanCounts counts;
  counts.objects_in = items_in;
  counts.objects_out = plan->task_count();
  env.charge(run->site, plan->meter, Phase::O, "C2 assistant lookup", counts,
             [ctx, run, plan] {
               // Hybrid plans re-decide here: the rows are known, so the
               // observed payload can be held against the estimate.
               if (maybe_switch_to_central(ctx, run, *plan)) return;
               ctx->protocol->dispatch(run->site, *plan, &run->home);
               ship_rows(ctx, run, *plan);
             });
}

// ---- LocalFilter: phase P — evaluate the local predicates.
void local_filter(const std::shared_ptr<OperatorContext>& ctx,
                  const std::shared_ptr<HomeRun>& run) {
  ExecEnv& env = ctx->env;
  run->exec = run_local_query(env.fed(), env.query(), run->home,
                              env.options().indexes, env.options().columnar);
  AccessMeter p_meter = run->exec.meter;
  if (ctx->plan.eager) {
    // Pages already read by the eager walk stay cached in memory.
    p_meter = meter_minus(p_meter, run->eager_meter);
  }
  SpanCounts counts;
  counts.objects_in = run->exec.considered;
  counts.objects_out = run->exec.rows.size();
  env.charge(run->site, p_meter, Phase::P, "C1 evaluate local predicates",
             counts, [ctx, run] { assistant_lookup(ctx, run); });
}

// ---- EagerLookup (PL only): eager phase O over all root objects.
void eager_lookup(const std::shared_ptr<OperatorContext>& ctx,
                  const std::shared_ptr<HomeRun>& run) {
  ExecEnv& env = ctx->env;
  run->eager = unsolved_items_of_all_roots(env.fed(), env.query(), run->home,
                                           &run->eager_meter);
  run->eager_plan = plan_checks(env.fed(), env.query(), run->home,
                                run->eager, ctx->signatures);
  AccessMeter charge_meter = run->eager_meter;
  charge_meter += run->eager_plan.meter;
  SpanCounts counts;
  counts.objects_in = run->eager.size();
  counts.objects_out = run->eager_plan.task_count();
  env.charge(run->site, charge_meter, Phase::O, "PL_C1 eager lookup", counts,
             [ctx, run] {
               ctx->protocol->dispatch(run->site, run->eager_plan,
                                       &run->home);
               local_filter(ctx, run);
             });
}

// ---- ShipLocalQuery (G1): ship the local query to the home database. An
// unreachable home never evaluates: drop it from the pending count and
// certify from whatever the live homes deliver.
void ship_local_query(const std::shared_ptr<OperatorContext>& ctx,
                      const std::shared_ptr<HomeRun>& run) {
  ExecEnv& env = ctx->env;
  // Batched frames carry one shared header (kBatchHeaderBytes), so each
  // record drops its own per-message header (the request's S_a envelope).
  env.ship_record(
      kGlobalSite, run->site,
      env.costs().request_bytes(env.query().predicates.size()) -
          (env.batching() ? env.costs().attr_bytes : 0),
      "G1 local query",
      ctx->plan.eager
          ? Simulator::Callback([ctx, run] { eager_lookup(ctx, run); })
          : Simulator::Callback([ctx, run] { local_filter(ctx, run); }),
      [ctx](SiteIndex) {
        --ctx->state->homes_pending;
        maybe_certify(ctx->env, ctx->state);
      });
}

void launch_localized(ExecEnv& env, bool use_signatures, bool eager_phase_o,
                      bool impute,
                      std::function<void(QueryResult, SimTime)> on_done) {
  const Federation& federation = env.fed();
  const GlobalQuery& query = env.query();
  const StrategyOptions& options = env.options();
  const std::vector<DbId> homes =
      local_query_sites(federation.schema(), query);
  if (homes.empty())
    throw QueryError("no component database holds a constituent of " +
                     query.range_class);

  auto state = std::make_shared<GlobalState>();
  state->homes_pending = homes.size();
  state->on_done = std::move(on_done);

  // Attach the cross-query certificate cache when one is configured. The
  // epoch and per-predicate signatures are captured once per run; like the
  // signature index, the cache is an auxiliary replicated structure whose
  // maintenance is not charged to the query.
  if (options.cert_cache != nullptr) {
    auto certs = std::make_unique<CertWriteback>();
    certs->cache = options.cert_cache;
    certs->epoch = federation.epoch();
    certs->signatures.reserve(query.predicates.size());
    for (const Predicate& pred : query.predicates)
      certs->signatures.push_back(predicate_signature(pred));
    state->certs = std::move(certs);
  }

  // Attach the imputation plumbing for the IM strategy. Like the signature
  // index and the certificate cache, the population model is an auxiliary
  // replicated structure maintained outside query execution; unlike them,
  // core cannot build one on the fly — the estimators live in the analytic
  // layer above (analytic/impute.hpp), so a missing oracle is a hard error.
  if (impute) {
    if (options.impute == nullptr)
      throw ImputeError(
          "the IM strategy needs StrategyOptions::impute — build an "
          "ImputeModel (analytic/impute.hpp) over the federation first");
    auto st = std::make_unique<ImputeState>();
    st->oracle = options.impute;
    st->threshold = options.impute_threshold;
    st->mar = options.impute_mar;
    state->impute = std::move(st);
  }

  // Resolve the signature index when requested. The auxiliary structure is
  // maintained outside query execution (like the replicated GOid tables),
  // so building it is not charged; an executor-built index lives in the
  // shared state so it survives until the run completes.
  const SignatureIndex* signatures = nullptr;
  if (use_signatures) {
    signatures = options.signatures;
    if (signatures == nullptr) {
      state->owned_signatures =
          std::make_unique<SignatureIndex>(SignatureIndex::build(federation));
      signatures = state->owned_signatures.get();
    }
  }

  const StrategyKind kind =
      impute ? StrategyKind::IM
      : eager_phase_o
          ? (use_signatures ? StrategyKind::PLS : StrategyKind::PL)
          : (use_signatures ? StrategyKind::BLS : StrategyKind::BL);
  auto ctx = std::make_shared<OperatorContext>(env, ExecPlan::pure(kind));
  ctx->state = state;
  ctx->signatures = signatures;
  ctx->protocol = std::make_shared<CheckProtocol>(env, state, signatures);

  for (const DbId home : homes) {
    auto run = std::make_shared<HomeRun>();
    run->home = home;
    run->site = env.site_of(home);
    ship_local_query(ctx, run);
  }
}

}  // namespace isomer::detail
