// Central-path operators (paper §3.1) and the pure CA composition —
// phase order O -> I -> P:
//
//   CA_G1  global site requests the objects of every involved constituent
//          class from every component database.
//   CA_C1  each database scans those extents, projects the objects onto the
//          LOid and the attributes involved in the query, and ships them
//          (RetrieveExtent — shared with hybrid Central homes and the
//          mid-flight switch).
//   CA_G2  the global site materializes each involved global class with an
//          outerjoin over GOids (phase O: mapping-table probes; phase I:
//          value integration) — Materialize.
//   CA_G3  the global query is evaluated on the materialized classes
//          (phase P), yielding the certain and maybe results.
#include <memory>

#include "isomer/core/operators.hpp"
#include "isomer/fault/degrade.hpp"
#include "isomer/federation/materializer.hpp"

namespace isomer::detail {

// ---- RetrieveExtent + ShipExtent (C1 of the Central path).
void retrieve_and_ship_extent(
    ExecEnv& env, DbId db, const std::vector<std::string>& classes,
    const std::map<std::string, std::set<std::size_t>>& involved,
    const std::string& retrieve_step, const std::string& ship_step,
    const AccessMeter* cached, Simulator::Callback arrived,
    ExecEnv::FailHandler on_fail) {
  AccessMeter scan_meter;
  const ComponentDatabase& database = env.fed().db(db);
  for (const std::string& class_name : classes) {
    const GlobalClass& cls = env.fed().schema().cls(class_name);
    const auto constituent = cls.constituent_in(db);
    if (!constituent) continue;
    (void)database.scan(cls.constituents()[*constituent].local_class,
                        &scan_meter);
  }
  // Projection pass: one comparison per scanned object.
  scan_meter.comparisons += scan_meter.objects_scanned;
  const Bytes out_bytes =
      ca_projected_bytes(env.fed(), db, involved, env.costs());
  SpanCounts counts;
  counts.objects_in = scan_meter.objects_scanned;
  counts.objects_out = scan_meter.objects_scanned;
  // A mid-flight switch ships the extent the site just evaluated: those
  // pages are still in the buffer cache, so credit the evaluation's reads.
  if (cached != nullptr) scan_meter = meter_minus(scan_meter, *cached);
  const SiteIndex site = env.site_of(db);
  env.charge(site, scan_meter, Phase::Setup, retrieve_step, counts,
             [&env, site, out_bytes, step = ship_step,
              arrived = std::move(arrived), on_fail = std::move(on_fail)] {
               env.ship_record(site, kGlobalSite, out_bytes, step,
                               std::move(arrived), std::move(on_fail));
             });
}

void launch_ca(ExecEnv& env,
               std::function<void(QueryResult, SimTime)> on_done) {
  const Federation& federation = env.fed();
  const GlobalQuery& query = env.query();

  // Everything the deferred callbacks touch lives in this shared block so
  // a launch can outlive its enclosing scope (stream mode).
  struct Shared {
    std::vector<std::string> classes;
    std::map<std::string, std::set<std::size_t>> involved;
    std::vector<DbId> participants;
    std::function<void(QueryResult, SimTime)> on_done;
    QueryResult result;
    SimTime response = 0;
  };
  auto shared = std::make_shared<Shared>();
  shared->classes = classes_involved(federation.schema(), query);
  shared->involved = involved_attributes(federation.schema(), query);
  shared->on_done = std::move(on_done);
  for (const DbId db : federation.db_ids()) {
    for (const std::string& class_name : shared->classes) {
      if (federation.schema().cls(class_name).constituent_in(db)) {
        shared->participants.push_back(db);
        break;
      }
    }
  }
  const std::vector<DbId>& participants = shared->participants;

  // CA_G2/G3 run once every projected extent has arrived (Materialize).
  auto all_arrived = Barrier::create(participants.size(), [&env, shared] {
    // Phase O + I: outerjoin over GOids. The materializer's mapping-table
    // probes are phase O work, the value merging is phase I; charge them as
    // two consecutive CPU bursts so the trace shows O before I.
    auto meter = std::make_shared<AccessMeter>();
    const std::vector<std::string> involved_classes =
        classes_involved(env.fed().schema(), env.query());
    // Under graceful degradation, the dead sites' extents never arrived:
    // integrate only what the live federation shipped.
    const std::set<DbId>& dead = env.unavailable();
    auto view = std::make_shared<MaterializedView>(
        materialize(env.fed(), involved_classes, meter.get(),
                    MergePolicy::FirstNonNull,
                    dead.empty() ? nullptr : &dead));

    // The objects were shipped to the global site and integrated from
    // memory: the mapping probes and merge comparisons cost CPU, but no
    // disk. The raw fetch counts still enter the work aggregate.
    AccessMeter probe_part;
    probe_part.table_probes = meter->table_probes;
    AccessMeter join_part;
    join_part.comparisons = meter->comparisons;
    AccessMeter leftover = *meter;
    leftover.table_probes = 0;
    leftover.comparisons = 0;
    env.aggregate(leftover);

    env.charge(kGlobalSite, probe_part, Phase::O, "CA_G2 goid-mapping",
               [&env, shared, view, join_part] {
                 env.charge(
                     kGlobalSite, join_part, Phase::I, "CA_G2 outerjoin",
                     [&env, shared, view] {
                       // Phase P: evaluate on the materialized classes —
                       // in-memory at the global site, so CPU only.
                       AccessMeter eval_meter;
                       QueryResult result = evaluate_global(
                           *view, env.fed().schema(), env.query(),
                           &eval_meter);
                       if (env.degraded()) {
                         fault::tag_unavailable(result, env.fed(),
                                                env.query(),
                                                env.unavailable(),
                                                view.get());
                         env.record_fault_event(kGlobalSite, "fault.degrade",
                                                env.sim().now(),
                                                env.sim().now());
                       }
                       SpanCounts counts;
                       counts.objects_in =
                           view->extent(env.query().range_class).size();
                       counts.objects_out = result.rows.size();
                       for (const ResultRow& row : result.rows)
                         if (row.status == ResultStatus::Certain)
                           ++counts.certs_resolved;
                       counts.certs_eliminated =
                           counts.objects_in - counts.objects_out;
                       shared->result = std::move(result);
                       AccessMeter cpu_only;
                       cpu_only.comparisons = eval_meter.comparisons;
                       AccessMeter rest = eval_meter;
                       rest.comparisons = 0;
                       env.aggregate(rest);
                       env.charge(kGlobalSite, cpu_only, Phase::P,
                                  "CA_G3 evaluate", counts, [&env, shared] {
                                    shared->response = env.sim().now();
                                    shared->on_done(std::move(shared->result),
                                                    shared->response);
                                  });
                     });
               });
  });

  // CA_G1 + CA_C1. If either leg of a site's exchange is abandoned, that
  // site contributes nothing to the outerjoin: count it as arrived so the
  // barrier can release with the live sites' extents only.
  for (const DbId db : participants) {
    const SiteIndex site = env.site_of(db);
    const ExecEnv::FailHandler give_up_on_site =
        [all_arrived](SiteIndex) { all_arrived->arrive(); };
    // A CA_G1 request is pure header (request_bytes(0) == S_a); batched it
    // contributes zero payload — the shared frame header carries it.
    env.ship_record(
        kGlobalSite, site,
        env.batching() ? Bytes{0} : env.costs().request_bytes(0),
        "CA_G1 request",
        [&env, db, shared, all_arrived, give_up_on_site] {
          retrieve_and_ship_extent(env, db, shared->classes, shared->involved,
                                   "CA_C1 retrieve", "CA_C1 objects",
                                   /*cached=*/nullptr, all_arrived->arrival(),
                                   give_up_on_site);
        },
        give_up_on_site);
  }
}

}  // namespace isomer::detail
