#include "isomer/core/cert_cache.hpp"

#include <algorithm>
#include <bit>

namespace isomer {

namespace {
constexpr std::size_t kMinShardCapacity = 16;
}  // namespace

std::optional<Truth> CertCache::lookup(GOid item, std::uint64_t signature,
                                       std::uint64_t epoch) {
  const std::uint64_t hash = hash_key(item, signature);
  Shard& shard = shards_[shard_of(hash)];
  if (shard.slots.empty()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const std::size_t mask = shard.slots.size() - 1;
  for (std::size_t i = static_cast<std::size_t>(hash) & mask;;
       i = (i + 1) & mask) {
    const Shard::Slot& slot = shard.slots[i];
    if (slot.goid == 0) break;
    if (slot.goid == item.value() && slot.signature == signature) {
      if (slot.epoch == epoch) {
        ++stats_.hits;
        return slot.truth;
      }
      // The data this certificate was derived from has changed since; the
      // entry stays resident and is overwritten by the next insert.
      ++stats_.stale;
      break;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void CertCache::insert(GOid item, std::uint64_t signature,
                       std::uint64_t epoch, Truth truth) {
  const std::uint64_t hash = hash_key(item, signature);
  {
    Shard& shard = shards_[shard_of(hash)];
    // Overwrite in place first — refreshing an existing certificate (same
    // key, new epoch or truth) never grows the cache.
    if (!shard.slots.empty()) {
      const std::size_t mask = shard.slots.size() - 1;
      for (std::size_t i = static_cast<std::size_t>(hash) & mask;;
           i = (i + 1) & mask) {
        Shard::Slot& slot = shard.slots[i];
        if (slot.goid == 0) break;
        if (slot.goid == item.value() && slot.signature == signature) {
          slot.epoch = epoch;
          slot.truth = truth;
          ++stats_.insertions;
          return;
        }
      }
    }
    if (max_entries_ != 0 && size_ + 1 > max_entries_ && shard.size > 0) {
      // Coarse deterministic eviction: clear the shard the new certificate
      // hashes into (~1/16th of the cache).
      stats_.evicted += shard.size;
      size_ -= shard.size;
      shard.size = 0;
      std::fill(shard.slots.begin(), shard.slots.end(), Shard::Slot{});
    }
  }
  Shard& shard = shards_[shard_of(hash)];
  if (shard.slots.empty() ||
      shard.size + 1 > shard.slots.size() - shard.slots.size() / 8)
    grow_shard(shard, std::max(kMinShardCapacity, shard.slots.size() * 2));
  const std::size_t mask = shard.slots.size() - 1;
  for (std::size_t i = static_cast<std::size_t>(hash) & mask;;
       i = (i + 1) & mask) {
    Shard::Slot& slot = shard.slots[i];
    if (slot.goid == 0) {
      slot.goid = item.value();
      slot.signature = signature;
      slot.epoch = epoch;
      slot.truth = truth;
      ++shard.size;
      ++size_;
      ++stats_.insertions;
      return;
    }
  }
}

void CertCache::grow_shard(Shard& shard, std::size_t min_capacity) {
  std::vector<Shard::Slot> old = std::move(shard.slots);
  shard.slots.assign(std::bit_ceil(min_capacity), Shard::Slot{});
  const std::size_t mask = shard.slots.size() - 1;
  for (const Shard::Slot& slot : old) {
    if (slot.goid == 0) continue;
    std::size_t i = static_cast<std::size_t>(
                        hash_key(GOid{slot.goid}, slot.signature)) &
                    mask;
    while (shard.slots[i].goid != 0) i = (i + 1) & mask;
    shard.slots[i] = slot;
  }
}

void CertCache::clear() {
  for (Shard& shard : shards_) {
    shard.slots.clear();
    shard.size = 0;
  }
  size_ = 0;
}

}  // namespace isomer
