// Cross-query certificate cache.
//
// Assistant checking is the expensive half of the localized strategies:
// every unsolved (item, predicate) atom costs a remote round trip. But the
// verdict for an atom is a property of the *data*, not of the query that
// asked — two queries sharing a predicate over the same entity need the
// answer exactly once. The serving layer therefore keeps one CertCache per
// server: pooled verdicts are inserted at certification time keyed by
// (GOid, atom signature), and later submissions consult the cache before
// dispatching check requests, synthesizing local verdicts for hits.
//
// The atom signature is predicate_signature(pred) (the canonical printed
// predicate — query/condition.hpp) mixed with the unsolved step AND the
// dispatching home database (CertWriteback::key_signature): the same holder
// stalled at different steps keys distinct certificates, and because
// plan_checks never checks the home's own isomer, evidence gathered on one
// home's behalf is not interchangeable with another's.
//
// Coherence is by epoch: every entry is stamped with Federation::epoch() at
// insertion, and a lookup only hits when the stored epoch equals the
// caller's. Any mutation anywhere in the federation moves the epoch
// (store/extent.hpp version counters), so stale certificates turn into
// misses and are overwritten in place — the cache can serve wrong-epoch
// data for exactly zero probes.
//
// Layout mirrors federation/goid_table.hpp: 16 independent open-addressed
// shards (flat power-of-two slot arrays, linear probing, goid 0 the empty
// sentinel, growth at 7/8 load), shard chosen by the hash's top bits and
// slot by its low bits. Probes are NOT charged to any AccessMeter: like the
// signature index, the cache is a replicated auxiliary structure outside
// the paper's cost model — its benefit shows up as the check traffic it
// removes, never as hidden work it adds.
//
// The cache is deliberately not thread-safe; the serving loop is a
// deterministic single-threaded event simulation and each bench trial owns
// its own cache. See docs/CONDITIONS.md.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "isomer/common/ids.hpp"
#include "isomer/common/truth.hpp"

namespace isomer {

class CertCache {
 public:
  /// `max_entries` caps the resident certificate count (0 = unbounded, the
  /// --certcache=on setting). When an insert would push the total past the
  /// cap, the receiving shard is cleared first — a deterministic coarse
  /// eviction that depends only on the operation sequence.
  explicit CertCache(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  struct Stats {
    std::uint64_t hits = 0;        ///< lookups answered from the cache
    std::uint64_t misses = 0;      ///< lookups with no current-epoch entry
    std::uint64_t insertions = 0;  ///< certificates stored (incl. updates)
    std::uint64_t stale = 0;       ///< misses that found a wrong-epoch entry
    std::uint64_t evicted = 0;     ///< entries dropped by the capacity cap
  };

  /// The pooled verdict cached for (item, signature) at `epoch`, or nullopt.
  /// A wrong-epoch entry is a miss (counted in stats().stale as well).
  [[nodiscard]] std::optional<Truth> lookup(GOid item,
                                            std::uint64_t signature,
                                            std::uint64_t epoch);

  /// Stores (or overwrites) the certificate for (item, signature).
  void insert(GOid item, std::uint64_t signature, std::uint64_t epoch,
              Truth truth);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

  /// Drops every certificate (counters are kept).
  void clear();

 private:
  struct Shard {
    struct Slot {
      std::uint64_t goid = 0;  ///< 0 = empty (real GOids start at 1)
      std::uint64_t signature = 0;
      std::uint64_t epoch = 0;
      Truth truth = Truth::Unknown;
    };
    std::vector<Slot> slots;
    std::size_t size = 0;
  };

  static constexpr std::size_t kShardBits = 4;
  static constexpr std::size_t kShardCount = std::size_t{1} << kShardBits;

  /// One well-mixed word per key: top bits pick the shard, low bits the
  /// slot (same splitmix finalizer as common/hash.hpp's hash_loid).
  static std::uint64_t hash_key(GOid item, std::uint64_t signature) noexcept {
    std::uint64_t x =
        (item.value() * 0x9e3779b97f4a7c15ULL) ^ signature;
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  static std::size_t shard_of(std::uint64_t hash) noexcept {
    return static_cast<std::size_t>(hash >> (64 - kShardBits));
  }

  void grow_shard(Shard& shard, std::size_t min_capacity);

  std::array<Shard, kShardCount> shards_;
  std::size_t size_ = 0;
  std::size_t max_entries_ = 0;
  Stats stats_;
};

}  // namespace isomer
