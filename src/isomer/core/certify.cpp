#include "isomer/core/certify.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "isomer/common/error.hpp"

namespace isomer {

QueryResult certify(
    const Federation& federation, const GlobalQuery& query,
    const std::vector<LocalExecution>& locals,
    const std::vector<CheckVerdict>& verdicts, AccessMeter* meter,
    CertifyStats* stats, const std::set<DbId>* unavailable,
    const std::map<std::pair<GOid, std::size_t>, double>* imputed) {
  if (stats != nullptr)
    stats->verdicts = static_cast<std::uint64_t>(verdicts.size());
  // Databases that ran a local query (homes of the range class).
  std::set<DbId> homes;
  for (const LocalExecution& local : locals) homes.insert(local.db);

  // Entity -> its rows (in ascending DbId order because locals arrive per
  // database and we visit them in DbId order below).
  std::vector<const LocalExecution*> ordered;
  ordered.reserve(locals.size());
  for (const LocalExecution& local : locals) ordered.push_back(&local);
  std::sort(ordered.begin(), ordered.end(),
            [](const LocalExecution* a, const LocalExecution* b) {
              return a->db < b->db;
            });

  std::map<GOid, std::vector<const LocalRow*>> rows_by_entity;
  for (const LocalExecution* local : ordered)
    for (const LocalRow& row : local->rows)
      rows_by_entity[row.entity].push_back(&row);

  // Flat ascending view of the homes for the batched presence probe below.
  const std::vector<DbId> home_list(homes.begin(), homes.end());

  // Verdict index: (item, predicate) -> Kleene-or of all assistant verdicts,
  // with False dominating (any violating assistant eliminates).
  std::map<std::pair<GOid, std::size_t>, Truth> verdict_index;
  for (const CheckVerdict& verdict : verdicts) {
    if (meter != nullptr) ++meter->comparisons;
    auto [it, inserted] = verdict_index.try_emplace(
        std::pair{verdict.item, verdict.predicate}, verdict.truth);
    if (!inserted) {
      if (is_false(verdict.truth) || is_false(it->second))
        it->second = Truth::False;
      else
        it->second = it->second || verdict.truth;
    }
  }

  QueryResult result;
  for (const auto& [entity, rows] : rows_by_entity) {
    if (stats != nullptr) ++stats->entities;
    // Row-presence evidence: every home database holding an isomeric root
    // object must have shipped a row, else the object was eliminated locally
    // and the entity fails the conjunction.
    bool eliminated = false;
    // One merge pass over the entity's isomers, charging one table probe
    // per home — meter-identical to probing loid_in home by home.
    const std::size_t expected_rows =
        federation.goids().present_in(entity, home_list, meter);
    if (rows.size() != expected_rows) eliminated = true;

    // Pool the evidence per predicate across rows and check verdicts:
    // any True solves it, any False (a violating value somewhere, or a
    // violating assistant) refutes it, otherwise it stays Unknown. On
    // consistent federations True and False evidence cannot coexist; if
    // they ever did, False dominates, matching the certification rule's
    // "eliminated when any assistant violates".
    //
    // Alongside the flat pool, build the row's *condition* (conditional
    // tables, query/condition.hpp): per predicate, a Pool over the same
    // evidence — decided row statuses as constants, Unknown statuses as
    // leaves — combined in the query's AND/OR shape. Pooled verdicts then
    // discharge their leaves by substitution, so the condition's truth is,
    // by construction, the flat pool's answer; the condition additionally
    // *names* the atoms that kept a maybe row maybe. Building it charges
    // nothing: the meter sees exactly the comparisons the flat loop makes.
    Truth overall = Truth::True;
    Condition condition;  // constant True
    double confidence = 1.0;  // product over distinct imputed verdicts used
    if (!eliminated) {
      std::vector<Truth> truths(query.predicates.size(), Truth::Unknown);
      std::vector<Condition> per_pred;
      per_pred.reserve(query.predicates.size());
      std::set<std::pair<GOid, std::size_t>> dischargeable;
      std::set<std::pair<GOid, std::size_t>> imputed_used;
      for (std::size_t p = 0; p < query.predicates.size(); ++p) {
        bool any_true = false, any_false = false;
        std::vector<Condition> pooled;
        pooled.reserve(rows.size());
        for (const LocalRow* row : rows) {
          if (meter != nullptr) ++meter->comparisons;
          const PredStatus& status = row->preds[p];
          if (is_true(status.truth)) any_true = true;
          if (is_false(status.truth)) any_false = true;
          if (is_unknown(status.truth)) {
            // Step-0 sites are decided by the other rows in this very pool,
            // never by assistant verdicts — the root_level flag keeps
            // substitution away from them, mirroring the step > 0 guard.
            pooled.push_back(Condition::leaf(CondAtom{
                status.item, p, status.step, status.step == 0}));
          } else {
            pooled.push_back(Condition::constant(status.truth));
          }
          if (is_unknown(status.truth) && status.step > 0) {
            dischargeable.insert(std::pair{status.item, p});
            const auto it = verdict_index.find(std::pair{status.item, p});
            if (it != verdict_index.end()) {
              if (meter != nullptr) ++meter->comparisons;
              if (is_false(it->second)) any_false = true;
              if (is_true(it->second)) any_true = true;
              // Probabilistic certification (the IM strategy): a consulted
              // verdict that was synthesized from the population model
              // discounts the row's confidence — once per distinct atom,
              // however many rows of the entity it advised.
              if (imputed != nullptr) {
                const auto conf = imputed->find(std::pair{status.item, p});
                if (conf != imputed->end() &&
                    imputed_used.insert(std::pair{status.item, p}).second)
                  confidence *= conf->second;
              }
            }
          }
        }
        truths[p] = any_false  ? Truth::False
                    : any_true ? Truth::True
                               : Truth::Unknown;
        per_pred.push_back(Condition::pool(std::move(pooled)));
      }
      overall = query.combine(truths);
      condition = combine_conditions(query, std::move(per_pred));
      for (const auto& [item, p] : dischargeable) {
        const auto it = verdict_index.find(std::pair{item, p});
        if (it != verdict_index.end())
          condition = condition.substitute(item, p, it->second);
      }
      condition = condition.simplify();
      ensures(condition.truth() == overall,
              "row condition must agree with the flat certification pool");
      if (is_false(overall)) eliminated = true;
    }
    if (eliminated) {
      if (stats != nullptr) ++stats->eliminated;
      continue;
    }

    ResultRow out;
    out.entity = entity;
    out.confidence = confidence;
    out.status =
        is_true(overall) ? ResultStatus::Certain : ResultStatus::Maybe;
    // A certain row is final — no residual (a True condition can still
    // carry leaves whose False would refute it, but on consistent
    // federations decided evidence never flips). Maybe rows keep the
    // simplified residual naming what is still undecided.
    out.condition = out.status == ResultStatus::Certain
                        ? Condition::constant(Truth::True)
                        : std::move(condition);
    if (stats != nullptr) {
      ++(out.status == ResultStatus::Certain ? stats->certain : stats->maybe);
      if (out.status == ResultStatus::Maybe)
        for (const CondAtom& atom : out.condition.atoms()) {
          ++stats->unresolved_atoms;
          ++stats->unresolved_by_predicate[atom.predicate];
        }
    }
    out.targets.assign(query.targets.size(), Value::null());
    for (const LocalRow* row : rows)  // ascending DbId; first non-null wins
      for (std::size_t t = 0; t < query.targets.size(); ++t)
        if (out.targets[t].is_null() && !row->targets[t].is_null())
          out.targets[t] = row->targets[t];
    result.rows.push_back(std::move(out));
  }

  // Graceful degradation: a range entity whose every root isomer lives in an
  // unreachable database produced no row anywhere, yet the (replicated) GOid
  // table proves it exists. Synthesize the row the centralized approach
  // materializes for it — all values null, every predicate Unknown.
  if (unavailable != nullptr && !unavailable->empty()) {
    const Truth overall = query.combine(
        std::vector<Truth>(query.predicates.size(), Truth::Unknown));
    for (const GOid entity :
         federation.goids().entities_of(query.range_class)) {
      if (rows_by_entity.find(entity) != rows_by_entity.end()) continue;
      if (meter != nullptr) ++meter->table_probes;
      bool any_live_home = false;
      bool any_dead = false;
      for (const LOid& isomer : federation.goids().isomers_of(entity)) {
        if (unavailable->count(isomer.db) != 0)
          any_dead = true;
        else if (homes.count(isomer.db) != 0)
          any_live_home = true;
      }
      // A live home knew the entity and eliminated it locally; only a fully
      // unreachable entity is resurrected as unknown.
      if (any_live_home || !any_dead) continue;
      if (is_false(overall)) continue;
      ResultRow out;
      out.entity = entity;
      out.status =
          is_true(overall) ? ResultStatus::Certain : ResultStatus::Maybe;
      // The synthesized row's residual: every predicate Unknown at the
      // entity itself. root_level because no assistant verdict can decide
      // it — the data lives only at unreachable sites.
      if (out.status == ResultStatus::Maybe) {
        std::vector<Condition> per_pred;
        per_pred.reserve(query.predicates.size());
        for (std::size_t p = 0; p < query.predicates.size(); ++p)
          per_pred.push_back(
              Condition::leaf(CondAtom{entity, p, 0, true}));
        out.condition =
            combine_conditions(query, std::move(per_pred)).simplify();
      }
      if (stats != nullptr) {
        ++stats->entities;
        ++(is_true(overall) ? stats->certain : stats->maybe);
        if (out.status == ResultStatus::Maybe)
          for (const CondAtom& atom : out.condition.atoms()) {
            ++stats->unresolved_atoms;
            ++stats->unresolved_by_predicate[atom.predicate];
          }
      }
      out.targets.assign(query.targets.size(), Value::null());
      result.rows.push_back(std::move(out));
    }
  }

  result.normalize();
  return result;
}

}  // namespace isomer
