// Certification at the global processing site (phase I of the localized
// approaches).
//
// Inputs: every component database's local result rows plus the tri-state
// verdicts from assistant checking. Per real-world entity (GOid) the rule is
// the paper's Certification Rule, applied with two kinds of evidence:
//
//  * Row evidence. Each database holding an isomeric root object either
//    shipped a row (predicate statuses True/Unknown) or eliminated the
//    object locally; a missing row proves the entity violates a predicate,
//    so the entity is eliminated (paper: "s1 is eliminated because its
//    assistant objects are not obtained in the local results from DB2").
//  * Check evidence. A verdict True for an unsolved item solves that
//    predicate; a verdict False eliminates the entity ("o is eliminated
//    when any of its assistant objects violates an unsolved predicate").
//
// An entity with every predicate solved is a certain result; with no False
// evidence but unsolved predicates left it remains a maybe result. Target
// values are merged across the entity's rows in ascending DbId order, first
// non-null wins — the same policy as the centralized materializer, which is
// what makes the strategies return identical answers on consistent
// federations.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "isomer/core/checks.hpp"
#include "isomer/core/local_exec.hpp"
#include "isomer/query/result.hpp"

namespace isomer {

/// Certification outcome counts — what the trace layer reports for the
/// global certify span (maybe-to-certain conversions vs. eliminations).
/// Beyond the flat outcome counts, the residual-atom fields record *why*
/// rows stayed maybe: one count per still-undecided condition leaf, keyed
/// by predicate index — the histogram cert.discharge spans and EXPLAIN
/// report (docs/CONDITIONS.md).
struct CertifyStats {
  std::uint64_t entities = 0;    ///< entities with at least one shipped row
  std::uint64_t certain = 0;     ///< resolved certain (every predicate solved)
  std::uint64_t maybe = 0;       ///< left maybe (unsolved predicates remain)
  std::uint64_t eliminated = 0;  ///< eliminated by row absence or a False
  std::uint64_t verdicts = 0;    ///< check verdicts pooled into the index
  /// Condition leaves left undecided across all maybe rows (duplicates per
  /// row counted once each — it is a histogram of residual work, not of
  /// distinct atoms).
  std::uint64_t unresolved_atoms = 0;
  /// The same residual leaves bucketed by GlobalQuery predicate index.
  std::map<std::size_t, std::uint64_t> unresolved_by_predicate;
};

/// Certifies the collected local results into the final answer.
/// `meter` receives the global site's merge work: one comparison per
/// (row, predicate) merged, one per verdict applied, and one mapping-table
/// probe per expected-row presence check. `stats` (optional) receives the
/// per-entity outcome counts.
///
/// `unavailable` (optional) lists component databases declared unreachable
/// under graceful degradation (fault/degrade.hpp). Row-presence evidence
/// already only covers the homes that responded; additionally, a range
/// entity whose every root isomer lives in an unreachable database gets a
/// synthesized all-null row — the GOid table still knows the entity exists
/// even when no live component can describe it, mirroring what the
/// centralized approach materializes when it excludes the dead sites.
///
/// `imputed` (optional; the IM strategy) maps (item GOid, predicate) atoms
/// whose verdict was synthesized from the population model to that
/// estimate's confidence. A row whose certification consulted any such
/// verdict gets ResultRow::confidence = the product of the distinct
/// contributing confidences; every other row keeps confidence 1.0. Null —
/// every certifying strategy — charges and produces exactly what it did
/// before the parameter existed.
[[nodiscard]] QueryResult certify(
    const Federation& federation, const GlobalQuery& query,
    const std::vector<LocalExecution>& locals,
    const std::vector<CheckVerdict>& verdicts, AccessMeter* meter = nullptr,
    CertifyStats* stats = nullptr, const std::set<DbId>* unavailable = nullptr,
    const std::map<std::pair<GOid, std::size_t>, double>* imputed = nullptr);

}  // namespace isomer
