#include "isomer/core/checks.hpp"

#include <algorithm>

#include "isomer/common/error.hpp"

namespace isomer {

std::vector<UnsolvedItem> unsolved_items_of_rows(
    const std::vector<LocalRow>& rows) {
  std::vector<UnsolvedItem> items;
  for (const LocalRow& row : rows)
    for (std::size_t p = 0; p < row.preds.size(); ++p) {
      const PredStatus& status = row.preds[p];
      // Nested sites only: root-level sites (step 0 on the root object) are
      // certified through the other databases' local results.
      if (is_unknown(status.truth) && status.step > 0)
        items.push_back(
            UnsolvedItem{status.item, p, status.step, status.item});
    }
  // Items are collected per result object, as in the paper's Fig. 7 graphs:
  // two maybe results advised by the same teacher list its assistants twice,
  // and both instances are shipped and checked. (Sorted for the PL wave-2
  // set difference; deliberately NOT dedup'd — the number of assistant
  // objects checked is the cost driver of Figs. 10 and 11.)
  std::sort(items.begin(), items.end());
  return items;
}

std::vector<UnsolvedItem> unsolved_items_of_all_roots(
    const Federation& federation, const GlobalQuery& query, DbId home,
    AccessMeter* meter) {
  const GlobalSchema& schema = federation.schema();
  const GlobalClass& range = schema.cls(query.range_class);
  const auto constituent = range.constituent_in(home);
  expects(constituent.has_value(),
          "unsolved_items_of_all_roots at a non-root database");
  const ComponentDatabase& database = federation.db(home);
  const std::string& root_class =
      range.constituents()[*constituent].local_class;

  // PL_C1 retrieves the nested objects of *every* root object and inspects
  // them for missing data — schema-level missing attributes and value-level
  // nulls alike. The discovery walk is the same navigation phase P performs
  // later (one buffer pool; the executors subtract this meter from the
  // evaluation meter), but no predicate comparisons are charged here: those
  // belong to phase P.
  std::vector<UnsolvedItem> items;
  AccessMeter local;
  FetchCache cache;
  for (const Object& obj : database.scan(root_class, &local, &cache)) {
    for (std::size_t p = 0; p < query.predicates.size(); ++p) {
      // A single-step predicate can only be unsolved at the root (step 0),
      // which this collection ignores, and its walk touches no nested
      // object and charges only comparisons — zeroed below. Skipping it is
      // meter- and item-identical to evaluating it.
      if (query.predicates[p].path.length() == 1) continue;
      const LocalPredOutcome outcome = eval_global_predicate_at(
          federation, home, obj, range, query.predicates[p], 0, &local,
          &cache);
      if (is_unknown(outcome.truth) && outcome.step > 0) {
        const auto entity = federation.goids().goid_of(outcome.holder, &local);
        ensures(entity.has_value(), "every constituent object is GOid-mapped");
        items.push_back(UnsolvedItem{*entity, p, outcome.step, *entity});
      }
    }
  }
  // Discovery inspects values but performs no predicate comparisons.
  local.comparisons = 0;
  if (meter != nullptr) *meter += local;
  std::sort(items.begin(), items.end());  // per-object instances, not dedup'd
  return items;
}

CheckPlan plan_checks(const Federation& federation, const GlobalQuery& query,
                      DbId home, const std::vector<UnsolvedItem>& items,
                      const SignatureIndex* signatures) {
  const GlobalSchema& schema = federation.schema();
  const GoidTable& goids = federation.goids();

  CheckPlan plan;
  for (const UnsolvedItem& item : items) {
    const Predicate& pred = query.predicates[item.predicate];
    expects(item.step < pred.path.length(),
            "unsolved step beyond predicate path");
    const PathExpr suffix = pred.path.suffix(item.step);
    // Signatures index (attribute = value) tokens, so screening applies to
    // single-attribute equality suffixes only.
    const bool screenable =
        signatures != nullptr && suffix.length() == 1 && pred.op == CompOp::Eq;
    const std::string& item_class = goids.class_of(item.item);
    ++plan.meter.table_probes;  // the mapping-table lookup for this item
    bool advised = false;
    for (const LOid& isomer : goids.isomers_of(item.item)) {
      if (isomer.db == home) continue;
      ++plan.meter.table_probes;  // examine one candidate assistant
      const PathTranslation translation =
          schema.translate_path(item_class, suffix, isomer.db);
      // The assistant is useful when its database can evaluate at least the
      // first step of the suffix: full evaluation may still hit deeper
      // missing data there, which cascades (CheckOutcome::follow_up). An
      // assistant whose schema misses the very first attribute cannot make
      // progress at all and is skipped.
      if (!translation.complete() && *translation.missing_at == 0) continue;
      if (screenable &&
          signatures->screen(isomer, suffix.step(0), pred.literal,
                             &plan.meter) ==
              SignatureIndex::Screen::CannotSatisfy) {
        plan.local_verdicts.push_back(
            CheckVerdict{item.origin, item.predicate, Truth::False});
        advised = true;
        continue;
      }
      plan.by_target[isomer.db].push_back(
          CheckTask{item.item, isomer, item.predicate, item.step, item.origin});
      advised = true;
    }
    // No capable assistant anywhere: the atom is unresolvable by checking.
    if (!advised) plan.unadvised.push_back(item);
  }
  return plan;
}

CheckOutcome run_checks(const Federation& federation, const GlobalQuery& query,
                        DbId target, const std::vector<CheckTask>& tasks,
                        const SignatureIndex* signatures) {
  const ComponentDatabase& database = federation.db(target);
  const GoidTable& goids = federation.goids();

  CheckOutcome outcome;
  outcome.db = target;
  outcome.verdicts.reserve(tasks.size());
  std::vector<UnsolvedItem> cascaded;
  // Each listed LOid is retrieved individually (paper BL_C3: "retrieve the
  // objects for the LOid list of the assistant objects") — check batches are
  // random point lookups, not buffered scans, so no FetchCache here.
  for (const CheckTask& task : tasks) {
    expects(task.assistant.db == target, "check task routed to wrong database");
    const Object* assistant =
        database.fetch(task.assistant, &outcome.meter);
    if (assistant == nullptr)
      throw FederationError("assistant object " + to_string(task.assistant) +
                            " does not exist");
    const GlobalClass& item_class =
        federation.schema().cls(goids.class_of(task.item));
    const LocalPredOutcome eval = eval_global_predicate_at(
        federation, target, *assistant, item_class,
        query.predicates[task.predicate], task.step, &outcome.meter);
    outcome.verdicts.push_back(
        CheckVerdict{task.origin, task.predicate, eval.truth});

    if (is_unknown(eval.truth)) {
      // A deeper unsolved site (strictly past the checked step) is a new
      // item whose assistants this database can look up itself; the site at
      // the checked step is the original item, whose other assistants the
      // home database already fanned out to.
      if (eval.step > task.step) {
        const auto entity = goids.goid_of(eval.holder, &outcome.meter);
        ensures(entity.has_value(), "every constituent object is GOid-mapped");
        cascaded.push_back(
            UnsolvedItem{*entity, task.predicate, eval.step, task.origin});
      }
    }
  }
  std::sort(cascaded.begin(), cascaded.end());
  if (!cascaded.empty())
    outcome.follow_up =
        plan_checks(federation, query, target, cascaded, signatures);
  return outcome;
}

}  // namespace isomer
