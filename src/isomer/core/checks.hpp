// Assistant objects: lookup (phase O) and checking.
//
// For every unsolved item (a nested object holding missing data for some
// unsolved predicate), the home database probes the replicated GOid mapping
// tables for the item's isomeric objects in other databases and selects as
// *assistant objects* those whose database's schema can evaluate the
// remaining predicate suffix. The LOids and suffix predicates are shipped to
// those databases; each evaluates the suffix on the assistant object and
// reports a tri-state verdict to the global site.
//
// (The paper ships back only the LOids of satisfied assistants; we ship the
// full tri-state verdict so that an assistant that itself hits a null is
// distinguished from one that violates — required for exact maybe
// semantics. The wire size difference is one byte per verdict.)
#pragma once

#include <map>
#include <vector>

#include "isomer/core/local_exec.hpp"
#include "isomer/federation/signature.hpp"

namespace isomer {

/// One assistant object to check at a target database.
struct CheckTask {
  GOid item;                ///< the unsolved item's entity
  LOid assistant;           ///< its isomeric object at the target database
  std::size_t predicate;    ///< index into GlobalQuery::predicates
  std::size_t step;         ///< suffix start: the unsolved global path step
  /// The row-level unsolved item this task certifies. Equal to `item` for
  /// first-round tasks; cascaded tasks keep the origin of the task that
  /// spawned them, so their verdicts join back onto the local result rows.
  GOid origin;

  friend bool operator==(const CheckTask&, const CheckTask&) = default;
};

/// A tri-state checking verdict for one (item, predicate).
struct CheckVerdict {
  GOid item;
  std::size_t predicate;
  Truth truth = Truth::Unknown;

  friend bool operator==(const CheckVerdict&, const CheckVerdict&) = default;
};

/// An unsolved site to find assistants for.
struct UnsolvedItem {
  GOid item;
  std::size_t predicate;
  std::size_t step;
  /// Row-level item whose certification this resolves (== item except along
  /// check cascades).
  GOid origin;

  friend auto operator<=>(const UnsolvedItem&, const UnsolvedItem&) = default;
};

/// All checking work one database dispatches, grouped by target database.
struct CheckPlan {
  std::map<DbId, std::vector<CheckTask>> by_target;
  AccessMeter meter;  ///< GOid-mapping probes + signature screens

  /// Verdicts produced locally by signature screening (BLS/PLS only): an
  /// assistant whose signature provably violates an equality predicate is
  /// reported False without being shipped.
  std::vector<CheckVerdict> local_verdicts;

  /// Unsolved atoms for which *no* capable assistant exists — the item has
  /// no isomer outside the planning database, or none whose schema can
  /// evaluate even the first suffix step. The certified strategies can never
  /// resolve these (the row stays maybe forever); they ship nothing and are
  /// carried here only so the IM strategy's impute filter (core/im.cpp) can
  /// offer them to the population model.
  std::vector<UnsolvedItem> unadvised;

  [[nodiscard]] std::size_t task_count() const noexcept {
    std::size_t count = 0;
    for (const auto& [db, tasks] : by_target) count += tasks.size();
    return count;
  }
};

/// Collects the unsolved items of the rows produced at `home` — nested
/// sites only (step > 0); root-level sites are certified through the other
/// databases' local results. Deduplicated and sorted.
[[nodiscard]] std::vector<UnsolvedItem> unsolved_items_of_rows(
    const std::vector<LocalRow>& rows);

/// Collects the unsolved items of *every* object of the local root extent
/// whose predicate paths cross schema-level missing attributes — the
/// parallel localized approach's eager phase O, which runs before local
/// predicate evaluation and therefore cannot restrict itself to maybe
/// results (paper §3.3, step PL_C1). Charges the prefix walks to `meter`.
[[nodiscard]] std::vector<UnsolvedItem> unsolved_items_of_all_roots(
    const Federation& federation, const GlobalQuery& query, DbId home,
    AccessMeter* meter);

/// Phase O at the home database: for each unsolved item, probe the GOid
/// tables for isomeric objects in other databases whose schema can evaluate
/// the remaining suffix, producing per-target check tasks. When `signatures`
/// is given, single-attribute equality suffixes are screened against the
/// replicated signature index first: provably violating assistants become
/// local False verdicts instead of tasks.
[[nodiscard]] CheckPlan plan_checks(const Federation& federation,
                                    const GlobalQuery& query, DbId home,
                                    const std::vector<UnsolvedItem>& items,
                                    const SignatureIndex* signatures = nullptr);

/// The target database's reply (step BL_C3 / PL_C3).
struct CheckOutcome {
  DbId db{};
  std::vector<CheckVerdict> verdicts;
  AccessMeter meter;  ///< fetches + comparisons spent checking

  /// Cascaded checks: when evaluating a suffix on an assistant hits a *new*
  /// unsolved site deeper on the path (data split across three or more
  /// databases — e.g. only DB2 knows the reference and only DB3 the
  /// attribute), the target database plans a follow-up round for the new
  /// item, exactly as the home database did. Steps strictly increase along
  /// cascades, so they terminate. This closes the certification rule's
  /// "assistant objects jointly satisfy" over arbitrarily split data and is
  /// what keeps the localized answers identical to the centralized one.
  CheckPlan follow_up;
};

/// Executes check tasks at database `target`: fetch each assistant object
/// and evaluate the predicate suffix on it. Newly discovered deeper
/// unsolved items are planned into `follow_up` (signature-screened when
/// `signatures` is given).
[[nodiscard]] CheckOutcome run_checks(const Federation& federation,
                                      const GlobalQuery& query, DbId target,
                                      const std::vector<CheckTask>& tasks,
                                      const SignatureIndex* signatures = nullptr);

}  // namespace isomer
