#include "isomer/core/exec_common.hpp"

#include <algorithm>

#include "isomer/common/error.hpp"

namespace isomer::detail {

ExecEnv::ExecEnv(const Federation& federation, const GlobalQuery& query,
                 const StrategyOptions& options)
    : fed_(&federation), query_(&query), options_(options) {
  owned_sim_ = std::make_unique<Simulator>();
  owned_cluster_ = std::make_unique<Cluster>(
      *owned_sim_, options_.costs, federation.db_count(), options_.topology);
  sim_ = owned_sim_.get();
  cluster_ = owned_cluster_.get();
  init_faults();
  init_batching();
}

ExecEnv::ExecEnv(const Federation& federation, const GlobalQuery& query,
                 const StrategyOptions& options, Simulator& sim,
                 Cluster& cluster)
    : fed_(&federation), query_(&query), options_(options), sim_(&sim),
      cluster_(&cluster) {
  expects(cluster.component_count() == federation.db_count(),
          "shared cluster sized for a different federation");
  init_faults();
  init_batching();
}

void ExecEnv::init_faults() {
  if (options_.faults == nullptr || !options_.faults->enabled()) return;
  faults_enabled_ = true;
  // A private stream per execution: plan.seed is already trial-specific
  // (derive_stream(base, trial) in the harness), the constant tags the
  // fault channel so other consumers of the same seed stay independent.
  fault_rng_ = Rng(derive_stream(options_.faults->seed, 0xFA17ULL));
}

void ExecEnv::init_batching() {
  if (!options_.batch.enabled) return;
  // Per-destination frames on the switched topologies (separate links) and
  // under fault injection (outage/retry fate is a property of one
  // destination); whole-sender frames on the broadcast media.
  const bool per_destination =
      faults_enabled_ ||
      options_.topology == NetworkTopology::PointToPoint ||
      options_.topology == NetworkTopology::Contentionless;
  batcher_ =
      std::make_unique<ShipmentBatcher>(*this, options_.batch, per_destination);
}

DbId ExecEnv::db_of(SiteIndex site) const {
  expects(site != kGlobalSite, "the global site is not a component database");
  return fed_->db_ids()[site - 1];
}

SiteIndex ExecEnv::site_of(DbId db) const {
  const auto& ids = fed_->db_ids();
  const auto it = std::lower_bound(ids.begin(), ids.end(), db);
  expects(it != ids.end() && *it == db, "unknown DbId in site mapping");
  return static_cast<SiteIndex>(it - ids.begin()) + 1;
}

std::string ExecEnv::site_name(SiteIndex site) const {
  if (site == kGlobalSite) return "global";
  return "DB" + std::to_string(fed_->db_ids()[site - 1].value());
}

std::shared_ptr<obs::PhaseSpan> ExecEnv::open_span(
    std::string site, const std::string& step, Phase phase, SimTime begin,
    const AccessMeter& work, const SpanCounts& counts) const {
  if (options_.trace_session == nullptr) return nullptr;
  auto span = std::make_shared<obs::PhaseSpan>();
  span->strategy = span_strategy_;
  span->query = span_query_;
  span->phase = phase;
  span->site = std::move(site);
  span->step = step;
  span->start_ns = begin;
  span->work = work;
  span->objects_in = counts.objects_in;
  span->objects_out = counts.objects_out;
  span->certs_resolved = counts.certs_resolved;
  span->certs_eliminated = counts.certs_eliminated;
  return span;
}

void ExecEnv::close_span(const std::shared_ptr<obs::PhaseSpan>& span) const {
  if (span == nullptr) return;
  span->end_ns = sim_->now();
  options_.trace_session->record(std::move(*span));
}

void ExecEnv::charge(SiteIndex site, const AccessMeter& meter, Phase phase,
                     std::string step, SpanCounts counts,
                     Simulator::Callback done) {
  aggregate(meter);
  const SimTime begin = sim_->now();
  const Bytes bytes = options_.costs.disk_bytes(meter);
  const SimTime cpu = options_.costs.cpu_time(meter);
  auto span = open_span(site_name(site), step, phase, begin, meter, counts);
  SiteNode& node = cluster_->site(site);
  node.disk().use(options_.costs.disk_time(bytes), [this, site, cpu, phase,
                                                    step = std::move(step),
                                                    begin, span,
                                                    done = std::move(done)]() mutable {
    cluster_->site(site).cpu().use(cpu, [this, site, phase,
                                         step = std::move(step), begin, span,
                                         done = std::move(done)]() {
      if (options_.record_trace)
        trace_.record(site_name(site), step, phase, begin, sim_->now());
      close_span(span);
      done();
    });
  });
}

void ExecEnv::charge_cpu(SiteIndex site, std::uint64_t comparisons,
                         Phase phase, std::string step,
                         Simulator::Callback done) {
  AccessMeter meter;
  meter.comparisons = comparisons;
  aggregate(meter);
  const SimTime begin = sim_->now();
  auto span =
      open_span(site_name(site), step, phase, begin, meter, SpanCounts{});
  cluster_->site(site).cpu().use(
      options_.costs.cpu_time(comparisons),
      [this, site, phase, step = std::move(step), begin, span,
       done = std::move(done)]() {
        if (options_.record_trace)
          trace_.record(site_name(site), step, phase, begin, sim_->now());
        close_span(span);
        done();
      });
}

void ExecEnv::transfer_traced(SiteIndex from, SiteIndex to, Bytes bytes,
                              std::string step,
                              Simulator::Callback arrived) {
  const SimTime begin = sim_->now();
  wire_bytes_ += bytes;
  ++wire_messages_;
  auto span = open_span(site_name(from) + "->" + site_name(to), step,
                        Phase::Transfer, begin, AccessMeter{}, SpanCounts{});
  if (span != nullptr) {
    span->bytes = bytes;
    span->messages = 1;
  }
  cluster_->transfer(from, to, bytes,
                     [this, from, to, step = std::move(step), begin, span,
                      arrived = std::move(arrived)]() {
                       if (options_.record_trace)
                         trace_.record(site_name(from) + "->" + site_name(to),
                                       step, Phase::Transfer, begin,
                                       sim_->now());
                       close_span(span);
                       arrived();
                     });
}

void ExecEnv::ship(SiteIndex from, SiteIndex to, Bytes bytes, std::string step,
                   Simulator::Callback delivered, FailHandler on_fail) {
  if (!faults_enabled_) {
    transfer_traced(from, to, bytes, std::move(step), std::move(delivered));
    return;
  }
  attempt_ship(from, to, bytes, std::move(step), 0, std::move(delivered),
               std::move(on_fail));
}

void ExecEnv::ship_record(SiteIndex from, SiteIndex to, Bytes bytes,
                          std::string step, Simulator::Callback delivered,
                          FailHandler on_fail) {
  if (batcher_ == nullptr) {
    ship(from, to, bytes, std::move(step), std::move(delivered),
         std::move(on_fail));
    return;
  }
  batcher_->enqueue(from, to, bytes, std::move(step), std::move(delivered),
                    std::move(on_fail));
}

void ShipmentBatcher::enqueue(SiteIndex from, SiteIndex to, Bytes bytes,
                              std::string step, Simulator::Callback delivered,
                              ExecEnv::FailHandler on_fail) {
  const Key key{from, per_destination_ ? to : kBroadcast};
  const auto [it, fresh] = pending_.try_emplace(key);
  it->second.push_back(Record{to, bytes, std::move(step), std::move(delivered),
                              std::move(on_fail)});
  if (options_.max_records != 0 && it->second.size() >= options_.max_records) {
    // Cap reached: ship now. A flush already scheduled for this key finds
    // the (re-created-or-empty) entry and handles whatever arrived since.
    flush(key);
    return;
  }
  if (fresh)
    env_->sim().schedule_after(0, [this, key]() { flush(key); });
}

void ShipmentBatcher::flush(const Key& key) {
  const auto it = pending_.find(key);
  if (it == pending_.end() || it->second.empty()) {
    if (it != pending_.end()) pending_.erase(it);
    return;
  }
  auto records = std::make_shared<std::vector<Record>>(std::move(it->second));
  pending_.erase(it);
  Bytes frame_bytes = kBatchHeaderBytes;
  for (const Record& record : *records) frame_bytes += record.bytes;
  // On a broadcast key the frame's wire endpoint is the first record's
  // destination — the medium is shared, so only the byte count matters for
  // timing/accounting, but Cluster::transfer wants concrete endpoints.
  const SiteIndex to = records->front().to;
  env_->ship(
      key.from, to, frame_bytes,
      "comm.batch/" + std::to_string(records->size()),
      [records]() {
        for (Record& record : *records) record.delivered();
      },
      [records](SiteIndex suspect) {
        for (Record& record : *records) {
          expects(record.on_fail != nullptr,
                  "DegradeMode::Partial shipment needs a fail handler");
          record.on_fail(suspect);
        }
      });
}

void ExecEnv::attempt_ship(SiteIndex from, SiteIndex to, Bytes bytes,
                           std::string step, int attempt,
                           Simulator::Callback delivered,
                           FailHandler on_fail) {
  const fault::FaultPlan& plan = *options_.faults;
  const SimTime begin = sim_->now();
  // The attempt's fate is decided at send time from the plan's private RNG
  // stream; the drop draw happens unconditionally so outage windows do not
  // shift the stream for later attempts.
  const bool from_down = from != kGlobalSite && plan.down(db_of(from), begin);
  const bool to_down = to != kGlobalSite && plan.down(db_of(to), begin);
  const bool dropped = fault_rng_.bernoulli(plan.drop_probability);
  const bool lost = from_down || to_down || dropped;

  if (!lost) {
    Simulator::Callback arrive = std::move(delivered);
    if (fault_rng_.bernoulli(plan.spike_probability)) {
      const SimTime spike = plan.spike_ns;
      arrive = [this, to, step, spike, inner = std::move(arrive)]() mutable {
        const SimTime at = sim_->now();
        record_fault_event(to, "fault.spike " + step, at, at + spike);
        sim_->schedule_after(spike, std::move(inner));
      };
    }
    transfer_traced(from, to, bytes, std::move(step), std::move(arrive));
    return;
  }

  // The bytes leave the sender and occupy the wire even though nobody will
  // hear them; the sender only learns of the loss when the timeout fires.
  transfer_traced(from, to, bytes, step, []() {});
  const fault::RetryPolicy& retry = options_.retry;
  const SimTime deadline = begin + retry.timeout_ns;
  if (attempt < retry.max_retries) {
    ++retries_;
    const SimTime resend = deadline + retry.backoff(attempt);
    record_fault_event(from, "fault.retry " + step, begin, resend);
    sim_->schedule_at(
        resend, [this, from, to, bytes, step = std::move(step), attempt,
                 delivered = std::move(delivered),
                 on_fail = std::move(on_fail)]() mutable {
          attempt_ship(from, to, bytes, std::move(step), attempt + 1,
                       std::move(delivered), std::move(on_fail));
        });
    return;
  }

  ++failed_messages_;
  record_fault_event(from, "fault.giveup " + step, begin, deadline);
  // Blame the site the plan says is down; for pure message loss suspect the
  // component endpoint (the global site is never declared dead).
  const SiteIndex suspect =
      to_down ? to : (from_down ? from : (to != kGlobalSite ? to : from));
  sim_->schedule_at(deadline, [this, suspect, step = std::move(step),
                               on_fail = std::move(on_fail)]() {
    if (options_.degrade == fault::DegradeMode::Fail)
      throw FaultError("site " + site_name(suspect) +
                       " unreachable after exhausting retries during '" +
                       step + "'");
    dead_.insert(db_of(suspect));
    expects(on_fail != nullptr,
            "DegradeMode::Partial shipment needs a fail handler");
    on_fail(suspect);
  });
}

void ExecEnv::record_fault_event(SiteIndex site, const std::string& step,
                                 SimTime begin, SimTime end) {
  if (options_.record_trace)
    trace_.record(site_name(site), step, Phase::Fault, begin, end);
  if (auto span = open_span(site_name(site), step, Phase::Fault, begin,
                            AccessMeter{}, SpanCounts{});
      span != nullptr) {
    span->end_ns = end;
    options_.trace_session->record(std::move(*span));
  }
}

void ExecEnv::record_plan_event(SiteIndex site, const std::string& step,
                                SimTime begin, SimTime end) {
  if (options_.record_trace)
    trace_.record(site_name(site), step, Phase::Plan, begin, end);
  if (auto span = open_span(site_name(site), step, Phase::Plan, begin,
                            AccessMeter{}, SpanCounts{});
      span != nullptr) {
    span->end_ns = end;
    options_.trace_session->record(std::move(*span));
  }
}

void ExecEnv::record_serve_event(SiteIndex site, const std::string& step,
                                 SimTime begin, SimTime end) {
  if (options_.record_trace)
    trace_.record(site_name(site), step, Phase::Serve, begin, end);
  if (auto span = open_span(site_name(site), step, Phase::Serve, begin,
                            AccessMeter{}, SpanCounts{});
      span != nullptr) {
    span->end_ns = end;
    options_.trace_session->record(std::move(*span));
  }
}

void ExecEnv::record_cert_event(SiteIndex site, const std::string& step,
                                SimTime begin, SimTime end) {
  if (options_.record_trace)
    trace_.record(site_name(site), step, Phase::Cert, begin, end);
  if (auto span = open_span(site_name(site), step, Phase::Cert, begin,
                            AccessMeter{}, SpanCounts{});
      span != nullptr) {
    span->end_ns = end;
    options_.trace_session->record(std::move(*span));
  }
}

void ExecEnv::record_impute_event(SiteIndex site, const std::string& step,
                                  SimTime begin, SimTime end) {
  if (options_.record_trace)
    trace_.record(site_name(site), step, Phase::Impute, begin, end);
  if (auto span = open_span(site_name(site), step, Phase::Impute, begin,
                            AccessMeter{}, SpanCounts{});
      span != nullptr) {
    span->end_ns = end;
    options_.trace_session->record(std::move(*span));
  }
}

void launch_strategy(ExecEnv& env, StrategyKind kind,
                     std::function<void(QueryResult, SimTime)> on_done) {
  switch (kind) {
    case StrategyKind::CA:
      launch_ca(env, std::move(on_done));
      break;
    case StrategyKind::BL:
      launch_localized(env, false, false, false, std::move(on_done));
      break;
    case StrategyKind::PL:
      launch_localized(env, false, true, false, std::move(on_done));
      break;
    case StrategyKind::BLS:
      launch_localized(env, true, false, false, std::move(on_done));
      break;
    case StrategyKind::PLS:
      launch_localized(env, true, true, false, std::move(on_done));
      break;
    case StrategyKind::IM:
      launch_localized(env, false, false, true, std::move(on_done));
      break;
  }
}

StrategyReport ExecEnv::finish(QueryResult result, SimTime response) {
  StrategyReport report;
  report.result = std::move(result);
  report.response_ns = response;
  report.cpu_ns = cluster_->cpu_busy();
  report.disk_ns = cluster_->disk_busy();
  report.net_ns = cluster_->network_busy();
  report.total_ns = report.cpu_ns + report.disk_ns + report.net_ns;
  report.bytes_transferred = cluster_->bytes_transferred();
  report.messages = cluster_->messages();
  report.work = work_;
  report.unavailable_sites.assign(dead_.begin(), dead_.end());
  report.retries = retries_;
  report.failed_messages = failed_messages_;
  report.cert_hits = cert_hits_;
  report.cert_misses = cert_misses_;
  report.imputed_atoms = imputed_atoms_;
  report.impute_declined = impute_declined_;
  report.trace = std::move(trace_);
  return report;
}

Bytes rows_wire_bytes(const CostParams& costs,
                      const std::vector<LocalRow>& rows) {
  Bytes total = 0;
  for (const LocalRow& row : rows) {
    total += costs.loid_bytes + costs.goid_bytes;
    for (const Value& v : row.targets) {
      switch (v.kind()) {
        case ValueKind::Null:
          break;
        case ValueKind::GlobalRef:
        case ValueKind::LocalRef:
          total += costs.goid_bytes;
          break;
        case ValueKind::GlobalRefSet:
          total += costs.goid_bytes *
                   static_cast<Bytes>(v.as_global_ref_set().size());
          break;
        case ValueKind::LocalRefSet:
          // References are globalized before transfer (Fig. 6): set-valued
          // ones travel as GOids exactly like single LocalRefs above.
          total += costs.goid_bytes *
                   static_cast<Bytes>(v.as_local_ref_set().size());
          break;
        default:
          total += costs.attr_bytes;
          break;
      }
    }
    for (const PredStatus& status : row.preds)
      if (is_unknown(status.truth)) total += costs.goid_bytes + 8;
  }
  return total;
}

Bytes check_request_wire_bytes(const CostParams& costs, std::size_t tasks) {
  return costs.attr_bytes + static_cast<Bytes>(tasks) * costs.check_task_bytes();
}

Bytes check_response_wire_bytes(const CostParams& costs,
                                std::size_t verdicts) {
  return costs.attr_bytes + static_cast<Bytes>(verdicts) * costs.verdict_bytes();
}

Bytes semijoin_check_request_bytes(const CostParams& costs,
                                   const std::vector<CheckTask>& tasks) {
  Bytes total = 0;
  for (const CheckTask& task : tasks)
    total += costs.semijoin_task_bytes(task.origin != task.item);
  return total;
}

std::map<std::string, std::set<std::size_t>> involved_attributes(
    const GlobalSchema& schema, const GlobalQuery& query) {
  std::map<std::string, std::set<std::size_t>> involved;
  const auto add_path = [&](const PathExpr& path) {
    const ResolvedPath resolved =
        resolve_path(schema.lookup(), query.range_class, path);
    for (const ResolvedStep& step : resolved.steps)
      involved[step.class_name].insert(step.attr_index);
  };
  for (const PathExpr& target : query.targets) add_path(target);
  for (const Predicate& pred : query.predicates) add_path(pred.path);
  return involved;
}

Bytes ca_projected_bytes(
    const Federation& federation, DbId db,
    const std::map<std::string, std::set<std::size_t>>& involved,
    const CostParams& costs) {
  const ComponentDatabase& database = federation.db(db);
  Bytes total = 0;
  for (const auto& [class_name, attrs] : involved) {
    const GlobalClass& cls = federation.schema().cls(class_name);
    const auto constituent = cls.constituent_in(db);
    if (!constituent) continue;
    const std::string& local_class =
        cls.constituents()[*constituent].local_class;
    Bytes per_object = costs.loid_bytes;
    for (const std::size_t a : attrs) {
      if (cls.is_missing(*constituent, a)) continue;
      per_object += is_complex(cls.def().attribute(a).type)
                        ? costs.goid_bytes
                        : costs.attr_bytes;
    }
    total += per_object * database.extent(local_class).size();
  }
  return total;
}

}  // namespace isomer::detail
