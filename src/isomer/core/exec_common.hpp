// Shared scaffolding for the strategy executors.
//
// Each executor drives the discrete-event simulator through callbacks; this
// header provides the per-run environment (simulator + cluster + site
// mapping + trace), the wire-size calculators for the protocol messages, and
// the attribute-projection sizing the centralized approach needs.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "isomer/common/rng.hpp"
#include "isomer/core/checks.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/obs/trace_session.hpp"
#include "isomer/sim/barrier.hpp"

namespace isomer::detail {

/// Object / certification flow counts attached to a charged step's
/// PhaseSpan (obs/span.hpp). All zero when a step has no natural notion of
/// objects flowing through it.
struct SpanCounts {
  std::uint64_t objects_in = 0;
  std::uint64_t objects_out = 0;
  std::uint64_t certs_resolved = 0;
  std::uint64_t certs_eliminated = 0;
};

/// Mutable state of one simulated strategy execution. Normally the env
/// owns its simulator and cluster; the shared-infrastructure constructor
/// lets several concurrent query executions contend for one cluster (see
/// core/stream.hpp).
class ExecEnv {
 public:
  ExecEnv(const Federation& federation, const GlobalQuery& query,
          const StrategyOptions& options);

  /// Shared mode: this execution runs on an externally owned simulator and
  /// cluster (which must outlive the env); finish() still reports this
  /// env's trace, but busy-time/bytes figures cover the whole cluster.
  ExecEnv(const Federation& federation, const GlobalQuery& query,
          const StrategyOptions& options, Simulator& sim, Cluster& cluster);

  [[nodiscard]] const Federation& fed() const noexcept { return *fed_; }
  [[nodiscard]] const GlobalQuery& query() const noexcept { return *query_; }
  [[nodiscard]] const CostParams& costs() const noexcept {
    return options_.costs;
  }
  [[nodiscard]] const StrategyOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] Cluster& cluster() noexcept { return *cluster_; }

  [[nodiscard]] SiteIndex site_of(DbId db) const;
  [[nodiscard]] std::string site_name(SiteIndex site) const;

  /// Tags the spans this env emits with the executing strategy and (under
  /// run_query_stream) the query's sequence number in the stream.
  void set_span_context(std::string_view strategy,
                        std::uint64_t query_seq = 0) {
    span_strategy_ = strategy;
    span_query_ = query_seq;
  }

  /// Charges a meter's physical work at a site — disk bytes first, then CPU
  /// comparisons+probes — and continues with `done`. Records a trace event
  /// covering the queue-inclusive interval; with a trace session attached,
  /// also a PhaseSpan carrying the meter delta and `counts`.
  void charge(SiteIndex site, const AccessMeter& meter, Phase phase,
              std::string step, SpanCounts counts, Simulator::Callback done);
  void charge(SiteIndex site, const AccessMeter& meter, Phase phase,
              std::string step, Simulator::Callback done) {
    charge(site, meter, phase, std::move(step), SpanCounts{},
           std::move(done));
  }

  /// Charges CPU-only work.
  void charge_cpu(SiteIndex site, std::uint64_t comparisons, Phase phase,
                  std::string step, Simulator::Callback done);

  /// Invoked instead of `delivered` when a shipment is abandoned after the
  /// retry budget under DegradeMode::Partial; receives the site declared
  /// unreachable. Executors use it to stop waiting for the dead site's part
  /// of the protocol.
  using FailHandler = std::function<void(SiteIndex)>;

  /// Ships bytes between sites, recording a Transfer trace event (and span).
  ///
  /// Without an active fault plan this is a single wire transfer. With one,
  /// each attempt's fate is drawn at send time (sender/receiver outage
  /// windows, message drop, latency spike); a lost attempt still occupies
  /// the wire, is detected at `begin + timeout_ns`, and is retransmitted
  /// after exponential backoff up to max_retries times. Exhausting the
  /// budget throws FaultError (DegradeMode::Fail) or marks the suspect site
  /// unavailable and calls `on_fail` (DegradeMode::Partial; the handler is
  /// then mandatory). Retries, give-ups and spikes are recorded as
  /// Phase::Fault trace events.
  void ship(SiteIndex from, SiteIndex to, Bytes bytes, std::string step,
            Simulator::Callback delivered, FailHandler on_fail = nullptr);

  /// Ships one batchable protocol record. With batching disabled (the
  /// default) this forwards to ship() unchanged — bitwise-identical
  /// executions. With StrategyOptions::batch.enabled, the record is
  /// enqueued on the ShipmentBatcher instead: records that become ready at
  /// the same simulated instant under the same frame key coalesce into one
  /// "comm.batch/<n>" wire transfer of kBatchHeaderBytes + the records'
  /// payload bytes, and every record's `delivered` fires when the frame
  /// arrives. Callers pass *batched* payload sizes (per-message headers
  /// dropped — the frame header replaces them).
  void ship_record(SiteIndex from, SiteIndex to, Bytes bytes,
                   std::string step, Simulator::Callback delivered,
                   FailHandler on_fail = nullptr);

  /// True when the batched shipment layer is active for this execution.
  [[nodiscard]] bool batching() const noexcept { return batcher_ != nullptr; }

  /// Folds a site-local meter into the run-wide work aggregate.
  void aggregate(const AccessMeter& meter) { work_ += meter; }

  /// Wire traffic attributable to THIS execution alone. On an owned
  /// simulator these equal the cluster totals; on a shared cluster (query
  /// streams, the serving layer) the cluster aggregates every concurrent
  /// query while these stay per-query — the per-query execution context the
  /// multi-tenant schedulers account and bill by. Retransmissions under a
  /// fault plan count: they occupied the wire on this query's behalf.
  [[nodiscard]] Bytes wire_bytes() const noexcept { return wire_bytes_; }
  [[nodiscard]] std::uint64_t wire_messages() const noexcept {
    return wire_messages_;
  }

  /// The component databases declared unreachable so far (ascending DbId).
  [[nodiscard]] const std::set<DbId>& unavailable() const noexcept {
    return dead_;
  }
  /// True once any site has been declared unreachable — the executor must
  /// degrade its answer (fault/degrade.hpp) before finishing.
  [[nodiscard]] bool degraded() const noexcept { return !dead_.empty(); }

  /// Records a Phase::Fault trace event (and span) with an analytically
  /// known interval — fault bookkeeping happens outside charge/ship, e.g.
  /// the "fault.degrade" marker the executors emit when assembling a
  /// degraded answer.
  void record_fault_event(SiteIndex site, const std::string& step,
                          SimTime begin, SimTime end);

  /// Records a Phase::Plan trace event (and span) — the planner's per-site
  /// path markers ("plan.site ...") and the mid-flight switch marker
  /// ("plan.switch"). Instantaneous: planning bookkeeping costs nothing in
  /// the simulation; the marker exists so EXPLAIN and traces show what the
  /// adaptive machinery decided and when.
  void record_plan_event(SiteIndex site, const std::string& step,
                         SimTime begin, SimTime end);

  /// Records a Phase::Cert trace event (and span) — the certificate-cache
  /// markers: "cert.hit/<n>" / "cert.miss/<n>" when a dispatch consults the
  /// cross-query cache (core/cert_cache.hpp) and "cert.discharge ..." with
  /// the residual-atom histogram at certification. Instantaneous, like
  /// record_plan_event: cache bookkeeping costs nothing in the simulation,
  /// and the markers exist only when a cache is attached — with
  /// StrategyOptions::cert_cache null no Cert event is ever recorded.
  void record_cert_event(SiteIndex site, const std::string& step,
                         SimTime begin, SimTime end);

  /// Records a Phase::Serve trace event (and span) — the serving layer's
  /// tenant attribution marker "serve.tenant/<id>" covering the interval a
  /// submission spent waiting between admission and launch. Instantaneous
  /// in simulated cost, like record_plan_event; recorded only by the
  /// multi-tenant server (serve/server.hpp), never by single-query runs.
  void record_serve_event(SiteIndex site, const std::string& step,
                          SimTime begin, SimTime end);

  /// Records a Phase::Impute trace event (and span) — the IM strategy's
  /// markers: "im.impute/<n>" when a dispatch answers check atoms from the
  /// population model (core/im.cpp) and "im.decline/<n>" for atoms it
  /// consulted but left on the certified path. Instantaneous, like
  /// record_cert_event: the model is an auxiliary replicated structure
  /// whose consultation costs nothing in the simulation, and the markers
  /// exist only when an ImputeState is attached — every non-IM plan takes
  /// the exact pre-imputation code path.
  void record_impute_event(SiteIndex site, const std::string& step,
                           SimTime begin, SimTime end);

  /// Folds a run's certificate-cache outcome into the final report.
  void note_cert_outcome(std::uint64_t hits, std::uint64_t misses) noexcept {
    cert_hits_ += hits;
    cert_misses_ += misses;
  }
  [[nodiscard]] std::uint64_t cert_hits() const noexcept { return cert_hits_; }
  [[nodiscard]] std::uint64_t cert_misses() const noexcept {
    return cert_misses_;
  }

  /// Folds a run's imputation outcome into the final report.
  void note_impute_outcome(std::uint64_t imputed,
                           std::uint64_t declined) noexcept {
    imputed_atoms_ += imputed;
    impute_declined_ += declined;
  }

  /// Runs the simulator to completion and assembles the report.
  [[nodiscard]] StrategyReport finish(QueryResult result, SimTime response);

 private:
  /// Builds the front half of a PhaseSpan (everything known at charge time);
  /// null when span recording is disabled. The completion callback fills in
  /// end_ns and hands the span to the session.
  [[nodiscard]] std::shared_ptr<obs::PhaseSpan> open_span(
      std::string site, const std::string& step, Phase phase, SimTime begin,
      const AccessMeter& work, const SpanCounts& counts) const;
  void close_span(const std::shared_ptr<obs::PhaseSpan>& span) const;

  void init_faults();
  void init_batching();
  [[nodiscard]] DbId db_of(SiteIndex site) const;
  /// The fault-free wire transfer (trace event + span + cluster transfer).
  void transfer_traced(SiteIndex from, SiteIndex to, Bytes bytes,
                       std::string step, Simulator::Callback arrived);
  /// One faulted transmission attempt (see ship()).
  void attempt_ship(SiteIndex from, SiteIndex to, Bytes bytes,
                    std::string step, int attempt,
                    Simulator::Callback delivered, FailHandler on_fail);

  const Federation* fed_;
  const GlobalQuery* query_;
  StrategyOptions options_;
  std::unique_ptr<Simulator> owned_sim_;
  std::unique_ptr<Cluster> owned_cluster_;
  Simulator* sim_ = nullptr;
  Cluster* cluster_ = nullptr;
  ExecutionTrace trace_;
  AccessMeter work_;
  Bytes wire_bytes_ = 0;            ///< this execution's transfers only
  std::uint64_t wire_messages_ = 0;
  std::string span_strategy_;
  std::uint64_t span_query_ = 0;
  std::uint64_t cert_hits_ = 0;    ///< certificate-cache outcome (see
  std::uint64_t cert_misses_ = 0;  ///< note_cert_outcome / StrategyReport)
  std::uint64_t imputed_atoms_ = 0;    ///< imputation outcome (see
  std::uint64_t impute_declined_ = 0;  ///< note_impute_outcome)

  // Fault-injection state; inert (and never touched on the hot path beyond
  // one bool test) when no enabled plan is attached.
  bool faults_enabled_ = false;
  Rng fault_rng_{0};
  std::set<DbId> dead_;
  std::uint64_t retries_ = 0;
  std::uint64_t failed_messages_ = 0;

  // Batched shipment layer; null (one pointer test per ship_record) unless
  // StrategyOptions::batch.enabled.
  std::unique_ptr<class ShipmentBatcher> batcher_;
};

/// Coalesces same-instant protocol records into framed wire transfers
/// (StrategyOptions::batch). A frame key is the sending site — on the
/// shared-medium topologies (SharedBus, CollisionBus) one frame carries a
/// sender's whole same-instant output and the records' destinations read it
/// off the broadcast medium — or the (from, to) pair on the switched
/// topologies (PointToPoint, Contentionless) and whenever a fault plan is
/// active, so outage/retry semantics stay per-destination. The first record
/// under a key schedules a flush at the *same* simulated instant
/// (schedule_after(0) runs after the already-queued events), so every
/// same-instant record joins the frame; BatchOptions::max_records caps a
/// frame, flushing it early. Each frame ships as one
/// "comm.batch/<record count>" transfer of kBatchHeaderBytes + the records'
/// payload bytes through ExecEnv::ship — under a fault plan the whole frame
/// is retried/abandoned as a unit and every record's fail handler fires.
class ShipmentBatcher {
 public:
  ShipmentBatcher(ExecEnv& env, const BatchOptions& options,
                  bool per_destination)
      : env_(&env), options_(options), per_destination_(per_destination) {}

  void enqueue(SiteIndex from, SiteIndex to, Bytes bytes, std::string step,
               Simulator::Callback delivered, ExecEnv::FailHandler on_fail);

 private:
  struct Record {
    SiteIndex to;
    Bytes bytes;
    std::string step;
    Simulator::Callback delivered;
    ExecEnv::FailHandler on_fail;
  };
  /// Frame key; `to` is kBroadcast under shared-medium keying.
  struct Key {
    SiteIndex from;
    SiteIndex to;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  static constexpr SiteIndex kBroadcast = static_cast<SiteIndex>(-1);

  void flush(const Key& key);

  ExecEnv* env_;
  BatchOptions options_;
  bool per_destination_;
  std::map<Key, std::vector<Record>> pending_;
};

/// Sets up one strategy execution on `env`'s simulator without running it;
/// `on_done` fires (inside the simulation) when the answer is ready. Used
/// directly by execute_strategy (own simulator) and by run_query_stream
/// (shared simulator, many concurrent launches).
void launch_ca(ExecEnv& env,
               std::function<void(QueryResult, SimTime)> on_done);
/// `impute` selects the IM strategy: identical wiring to BL except that an
/// ImputeState (core/im.cpp) is attached, which may answer first-round
/// check atoms from StrategyOptions::impute instead of shipping them.
/// Throws ImputeError when `impute` is set without an oracle in the
/// options.
void launch_localized(ExecEnv& env, bool use_signatures, bool eager_phase_o,
                      bool impute,
                      std::function<void(QueryResult, SimTime)> on_done);

/// Dispatches to the launcher for `kind` — the one switch shared by every
/// multi-query driver (core/stream.cpp, serve/).
void launch_strategy(ExecEnv& env, StrategyKind kind,
                     std::function<void(QueryResult, SimTime)> on_done);

/// Wire size of a local-result message: per row the root LOid and entity
/// GOid, every non-null target value (references — single or set-valued —
/// travel as GOids after mapping, per CostParams::projected_object_bytes),
/// and per unsolved predicate the item GOid + step/index bookkeeping.
[[nodiscard]] Bytes rows_wire_bytes(const CostParams& costs,
                                    const std::vector<LocalRow>& rows);

[[nodiscard]] Bytes check_request_wire_bytes(const CostParams& costs,
                                             std::size_t tasks);

[[nodiscard]] Bytes check_response_wire_bytes(const CostParams& costs,
                                              std::size_t verdicts);

/// Batched payload of one check-request message: the semijoin reduction
/// ships per task only the item GOid + predicate index (plus the origin
/// GOid on cascaded tasks) — CostParams::semijoin_task_bytes — because the
/// assistant site re-derives the assistant LOid from its replicated GOid
/// table and already holds the query text from the G1 broadcast.
[[nodiscard]] Bytes semijoin_check_request_bytes(
    const CostParams& costs, const std::vector<CheckTask>& tasks);

/// Global attributes each global class contributes to the query (targets,
/// predicates, and the references navigated on the way) — what the
/// centralized approach projects before shipping (paper §3.1).
[[nodiscard]] std::map<std::string, std::set<std::size_t>>
involved_attributes(const GlobalSchema& schema, const GlobalQuery& query);

/// Wire size of one database's projected extents for the centralized
/// approach: per object of each involved constituent class, the LOid plus
/// the locally present involved attributes.
[[nodiscard]] Bytes ca_projected_bytes(
    const Federation& federation, DbId db,
    const std::map<std::string, std::set<std::size_t>>& involved,
    const CostParams& costs);

}  // namespace isomer::detail
