#include "isomer/core/explain.hpp"

#include <algorithm>
#include <sstream>

#include "isomer/core/certify.hpp"
#include "isomer/query/printer.hpp"
#include "isomer/schema/translate.hpp"

namespace isomer {

std::string_view to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::Certain:
      return "certain";
    case Outcome::Maybe:
      return "maybe";
    case Outcome::Eliminated:
      return "eliminated";
    case Outcome::NotFound:
      return "not-found";
  }
  return "not-found";
}

namespace {

std::string render_predicate(const Predicate& pred) {
  std::ostringstream os;
  os << "X." << pred;
  return os.str();
}

std::string describe_site(const Federation& federation, DbId db,
                          const LocalPredOutcome& outcome,
                          const Predicate& pred) {
  std::ostringstream os;
  const std::string& attr = pred.path.step(outcome.step);
  const ComponentDatabase& database = federation.db(db);
  const std::string& holder_class = database.class_of(outcome.holder);
  const GlobalClass* global_class =
      federation.schema().global_class_of(db, holder_class);
  bool schema_missing = false;
  if (global_class != nullptr) {
    const auto constituent = global_class->constituent_in(db);
    const auto index = global_class->def().find_attribute(attr);
    if (constituent && index)
      schema_missing = global_class->is_missing(*constituent, *index);
  }
  os << "'" << attr << "' "
     << (schema_missing ? "is a missing attribute of " : "is null on ")
     << to_string(outcome.holder) << " (" << holder_class << "@DB"
     << db.value() << ")";
  return os.str();
}

}  // namespace

Explanation explain(const Federation& federation, const GlobalQuery& query,
                    GOid entity) {
  Explanation out;
  out.entity = entity;
  if (entity.value() == 0 ||
      entity.value() > federation.goids().entity_count())
    return out;
  const GoidTable& goids = federation.goids();
  if (goids.class_of(entity) != query.range_class) return out;

  const GlobalSchema& schema = federation.schema();
  const GlobalClass& range = schema.cls(query.range_class);

  out.predicates.resize(query.predicates.size());
  for (std::size_t p = 0; p < query.predicates.size(); ++p) {
    out.predicates[p].predicate = p;
    out.predicates[p].rendered = render_predicate(query.predicates[p]);
  }

  // --- Per-database evaluation of the entity's isomeric root objects,
  // exactly as the localized strategies' phase P sees them.
  std::vector<UnsolvedItem> items;
  std::vector<std::pair<DbId, std::vector<Truth>>> per_db_truths;
  for (const LOid& isomer : goids.isomers_of(entity)) {
    const Object* root = federation.db(isomer.db).fetch(isomer);
    ensures(root != nullptr, "GOid table validated at construction");
    std::vector<Truth> truths;
    for (std::size_t p = 0; p < query.predicates.size(); ++p) {
      const LocalPredOutcome outcome = eval_global_predicate_at(
          federation, isomer.db, *root, range, query.predicates[p], 0);
      truths.push_back(outcome.truth);
      Evidence evidence;
      evidence.db = isomer.db;
      evidence.truth = outcome.truth;
      if (is_unknown(outcome.truth)) {
        evidence.note = describe_site(federation, isomer.db, outcome,
                                      query.predicates[p]);
        if (outcome.step > 0) {
          const auto item = goids.goid_of(outcome.holder);
          ensures(item.has_value(), "every constituent object is GOid-mapped");
          items.push_back(UnsolvedItem{*item, p, outcome.step, *item});
        }
      } else {
        evidence.note = std::string("evaluates ") +
                        std::string(to_string(outcome.truth)) + " at DB" +
                        std::to_string(isomer.db.value());
      }
      out.predicates[p].evidence.push_back(std::move(evidence));
    }
    // Row-absence elimination: a database whose local formula is False
    // rejects the whole entity.
    if (is_false(query.combine(truths))) out.eliminated_at = isomer.db;
    per_db_truths.emplace_back(isomer.db, std::move(truths));
  }

  // --- Assistant checking for the nested unsolved items (with cascades).
  std::sort(items.begin(), items.end());
  std::vector<CheckVerdict> verdicts;
  std::vector<std::pair<DbId, CheckTask>> noted_tasks;
  {
    // One round of planning per home database would dispatch per-home; for
    // explanation purposes the union over homes is what matters.
    CheckPlan plan = plan_checks(federation, query, DbId{0}, items);
    while (plan.task_count() > 0) {
      CheckPlan next;
      for (const auto& [target, tasks] : plan.by_target) {
        const CheckOutcome outcome =
            run_checks(federation, query, target, tasks);
        for (std::size_t i = 0; i < tasks.size(); ++i)
          noted_tasks.emplace_back(target, tasks[i]);
        verdicts.insert(verdicts.end(), outcome.verdicts.begin(),
                        outcome.verdicts.end());
        for (const auto& [cascade_target, cascade_tasks] :
             outcome.follow_up.by_target) {
          auto& bucket = next.by_target[cascade_target];
          bucket.insert(bucket.end(), cascade_tasks.begin(),
                        cascade_tasks.end());
        }
      }
      plan = std::move(next);
    }
  }
  for (std::size_t i = 0; i < noted_tasks.size() && i < verdicts.size();
       ++i) {
    const auto& [target, task] = noted_tasks[i];
    Evidence evidence;
    evidence.db = target;
    evidence.truth = verdicts[i].truth;
    evidence.from_assistant = true;
    std::ostringstream note;
    note << "assistant " << to_string(task.assistant) << " reports "
         << to_string(verdicts[i].truth);
    evidence.note = note.str();
    out.predicates[verdicts[i].predicate].evidence.push_back(
        std::move(evidence));
  }

  // --- Pool the evidence per predicate (same rule as certify()).
  std::vector<Truth> merged(query.predicates.size(), Truth::Unknown);
  for (std::size_t p = 0; p < query.predicates.size(); ++p) {
    bool any_true = false, any_false = false;
    for (const Evidence& evidence : out.predicates[p].evidence) {
      if (is_true(evidence.truth)) any_true = true;
      if (is_false(evidence.truth)) any_false = true;
    }
    merged[p] = any_false  ? Truth::False
                : any_true ? Truth::True
                           : Truth::Unknown;
    out.predicates[p].merged = merged[p];
  }

  if (out.eliminated_at) {
    out.outcome = Outcome::Eliminated;
    return out;
  }
  const Truth overall = query.combine(merged);
  out.outcome = is_false(overall)  ? Outcome::Eliminated
                : is_true(overall) ? Outcome::Certain
                                   : Outcome::Maybe;
  return out;
}

std::string Explanation::to_text(const GlobalQuery& query) const {
  std::ostringstream os;
  os << "entity g" << entity.value() << ": " << to_string(outcome) << "\n";
  if (outcome == Outcome::NotFound) {
    os << "  (not an entity of range class " << query.range_class << ")\n";
    return os.str();
  }
  if (eliminated_at)
    os << "  rejected outright by DB" << eliminated_at->value()
       << " — its isomeric object there fails the query\n";
  for (const PredicateAccount& account : predicates) {
    os << "  " << account.rendered << "  => " << to_string(account.merged)
       << "\n";
    for (const Evidence& evidence : account.evidence)
      os << "    - " << (evidence.from_assistant ? "[check] " : "")
         << evidence.note << "\n";
  }
  return os.str();
}

}  // namespace isomer
