#include "isomer/core/explain.hpp"

#include <algorithm>
#include <sstream>

#include "isomer/core/certify.hpp"
#include "isomer/query/printer.hpp"
#include "isomer/schema/translate.hpp"

namespace isomer {

std::string_view to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::Certain:
      return "certain";
    case Outcome::Maybe:
      return "maybe";
    case Outcome::Eliminated:
      return "eliminated";
    case Outcome::NotFound:
      return "not-found";
  }
  return "not-found";
}

namespace {

std::string render_predicate(const Predicate& pred) {
  std::ostringstream os;
  os << "X." << pred;
  return os.str();
}

std::string describe_site(const Federation& federation, DbId db,
                          const LocalPredOutcome& outcome,
                          const Predicate& pred) {
  std::ostringstream os;
  const std::string& attr = pred.path.step(outcome.step);
  const ComponentDatabase& database = federation.db(db);
  const std::string& holder_class = database.class_of(outcome.holder);
  const GlobalClass* global_class =
      federation.schema().global_class_of(db, holder_class);
  bool schema_missing = false;
  if (global_class != nullptr) {
    const auto constituent = global_class->constituent_in(db);
    const auto index = global_class->def().find_attribute(attr);
    if (constituent && index)
      schema_missing = global_class->is_missing(*constituent, *index);
  }
  os << "'" << attr << "' "
     << (schema_missing ? "is a missing attribute of " : "is null on ")
     << to_string(outcome.holder) << " (" << holder_class << "@DB"
     << db.value() << ")";
  return os.str();
}

}  // namespace

Explanation explain(const Federation& federation, const GlobalQuery& query,
                    GOid entity) {
  Explanation out;
  out.entity = entity;
  if (entity.value() == 0 ||
      entity.value() > federation.goids().entity_count())
    return out;
  const GoidTable& goids = federation.goids();
  if (goids.class_of(entity) != query.range_class) return out;

  const GlobalSchema& schema = federation.schema();
  const GlobalClass& range = schema.cls(query.range_class);

  out.predicates.resize(query.predicates.size());
  for (std::size_t p = 0; p < query.predicates.size(); ++p) {
    out.predicates[p].predicate = p;
    out.predicates[p].rendered = render_predicate(query.predicates[p]);
  }

  // --- Per-database evaluation of the entity's isomeric root objects,
  // exactly as the localized strategies' phase P sees them. Alongside the
  // human-readable evidence, build the same per-predicate condition pools
  // certify() builds, so the explanation can report the residual.
  std::vector<UnsolvedItem> items;
  std::vector<std::pair<DbId, std::vector<Truth>>> per_db_truths;
  std::vector<std::vector<Condition>> pooled(query.predicates.size());
  for (const LOid& isomer : goids.isomers_of(entity)) {
    const Object* root = federation.db(isomer.db).fetch(isomer);
    ensures(root != nullptr, "GOid table validated at construction");
    std::vector<Truth> truths;
    for (std::size_t p = 0; p < query.predicates.size(); ++p) {
      const LocalPredOutcome outcome = eval_global_predicate_at(
          federation, isomer.db, *root, range, query.predicates[p], 0);
      truths.push_back(outcome.truth);
      Evidence evidence;
      evidence.db = isomer.db;
      evidence.truth = outcome.truth;
      if (is_unknown(outcome.truth)) {
        evidence.note = describe_site(federation, isomer.db, outcome,
                                      query.predicates[p]);
        const auto item = goids.goid_of(outcome.holder);
        ensures(item.has_value(), "every constituent object is GOid-mapped");
        pooled[p].push_back(Condition::leaf(
            CondAtom{*item, p, outcome.step, outcome.step == 0}));
        if (outcome.step > 0)
          items.push_back(UnsolvedItem{*item, p, outcome.step, *item});
      } else {
        pooled[p].push_back(Condition::constant(outcome.truth));
        evidence.note = std::string("evaluates ") +
                        std::string(to_string(outcome.truth)) + " at DB" +
                        std::to_string(isomer.db.value());
      }
      out.predicates[p].evidence.push_back(std::move(evidence));
    }
    // Row-absence elimination: a database whose local formula is False
    // rejects the whole entity.
    if (is_false(query.combine(truths))) out.eliminated_at = isomer.db;
    per_db_truths.emplace_back(isomer.db, std::move(truths));
  }

  // --- Assistant checking for the nested unsolved items (with cascades).
  std::sort(items.begin(), items.end());
  std::vector<CheckVerdict> verdicts;
  std::vector<std::pair<DbId, CheckTask>> noted_tasks;
  {
    // One round of planning per home database would dispatch per-home; for
    // explanation purposes the union over homes is what matters.
    CheckPlan plan = plan_checks(federation, query, DbId{0}, items);
    while (plan.task_count() > 0) {
      CheckPlan next;
      for (const auto& [target, tasks] : plan.by_target) {
        const CheckOutcome outcome =
            run_checks(federation, query, target, tasks);
        for (std::size_t i = 0; i < tasks.size(); ++i)
          noted_tasks.emplace_back(target, tasks[i]);
        verdicts.insert(verdicts.end(), outcome.verdicts.begin(),
                        outcome.verdicts.end());
        for (const auto& [cascade_target, cascade_tasks] :
             outcome.follow_up.by_target) {
          auto& bucket = next.by_target[cascade_target];
          bucket.insert(bucket.end(), cascade_tasks.begin(),
                        cascade_tasks.end());
        }
      }
      plan = std::move(next);
    }
  }
  for (std::size_t i = 0; i < noted_tasks.size() && i < verdicts.size();
       ++i) {
    const auto& [target, task] = noted_tasks[i];
    Evidence evidence;
    evidence.db = target;
    evidence.truth = verdicts[i].truth;
    evidence.from_assistant = true;
    std::ostringstream note;
    note << "assistant " << to_string(task.assistant) << " reports "
         << to_string(verdicts[i].truth);
    evidence.note = note.str();
    out.predicates[verdicts[i].predicate].evidence.push_back(
        std::move(evidence));
  }

  // --- Pool the evidence per predicate (same rule as certify()).
  std::vector<Truth> merged(query.predicates.size(), Truth::Unknown);
  for (std::size_t p = 0; p < query.predicates.size(); ++p) {
    bool any_true = false, any_false = false;
    for (const Evidence& evidence : out.predicates[p].evidence) {
      if (is_true(evidence.truth)) any_true = true;
      if (is_false(evidence.truth)) any_false = true;
    }
    merged[p] = any_false  ? Truth::False
                : any_true ? Truth::True
                           : Truth::Unknown;
    out.predicates[p].merged = merged[p];
  }

  if (out.eliminated_at) {
    out.outcome = Outcome::Eliminated;
    return out;
  }
  const Truth overall = query.combine(merged);
  out.outcome = is_false(overall)  ? Outcome::Eliminated
                : is_true(overall) ? Outcome::Certain
                                   : Outcome::Maybe;

  // --- The residual condition of a maybe outcome: the per-predicate pools
  // combined in the query's shape, every checked atom's pooled verdict
  // substituted, then simplified — certify()'s condition path for one
  // entity.
  if (out.outcome == Outcome::Maybe) {
    Condition::Assignment verdict_index;
    for (const CheckVerdict& verdict : verdicts) {
      auto [it, inserted] = verdict_index.try_emplace(
          std::pair{verdict.item, verdict.predicate}, verdict.truth);
      if (!inserted) {
        if (is_false(verdict.truth) || is_false(it->second))
          it->second = Truth::False;
        else
          it->second = it->second || verdict.truth;
      }
    }
    std::vector<Condition> per_pred;
    per_pred.reserve(query.predicates.size());
    for (std::size_t p = 0; p < query.predicates.size(); ++p)
      per_pred.push_back(Condition::pool(std::move(pooled[p])));
    Condition condition = combine_conditions(query, std::move(per_pred));
    for (const auto& [atom, truth] : verdict_index)
      condition = condition.substitute(atom.first, atom.second, truth);
    out.residual = condition.simplify();
    ensures(out.residual.truth() == overall,
            "explanation residual must agree with the pooled evidence");
  }
  return out;
}

std::map<std::size_t, std::uint64_t> Explanation::residual_histogram() const {
  std::map<std::size_t, std::uint64_t> histogram;
  if (outcome != Outcome::Maybe) return histogram;
  for (const CondAtom& atom : residual.atoms()) ++histogram[atom.predicate];
  return histogram;
}

namespace {

/// Aggregate of every span sharing one (site, step) within a phase group.
struct StepLine {
  std::string site;
  std::string step;
  std::size_t spans = 0;
  SimTime busy = 0;
  AccessMeter work;
  Bytes bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t objects_in = 0, objects_out = 0;
  std::uint64_t certs_resolved = 0, certs_eliminated = 0;
  SimTime first_start = 0;
};

void render_step_line(std::ostringstream& os, const std::string& branch,
                      const StepLine& line) {
  os << branch << line.site << "  " << line.step << "  "
     << to_milliseconds(line.busy) << "ms";
  if (line.spans > 1) os << " (" << line.spans << " spans)";
  if (line.objects_in != 0 || line.objects_out != 0)
    os << "  objects " << line.objects_in << "->" << line.objects_out;
  if (line.bytes != 0 || line.messages != 0)
    os << "  " << line.bytes << "B/" << line.messages << "msg";
  const AccessMeter& work = line.work;
  if (work.objects_scanned != 0) os << "  scans=" << work.objects_scanned;
  if (work.objects_fetched != 0) os << "  fetches=" << work.objects_fetched;
  if (work.comparisons != 0) os << "  cmp=" << work.comparisons;
  if (work.table_probes != 0) os << "  probes=" << work.table_probes;
  if (line.certs_resolved != 0 || line.certs_eliminated != 0)
    os << "  certified=" << line.certs_resolved
       << " eliminated=" << line.certs_eliminated;
  os << "\n";
}

}  // namespace

std::string render_phase_tree(const obs::TraceSession& session) {
  if (session.empty()) return "(empty trace)\n";

  // Group spans per (strategy, query) execution, preserving record order
  // (sessions record in simulated-time completion order).
  std::vector<std::pair<std::string, std::uint64_t>> executions;
  for (const obs::PhaseSpan& span : session.spans()) {
    const std::pair<std::string, std::uint64_t> key{span.strategy,
                                                    span.query};
    if (std::find(executions.begin(), executions.end(), key) ==
        executions.end())
      executions.push_back(key);
  }

  std::ostringstream os;
  for (const auto& [strategy, query] : executions) {
    os << "strategy " << (strategy.empty() ? "?" : strategy);
    if (executions.size() > 1 || query != 0) os << "  (query " << query << ")";
    os << "\n";

    // Phases in order of first span start — the executing flow. Plan
    // markers always render first (what the adaptive planner decided per
    // site, plus any mid-flight switch, frames the phases that follow);
    // Transfers always render last: they are the glue between phases, not
    // a phase.
    std::vector<Phase> phases;
    const auto phase_key = [&](Phase phase) {
      return std::find(phases.begin(), phases.end(), phase) != phases.end();
    };
    std::vector<const obs::PhaseSpan*> spans;
    for (const obs::PhaseSpan& span : session.spans())
      if (span.strategy == strategy && span.query == query)
        spans.push_back(&span);
    std::stable_sort(spans.begin(), spans.end(),
                     [](const obs::PhaseSpan* a, const obs::PhaseSpan* b) {
                       return a->start_ns < b->start_ns;
                     });
    for (const obs::PhaseSpan* span : spans)
      if (span->phase == Phase::Plan) {
        phases.push_back(Phase::Plan);
        break;
      }
    for (const obs::PhaseSpan* span : spans)
      if (span->phase != Phase::Transfer && span->phase != Phase::Plan &&
          span->phase != Phase::Serve && !phase_key(span->phase))
        phases.push_back(span->phase);
    phases.push_back(Phase::Transfer);

    for (std::size_t p = 0; p < phases.size(); ++p) {
      const Phase phase = phases[p];
      std::vector<StepLine> lines;
      SimTime first = 0, last = 0;
      bool any = false;
      for (const obs::PhaseSpan* span : spans) {
        if (span->phase != phase) continue;
        if (!any || span->start_ns < first) first = span->start_ns;
        if (!any || span->end_ns > last) last = span->end_ns;
        any = true;
        auto it = std::find_if(lines.begin(), lines.end(),
                               [&](const StepLine& line) {
                                 return line.site == span->site &&
                                        line.step == span->step;
                               });
        if (it == lines.end()) {
          lines.push_back(StepLine{});
          it = std::prev(lines.end());
          it->site = span->site;
          it->step = span->step;
          it->first_start = span->start_ns;
        }
        ++it->spans;
        it->busy += span->end_ns - span->start_ns;
        it->work += span->work;
        it->bytes += span->bytes;
        it->messages += span->messages;
        it->objects_in += span->objects_in;
        it->objects_out += span->objects_out;
        it->certs_resolved += span->certs_resolved;
        it->certs_eliminated += span->certs_eliminated;
      }
      if (!any) continue;
      const bool last_phase = (p + 1 == phases.size());
      os << (last_phase ? "`- " : "|- ") << "phase " << to_string(phase)
         << "  [" << to_milliseconds(first) << " - " << to_milliseconds(last)
         << " ms]\n";
      const std::string branch = last_phase ? "     " : "|    ";
      std::stable_sort(lines.begin(), lines.end(),
                       [](const StepLine& a, const StepLine& b) {
                         return a.first_start < b.first_start;
                       });
      for (const StepLine& line : lines) render_step_line(os, branch, line);
    }
  }
  return os.str();
}

std::string Explanation::to_text(const GlobalQuery& query) const {
  std::ostringstream os;
  os << "entity g" << entity.value() << ": " << to_string(outcome) << "\n";
  if (outcome == Outcome::NotFound) {
    os << "  (not an entity of range class " << query.range_class << ")\n";
    return os.str();
  }
  if (eliminated_at)
    os << "  rejected outright by DB" << eliminated_at->value()
       << " — its isomeric object there fails the query\n";
  for (const PredicateAccount& account : predicates) {
    os << "  " << account.rendered << "  => " << to_string(account.merged)
       << "\n";
    for (const Evidence& evidence : account.evidence)
      os << "    - " << (evidence.from_assistant ? "[check] " : "")
         << evidence.note << "\n";
  }
  if (outcome == Outcome::Maybe) {
    os << "  residual: " << residual.to_string() << "\n";
    const auto histogram = residual_histogram();
    std::uint64_t total = 0;
    for (const auto& [predicate, count] : histogram) total += count;
    os << "  unresolved atoms: " << total;
    for (const auto& [predicate, count] : histogram)
      os << " p" << predicate << "=" << count;
    os << "\n";
  }
  return os.str();
}

}  // namespace isomer
