// Result explanation.
//
// The paper's motivation is *more informative answers*: users see maybe
// results instead of silently losing objects to missing data. explain()
// completes the story — for one real-world entity it reports, predicate by
// predicate, what every database could and could not evaluate, which
// objects hold the missing data, what the assistant objects said, and why
// the entity ended up certain, maybe, or eliminated.
#pragma once

#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "isomer/core/strategy.hpp"
#include "isomer/obs/trace_session.hpp"
#include "isomer/query/condition.hpp"

namespace isomer {

/// How one entity fared under a query.
enum class Outcome : unsigned char { Certain, Maybe, Eliminated, NotFound };

[[nodiscard]] std::string_view to_string(Outcome outcome) noexcept;

/// One piece of evidence about one predicate.
struct Evidence {
  DbId db{};          ///< where the evidence was produced
  Truth truth = Truth::Unknown;
  std::string note;   ///< human-readable, e.g. "address missing on o6@DB1"
  bool from_assistant = false;  ///< true when a checked assistant said it
};

/// The full account of one predicate for one entity.
struct PredicateAccount {
  std::size_t predicate = 0;
  std::string rendered;  ///< "X.address.city=Taipei"
  Truth merged = Truth::Unknown;
  std::vector<Evidence> evidence;
};

struct Explanation {
  GOid entity{};
  Outcome outcome = Outcome::NotFound;
  std::vector<PredicateAccount> predicates;
  /// Set when the entity was eliminated by row absence: the database whose
  /// local evaluation rejected its isomeric object outright.
  std::optional<DbId> eliminated_at;
  /// A Maybe outcome's residual condition (query/condition.hpp): the
  /// simplified expression over (GOid, predicate) atoms that is still
  /// undecided after every check verdict was substituted. Constant True for
  /// every other outcome.
  Condition residual;

  /// Residual-atom histogram: predicate index -> how many atoms of
  /// `residual` name it. Empty unless the outcome is Maybe — this is the
  /// per-entity view of CertifyStats::unresolved_by_predicate and of the
  /// "cert.discharge" trace marker's counts.
  [[nodiscard]] std::map<std::size_t, std::uint64_t> residual_histogram()
      const;

  /// Renders the whole account as indented text.
  [[nodiscard]] std::string to_text(const GlobalQuery& query) const;
};

/// Explains how `entity` (a real-world entity of the query's range class)
/// fares under `query`. Works directly on the federation — no simulation —
/// and uses the same evaluation, planning, checking and pooling code paths
/// as the strategies, so the outcome always matches execute_strategy().
[[nodiscard]] Explanation explain(const Federation& federation,
                                  const GlobalQuery& query, GOid entity);

/// Renders a completed trace session as a per-strategy phase tree: one
/// block per (strategy, query), phases in executing order (the strategy's
/// characteristic O/I/P ordering falls straight out), and per phase one
/// aggregated line per (site, step) with simulated time, AccessMeter
/// counts, wire bytes/messages, object flow and certification outcomes.
/// This is the human-readable view of the same spans --trace dumps as
/// JSONL (docs/TRACING.md).
[[nodiscard]] std::string render_phase_tree(const obs::TraceSession& session);

}  // namespace isomer
