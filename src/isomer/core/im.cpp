// The IM strategy: on-the-fly imputation with probabilistic certification
// (ROADMAP item 2, docs/IMPUTATION.md).
//
// IM is BL with one extra dispatch-side filter. Where BL ships a check
// request for every first-round unsolved atom, IM first consults the
// population model (StrategyOptions::impute — an analytic/impute.hpp
// ImputeModel behind the core-side ImputeOracle interface): an atom whose
// estimated verdict is upgradable under the declared missingness mechanism
// *and* clears the confidence threshold is answered locally — its tasks are
// stripped from the plan and the estimated CheckVerdict rides to the global
// site with the plan's local (signature) verdicts, exactly like a
// certificate-cache hit. Everything below the threshold falls back to the
// normal residual-condition path, which is what makes IM compose with
// --certcache (the certificate filter runs first and wins) and with
// --faults (imputed atoms never touch the wire, so dead assistant homes
// cannot block them).
//
// The filter also consults the model for the plan's *unadvised* atoms —
// unsolved sites with no capable assistant anywhere (CheckPlan::unadvised).
// The certified strategies can never resolve those rows; a confident
// population estimate is the only way to upgrade them, which is where IM
// keeps answering after every assistant home dies.
//
// The second half of the strategy runs at the global site: after certify()
// builds the rows, discharge() consults the model for the atoms the filter
// could not reach — root-level sites (decided by the row pool, which
// decides nothing when every copy is a gap) and atoms whose assistants
// never answered — and substitutes confident estimates straight into the
// residual conditions, upgrading or eliminating the rows that thereby
// decide.
//
// The launch path, the operators and the certification are bl.cpp's; this
// file owns only the filter and the discharge. At threshold 1.0 no smoothed
// confidence ever clears, both passes strip nothing, and the execution is
// bitwise identical to plain BL — tests/test_impute.cpp pins that down
// across 200 seeds.
#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "isomer/core/operators.hpp"

namespace isomer::detail {

void ImputeState::filter(ExecEnv& env, SiteIndex from, DbId home,
                         CheckPlan& plan, CertWriteback* certs) {
  if (oracle == nullptr ||
      (plan.by_target.empty() && plan.unadvised.empty()))
    return;
  // One oracle consultation per distinct first-round atom instance (item,
  // predicate, step), mirroring CertWriteback::filter: duplicated tasks
  // (two maybe rows advised by the same item) share the decision, exactly
  // as their shipped verdicts would have pooled.
  std::map<std::tuple<GOid, std::size_t, std::size_t>, bool> cleared;
  std::uint64_t impute_count = 0, decline_count = 0;
  for (auto target = plan.by_target.begin();
       target != plan.by_target.end();) {
    std::vector<CheckTask>& tasks = target->second;
    std::erase_if(tasks, [&](const CheckTask& task) {
      if (task.origin != task.item) return false;  // cascaded: never imputed
      const auto key = std::tuple{task.item, task.predicate, task.step};
      auto it = cleared.find(key);
      if (it == cleared.end()) {
        const ImputeOracle::Decision decision =
            oracle->decide(env.fed(), env.query(), task.item, task.predicate,
                           task.step, home, mar);
        const bool impute_it =
            decision.upgradable && decision.confidence >= threshold;
        it = cleared.emplace(key, impute_it).first;
        if (impute_it) {
          ++impute_count;
          plan.local_verdicts.push_back(
              CheckVerdict{task.origin, task.predicate, decision.verdict});
          // Keep the least confident estimate when several steps of the
          // same predicate impute for this item — certify() multiplies one
          // confidence per atom into the row. An imputed *Unknown* only
          // predicts that the protocol would come back undecided: it strips
          // the traffic but upgrades nothing, so the row's confidence stays
          // untouched.
          if (!is_unknown(decision.verdict)) {
            auto [conf, inserted] = confidences.try_emplace(
                std::pair{task.item, task.predicate}, decision.confidence);
            if (!inserted)
              conf->second = std::min(conf->second, decision.confidence);
          }
          // The atom's evidence pool now contains an *estimate*: taint it
          // so the certificate writeback never launders the guess into a
          // certificate another query would trust as exact.
          if (certs != nullptr)
            certs->tainted.insert(std::pair{task.item, task.predicate});
        } else {
          ++decline_count;
        }
      }
      return it->second;
    });
    // A fully-imputed target must not receive an empty check request.
    if (tasks.empty())
      target = plan.by_target.erase(target);
    else
      ++target;
  }
  // Unadvised atoms: no assistant can evaluate them, so there is no traffic
  // to strip and the certified path would leave their rows maybe forever. A
  // confident True/False estimate upgrades them anyway; an estimated
  // Unknown changes nothing here (the protocol it predicts was never going
  // to run) and is left alone rather than counted as an imputation.
  for (const UnsolvedItem& atom : plan.unadvised) {
    if (atom.origin != atom.item) continue;  // cascaded: never imputed
    const auto key = std::tuple{atom.item, atom.predicate, atom.step};
    if (cleared.contains(key)) continue;  // duplicate instance, same row pool
    const ImputeOracle::Decision decision =
        oracle->decide(env.fed(), env.query(), atom.item, atom.predicate,
                       atom.step, home, mar);
    const bool impute_it = decision.upgradable &&
                           !is_unknown(decision.verdict) &&
                           decision.confidence >= threshold;
    cleared.emplace(key, impute_it);
    if (!impute_it) {
      ++decline_count;
      continue;
    }
    ++impute_count;
    plan.local_verdicts.push_back(
        CheckVerdict{atom.origin, atom.predicate, decision.verdict});
    auto [conf, inserted] = confidences.try_emplace(
        std::pair{atom.item, atom.predicate}, decision.confidence);
    if (!inserted) conf->second = std::min(conf->second, decision.confidence);
    if (certs != nullptr)
      certs->tainted.insert(std::pair{atom.item, atom.predicate});
  }
  imputed += impute_count;
  declined += decline_count;
  const SimTime now = env.sim().now();
  if (impute_count > 0)
    env.record_impute_event(
        from, "im.impute/" + std::to_string(impute_count), now, now);
  if (decline_count > 0)
    env.record_impute_event(
        from, "im.decline/" + std::to_string(decline_count), now, now);
}

void ImputeState::discharge(ExecEnv& env,
                            const std::vector<LocalExecution>& locals,
                            QueryResult& result) {
  if (oracle == nullptr) return;
  // The gap-kind evidence for an atom comes from the home that reported it:
  // the lowest DbId whose local row left (item, predicate, step) Unknown —
  // deterministic whatever order the locals arrived in. Atoms nobody
  // reported (the synthesized rows of fully-unreachable entities) have no
  // observable gap to condition on and are never estimated.
  std::map<std::tuple<GOid, std::size_t, std::size_t>, DbId> atom_home;
  for (const LocalExecution& local : locals)
    for (const LocalRow& row : local.rows)
      for (std::size_t p = 0; p < row.preds.size(); ++p) {
        const PredStatus& status = row.preds[p];
        if (!is_unknown(status.truth)) continue;
        auto [it, inserted] = atom_home.try_emplace(
            std::tuple{status.item, p, status.step}, local.db);
        if (!inserted && local.db < it->second) it->second = local.db;
      }

  // One oracle consultation per distinct residual atom, shared across rows.
  std::map<std::tuple<GOid, std::size_t, std::size_t>, ImputeOracle::Decision>
      decisions;
  const auto decide =
      [&](const CondAtom& atom) -> const ImputeOracle::Decision& {
    const auto key = std::tuple{atom.item, atom.predicate, atom.step};
    auto it = decisions.find(key);
    if (it == decisions.end()) {
      ImputeOracle::Decision decision;  // not upgradable
      const auto home = atom_home.find(key);
      if (home != atom_home.end())
        decision = oracle->decide(env.fed(), env.query(), atom.item,
                                  atom.predicate, atom.step, home->second,
                                  mar);
      it = decisions.emplace(key, decision).first;
    }
    return it->second;
  };

  std::uint64_t impute_count = 0, upgraded = 0, eliminated = 0;
  std::set<std::tuple<GOid, std::size_t, std::size_t>> used;
  std::vector<char> kill(result.rows.size(), 0);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    ResultRow& row = result.rows[i];
    if (row.status != ResultStatus::Maybe) continue;
    Condition cond = row.condition;
    double confidence = row.confidence;
    // Each distinct atom discounts the row's confidence once, however many
    // leaves it discharges — certify()'s per-atom fold.
    std::set<std::tuple<GOid, std::size_t, std::size_t>> row_used;
    for (const CondAtom& atom : row.condition.atoms()) {
      const ImputeOracle::Decision& decision = decide(atom);
      if (!decision.upgradable || is_unknown(decision.verdict) ||
          decision.confidence < threshold)
        continue;
      cond = cond.substitute_atom(atom, decision.verdict);
      if (row_used
              .insert(std::tuple{atom.item, atom.predicate, atom.step})
              .second)
        confidence *= decision.confidence;
    }
    if (row_used.empty()) continue;
    const Truth truth = cond.simplify().truth();
    // Undecided: the estimates were not enough — leave the row exactly as
    // certified rather than leaking partial guesses into its residual.
    if (is_unknown(truth)) continue;
    for (const auto& key : row_used)
      if (used.insert(key).second) ++impute_count;
    if (is_true(truth)) {
      row.status = ResultStatus::Certain;
      row.confidence = confidence;
      row.condition = Condition::constant(Truth::True);
      ++upgraded;
    } else {
      kill[i] = 1;
      ++eliminated;
    }
  }
  if (eliminated > 0) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < result.rows.size(); ++i)
      if (kill[i] == 0) result.rows[w++] = std::move(result.rows[i]);
    result.rows.resize(w);
  }
  imputed += impute_count;
  upgraded_rows += upgraded;
  eliminated_rows += eliminated;
  if (impute_count > 0 || upgraded > 0 || eliminated > 0) {
    const SimTime now = env.sim().now();
    env.record_impute_event(
        kGlobalSite,
        "im.discharge imputed=" + std::to_string(impute_count) +
            " upgraded=" + std::to_string(upgraded) +
            " eliminated=" + std::to_string(eliminated),
        now, now);
  }
}

}  // namespace isomer::detail
