#include "isomer/core/local_exec.hpp"

#include "isomer/common/error.hpp"
#include "isomer/query/kernels.hpp"

namespace isomer {

namespace {

/// Resolves the local attribute index implementing global attribute
/// `global_step_name` of `global_class` for the constituent in `db`;
/// nullopt when the attribute (or the whole constituent) is missing there.
std::optional<std::size_t> local_attr_index(const ComponentDatabase& database,
                                            const GlobalClass& global_class,
                                            std::string_view global_attr) {
  const auto constituent = global_class.constituent_in(database.db());
  if (!constituent) return std::nullopt;
  const auto global_index = global_class.def().find_attribute(global_attr);
  if (!global_index) return std::nullopt;
  const auto& local_name =
      global_class.local_attr(*constituent, *global_index);
  if (!local_name) return std::nullopt;
  const ClassDef& local_class = database.schema().cls(
      global_class.constituents()[*constituent].local_class);
  return local_class.find_attribute(*local_name);
}

/// The global domain class of a global complex attribute.
const GlobalClass& global_domain(const Federation& federation,
                                 const GlobalClass& cls,
                                 std::string_view global_attr) {
  const auto index = cls.def().find_attribute(global_attr);
  expects(index.has_value(), "unknown global attribute");
  const auto* cplx = std::get_if<ComplexType>(&cls.def().attribute(*index).type);
  if (cplx == nullptr)
    throw QueryError("global attribute " + std::string(global_attr) +
                     " of class " + cls.name() +
                     " is primitive but the path continues");
  return federation.schema().cls(cplx->domain_class);
}

LocalPredOutcome eval_pred_from(const Federation& federation,
                                const ComponentDatabase& database,
                                const Object& obj, const GlobalClass& cls,
                                const Predicate& pred, std::size_t step,
                                AccessMeter* meter, FetchCache* cache) {
  const auto index = local_attr_index(database, cls, pred.path.step(step));
  if (!index)  // missing attribute: this object holds the missing data
    return LocalPredOutcome{Truth::Unknown, obj.id(), step};

  const Value& v = obj.value(*index);
  const bool last = (step + 1 == pred.path.length());

  if (last) {
    if (meter != nullptr) ++meter->comparisons;
    const Truth t = apply(pred.op, v, pred.literal);
    if (is_unknown(t)) return LocalPredOutcome{Truth::Unknown, obj.id(), step};
    return LocalPredOutcome{t, LOid{}, 0};
  }

  if (v.is_null()) return LocalPredOutcome{Truth::Unknown, obj.id(), step};

  const GlobalClass& domain =
      global_domain(federation, cls, pred.path.step(step));

  if (v.kind() == ValueKind::LocalRef) {
    const Object* next = database.deref(v, meter, cache);
    if (next == nullptr)
      return LocalPredOutcome{Truth::Unknown, obj.id(), step};
    return eval_pred_from(federation, database, *next, domain, pred, step + 1,
                          meter, cache);
  }
  if (v.kind() == ValueKind::LocalRefSet) {
    LocalPredOutcome acc{Truth::False, LOid{}, 0};
    for (const LOid member : v.as_local_ref_set()) {
      const Object* next = database.fetch(member, meter, cache);
      const LocalPredOutcome branch =
          next == nullptr
              ? LocalPredOutcome{Truth::Unknown, obj.id(), step}
              : eval_pred_from(federation, database, *next, domain, pred,
                               step + 1, meter, cache);
      if (is_true(branch.truth)) return branch;
      if (is_unknown(branch.truth) && !is_unknown(acc.truth)) acc = branch;
    }
    return acc;
  }
  throw QueryError("local value for global step " + pred.path.step(step) +
                   " is not a reference");
}

}  // namespace

LocalPredOutcome eval_global_predicate_at(const Federation& federation,
                                          DbId db, const Object& root,
                                          const GlobalClass& root_class,
                                          const Predicate& pred,
                                          std::size_t start_step,
                                          AccessMeter* meter,
                                          FetchCache* cache) {
  expects(start_step < pred.path.length(),
          "start_step beyond predicate path");
  // Rebase the predicate so the recursive walk sees a path starting at the
  // item's class (suffix evaluation for assistant checks).
  if (start_step == 0)
    return eval_pred_from(federation, federation.db(db), root, root_class,
                          pred, 0, meter, cache);
  Predicate rebased{pred.path.suffix(start_step), pred.op, pred.literal};
  LocalPredOutcome outcome =
      eval_pred_from(federation, federation.db(db), root, root_class, rebased,
                     0, meter, cache);
  if (is_unknown(outcome.truth)) outcome.step += start_step;
  return outcome;
}

Value eval_global_path(const Federation& federation, DbId db,
                       const Object& root, const GlobalClass& root_class,
                       const PathExpr& path, AccessMeter* meter,
                       FetchCache* cache) {
  const ComponentDatabase& database = federation.db(db);
  const Object* obj = &root;
  const GlobalClass* cls = &root_class;
  for (std::size_t step = 0; step < path.length(); ++step) {
    const auto index = local_attr_index(database, *cls, path.step(step));
    if (!index) return Value::null();
    const Value& v = obj->value(*index);
    const bool last = (step + 1 == path.length());
    if (last) return federation.goids().globalize(v, meter);
    if (v.is_null()) return Value::null();
    const GlobalClass& domain =
        global_domain(federation, *cls, path.step(step));
    if (v.kind() == ValueKind::LocalRef) {
      obj = database.deref(v, meter, cache);
      if (obj == nullptr) return Value::null();
      cls = &domain;
      continue;
    }
    if (v.kind() == ValueKind::LocalRefSet) {
      for (const LOid member : v.as_local_ref_set()) {
        const Object* next = database.fetch(member, meter, cache);
        if (next == nullptr) continue;
        const Value rest =
            eval_global_path(federation, db, *next, domain,
                             path.suffix(step + 1), meter, cache);
        if (!rest.is_null()) return rest;
      }
      return Value::null();
    }
    throw QueryError("local value for global step " + path.step(step) +
                     " is not a reference");
  }
  return Value::null();
}

LocalExecution run_local_query(const Federation& federation,
                               const GlobalQuery& query, DbId db,
                               const ExtentIndexes* indexes,
                               bool use_columnar) {
  const GlobalSchema& schema = federation.schema();
  const GlobalClass& range = schema.cls(query.range_class);
  const auto constituent = range.constituent_in(db);
  if (!constituent)
    throw QueryError("DB" + std::to_string(db.value()) +
                     " holds no constituent of range class " +
                     query.range_class);
  // Resolve every path against the global schema up front so malformed
  // queries fail before any simulated work.
  for (const Predicate& pred : query.predicates)
    (void)resolve_path(schema.lookup(), query.range_class, pred.path);
  for (const PathExpr& target : query.targets)
    (void)resolve_path(schema.lookup(), query.range_class, target);

  const ComponentDatabase& database = federation.db(db);
  const std::string& root_class_name =
      range.constituents()[*constituent].local_class;

  LocalExecution exec;
  exec.db = db;

  // One buffer pool for the whole local execution: every root and navigated
  // object is read from disk once.
  FetchCache cache;

  // Access path: an index over one of the conjunctive equality predicates
  // narrows the roots to matches plus the null bucket (anything else is
  // provably False on that predicate). Disjunctive queries must scan — an
  // object failing one alternative may pass another.
  std::vector<const Object*> candidates;
  bool via_index = false;
  if (indexes != nullptr && query.disjuncts.empty()) {
    for (const Predicate& pred : query.predicates) {
      if (pred.path.length() != 1 || pred.op != CompOp::Eq) continue;
      const auto lookup =
          indexes->lookup(db, pred.path.step(0), pred.literal, &exec.meter);
      if (!lookup) continue;
      via_index = true;
      candidates.reserve(lookup->size());
      for (const std::vector<LOid>* bucket :
           {lookup->matches, lookup->unknowns})
        for (const LOid id : *bucket)
          candidates.push_back(database.fetch(id, &exec.meter, &cache));
      break;
    }
  }
  if (!via_index)
    for (const Object& obj :
         database.scan(root_class_name, &exec.meter, &cache))
      candidates.push_back(&obj);
  exec.considered = candidates.size();

  // How each predicate is evaluated over this candidate set:
  //   Row         row-at-a-time walk per candidate (the reference path);
  //   Kernel      one vectorized pass over the root extent's columnar
  //               mirror, truths precomputed for all candidates;
  //   MissingRoot the step-0 attribute is schema-missing here, so every
  //               candidate is Unknown at the root — no walk at all.
  // Kernel/MissingRoot apply only to full scans (candidates == extent rows
  // in order); index executions keep the row walk.
  enum class PredMode : unsigned char { Row, Kernel, MissingRoot };
  const std::size_t n_preds = query.predicates.size();
  std::vector<PredMode> modes(n_preds, PredMode::Row);
  std::vector<std::vector<Truth>> kernel_truths(n_preds);
  if (use_columnar && !via_index && !candidates.empty()) {
    const Extent& root_extent = database.extent(root_class_name);
    for (std::size_t p = 0; p < n_preds; ++p) {
      const Predicate& pred = query.predicates[p];
      const auto attr = local_attr_index(database, range, pred.path.step(0));
      if (!attr) {
        // The row path returns Unknown(root, step 0) per candidate with no
        // comparison, then charges one goid probe for the unknown holder —
        // surviving or not. Same totals, charged in bulk.
        modes[p] = PredMode::MissingRoot;
        exec.meter.table_probes += candidates.size();
        continue;
      }
      if (pred.path.length() != 1) continue;  // navigation: row walk
      const ColumnarExtent::Column& col =
          root_extent.columnar().column(*attr);
      if (!kernel_applicable(col.kind, pred.op, pred.literal)) continue;
      modes[p] = PredMode::Kernel;
      kernel_truths[p].resize(candidates.size());
      eval_predicate_column(col, candidates.size(), pred.op, pred.literal,
                            kernel_truths[p].data());
      // Row-path charges for a present last-step attribute: one comparison
      // per candidate (nulls included — apply() still runs), one goid probe
      // per Unknown outcome whether or not the candidate survives.
      exec.meter.comparisons += candidates.size();
      exec.meter.table_probes +=
          count_truth(kernel_truths[p], Truth::Unknown);
    }
  }

  // Per-candidate scratch, reused across iterations. RowEval's unsolved-site
  // fields are only read when truth is Unknown, and are always freshly
  // written in that case.
  struct RowEval {
    Truth truth = Truth::Unknown;
    GOid item;
    std::size_t step = 0;
    bool root_level = false;
  };
  std::vector<RowEval> evals(n_preds);
  std::vector<Truth> truths(n_preds);

  for (std::size_t r = 0; r < candidates.size(); ++r) {
    const Object& obj = *candidates[r];

    // Every predicate is evaluated (no short-circuiting): comparison counts
    // stay deterministic, and under disjunctive queries a False conjunct
    // does not decide the object's fate by itself.
    for (std::size_t p = 0; p < n_preds; ++p) {
      RowEval& e = evals[p];
      if (modes[p] == PredMode::Row) {
        const LocalPredOutcome outcome = eval_global_predicate_at(
            federation, db, obj, range, query.predicates[p], 0, &exec.meter,
            &cache);
        e.truth = outcome.truth;
        if (is_unknown(outcome.truth)) {
          const auto item_entity =
              federation.goids().goid_of(outcome.holder, &exec.meter);
          ensures(item_entity.has_value(),
                  "every constituent object is GOid-mapped");
          e.item = *item_entity;
          e.step = outcome.step;
          e.root_level = (outcome.holder == obj.id() && outcome.step == 0);
        }
      } else {
        e.truth = modes[p] == PredMode::Kernel ? kernel_truths[p][r]
                                               : Truth::Unknown;
        if (is_unknown(e.truth)) {
          // The holder is the root itself at step 0 (bulk-charged above);
          // its entity equals the row's, resolved below only if it survives.
          e.step = 0;
          e.root_level = true;
        }
      }
      truths[p] = e.truth;
    }
    // The object is eliminated locally when the whole matching formula is
    // provably False here (for conjunctive queries: any False conjunct).
    if (is_false(query.combine(truths))) continue;

    const auto entity = federation.goids().goid_of(obj.id(), &exec.meter);
    ensures(entity.has_value(), "every constituent object is GOid-mapped");

    LocalRow row;
    row.root = obj.id();
    row.entity = *entity;
    row.preds.reserve(n_preds);
    for (std::size_t p = 0; p < n_preds; ++p) {
      const RowEval& e = evals[p];
      PredStatus status;
      status.truth = e.truth;
      if (is_unknown(e.truth)) {
        status.item = modes[p] == PredMode::Row ? e.item : *entity;
        status.step = e.step;
        status.root_level = e.root_level;
      }
      row.preds.push_back(status);
    }

    row.targets.reserve(query.targets.size());
    for (const PathExpr& target : query.targets)
      row.targets.push_back(eval_global_path(federation, db, obj, range,
                                             target, &exec.meter, &cache));

    exec.rows.push_back(std::move(row));
  }
  return exec;
}

}  // namespace isomer
