// Local query execution (phase P at a component database).
//
// A component database evaluates the *global* query's predicates against its
// own objects as far as its schema and data allow. Evaluation is
// translation-aware: every step of a global path is mapped to the local
// attribute through the global schema's bindings; a step the constituent
// class does not define (missing attribute), a null value, or a dangling
// reference makes the predicate Unknown, and the evaluator reports the
// *unsolved site*: the object holding the missing data (the paper's unsolved
// item when nested) and the global path step.
//
// This is exactly equivalent to evaluating the derived LocalQuery's local
// predicates plus marking its schema-unsolved predicates per object — the
// LocalQuery form exists for the protocol and the cost model, this evaluator
// for the logic — and both views are exercised against each other in tests.
#pragma once

#include <optional>
#include <vector>

#include "isomer/federation/federation.hpp"
#include "isomer/federation/indexes.hpp"
#include "isomer/query/query.hpp"

namespace isomer {

/// Outcome of evaluating one global predicate on one local object.
struct LocalPredOutcome {
  Truth truth = Truth::Unknown;
  /// Valid iff truth == Unknown: the object holding the missing data and
  /// the global path step that could not be evaluated.
  LOid holder{};
  std::size_t step = 0;
};

/// Evaluates `pred` (global names), starting at `start_step`, on `root`
/// whose class is a constituent of global class `root_class`, entirely
/// within database `db`. Charges fetches/comparisons to `meter`.
[[nodiscard]] LocalPredOutcome eval_global_predicate_at(
    const Federation& federation, DbId db, const Object& root,
    const GlobalClass& root_class, const Predicate& pred,
    std::size_t start_step, AccessMeter* meter = nullptr,
    FetchCache* cache = nullptr);

/// Evaluates a global-name target path on `root` within `db`; returns the
/// value in *global* form (references globalized), or null when missing.
[[nodiscard]] Value eval_global_path(const Federation& federation, DbId db,
                                     const Object& root,
                                     const GlobalClass& root_class,
                                     const PathExpr& path,
                                     AccessMeter* meter = nullptr,
                                     FetchCache* cache = nullptr);

/// Per-predicate status carried by a local result row. For conjunctive
/// queries False never appears — objects failing any conjunct are
/// eliminated locally and never shipped (the localized approaches' whole
/// data reduction). Under disjunctive queries a False conjunct can travel
/// in a surviving row (another alternative may still hold).
struct PredStatus {
  Truth truth = Truth::Unknown;
  /// Valid iff truth == Unknown:
  GOid item;             ///< entity of the object holding the missing data
  std::size_t step = 0;  ///< global path step that was unsolved
  /// True when the holder is the row's root object at step 0 — such sites
  /// are certified through the other databases' local results rather than
  /// through explicit assistant checks.
  bool root_level = false;
};

/// One local result row (a local certain or maybe result).
struct LocalRow {
  LOid root;
  GOid entity;
  std::vector<Value> targets;      ///< aligned with GlobalQuery::targets
  std::vector<PredStatus> preds;   ///< aligned with GlobalQuery::predicates

  [[nodiscard]] bool locally_certain() const noexcept {
    for (const PredStatus& status : preds)
      if (!is_true(status.truth)) return false;
    return true;
  }
};

/// The outcome of running the local query at one component database.
struct LocalExecution {
  DbId db{};
  std::vector<LocalRow> rows;
  AccessMeter meter;  ///< all local physical work (scan, fetches, compares)
  /// Candidate root objects evaluated (extent size, or index candidates):
  /// with rows.size(), the local data reduction the trace layer reports.
  std::uint64_t considered = 0;
};

/// Runs the global query locally at `db` (which must hold a constituent of
/// the range class): evaluates every predicate per root object, drops False
/// objects, and builds rows with globalized target values and unsolved
/// sites. The root extent is scanned unless `indexes` covers one of the
/// query's conjunctive equality predicates here, in which case only the
/// matching + null-bucket candidates are fetched (identical rows, less
/// disk; see federation/indexes.hpp for why the null bucket is required).
///
/// With `use_columnar` (the default), full-scan executions evaluate simple
/// single-step predicates through the extent's columnar mirror and the
/// vectorized kernels (query/kernels.hpp); predicates the kernels cannot
/// mirror exactly — navigation paths, mixed-kind columns — take the
/// row-at-a-time walk per object. Rows, meter counts and cache evolution
/// are bitwise identical either way; `use_columnar = false` forces the row
/// walk everywhere and exists as the parity suite's reference.
[[nodiscard]] LocalExecution run_local_query(const Federation& federation,
                                             const GlobalQuery& query,
                                             DbId db,
                                             const ExtentIndexes* indexes =
                                                 nullptr,
                                             bool use_columnar = true);

}  // namespace isomer
