// Plan execution: composing the phase operators (operators.hpp).
//
// Pure plans delegate to the monolithic compositions in ca.cpp / bl.cpp and
// are bitwise identical to the pre-refactor executors. Hybrid plans walk
// ExecPlan::sites and launch one per-home pipeline each:
//
//   Localized home:  ShipLocalQuery -> LocalFilter -> AssistantLookup
//                    -> [maybe_switch_to_central] -> ShipRows
//   Central home:    CA_G1 request -> RetrieveExtent -> HY_G1 evaluate
//                    (global, phase P) -> HY_G2 assistant lookup (global,
//                    phase O) -> integrate
//
// Both feed the same GlobalState; Certify (G2, phase I) fires when every
// home's rows and every announced verdict have arrived — the global site
// cannot tell which path delivered a home's evidence. The switch rule and
// the cost model behind it are documented in docs/PLANNING.md.
#include <memory>

#include "isomer/core/operators.hpp"
#include "isomer/federation/materializer.hpp"
#include "isomer/schema/translate.hpp"

namespace isomer::detail {

namespace {

/// HY_G1: evaluate the shipped extent at the global site (phase P). The
/// extent sits in memory after the transfer, so the evaluation's page reads
/// cost nothing — comparisons and mapping probes are CPU, the raw fetch
/// counts enter the work aggregate like CA's materialization does.
void central_evaluate(const std::shared_ptr<OperatorContext>& ctx,
                      const std::shared_ptr<HomeRun>& run,
                      Simulator::Callback then) {
  ExecEnv& env = ctx->env;
  run->exec = run_local_query(env.fed(), env.query(), run->home,
                              env.options().indexes, env.options().columnar);
  if (run->decision != nullptr) {
    run->decision->executed = SitePath::Central;
    run->decision->observed_rows_bytes =
        static_cast<double>(rows_wire_bytes(env.costs(), run->exec.rows));
    run->decision->rows = run->exec.rows.size();
  }
  AccessMeter cpu_only;
  cpu_only.comparisons =
      run->exec.meter.comparisons + run->exec.meter.table_probes;
  AccessMeter rest = run->exec.meter;
  rest.comparisons = 0;
  rest.table_probes = 0;
  env.aggregate(rest);
  SpanCounts counts;
  counts.objects_in = run->exec.considered;
  counts.objects_out = run->exec.rows.size();
  env.charge(kGlobalSite, cpu_only, Phase::P, "HY_G1 evaluate shipped extent",
             counts, std::move(then));
}

/// HY_G2 + integrate: plan checks for the evaluated rows at the global site
/// (its replicated GOid tables answer the probes), dispatch them, and fold
/// the home's evidence into the global state. Signature verdicts are
/// produced right here at the global site, so they are announced and
/// received in the same breath — no wire.
void central_lookup_and_integrate(const std::shared_ptr<OperatorContext>& ctx,
                                  const std::shared_ptr<HomeRun>& run) {
  ExecEnv& env = ctx->env;
  std::vector<UnsolvedItem> items = unsolved_items_of_rows(run->exec.rows);
  const auto items_in = static_cast<std::uint64_t>(items.size());
  auto plan = std::make_shared<CheckPlan>(plan_checks(
      env.fed(), env.query(), run->home, items, ctx->signatures));
  SpanCounts counts;
  counts.objects_in = items_in;
  counts.objects_out = plan->task_count();
  env.charge(kGlobalSite, plan->meter, Phase::O, "HY_G2 assistant lookup",
             counts, [ctx, run, plan] {
               ctx->protocol->dispatch(kGlobalSite, *plan);
               GlobalState& state = *ctx->state;
               state.verdicts_announced += plan->local_verdicts.size();
               state.verdicts_received += plan->local_verdicts.size();
               state.verdicts.insert(state.verdicts.end(),
                                     plan->local_verdicts.begin(),
                                     plan->local_verdicts.end());
               state.locals.push_back(std::move(run->exec));
               --state.homes_pending;
               maybe_certify(ctx->env, ctx->state);
             });
}

}  // namespace

void central_home(const std::shared_ptr<OperatorContext>& ctx,
                  const std::shared_ptr<HomeRun>& run) {
  ExecEnv& env = ctx->env;
  // Either leg abandoned: the home contributes nothing — certification
  // degrades from whatever the live homes deliver.
  const ExecEnv::FailHandler give_up = [ctx](SiteIndex) {
    --ctx->state->homes_pending;
    maybe_certify(ctx->env, ctx->state);
  };
  env.ship_record(
      kGlobalSite, run->site,
      env.batching() ? Bytes{0} : env.costs().request_bytes(0),
      "CA_G1 request",
      [ctx, run, give_up] {
        retrieve_and_ship_extent(
            ctx->env, run->home, ctx->classes, ctx->involved, "CA_C1 retrieve",
            "CA_C1 objects", /*cached=*/nullptr,
            [ctx, run] {
              central_evaluate(ctx, run, [ctx, run] {
                central_lookup_and_integrate(ctx, run);
              });
            },
            give_up);
      },
      give_up);
}

bool maybe_switch_to_central(const std::shared_ptr<OperatorContext>& ctx,
                             const std::shared_ptr<HomeRun>& run,
                             CheckPlan& lazy_plan) {
  if (run->assignment == nullptr) return false;  // pure plan: never switches
  ExecEnv& env = ctx->env;
  const double observed =
      static_cast<double>(rows_wire_bytes(env.costs(), run->exec.rows));
  if (run->decision != nullptr) {
    run->decision->observed_rows_bytes = observed;
    run->decision->rows = run->exec.rows.size();
  }
  // The switch rule (docs/PLANNING.md): re-decide only when the observed
  // row payload overshoots the estimate by the configured factor AND the
  // exact extent payload is by then the cheaper shipment. Check traffic is
  // path-independent, so rows-vs-extent decides alone.
  const double factor = ctx->plan.switch_factor;
  if (factor <= 0) return false;
  if (observed < factor * run->assignment->est_rows_bytes) return false;
  if (run->assignment->extent_bytes >= observed) return false;

  env.record_plan_event(run->site, "plan.switch", env.sim().now(),
                        env.sim().now());
  if (run->decision != nullptr) {
    run->decision->switched = true;
    run->decision->executed = SitePath::Central;
  }
  // The checks are already planned (and their lookup charged) at the home
  // site — dispatch them from there; only the row shipment is replaced.
  ctx->protocol->dispatch(run->site, lazy_plan);
  // Signature verdicts that would have ridden with the rows ride inside the
  // extent frame instead (their bytes are noise next to the extent).
  auto local_verdicts = std::make_shared<std::vector<CheckVerdict>>(
      run->eager_plan.local_verdicts);
  local_verdicts->insert(local_verdicts->end(),
                         lazy_plan.local_verdicts.begin(),
                         lazy_plan.local_verdicts.end());
  ctx->state->verdicts_announced += local_verdicts->size();
  retrieve_and_ship_extent(
      env, run->home, ctx->classes, ctx->involved, "HY_C1 retrieve (switch)",
      "HY_C1 extent (switch)",
      /*cached=*/&run->exec.meter,  // evaluation left the pages in memory
      [ctx, run, local_verdicts] {
        GlobalState& state = *ctx->state;
        state.verdicts_received += local_verdicts->size();
        state.verdicts.insert(state.verdicts.end(), local_verdicts->begin(),
                              local_verdicts->end());
        central_evaluate(ctx, run, [ctx, run] {
          ctx->state->locals.push_back(std::move(run->exec));
          --ctx->state->homes_pending;
          maybe_certify(ctx->env, ctx->state);
        });
      },
      [ctx, n = local_verdicts->size()](SiteIndex) {
        ctx->state->verdicts_received += n;
        --ctx->state->homes_pending;
        maybe_certify(ctx->env, ctx->state);
      });
  return true;
}

void launch_plan(ExecEnv& env, const ExecPlan& plan,
                 std::shared_ptr<PlanTelemetry> telemetry,
                 std::function<void(QueryResult, SimTime)> on_done) {
  if (!plan.hybrid) {
    // Pure compositions — bitwise identical to the pre-refactor executors.
    if (plan.label == StrategyKind::CA)
      launch_ca(env, std::move(on_done));
    else
      launch_localized(env, plan.use_signatures, plan.eager,
                       plan.label == StrategyKind::IM, std::move(on_done));
    return;
  }

  const Federation& federation = env.fed();
  const GlobalQuery& query = env.query();
  const StrategyOptions& options = env.options();
  const std::vector<DbId> homes =
      local_query_sites(federation.schema(), query);
  if (homes.empty())
    throw QueryError("no component database holds a constituent of " +
                     query.range_class);

  auto state = std::make_shared<GlobalState>();
  state->homes_pending = homes.size();
  state->on_done = std::move(on_done);

  const SignatureIndex* signatures = nullptr;
  if (plan.use_signatures) {
    signatures = options.signatures;
    if (signatures == nullptr) {
      state->owned_signatures =
          std::make_unique<SignatureIndex>(SignatureIndex::build(federation));
      signatures = state->owned_signatures.get();
    }
  }

  auto ctx = std::make_shared<OperatorContext>(env, plan);
  ctx->state = state;
  ctx->signatures = signatures;
  ctx->protocol = std::make_shared<CheckProtocol>(env, state, signatures);
  ctx->telemetry = telemetry != nullptr ? std::move(telemetry)
                                        : std::make_shared<PlanTelemetry>();
  ctx->classes = classes_involved(federation.schema(), query);
  ctx->involved = involved_attributes(federation.schema(), query);

  // Every home site needs exactly one assignment (assignments for sites
  // that are not homes would silently execute nothing — reject them).
  expects(ctx->plan.sites.size() == homes.size(),
          "hybrid plan must assign every home site exactly once");
  ctx->telemetry->decisions.clear();
  ctx->telemetry->decisions.reserve(homes.size());
  std::vector<const SiteAssignment*> assignments;
  assignments.reserve(homes.size());
  for (const DbId home : homes) {
    const SiteAssignment* found = nullptr;
    for (const SiteAssignment& site : ctx->plan.sites)
      if (site.db == home) {
        found = &site;
        break;
      }
    expects(found != nullptr, "hybrid plan is missing a home-site assignment");
    assignments.push_back(found);
    SiteDecision decision;
    decision.db = home;
    decision.planned = found->path;
    decision.executed = found->path;
    decision.est_rows_bytes = found->est_rows_bytes;
    decision.extent_bytes = found->extent_bytes;
    ctx->telemetry->decisions.push_back(decision);
  }
  for (std::size_t i = 0; i < homes.size(); ++i) {
    auto run = std::make_shared<HomeRun>();
    run->home = homes[i];
    run->site = env.site_of(homes[i]);
    run->decision = &ctx->telemetry->decisions[i];
    run->assignment = assignments[i];
    env.record_plan_event(
        run->site,
        "plan.site " + std::string(to_string(run->assignment->path)),
        env.sim().now(), env.sim().now());
    if (run->assignment->path == SitePath::Central)
      central_home(ctx, run);
    else
      ship_local_query(ctx, run);
  }
}

StrategyReport execute_ca(const Federation& federation,
                          const GlobalQuery& query,
                          const StrategyOptions& options) {
  return execute_plan(federation, query, ExecPlan::pure(StrategyKind::CA),
                      options)
      .report;
}

StrategyReport execute_bl(const Federation& federation,
                          const GlobalQuery& query,
                          const StrategyOptions& options,
                          bool use_signatures) {
  return execute_plan(
             federation, query,
             ExecPlan::pure(use_signatures ? StrategyKind::BLS
                                           : StrategyKind::BL),
             options)
      .report;
}

StrategyReport execute_pl(const Federation& federation,
                          const GlobalQuery& query,
                          const StrategyOptions& options,
                          bool use_signatures) {
  return execute_plan(
             federation, query,
             ExecPlan::pure(use_signatures ? StrategyKind::PLS
                                           : StrategyKind::PL),
             options)
      .report;
}

}  // namespace isomer::detail

namespace isomer {

PlanReport execute_plan(const Federation& federation, const GlobalQuery& query,
                        const ExecPlan& plan, const StrategyOptions& options) {
  detail::ExecEnv env(federation, query, options);
  env.set_span_context(plan.hybrid ? std::string_view{"HY"}
                                   : to_string(plan.label));
  auto telemetry = std::make_shared<PlanTelemetry>();
  QueryResult result;
  SimTime response = 0;
  detail::launch_plan(env, plan, telemetry,
                      [&result, &response](QueryResult r, SimTime at) {
                        result = std::move(r);
                        response = at;
                      });
  env.sim().run();
  ensures(response > 0, "plan execution did not complete");
  PlanReport out;
  out.report = env.finish(std::move(result), response);
  out.telemetry = std::move(*telemetry);
  return out;
}

}  // namespace isomer
