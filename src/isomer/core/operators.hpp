// Composable phase operators — the execution engine behind every plan.
//
// PR 7 decomposed the monolithic CA/BL/PL drivers into operators that each
// implement one protocol step of the paper and chain through simulator
// callbacks:
//
//   ShipLocalQuery   G1      ship the derived local query to a home site
//   EagerLookup      PL_C1   phase O over all roots (PL only)
//   LocalFilter      C1      phase P: evaluate the local predicates
//   AssistantLookup  C2      lazy phase O: plan checks for unsolved items
//   ShipRows         C2      ship surviving rows (+ signature verdicts)
//   SemijoinCheck    C2/C3   CheckProtocol: dispatch requests, serve them
//   Certify          G2      phase I: pool evidence into the answer
//   RetrieveExtent   CA_C1   scan + project + ship an extent (Central path)
//   Materialize      CA_G2   outerjoin the shipped extents (pure CA)
//
// All operators share one OperatorContext carrying the ExecEnv (span /
// meter / fault / batching plumbing from exec_common.hpp), the plan being
// executed, the global-site completion state and the checking protocol.
// launch_plan composes them: pure plans reproduce the original executors'
// simulator-event sequence exactly (the operator refactor is bitwise
// invisible — tests/test_operator_parity.cpp), hybrid plans mix Localized
// and Central homes per ExecPlan::sites and may switch a home mid-flight
// (docs/PLANNING.md).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "isomer/core/exec_common.hpp"
#include "isomer/core/plan.hpp"

namespace isomer {
class CertCache;
}  // namespace isomer

namespace isomer::detail {

/// One run's view of the cross-query certificate cache
/// (core/cert_cache.hpp); owned by the GlobalState, created only when
/// StrategyOptions::cert_cache is set — a null GlobalState::certs takes the
/// exact pre-cache code path.
///
/// A certificate is keyed by (item GOid, signature) where the signature
/// mixes the predicate's canonical print, the unsolved step AND the
/// dispatching home database: plan_checks skips the home's own isomer, so
/// the evidence pool for an atom depends on who asked. Its value is the
/// pooled verdict (False dominates, else Kleene-or) of *all* evidence the
/// first-round dispatch of that atom produced — shipped checks, their
/// cascaded follow-ups, and signature-screen verdicts alike. That whole
/// stream is only attributable to one key when exactly one (home, step)
/// pair dispatched the (item, predicate) atom and none of it was itself
/// answered from the cache, so writeback() skips multi-source and
/// cache-tainted atoms; degraded runs never write back at all (abandoned
/// shipments make the pool partial evidence).
struct CertWriteback {
  CertCache* cache = nullptr;
  /// Federation::epoch() captured once at launch; every lookup and insert
  /// carries it, so a mid-stream extent mutation (epoch bump) turns the
  /// whole cache stale without any scanning.
  std::uint64_t epoch = 0;
  /// predicate_signature() per query predicate, computed once at launch.
  std::vector<std::uint64_t> signatures;
  /// (item, predicate) -> the (home, step) first-round dispatches that
  /// actually shipped (cache misses). Writeback only for single-element
  /// sets: otherwise the pooled evidence mixes sources.
  std::map<std::pair<GOid, std::size_t>,
           std::set<std::pair<DbId, std::size_t>>>
      dispatched;
  /// Atoms any part of whose evidence was synthesized from the cache this
  /// run — never written back (would launder a stale-keyed value).
  std::set<std::pair<GOid, std::size_t>> tainted;
  std::uint64_t hits = 0;    ///< first-round task groups answered locally
  std::uint64_t misses = 0;  ///< first-round task groups shipped

  [[nodiscard]] std::uint64_t key_signature(DbId home, std::size_t predicate,
                                            std::size_t step) const noexcept;

  /// The dispatch-side cache consultation: removes every first-round task
  /// whose atom is cached at the current epoch from `plan` (synthesizing a
  /// CheckVerdict into plan.local_verdicts — it rides to the global site on
  /// whatever message carries the plan's screen verdicts) and records the
  /// shipped atoms for writeback. Emits cert.hit/cert.miss markers.
  void filter(ExecEnv& env, SiteIndex from, DbId home, CheckPlan& plan);

  /// The certify-side insertion: pools `verdicts` per (item, predicate)
  /// with certify()'s merge rule and stores each cleanly-attributable
  /// atom's pool under its recorded key. Call only on non-degraded runs.
  void writeback(const std::vector<CheckVerdict>& verdicts);
};

/// One run's imputation plumbing (the IM strategy, core/im.cpp); owned by
/// the GlobalState, created only by launch_localized(impute = true) — a
/// null GlobalState::impute takes the exact pre-imputation code path.
///
/// The filter is the dispatch-side twin of CertWriteback::filter: it
/// consults StrategyOptions::impute once per distinct first-round atom
/// (item, predicate, step), strips every task whose estimate is upgradable
/// with confidence >= threshold, and synthesizes the estimated CheckVerdict
/// into plan.local_verdicts (riding to the global site on whatever message
/// carries the plan's screen verdicts — no check request, no check
/// response). Below-threshold and non-upgradable atoms stay on the normal
/// residual-condition path, which is how IM composes with --certcache and
/// --faults: the certificate filter runs first (exact knowledge beats an
/// estimate), and atoms the model answers never touch the wire, so a dead
/// assistant site cannot stop them.
struct ImputeState {
  const ImputeOracle* oracle = nullptr;
  double threshold = 1.0;
  bool mar = false;
  std::uint64_t imputed = 0;   ///< atoms answered from the model
  std::uint64_t declined = 0;  ///< atoms consulted but shipped anyway
  /// (item, predicate) -> the synthesized verdict's confidence (the least
  /// confident estimate when several steps imputed the same atom);
  /// certify() folds these into ResultRow::confidence.
  std::map<std::pair<GOid, std::size_t>, double> confidences;

  std::uint64_t upgraded_rows = 0;    ///< maybe rows discharge() made certain
  std::uint64_t eliminated_rows = 0;  ///< maybe rows discharge() refuted

  /// The dispatch-side model consultation (core/im.cpp). `certs` (may be
  /// null) is the run's certificate plumbing: imputed atoms are tainted
  /// there so an *estimated* verdict is never written back as a
  /// certificate. Emits im.impute/<n> and im.decline/<n> markers.
  void filter(ExecEnv& env, SiteIndex from, DbId home, CheckPlan& plan,
              CertWriteback* certs);

  /// The certify-side residual discharge (core/im.cpp): the dispatch filter
  /// can only answer atoms that generate check traffic, but a maybe row's
  /// residual also carries root-level atoms (step 0 — decided by the row
  /// pool, which decides nothing when every copy is a gap) and atoms whose
  /// assistants never answered (dead sites, declined estimates). After
  /// certify() builds the rows, this pass consults the model for each
  /// distinct residual atom — the gap-kind evidence comes from the lowest
  /// home database whose local row left it Unknown — and substitutes every
  /// confident True/False estimate into the row's condition
  /// (substitute_atom: exact leaves, root-level included). A row whose
  /// condition thereby decides commits: True upgrades it to certain at the
  /// product of the consumed estimates' confidences, False eliminates it.
  /// Undecided rows are left exactly as certified — no partial estimates
  /// leak into residuals. Emits an im.discharge marker when anything moved.
  void discharge(ExecEnv& env, const std::vector<LocalExecution>& locals,
                 QueryResult& result);
};

/// Global-site completion accounting shared by every plan with localized
/// homes: the run finishes when all home results have arrived and every
/// announced check verdict has arrived (verdict announcements travel with
/// the dispatching home's bookkeeping, so arrival order does not matter).
struct GlobalState {
  std::size_t homes_pending = 0;
  std::uint64_t verdicts_announced = 0;
  std::uint64_t verdicts_received = 0;
  std::vector<LocalExecution> locals;
  std::vector<CheckVerdict> verdicts;
  bool done = false;
  QueryResult result;
  SimTime response = 0;
  std::function<void(QueryResult, SimTime)> on_done;
  /// Keeps an executor-built signature index alive through the run.
  std::unique_ptr<SignatureIndex> owned_signatures;
  /// Certificate-cache plumbing; null unless StrategyOptions::cert_cache.
  std::unique_ptr<CertWriteback> certs;
  /// Imputation plumbing; null unless the plan is the IM strategy.
  std::unique_ptr<ImputeState> impute;

  [[nodiscard]] bool complete() const noexcept {
    return homes_pending == 0 && verdicts_received == verdicts_announced;
  }
};

/// Certify operator (G2, phase I): fires once complete() holds.
void maybe_certify(ExecEnv& env, const std::shared_ptr<GlobalState>& state);

/// Saturating meter difference, used to model a site's memory cache: pages
/// read by an earlier pass are not re-read by a later one (PL's eager phase
/// O before phase P; a mid-flight switch shipping the extent it just
/// evaluated).
[[nodiscard]] AccessMeter meter_minus(const AccessMeter& a,
                                      const AccessMeter& b);

/// SemijoinCheck operator — the checking protocol. Dispatching a plan ships
/// one request per target database; a served request may cascade a
/// follow-up plan of its own (CheckOutcome::follow_up), so the two
/// operations are mutually recursive. Shared by every home of a plan, from
/// whichever site plans the checks (a Localized home, or the global site
/// for a Central home).
struct CheckProtocol : std::enable_shared_from_this<CheckProtocol> {
  ExecEnv& env;
  std::shared_ptr<GlobalState> state;
  const SignatureIndex* signatures;

  CheckProtocol(ExecEnv& e, std::shared_ptr<GlobalState> s,
                const SignatureIndex* sig)
      : env(e), state(std::move(s)), signatures(sig) {}

  /// Ships a plan's check requests and announces their future verdicts.
  /// The plan's local (signature) verdicts are NOT handled here — the
  /// caller attaches them to whatever message carries them. `home` marks a
  /// first-round dispatch (AssistantLookup / EagerLookup) with the planning
  /// home database: only those consult the certificate cache, which may
  /// strip answered tasks from `plan` and append synthesized verdicts to
  /// plan.local_verdicts (hence the mutable plan). Cascaded follow-ups and
  /// hybrid dispatches pass nullptr and ship unchanged.
  void dispatch(SiteIndex from, CheckPlan& plan, const DbId* home = nullptr);

  /// C3: serve a check request at its target database.
  void serve(DbId target, const std::vector<CheckTask>& tasks);
};

/// Shared read-mostly context threaded through every operator of one plan
/// execution.
struct OperatorContext {
  ExecEnv& env;
  ExecPlan plan;
  std::shared_ptr<GlobalState> state;
  std::shared_ptr<CheckProtocol> protocol;
  const SignatureIndex* signatures = nullptr;
  /// Hybrid only: where the decisions land (indexed like plan.sites).
  std::shared_ptr<PlanTelemetry> telemetry;
  /// Hybrid only: the centralized projection catalog shared by Central
  /// homes and mid-flight switches (classes_involved / involved_attributes).
  std::vector<std::string> classes;
  std::map<std::string, std::set<std::size_t>> involved;

  OperatorContext(ExecEnv& e, ExecPlan p) : env(e), plan(std::move(p)) {}
};

/// One home site's pipeline state, owned by shared_ptr so the chained
/// operator callbacks keep it alive.
struct HomeRun {
  DbId home{};
  SiteIndex site{};
  LocalExecution exec;
  CheckPlan eager_plan;             ///< PL only
  std::vector<UnsolvedItem> eager;  ///< PL only
  AccessMeter eager_meter;          ///< PL only: scan + walks + probes
  SiteDecision* decision = nullptr;          ///< hybrid telemetry slot
  const SiteAssignment* assignment = nullptr;  ///< hybrid plan row
};

// ---- Localized-path operators (bl.cpp) ----
void ship_local_query(const std::shared_ptr<OperatorContext>& ctx,
                      const std::shared_ptr<HomeRun>& run);
void eager_lookup(const std::shared_ptr<OperatorContext>& ctx,
                  const std::shared_ptr<HomeRun>& run);
void local_filter(const std::shared_ptr<OperatorContext>& ctx,
                  const std::shared_ptr<HomeRun>& run);
void assistant_lookup(const std::shared_ptr<OperatorContext>& ctx,
                      const std::shared_ptr<HomeRun>& run);
void ship_rows(const std::shared_ptr<OperatorContext>& ctx,
               const std::shared_ptr<HomeRun>& run,
               const CheckPlan& lazy_plan);

// ---- Central-path operators (ca.cpp) ----
/// RetrieveExtent + ShipExtent (CA_C1): scan + project the involved
/// constituent extents at `db`'s site (Phase::Setup) and ship the
/// projection to the global site. `cached` (optional) credits pages the
/// site already read — a mid-flight switch ships the extent out of the
/// evaluation's buffer cache, like PL's eager-phase treatment.
void retrieve_and_ship_extent(
    ExecEnv& env, DbId db, const std::vector<std::string>& classes,
    const std::map<std::string, std::set<std::size_t>>& involved,
    const std::string& retrieve_step, const std::string& ship_step,
    const AccessMeter* cached, Simulator::Callback arrived,
    ExecEnv::FailHandler on_fail);

// ---- Hybrid-only operators (operators.cpp) ----
/// Runs one home on the Central path: request + RetrieveExtent at the site,
/// then evaluation / assistant lookup at the global site, feeding the same
/// GlobalState the Localized homes feed.
void central_home(const std::shared_ptr<OperatorContext>& ctx,
                  const std::shared_ptr<HomeRun>& run);

/// The mid-flight switch point, tested right after AssistantLookup on a
/// hybrid Localized home. Returns true when the home switched to the
/// Central path (the caller must not ship rows); false continues BL/PL
/// unchanged. Pure plans (no assignment) return false without any work.
bool maybe_switch_to_central(const std::shared_ptr<OperatorContext>& ctx,
                             const std::shared_ptr<HomeRun>& run,
                             CheckPlan& lazy_plan);

/// Sets up one plan execution on `env`'s simulator without running it.
/// Pure plans route to the monolithic compositions (launch_ca /
/// launch_localized) and are bitwise identical to the pre-refactor
/// executors; hybrid plans compose per-site pipelines. `telemetry` (may be
/// null) receives per-site decisions for hybrid plans.
void launch_plan(ExecEnv& env, const ExecPlan& plan,
                 std::shared_ptr<PlanTelemetry> telemetry,
                 std::function<void(QueryResult, SimTime)> on_done);

}  // namespace isomer::detail

namespace isomer {

/// A plan execution's outcome: the usual strategy report plus what the
/// hybrid machinery decided per site (telemetry is empty for pure plans).
struct PlanReport {
  StrategyReport report;
  PlanTelemetry telemetry;
};

/// Runs `plan` over `federation` on a fresh simulator — the plan-level
/// sibling of execute_strategy (which is now exactly
/// execute_plan(ExecPlan::pure(kind)).report).
[[nodiscard]] PlanReport execute_plan(const Federation& federation,
                                      const GlobalQuery& query,
                                      const ExecPlan& plan,
                                      const StrategyOptions& options = {});

}  // namespace isomer
