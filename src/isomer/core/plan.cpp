#include "isomer/core/plan.hpp"

#include <sstream>

namespace isomer {

std::string_view to_string(SitePath path) noexcept {
  switch (path) {
    case SitePath::Localized:
      return "localized";
    case SitePath::Central:
      return "central";
  }
  return "localized";
}

ExecPlan ExecPlan::pure(StrategyKind kind) noexcept {
  ExecPlan plan;
  plan.label = kind;
  plan.eager = kind == StrategyKind::PL || kind == StrategyKind::PLS;
  plan.use_signatures =
      kind == StrategyKind::BLS || kind == StrategyKind::PLS;
  return plan;
}

std::string ExecPlan::to_text() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  if (!hybrid) {
    os << "plan pure " << to_string(label) << "\n";
    return os.str();
  }
  os << "plan hybrid";
  if (use_signatures) os << " +signatures";
  if (switch_factor > 0) {
    os.precision(2);
    os << " (switch at x" << switch_factor << ")";
    os.precision(1);
  }
  os << "\n";
  for (const SiteAssignment& site : sites)
    os << "  DB" << site.db.value() << "  " << to_string(site.path)
       << "  rows~" << site.est_rows_bytes / 1e3 << "KB  extent "
       << site.extent_bytes / 1e3 << "KB\n";
  return os.str();
}

std::uint64_t PlanTelemetry::switches() const noexcept {
  std::uint64_t count = 0;
  for (const SiteDecision& decision : decisions)
    if (decision.switched) ++count;
  return count;
}

}  // namespace isomer
