// Executable plans over the composable phase operators (core/operators.hpp).
//
// The paper picks one of three fixed strategies per query, up front. A plan
// generalizes that choice to *per home site*: every component database
// holding a constituent of the range class is assigned either the Localized
// path (evaluate the local predicates at the site, ship the surviving rows —
// BL's C-steps) or the Central path (ship the projected extents, let the
// global site evaluate — CA's C-steps), and the global site certifies
// whatever mixture arrives. Pure plans reproduce the paper's CA/BL/PL (and
// the signature variants) bit for bit; mixed plans are the hybrid
// strategies the adaptive planner (analytic/planner.hpp) emits, surfaced in
// traces as Phase::Plan spans and in EXPLAIN via ExecPlan::to_text /
// render_phase_tree (docs/PLANNING.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isomer/core/strategy.hpp"

namespace isomer {

enum class SitePath : unsigned char { Localized, Central };

[[nodiscard]] std::string_view to_string(SitePath path) noexcept;

/// One home site's assignment in a hybrid plan, with the planner's wire
/// economics the mid-flight switch rule tests against. Check traffic is
/// identical on both paths (the same unsolved items spawn the same check
/// tasks), so the per-site comparison is rows-vs-extent only.
struct SiteAssignment {
  DbId db{};
  SitePath path = SitePath::Localized;
  /// Estimated row-shipping payload if this site runs Localized
  /// (rows_wire_bytes of the predicted surviving rows).
  double est_rows_bytes = 0;
  /// Projected-extent payload if this site runs Central. Exact catalog
  /// arithmetic (detail::ca_projected_bytes), not an estimate.
  double extent_bytes = 0;
};

/// What execute_plan runs. Either a pure strategy (label alone; bitwise
/// identical to the monolithic executors) or a hybrid per-site mixture.
struct ExecPlan {
  /// Pure plans: the strategy to run. Hybrid plans: the flavor its
  /// Localized homes borrow (always the lazy BL protocol today).
  StrategyKind label = StrategyKind::BL;
  bool hybrid = false;
  /// Localized homes walk all roots eagerly (PL style) before evaluating.
  bool eager = false;
  /// Screen candidate assistants against the signature index (BLS/PLS).
  bool use_signatures = false;
  /// Hybrid only: one entry per home site, in local_query_sites order
  /// (ascending DbId); must cover exactly the query's home sites.
  std::vector<SiteAssignment> sites;
  /// Hybrid only: a Localized home re-decides after evaluating when its
  /// observed row payload reaches this factor times the estimate and the
  /// exact extent payload is by then the cheaper shipment. 0 disables
  /// mid-flight switching.
  double switch_factor = 0;

  [[nodiscard]] static ExecPlan pure(StrategyKind kind) noexcept;

  /// EXPLAIN rendering: the chosen paths with their per-site economics.
  [[nodiscard]] std::string to_text() const;
};

/// What one hybrid execution actually did at one home site.
struct SiteDecision {
  DbId db{};
  SitePath planned = SitePath::Localized;
  SitePath executed = SitePath::Localized;
  bool switched = false;  ///< mid-flight Localized -> Central
  double est_rows_bytes = 0;  ///< the plan's estimate, for comparison
  double extent_bytes = 0;
  /// Observed row payload (rows_wire_bytes of the site's surviving rows) —
  /// known after evaluation on either path; what SiteStatsBook learns from.
  double observed_rows_bytes = 0;
  std::uint64_t rows = 0;  ///< surviving local result rows
};

/// Telemetry of one hybrid execution, filled while the simulation runs.
/// Decisions are indexed like ExecPlan::sites; empty for pure plans.
struct PlanTelemetry {
  std::vector<SiteDecision> decisions;

  [[nodiscard]] std::uint64_t switches() const noexcept;
};

}  // namespace isomer
