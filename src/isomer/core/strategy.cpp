#include "isomer/core/strategy.hpp"

#include "isomer/core/operators.hpp"
#include "isomer/federation/materializer.hpp"

namespace isomer {

std::string_view to_string(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::CA:
      return "CA";
    case StrategyKind::BL:
      return "BL";
    case StrategyKind::PL:
      return "PL";
    case StrategyKind::BLS:
      return "BL-S";
    case StrategyKind::PLS:
      return "PL-S";
    case StrategyKind::IM:
      return "IM";
  }
  return "CA";
}

StrategyReport execute_strategy(StrategyKind kind,
                                const Federation& federation,
                                const GlobalQuery& query,
                                const StrategyOptions& options) {
  // A strategy is just a pure plan over the phase operators.
  return execute_plan(federation, query, ExecPlan::pure(kind), options)
      .report;
}

QueryResult reference_answer(const Federation& federation,
                             const GlobalQuery& query) {
  const MaterializedView view =
      materialize(federation, classes_involved(federation.schema(), query));
  return evaluate_global(view, federation.schema(), query);
}

}  // namespace isomer
