#include "isomer/core/strategy.hpp"

#include "isomer/federation/materializer.hpp"

namespace isomer {

std::string_view to_string(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::CA:
      return "CA";
    case StrategyKind::BL:
      return "BL";
    case StrategyKind::PL:
      return "PL";
    case StrategyKind::BLS:
      return "BL-S";
    case StrategyKind::PLS:
      return "PL-S";
  }
  return "CA";
}

StrategyReport execute_strategy(StrategyKind kind,
                                const Federation& federation,
                                const GlobalQuery& query,
                                const StrategyOptions& options) {
  switch (kind) {
    case StrategyKind::CA:
      return detail::execute_ca(federation, query, options);
    case StrategyKind::BL:
      return detail::execute_bl(federation, query, options, false);
    case StrategyKind::PL:
      return detail::execute_pl(federation, query, options, false);
    case StrategyKind::BLS:
      return detail::execute_bl(federation, query, options, true);
    case StrategyKind::PLS:
      return detail::execute_pl(federation, query, options, true);
  }
  throw ContractViolation("unknown strategy kind");
}

QueryResult reference_answer(const Federation& federation,
                             const GlobalQuery& query) {
  const MaterializedView view =
      materialize(federation, classes_involved(federation.schema(), query));
  return evaluate_global(view, federation.schema(), query);
}

}  // namespace isomer
