// Execution strategies (paper §3).
//
// | kind | phase order | description                                   |
// |------|-------------|-----------------------------------------------|
// | CA   | O -> I -> P | centralized: ship, outerjoin, evaluate        |
// | BL   | P -> O -> I | localized: evaluate, then check assistants of |
// |      |             | the local maybe results, certify globally     |
// | PL   | O -> P -> I | localized: check assistants of *all* objects  |
// |      |             | in parallel with local evaluation             |
// | BLS  |             | BL with signature-screened assistant checks   |
// | PLS  |             | PL with signature-screened assistant checks   |
//
// The signature variants implement the paper's §3/§5 extension: a
// replicated auxiliary structure of object signatures lets the home
// database discard assistants that provably violate an equality predicate
// without shipping them (Table 1's S_s, Table 2's R_ss).
//
// Every strategy executes inside the discrete-event simulator and returns
// both the logical answer and the simulated cost figures; on consistent
// federations all strategies return the same QueryResult.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "isomer/fault/fault_plan.hpp"
#include "isomer/federation/federation.hpp"
#include "isomer/federation/indexes.hpp"
#include "isomer/federation/signature.hpp"
#include "isomer/query/query.hpp"
#include "isomer/query/result.hpp"
#include "isomer/sim/cluster.hpp"
#include "isomer/sim/cost_params.hpp"
#include "isomer/sim/trace.hpp"

namespace isomer {

class CertCache;

namespace obs {
class TraceSession;
}  // namespace obs

enum class StrategyKind : unsigned char { CA, BL, PL, BLS, PLS, IM };

[[nodiscard]] std::string_view to_string(StrategyKind kind) noexcept;

/// The certifying strategies — every execution path that answers by
/// shipping evidence. IM (on-the-fly imputation, core/im.cpp) is deliberately
/// excluded: its answers are probabilistic below `thresh=1.0`, so the
/// strategy-equivalence suites that sweep these arrays must not include it.
inline constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::CA, StrategyKind::BL, StrategyKind::PL, StrategyKind::BLS,
    StrategyKind::PLS};
inline constexpr StrategyKind kPaperStrategies[] = {
    StrategyKind::CA, StrategyKind::BL, StrategyKind::PL};

/// Batched shipment layer (core/exec_common.hpp: ShipmentBatcher).
/// Disabled by default; when enabled, same-(from,to,phase) shipments that
/// become ready at the same simulated instant coalesce into one wire frame
/// of kBatchHeaderBytes + the records' payload bytes, and the assistant
/// check requests degrade to semijoin GOid shipping
/// (CostParams::semijoin_task_bytes). With `enabled == false` every
/// execution is bitwise identical to a build without the batching layer.
struct BatchOptions {
  bool enabled = false;
  /// Flush a frame once it holds this many records (0 = unbounded: flush
  /// only when the simulated instant ends).
  std::size_t max_records = 0;
};

/// Abstract imputation oracle consumed by the IM strategy (core/im.cpp).
/// The concrete implementation — per-class per-attribute population
/// estimators with an MCAR/MAR mechanism model — is analytic/impute.hpp's
/// ImputeModel; core sees only this interface because the analytic library
/// links *against* core.
class ImputeOracle {
 public:
  virtual ~ImputeOracle() = default;

  /// Outcome of consulting the oracle for one first-round check atom.
  struct Decision {
    /// Whether the mechanism model allows upgrading this null at all
    /// (false e.g. when the data refute MCAR, or the model is stale).
    bool upgradable = false;
    /// The most likely pooled verdict — genuinely three-valued: Unknown
    /// predicts the protocol would come back undecided (e.g. a canonically
    /// null reference on the suffix), which still strips the traffic but
    /// upgrades nothing.
    Truth verdict = Truth::Unknown;
    /// The smoothed probability of `verdict` — strictly below 1, so a
    /// threshold of 1.0 never imputes.
    double confidence = 0.0;
  };

  /// Decide the unsolved suffix of query.predicates[predicate] starting at
  /// `step` on `item`, planned by home database `home`. `mar` selects the
  /// missing-at-random estimate (stratified by the learned covariate).
  [[nodiscard]] virtual Decision decide(const Federation& federation,
                                        const GlobalQuery& query, GOid item,
                                        std::size_t predicate,
                                        std::size_t step, DbId home,
                                        bool mar) const = 0;
};

struct StrategyOptions {
  CostParams costs{};
  NetworkTopology topology = NetworkTopology::SharedBus;
  /// Prebuilt signature index for BLS/PLS; when null the executor builds one
  /// on the fly (maintenance of the auxiliary structure is not charged to
  /// the query, matching the paper's treatment of the GOid tables).
  const SignatureIndex* signatures = nullptr;
  /// Optional extent indexes: the localized strategies answer their local
  /// queries from index candidates instead of scans where possible
  /// (federation/indexes.hpp). Not part of the paper's scan-based cost
  /// model; an extension studied in bench_ablation.
  const ExtentIndexes* indexes = nullptr;
  /// Record per-step trace events (disable for large benchmark sweeps).
  bool record_trace = true;
  /// Phase-span observability sink (obs/trace_session.hpp): every phase
  /// boundary of the execution is recorded as a PhaseSpan carrying its
  /// AccessMeter delta, wire traffic and object/certification counts.
  /// Null (the default) disables span recording entirely — the executors
  /// then pay a single pointer test per step and charge nothing extra.
  obs::TraceSession* trace_session = nullptr;
  /// Fault-injection plan (fault/fault_plan.hpp). Null or a disabled plan
  /// takes the exact fault-free code path: the execution is bitwise
  /// identical to a build without fault injection.
  const fault::FaultPlan* faults = nullptr;
  /// Bounded-retry policy applied to every shipment while `faults` is
  /// active; timeouts and backoff are charged to the simulated clock.
  fault::RetryPolicy retry{};
  /// What to do once retries are exhausted: abort the query (Fail) or
  /// degrade gracefully per fault/degrade.hpp (Partial).
  fault::DegradeMode degrade = fault::DegradeMode::Fail;
  /// Evaluate simple single-step predicates through the columnar extent
  /// mirrors and vectorized kernels (query/kernels.hpp) during full-scan
  /// local executions. Rows, meter counts and simulated times are bitwise
  /// identical either way; `false` forces the row-at-a-time walk everywhere
  /// and exists as the parity suite's reference and for layout ablations.
  bool columnar = true;
  /// Batched semijoin shipping; off by default (see BatchOptions).
  BatchOptions batch{};
  /// Cross-query certificate cache (core/cert_cache.hpp). Null (the
  /// default) disables certificate sharing entirely — the execution is
  /// bitwise identical to a build without the cache. When set (the serving
  /// layer passes its per-server cache, harnesses honour --certcache),
  /// first-round assistant checks whose (GOid, atom signature) is cached at
  /// the current federation epoch are answered locally instead of shipped,
  /// and pooled verdicts are written back at certification time unless the
  /// execution degraded (partial evidence must never be cached).
  CertCache* cert_cache = nullptr;
  /// Imputation oracle for StrategyKind::IM (analytic/impute.hpp builds the
  /// concrete model; executing IM without one throws ImputeError — the
  /// estimators live a layer above core and cannot be built here). The
  /// other strategies ignore all three fields entirely.
  const ImputeOracle* impute = nullptr;
  /// Confidence an imputed verdict must reach before the check traffic is
  /// replaced; smoothed confidences are strictly below 1, so the default
  /// 1.0 makes IM bitwise identical to BL.
  double impute_threshold = 1.0;
  /// Assume missing-at-random (stratified estimates) instead of the default
  /// missing-completely-at-random gate.
  bool impute_mar = false;
};

/// The simulated execution's outcome: the logical answer plus the two cost
/// figures the paper reports and their breakdown.
struct StrategyReport {
  QueryResult result;

  SimTime response_ns = 0;  ///< makespan: when the final answer is ready
  SimTime total_ns = 0;     ///< sum of busy time over every resource
  SimTime cpu_ns = 0;
  SimTime disk_ns = 0;
  SimTime net_ns = 0;

  Bytes bytes_transferred = 0;
  std::uint64_t messages = 0;
  AccessMeter work;  ///< aggregated logical work across all sites

  /// Fault-injection outcome (all zero/empty on a fault-free run): the
  /// component databases declared unreachable during execution (ascending),
  /// the number of re-sent shipments, and the shipments abandoned after the
  /// retry budget.
  std::vector<DbId> unavailable_sites;
  std::uint64_t retries = 0;
  std::uint64_t failed_messages = 0;

  /// Certificate-cache outcome (both zero unless StrategyOptions::cert_cache
  /// was set): first-round check atoms answered from the cache vs shipped.
  std::uint64_t cert_hits = 0;
  std::uint64_t cert_misses = 0;

  /// Imputation outcome (both zero unless the IM strategy ran): first-round
  /// check atoms answered by the population model vs consulted but left on
  /// the certified path (below threshold / not upgradable).
  std::uint64_t imputed_atoms = 0;
  std::uint64_t impute_declined = 0;

  ExecutionTrace trace;
};

/// Runs `query` over `federation` under the given strategy and returns the
/// answer with its simulated costs.
[[nodiscard]] StrategyReport execute_strategy(
    StrategyKind kind, const Federation& federation, const GlobalQuery& query,
    const StrategyOptions& options = {});

/// The logical answer alone, computed through the centralized reference path
/// without the simulator — the test oracle.
[[nodiscard]] QueryResult reference_answer(const Federation& federation,
                                           const GlobalQuery& query);

namespace detail {
StrategyReport execute_ca(const Federation&, const GlobalQuery&,
                          const StrategyOptions&);
StrategyReport execute_bl(const Federation&, const GlobalQuery&,
                          const StrategyOptions&, bool use_signatures);
StrategyReport execute_pl(const Federation&, const GlobalQuery&,
                          const StrategyOptions&, bool use_signatures);
}  // namespace detail

}  // namespace isomer
