#include "isomer/core/stream.hpp"

#include <memory>

#include "isomer/core/operators.hpp"

namespace isomer {

double StreamReport::mean_latency_ms() const {
  if (outcomes.empty()) return 0;
  double total = 0;
  for (const StreamOutcome& outcome : outcomes)
    total += to_milliseconds(outcome.latency());
  return total / static_cast<double>(outcomes.size());
}

SimTime StreamReport::max_latency() const {
  SimTime worst = 0;
  for (const StreamOutcome& outcome : outcomes)
    worst = std::max(worst, outcome.latency());
  return worst;
}

StreamReport run_query_stream(const Federation& federation,
                              const std::vector<StreamQuery>& stream,
                              const StrategyOptions& options) {
  Simulator sim;
  Cluster cluster(sim, options.costs, federation.db_count(),
                  options.topology);

  StreamReport report;
  report.outcomes.resize(stream.size());

  // Each execution keeps its own env (trace, meters, query binding) but all
  // envs drive the one simulator/cluster. Envs live in stable storage
  // because the deferred callbacks hold references to them.
  // StrategyOptions::batch flows through the per-query copy, so each
  // execution runs its own ShipmentBatcher: same-instant records of ONE
  // query coalesce, frames of different queries still contend for the
  // shared medium individually (batching is an executor behavior, not a
  // network one).
  std::vector<std::unique_ptr<detail::ExecEnv>> envs;
  envs.reserve(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const StreamQuery& entry = stream[i];
    StrategyOptions per_query = options;
    per_query.record_trace = false;  // per-query traces interleave; skip
    // Phase spans do interleave cleanly: every span carries its query's
    // stream index, so one shared session captures the whole schedule.
    envs.push_back(std::make_unique<detail::ExecEnv>(
        federation, entry.query, per_query, sim, cluster));
    detail::ExecEnv* env = envs.back().get();
    const bool hybrid = entry.plan != nullptr && entry.plan->hybrid;
    env->set_span_context(hybrid ? std::string_view{"HY"}
                                 : to_string(entry.kind),
                          i);
    StreamOutcome& outcome = report.outcomes[i];
    outcome.arrival = entry.arrival;

    const auto on_done = [&outcome](QueryResult result, SimTime at) {
      outcome.result = std::move(result);
      outcome.completion = at;
    };
    // Every stream entry is an operator plan; a bare kind runs its pure
    // plan, which is bitwise identical to the monolithic executor.
    auto plan = entry.plan != nullptr
                    ? entry.plan
                    : std::make_shared<const ExecPlan>(
                          ExecPlan::pure(entry.kind));
    sim.schedule_at(entry.arrival, [env, plan, on_done] {
      detail::launch_plan(*env, *plan, nullptr, on_done);
    });
  }

  sim.run();

  for (const StreamOutcome& outcome : report.outcomes) {
    ensures(outcome.completion >= outcome.arrival,
            "a stream query did not complete");
    report.makespan = std::max(report.makespan, outcome.completion);
  }
  report.total_busy_ns =
      cluster.cpu_busy() + cluster.disk_busy() + cluster.network_busy();
  report.bytes_transferred = cluster.bytes_transferred();
  return report;
}

}  // namespace isomer
