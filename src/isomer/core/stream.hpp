// Concurrent query streams.
//
// The paper simulates one query at a time; a deployed federation serves
// many. run_query_stream() executes a whole arrival schedule of global
// queries inside ONE simulation — every execution contends for the same
// site CPUs, disks and network — so queueing between queries is modeled,
// not just within one. This is where strategy choice becomes a *capacity*
// question: CA's bulk shipping monopolizes the shared medium and stalls
// everyone behind it, while the localized strategies interleave.
#pragma once

#include <memory>
#include <vector>

#include "isomer/core/plan.hpp"
#include "isomer/core/strategy.hpp"

namespace isomer {

/// One query of the stream.
struct StreamQuery {
  GlobalQuery query;
  SimTime arrival = 0;                      ///< when it is submitted
  StrategyKind kind = StrategyKind::BL;     ///< per-query strategy
  /// Optional explicit plan (e.g. a hybrid from plan_adaptive); when null
  /// the entry runs ExecPlan::pure(kind). Shared so one plan can serve many
  /// stream entries.
  std::shared_ptr<const ExecPlan> plan;
};

/// One query's outcome.
struct StreamOutcome {
  QueryResult result;
  SimTime arrival = 0;
  SimTime completion = 0;

  [[nodiscard]] SimTime latency() const noexcept {
    return completion - arrival;
  }
};

struct StreamReport {
  std::vector<StreamOutcome> outcomes;  ///< aligned with the input stream
  SimTime makespan = 0;                 ///< when the last answer was ready
  SimTime total_busy_ns = 0;            ///< Σ busy across all resources
  Bytes bytes_transferred = 0;

  [[nodiscard]] double mean_latency_ms() const;
  [[nodiscard]] SimTime max_latency() const;
};

/// Runs the whole stream in one shared simulation. Queries are independent
/// read-only executions; `options.signatures`/`options.indexes` apply to
/// every query that can use them. Throws QueryError when any query is
/// malformed for this federation.
[[nodiscard]] StreamReport run_query_stream(
    const Federation& federation, const std::vector<StreamQuery>& stream,
    const StrategyOptions& options = {});

}  // namespace isomer
