#include "isomer/fault/degrade.hpp"

#include <string>
#include <vector>

#include "isomer/common/error.hpp"
#include "isomer/objmodel/path.hpp"

namespace isomer::fault {

namespace {

/// Could an unreachable database have contributed evidence for attribute
/// `attr_index` of `item` (a member of global class `cls`)? True when a
/// dead site holds an isomeric object of `item` whose constituent class
/// defines the attribute — exactly the capability criterion assistant
/// planning uses, so the tag mirrors which checks could not run.
bool dead_site_could_assist(const Federation& federation, GOid item,
                            const GlobalClass& cls, std::size_t attr_index,
                            const std::set<DbId>& unavailable) {
  for (const LOid& isomer : federation.goids().isomers_of(item)) {
    if (unavailable.count(isomer.db) == 0) continue;
    const auto constituent = cls.constituent_in(isomer.db);
    if (constituent && !cls.is_missing(*constituent, attr_index)) return true;
  }
  return false;
}

/// Rule (b) for one predicate path: walk the live view from `entity` and
/// report whether the walk stops at missing data a dead site could have
/// supplied. The walk stops exactly where every strategy's evidence stops —
/// at the first null on the live data — so the outcome is
/// strategy-independent by construction.
bool path_hits_unavailable(const Federation& federation,
                           const MaterializedView& view,
                           const ResolvedPath& resolved, GOid entity,
                           const std::set<DbId>& unavailable) {
  const GlobalSchema& schema = federation.schema();
  std::set<GOid> frontier{entity};
  for (const ResolvedStep& step : resolved.steps) {
    const GlobalClass& cls = schema.cls(step.class_name);
    const MaterializedExtent& extent = view.extent(step.class_name);
    std::set<GOid> next;
    for (const GOid item : frontier) {
      const MaterializedObject* obj = extent.find(item);
      const Value& v = obj != nullptr ? obj->values[step.attr_index]
                                      : Value::null();
      if (v.is_null()) {
        if (dead_site_could_assist(federation, item, cls, step.attr_index,
                                   unavailable))
          return true;
        continue;
      }
      if (v.kind() == ValueKind::GlobalRef) {
        next.insert(v.as_global_ref());
      } else if (v.kind() == ValueKind::GlobalRefSet) {
        for (const GOid target : v.as_global_ref_set()) next.insert(target);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return false;
}

}  // namespace

std::size_t tag_unavailable(QueryResult& result, const Federation& federation,
                            const GlobalQuery& query,
                            const std::set<DbId>& unavailable,
                            const MaterializedView* live_view) {
  if (unavailable.empty()) return 0;

  MaterializedView built;
  if (live_view == nullptr) {
    built = materialize(federation, classes_involved(federation.schema(), query),
                        nullptr, MergePolicy::FirstNonNull, &unavailable);
    live_view = &built;
  }

  std::vector<ResolvedPath> paths;
  paths.reserve(query.predicates.size());
  for (const Predicate& pred : query.predicates)
    paths.push_back(resolve_path(federation.schema().lookup(),
                                 query.range_class, pred.path));

  std::size_t tagged = 0;
  for (ResultRow& row : result.rows) {
    if (row.status == ResultStatus::Certain) continue;
    // Rule (a): missing row evidence — a dead database holds an isomeric
    // root object, so its local evaluation of the entity never arrived.
    bool affected = false;
    for (const LOid& isomer : federation.goids().isomers_of(row.entity))
      if (unavailable.count(isomer.db) != 0) {
        affected = true;
        break;
      }
    // Rule (b): missing check evidence along some predicate path.
    for (std::size_t p = 0; !affected && p < paths.size(); ++p)
      affected = path_hits_unavailable(federation, *live_view, paths[p],
                                       row.entity, unavailable);
    if (affected) {
      row.unavailable = true;
      ++tagged;
    }
  }
  return tagged;
}

QueryResult degraded_reference(const Federation& federation,
                               const GlobalQuery& query,
                               const std::set<DbId>& unavailable) {
  const std::vector<std::string> classes =
      classes_involved(federation.schema(), query);
  const MaterializedView view =
      materialize(federation, classes, nullptr, MergePolicy::FirstNonNull,
                  unavailable.empty() ? nullptr : &unavailable);
  QueryResult result =
      evaluate_global(view, federation.schema(), query, nullptr);
  tag_unavailable(result, federation, query, unavailable, &view);
  return result;
}

}  // namespace isomer::fault
