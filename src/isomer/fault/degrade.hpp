// Graceful degradation semantics (docs/FAULTS.md).
//
// When a component database is unreachable (DegradeMode::Partial), its
// constituents simply drop out of the evidence: the certification rule has
// fewer assistant objects, local results from the dead site never arrive,
// and the answer degrades along Codd's maybe-semantics — a certain result
// that depended on the dead site's evidence demotes to maybe, and rows
// whose certainty was *affected* by the outage are tagged `unavailable`.
//
// The tagging rule is shared by every executor (the same function, the same
// inputs), which is what makes CA, BL and PL return identical
// (certain, maybe, unavailable) partitions under the same set of dead
// sites — the fault-tolerant extension of the paper's strategy-equivalence
// theorem, enforced by tests/test_fault_equivalence.cpp. A non-certain row
// is tagged when
//   (a) an unreachable database holds an isomeric root object of the row's
//       entity (its local evaluation — row evidence — is missing), or
//   (b) walking a predicate path over the live data stops at a null whose
//       holder has an isomeric object in an unreachable database that
//       defines the attribute at that step (check evidence is missing).
// Certain rows are never tagged: on a consistent federation, certainty
// established from live data alone is exact.
#pragma once

#include <set>

#include "isomer/federation/federation.hpp"
#include "isomer/federation/materializer.hpp"
#include "isomer/query/query.hpp"
#include "isomer/query/result.hpp"

namespace isomer::fault {

/// Tags the result rows whose certainty was affected by the unreachable
/// databases (rules (a) and (b) above). `live_view` is the federation
/// materialized *excluding* `unavailable`; pass null to have one built
/// internally (the centralized executor reuses the view it already has).
/// No-op when `unavailable` is empty. Returns the number of rows tagged.
std::size_t tag_unavailable(QueryResult& result, const Federation& federation,
                            const GlobalQuery& query,
                            const std::set<DbId>& unavailable,
                            const MaterializedView* live_view = nullptr);

/// The degraded oracle: the answer every strategy must return under
/// DegradeMode::Partial when exactly `unavailable` is dead — evaluate the
/// query on the live-only materialized view, then tag. The fault-equivalence
/// property test compares all three executors against this.
[[nodiscard]] QueryResult degraded_reference(const Federation& federation,
                                             const GlobalQuery& query,
                                             const std::set<DbId>& unavailable);

}  // namespace isomer::fault
