#include "isomer/fault/fault_plan.hpp"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <set>

#include "isomer/common/error.hpp"

namespace isomer::fault {

std::string_view to_string(DegradeMode mode) noexcept {
  return mode == DegradeMode::Fail ? "fail" : "partial";
}

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw FaultError("malformed --faults spec '" + std::string(spec) + "': " +
                   why);
}

/// Parses a non-negative integer prefix of `text`; advances `pos`.
std::uint64_t parse_uint(std::string_view spec, std::string_view text,
                         std::size_t& pos) {
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
    bad_spec(spec, "expected a number in '" + std::string(text) + "'");
  std::uint64_t value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
    ++pos;
  }
  return value;
}

/// Parses a duration "INT(ns|us|ms|s)"; advances `pos`.
SimTime parse_duration(std::string_view spec, std::string_view text,
                       std::size_t& pos) {
  const auto count = static_cast<SimTime>(parse_uint(spec, text, pos));
  const std::string_view rest = text.substr(pos);
  SimTime scale = 0;
  std::size_t unit_len = 0;
  if (rest.rfind("ns", 0) == 0) {
    scale = 1;
    unit_len = 2;
  } else if (rest.rfind("us", 0) == 0) {
    scale = 1'000;
    unit_len = 2;
  } else if (rest.rfind("ms", 0) == 0) {
    scale = 1'000'000;
    unit_len = 2;
  } else if (rest.rfind("s", 0) == 0) {
    scale = 1'000'000'000;
    unit_len = 1;
  } else {
    bad_spec(spec, "duration needs a unit (ns|us|ms|s) in '" +
                       std::string(text) + "'");
  }
  pos += unit_len;
  return count * scale;
}

double parse_real(std::string_view spec, std::string_view text) {
  char* end = nullptr;
  const std::string owned(text);
  const double value = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str() || *end != '\0' || value < 0)
    bad_spec(spec, "expected a non-negative real, got '" + owned + "'");
  return value;
}

}  // namespace

std::string to_string(const FaultSpec& spec) {
  std::string out;
  char buf[64];
  const auto real = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  out += "drop=" + real(spec.plan.drop_probability);
  out += ",spike=" + real(spec.plan.spike_probability) + ":" +
         std::to_string(spec.plan.spike_ns) + "ns";
  for (const Outage& outage : spec.plan.outages) {
    out += ",down=" + std::to_string(outage.db.value()) + "@" +
           std::to_string(outage.from) + "ns..";
    if (outage.until != kForever) out += std::to_string(outage.until) + "ns";
  }
  out += ",seed=" + std::to_string(spec.plan.seed);
  out += ",retries=" + std::to_string(spec.retry.max_retries);
  out += ",timeout=" + std::to_string(spec.retry.timeout_ns) + "ns";
  out += ",backoff=" + std::to_string(spec.retry.backoff_ns) + "ns";
  out += ",degrade=" + std::string(to_string(spec.degrade));
  return out;
}

FaultSpec parse_fault_spec(std::string_view spec) {
  FaultSpec out;
  // Every scalar key may appear at most once: a repeated key is almost
  // always a typo'd sweep script, and silently letting the last occurrence
  // win hides it. Only `down` is repeatable — each occurrence *adds* an
  // outage window rather than overwriting a setting.
  std::set<std::string, std::less<>> seen;
  const auto note_scalar = [&](std::string_view key) {
    if (!seen.emplace(key).second)
      bad_spec(spec, "duplicate key '" + std::string(key) + "'");
  };
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::string_view item =
        spec.substr(begin, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - begin);
    begin = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) {
      if (spec.empty()) bad_spec(spec, "empty specification");
      bad_spec(spec, "empty item");
    }

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      bad_spec(spec, "item '" + std::string(item) + "' has no '='");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (value.empty())
      bad_spec(spec, "item '" + std::string(item) + "' has no value");

    if (key == "drop") {
      note_scalar(key);
      out.plan.drop_probability = parse_real(spec, value);
      if (out.plan.drop_probability > 1)
        bad_spec(spec, "drop probability must be in [0, 1]");
    } else if (key == "spike") {
      note_scalar(key);
      const std::size_t colon = value.find(':');
      if (colon == std::string_view::npos)
        bad_spec(spec, "spike wants 'PROB:DURATION'");
      out.plan.spike_probability = parse_real(spec, value.substr(0, colon));
      if (out.plan.spike_probability > 1)
        bad_spec(spec, "spike probability must be in [0, 1]");
      std::size_t pos = 0;
      const std::string_view dur = value.substr(colon + 1);
      out.plan.spike_ns = parse_duration(spec, dur, pos);
      if (pos != dur.size()) bad_spec(spec, "trailing junk after spike delay");
    } else if (key == "down") {
      Outage outage;
      std::size_t pos = 0;
      const std::uint64_t db = parse_uint(spec, value, pos);
      outage.db = DbId{static_cast<DbId::rep_type>(db)};
      if (pos < value.size()) {
        if (value[pos] != '@')
          bad_spec(spec, "down wants 'ID[@FROM..[UNTIL]]'");
        ++pos;
        outage.from = parse_duration(spec, value, pos);
        if (value.substr(pos).rfind("..", 0) != 0)
          bad_spec(spec, "down window wants 'FROM..[UNTIL]'");
        pos += 2;
        if (pos < value.size()) outage.until = parse_duration(spec, value, pos);
        if (pos != value.size())
          bad_spec(spec, "trailing junk after down window");
        if (outage.until <= outage.from)
          bad_spec(spec, "down window must end after it starts");
      }
      out.plan.outages.push_back(outage);
    } else if (key == "seed") {
      note_scalar(key);
      std::size_t pos = 0;
      out.plan.seed = parse_uint(spec, value, pos);
      if (pos != value.size()) bad_spec(spec, "trailing junk after seed");
    } else if (key == "retries") {
      note_scalar(key);
      std::size_t pos = 0;
      out.retry.max_retries = static_cast<int>(parse_uint(spec, value, pos));
      if (pos != value.size()) bad_spec(spec, "trailing junk after retries");
    } else if (key == "timeout") {
      note_scalar(key);
      std::size_t pos = 0;
      out.retry.timeout_ns = parse_duration(spec, value, pos);
      if (pos != value.size()) bad_spec(spec, "trailing junk after timeout");
      if (out.retry.timeout_ns <= 0)
        bad_spec(spec, "timeout must be positive");
    } else if (key == "backoff") {
      note_scalar(key);
      std::size_t pos = 0;
      out.retry.backoff_ns = parse_duration(spec, value, pos);
      if (pos != value.size()) bad_spec(spec, "trailing junk after backoff");
    } else if (key == "degrade") {
      note_scalar(key);
      if (value == "fail")
        out.degrade = DegradeMode::Fail;
      else if (value == "partial")
        out.degrade = DegradeMode::Partial;
      else
        bad_spec(spec, "degrade wants 'fail' or 'partial'");
    } else {
      bad_spec(spec, "unknown key '" + std::string(key) + "'");
    }
  }
  return out;
}

}  // namespace isomer::fault
