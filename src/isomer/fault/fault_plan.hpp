// Fault injection for the simulated federation.
//
// The paper's whole premise is answering global queries when data is
// *missing* — and an unreachable component site is just another source of
// missing data: its constituents' attribute values become unavailable
// exactly like schema-level missing attributes, so Codd-style
// maybe-semantics give a principled degraded answer (see fault/degrade.hpp
// and docs/FAULTS.md).
//
// A FaultPlan describes what goes wrong on the wire of one simulated
// execution: per-site outage windows, a message-drop probability, and
// latency spikes. All randomness is drawn from an Rng seeded via the
// existing derive_stream scheme, so a (plan, strategy) pair replays
// bit-identically — the Monte-Carlo harness derives one plan seed per trial
// and stays --jobs-invariant.
//
// A RetryPolicy bounds how a sender reacts: per-message timeouts and
// exponentially backed-off retries, all charged to the simulated clock.
// When the policy is exhausted the executor either throws FaultError
// (DegradeMode::Fail) or degrades the answer (DegradeMode::Partial).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "isomer/common/ids.hpp"
#include "isomer/sim/simulator.hpp"

namespace isomer::fault {

/// "Until the end of the run" for outage windows.
inline constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

/// One site outage: database `db` neither receives nor sends messages while
/// `from <= t < until` (in-progress local work completes; the failure model
/// is the *network's* view of the site, which is all the protocols observe).
struct Outage {
  DbId db;
  SimTime from = 0;
  SimTime until = kForever;
};

/// What goes wrong during one simulated execution. Default-constructed
/// plans inject nothing: `enabled()` is false and the executors take
/// exactly the fault-free code path, so a zero-fault plan is bitwise
/// identical to running without one.
struct FaultPlan {
  std::vector<Outage> outages;
  /// Probability that a message attempt is lost in transit.
  double drop_probability = 0.0;
  /// Probability that a delivered message is delayed by `spike_ns` extra.
  double spike_probability = 0.0;
  SimTime spike_ns = 2'000'000;  // 2 ms
  /// Seed of the plan's private RNG stream (derive_stream-mixed by the
  /// executor, so strategy executions draw independently).
  std::uint64_t seed = 0;

  /// True when the plan can actually perturb an execution.
  [[nodiscard]] bool enabled() const noexcept {
    return !outages.empty() || drop_probability > 0 || spike_probability > 0;
  }

  /// Is `db` inside an outage window at simulated time `at`?
  [[nodiscard]] bool down(DbId db, SimTime at) const noexcept {
    for (const Outage& outage : outages)
      if (outage.db == db && at >= outage.from && at < outage.until)
        return true;
    return false;
  }
};

/// How a sender reacts to an unacknowledged message: it declares the
/// attempt lost `timeout_ns` after sending, waits an exponentially growing
/// backoff, and retransmits, up to `max_retries` retransmissions. All of
/// this is pure simulated waiting — it delays the protocol without burning
/// CPU or disk, exactly like a real timeout.
struct RetryPolicy {
  int max_retries = 3;
  SimTime timeout_ns = 2'000'000;  // 2 ms: loss detection latency
  SimTime backoff_ns = 1'000'000;  // 1 ms base, doubled per retransmission
  /// Backoff before retransmission number `attempt` (0-based): integer
  /// doubling, saturating, so simulated times stay exact.
  [[nodiscard]] SimTime backoff(int attempt) const noexcept {
    if (attempt >= 62) return kForever / 2;
    const SimTime factor = SimTime{1} << attempt;
    if (backoff_ns > 0 && factor > kForever / backoff_ns) return kForever / 2;
    return backoff_ns * factor;
  }
};

/// What an executor does when the retry policy is exhausted.
enum class DegradeMode : unsigned char {
  Fail,     ///< throw FaultError — the query has no answer
  Partial,  ///< skip the dead site's constituents, degrade + tag the answer
};

[[nodiscard]] std::string_view to_string(DegradeMode mode) noexcept;

/// One parsed --faults=SPEC: the plan plus the reaction knobs. Grammar in
/// docs/FAULTS.md; parse_fault_spec throws FaultError on malformed input.
struct FaultSpec {
  FaultPlan plan;
  RetryPolicy retry;
  DegradeMode degrade = DegradeMode::Partial;
};

/// Canonical re-print of a parsed spec: every resolved field in a fixed
/// order, durations in nanoseconds. parse_fault_spec(to_string(s)) always
/// reproduces `s`, and the string is what the bench harnesses archive in
/// their --json headers so runs are self-describing.
[[nodiscard]] std::string to_string(const FaultSpec& spec);

/// Parses the --faults specification mini-language:
///
///   SPEC    := item (',' item)*
///   item    := 'drop=' REAL                  message-drop probability
///            | 'spike=' REAL ':' DUR         spike probability : extra delay
///            | 'down=' INT ['@' DUR '..' [DUR]]   outage of DB<INT>
///            | 'seed=' INT
///            | 'retries=' INT
///            | 'timeout=' DUR
///            | 'backoff=' DUR
///            | 'degrade=' ('fail' | 'partial')
///   DUR     := INT ('ns' | 'us' | 'ms' | 's')
///
/// Every scalar key (everything except 'down') may appear at most once; a
/// repeated one is a hard parse error, not last-one-wins. 'down' is
/// repeatable: each occurrence adds another outage window.
///
/// Example: "drop=0.05,spike=0.1:1ms,down=2,retries=4,degrade=partial".
[[nodiscard]] FaultSpec parse_fault_spec(std::string_view spec);

}  // namespace isomer::fault
