#include "isomer/federation/federation.hpp"

#include <algorithm>
#include <sstream>

#include "isomer/common/error.hpp"

namespace isomer {

Federation::Federation(GlobalSchema schema,
                       std::vector<std::unique_ptr<ComponentDatabase>> databases,
                       GoidTable goids)
    : schema_(std::move(schema)),
      databases_(std::move(databases)),
      goids_(std::move(goids)) {
  for (const auto& database : databases_) {
    expects(database != nullptr, "null database passed to Federation");
    db_ids_.push_back(database->db());
  }
  std::sort(db_ids_.begin(), db_ids_.end());
  if (std::adjacent_find(db_ids_.begin(), db_ids_.end()) != db_ids_.end())
    throw FederationError("two component databases share a DbId");

  // Validate the GOid table against the databases and the global schema.
  for (std::size_t i = 0; i < goids_.entity_count(); ++i) {
    const GOid entity{static_cast<std::uint64_t>(i + 1)};
    const std::string& global_class = goids_.class_of(entity);
    const GlobalClass* cls = schema_.find_class(global_class);
    if (cls == nullptr)
      throw FederationError("GOid table entity g" +
                            std::to_string(entity.value()) +
                            " references unknown global class " + global_class);
    for (const LOid& isomer : goids_.isomers_of(entity)) {
      const ComponentDatabase& database = db(isomer.db);
      if (database.fetch(isomer) == nullptr)
        throw FederationError("GOid table references nonexistent object " +
                              to_string(isomer));
      const std::string& local_class = database.class_of(isomer);
      const GlobalClass* owner =
          schema_.global_class_of(isomer.db, local_class);
      if (owner == nullptr || owner->name() != global_class)
        throw FederationError("object " + to_string(isomer) + " of class " +
                              local_class +
                              " is not a constituent object of global class " +
                              global_class);
    }
  }

  // Every attribute binding of every global class must name a real local
  // attribute of the constituent's class (and the constituent class itself
  // must exist). Hand-built or deserialized schemas get the same guarantee
  // as integrate()'s output.
  for (const GlobalClass& cls : schema_.classes()) {
    for (std::size_t c = 0; c < cls.constituents().size(); ++c) {
      const Constituent& constituent = cls.constituents()[c];
      const ComponentDatabase& database = db(constituent.db);
      const ClassDef* local_class =
          database.schema().find_class(constituent.local_class);
      if (local_class == nullptr)
        throw FederationError("global class " + cls.name() +
                              " names nonexistent constituent class " +
                              constituent.local_class + " in DB" +
                              std::to_string(constituent.db.value()));
      for (std::size_t a = 0; a < cls.def().attribute_count(); ++a) {
        const auto& local_name = cls.local_attr(c, a);
        if (local_name && !local_class->has_attribute(*local_name))
          throw FederationError(
              "global attribute " + cls.def().attribute(a).name + " of " +
              cls.name() + " is bound to nonexistent local attribute " +
              *local_name + " of " + constituent.local_class + "@DB" +
              std::to_string(constituent.db.value()));
      }
    }
  }

  // Every object of a constituent class must be GOid-mapped: the paper
  // assigns a GOid to every object in the distributed system, and a partial
  // mapping would let the centralized and localized strategies see different
  // extents.
  for (const auto& database : databases_) {
    for (const GlobalClass& cls : schema_.classes()) {
      const auto constituent = cls.constituent_in(database->db());
      if (!constituent) continue;
      const std::string& local_class =
          cls.constituents()[*constituent].local_class;
      for (const Object& obj : database->extent(local_class).objects())
        if (!goids_.goid_of(obj.id()))
          throw FederationError("object " + to_string(obj.id()) +
                                " of constituent class " + local_class +
                                " has no GOid");
    }
  }
}

const ComponentDatabase& Federation::db(DbId id) const {
  for (const auto& database : databases_)
    if (database->db() == id) return *database;
  throw FederationError("federation has no database DB" +
                        std::to_string(id.value()));
}

std::vector<std::string> Federation::check_consistency() const {
  std::vector<std::string> violations;

  for (std::size_t i = 0; i < goids_.entity_count(); ++i) {
    const GOid entity{static_cast<std::uint64_t>(i + 1)};
    const GlobalClass& cls = schema_.cls(goids_.class_of(entity));
    const auto& isomers = goids_.isomers_of(entity);

    for (std::size_t a = 0; a < cls.def().attribute_count(); ++a) {
      const AttrDef& attr = cls.def().attribute(a);
      // Collect this attribute's value from every isomer that defines it.
      Value first_seen;
      LOid first_holder{};
      bool have_first = false;
      for (const LOid& isomer : isomers) {
        const ComponentDatabase& database = db(isomer.db);
        const auto constituent = cls.constituent_in(isomer.db);
        if (!constituent) continue;
        const auto& local_name = cls.local_attr(*constituent, a);
        if (!local_name) continue;  // missing attribute: nothing to compare
        const Object* obj = database.fetch(isomer);
        const auto index =
            database.schema().cls(database.class_of(isomer)).find_attribute(
                *local_name);
        ensures(index.has_value(), "bound local attribute must exist");
        const Value& raw = obj->value(*index);
        if (raw.is_null()) continue;  // nulls never conflict
        // Compare in global value space so references compare by entity.
        const Value canonical = goids_.globalize(raw);
        if (!have_first) {
          first_seen = canonical;
          first_holder = isomer;
          have_first = true;
        } else if (!(canonical == first_seen)) {
          std::ostringstream os;
          os << "entity g" << entity.value() << " attribute " << attr.name
             << ": " << to_string(first_holder) << " has " << first_seen
             << " but " << to_string(isomer) << " has " << canonical;
          violations.push_back(os.str());
        }
      }
    }
  }
  return violations;
}

}  // namespace isomer
