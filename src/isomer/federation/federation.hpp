// The federation bundle: global schema + component databases + GOid tables.
//
// This is the top-level handle the execution strategies operate on. It also
// provides the *consistency check* that underpins the strategy-equivalence
// guarantee: isomeric objects must agree on commonly defined, non-null
// attributes (the paper assumes clean isomerism; conflicting replicas are a
// data-integration problem outside its scope).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "isomer/federation/goid_table.hpp"
#include "isomer/schema/global_schema.hpp"
#include "isomer/store/database.hpp"

namespace isomer {

class Federation {
 public:
  /// Assembles a federation. Databases must have distinct DbIds; every LOid
  /// in the GOid table must exist in its database and belong to a
  /// constituent class of the entity's global class (FederationError
  /// otherwise).
  Federation(GlobalSchema schema,
             std::vector<std::unique_ptr<ComponentDatabase>> databases,
             GoidTable goids);

  [[nodiscard]] const GlobalSchema& schema() const noexcept { return schema_; }
  [[nodiscard]] const GoidTable& goids() const noexcept { return goids_; }

  [[nodiscard]] const ComponentDatabase& db(DbId id) const;
  [[nodiscard]] std::size_t db_count() const noexcept {
    return databases_.size();
  }
  /// Ascending DbId order.
  [[nodiscard]] const std::vector<DbId>& db_ids() const noexcept {
    return db_ids_;
  }

  /// Verifies that isomeric objects agree on commonly defined non-null
  /// primitive attributes, and that complex attributes of isomeric objects
  /// reference isomeric objects. Returns human-readable descriptions of all
  /// violations (empty when consistent).
  [[nodiscard]] std::vector<std::string> check_consistency() const;

  /// Federation-wide mutation epoch: the sum of every component database's
  /// mutation_epoch(). Any data change at any site moves it, which is what
  /// invalidates epoch-tagged certificate-cache entries (core/cert_cache.hpp).
  /// O(total extents) — capture once per execution, not per probe.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    std::uint64_t epoch = 0;
    for (const auto& db : databases_) epoch += db->mutation_epoch();
    return epoch;
  }

 private:
  GlobalSchema schema_;
  std::vector<std::unique_ptr<ComponentDatabase>> databases_;
  GoidTable goids_;
  std::vector<DbId> db_ids_;
};

}  // namespace isomer
