#include "isomer/federation/goid_table.hpp"

#include <algorithm>
#include <bit>

#include "isomer/common/error.hpp"

namespace isomer {

namespace {

constexpr std::size_t kMinShardCapacity = 16;

/// Smallest power of two holding `n` entries below the 7/8 load bound.
std::size_t capacity_for(std::size_t n) {
  std::size_t cap = kMinShardCapacity;
  while (cap - cap / 8 < n) cap <<= 1;
  return cap;
}

}  // namespace

std::uint64_t GoidTable::loid_lookup(LOid key) const noexcept {
  const std::uint64_t hash = hash_loid(key);
  const Shard& shard = by_loid_[shard_of(hash)];
  if (shard.slots.empty()) return 0;
  const std::size_t mask = shard.slots.size() - 1;
  for (std::size_t i = static_cast<std::size_t>(hash) & mask;;
       i = (i + 1) & mask) {
    const Shard::Slot& slot = shard.slots[i];
    if (slot.goid == 0) return 0;
    if (slot.key == key) return slot.goid;
  }
}

void GoidTable::grow_shard(Shard& shard, std::size_t min_capacity) {
  std::vector<Shard::Slot> old = std::move(shard.slots);
  shard.slots.assign(std::bit_ceil(min_capacity), Shard::Slot{});
  const std::size_t mask = shard.slots.size() - 1;
  for (const Shard::Slot& slot : old) {
    if (slot.goid == 0) continue;
    std::size_t i = static_cast<std::size_t>(hash_loid(slot.key)) & mask;
    while (shard.slots[i].goid != 0) i = (i + 1) & mask;
    shard.slots[i] = slot;
  }
}

bool GoidTable::loid_insert(LOid key, std::uint64_t goid) {
  const std::uint64_t hash = hash_loid(key);
  Shard& shard = by_loid_[shard_of(hash)];
  // Grow at 7/8 load (or first insert) before probing for a free slot.
  if (shard.slots.empty() ||
      shard.size + 1 > shard.slots.size() - shard.slots.size() / 8)
    grow_shard(shard, std::max(kMinShardCapacity, shard.slots.size() * 2));
  const std::size_t mask = shard.slots.size() - 1;
  for (std::size_t i = static_cast<std::size_t>(hash) & mask;;
       i = (i + 1) & mask) {
    Shard::Slot& slot = shard.slots[i];
    if (slot.goid == 0) {
      slot.key = key;
      slot.goid = goid;
      ++shard.size;
      return true;
    }
    if (slot.key == key) return false;
  }
}

void GoidTable::reserve(std::size_t objects) {
  entries_.reserve(objects);
  // Hash sharding spreads keys near-uniformly; size every shard for its
  // expected share (growth still handles any imbalance).
  const std::size_t per_shard = objects / kShardCount + 1;
  for (Shard& shard : by_loid_)
    if (shard.slots.size() < capacity_for(per_shard))
      grow_shard(shard, capacity_for(per_shard));
}

GOid GoidTable::register_entity(std::string_view global_class,
                                const std::vector<LOid>& isomers) {
  if (isomers.empty())
    throw FederationError("cannot register an entity with no objects");
  const GOid id{next_goid_};
  Entry entry{id, std::string(global_class), isomers};
  std::sort(entry.isomers.begin(), entry.isomers.end(),
            [](const LOid& a, const LOid& b) { return a.db < b.db; });
  for (std::size_t i = 0; i < entry.isomers.size(); ++i) {
    const LOid& isomer = entry.isomers[i];
    if (i > 0 && entry.isomers[i - 1].db == isomer.db)
      throw FederationError("entity has two objects in DB" +
                            std::to_string(isomer.db.value()));
    if (loid_lookup(isomer) != 0)
      throw FederationError("LOid " + to_string(isomer) +
                            " already mapped to an entity");
  }
  for (const LOid& isomer : entry.isomers) loid_insert(isomer, id.value());
  by_class_[entry.global_class].push_back(id);
  entries_.push_back(std::move(entry));
  ++next_goid_;
  return id;
}

void GoidTable::add_isomer(GOid entity, LOid isomer) {
  expects(entity.value() >= 1 && entity.value() < next_goid_,
          "GoidTable::add_isomer on unknown entity");
  Entry& e = entries_[entity.value() - 1];
  if (loid_lookup(isomer) != 0)
    throw FederationError("LOid " + to_string(isomer) +
                          " already mapped to an entity");
  const auto same_db = [&](const LOid& other) { return other.db == isomer.db; };
  if (std::any_of(e.isomers.begin(), e.isomers.end(), same_db))
    throw FederationError("entity g" + std::to_string(entity.value()) +
                          " already has an object in DB" +
                          std::to_string(isomer.db.value()));
  e.isomers.insert(
      std::upper_bound(e.isomers.begin(), e.isomers.end(), isomer,
                       [](const LOid& a, const LOid& b) { return a.db < b.db; }),
      isomer);
  loid_insert(isomer, entity.value());
}

std::optional<GOid> GoidTable::goid_of(LOid local, AccessMeter* meter) const {
  if (meter != nullptr) ++meter->table_probes;
  const std::uint64_t goid = loid_lookup(local);
  if (goid == 0) return std::nullopt;
  return GOid{goid};
}

void GoidTable::goids_of(std::span<const LOid> locals, GOid* out,
                         AccessMeter* meter) const {
  const std::size_t n = locals.size();
  if (meter != nullptr) meter->table_probes += n;
  constexpr std::size_t kAhead = 8;  // deep enough to cover one DRAM miss
  for (std::size_t i = 0; i < n; ++i) {
#if defined(__GNUC__) || defined(__clang__)
    if (i + kAhead < n) {
      const std::uint64_t hash = hash_loid(locals[i + kAhead]);
      const Shard& shard = by_loid_[shard_of(hash)];
      if (!shard.slots.empty())
        __builtin_prefetch(
            &shard.slots[static_cast<std::size_t>(hash) &
                         (shard.slots.size() - 1)]);
    }
#endif
    out[i] = GOid{loid_lookup(locals[i])};
  }
}

std::optional<LOid> GoidTable::loid_in(GOid entity, DbId db,
                                       AccessMeter* meter) const {
  if (meter != nullptr) ++meter->table_probes;
  for (const LOid& isomer : entry(entity).isomers)
    if (isomer.db == db) return isomer;
  return std::nullopt;
}

std::size_t GoidTable::present_in(GOid entity, std::span<const DbId> homes,
                                  AccessMeter* meter) const {
  if (meter != nullptr) meter->table_probes += homes.size();
  // Both lists are ascending in DbId: one merge pass replaces per-home
  // isomer-list scans.
  const std::vector<LOid>& isomers = entry(entity).isomers;
  std::size_t present = 0;
  std::size_t i = 0;
  for (const DbId home : homes) {
    while (i < isomers.size() && isomers[i].db < home) ++i;
    if (i < isomers.size() && isomers[i].db == home) ++present;
  }
  return present;
}

const std::vector<LOid>& GoidTable::isomers_of(GOid entity) const {
  return entry(entity).isomers;
}

const std::string& GoidTable::class_of(GOid entity) const {
  return entry(entity).global_class;
}

const std::vector<GOid>& GoidTable::entities_of(
    std::string_view global_class) const {
  static const std::vector<GOid> empty;
  const auto it = by_class_.find(global_class);  // heterogeneous: no alloc
  if (it == by_class_.end()) return empty;
  return it->second;
}

Value GoidTable::globalize(const Value& v, AccessMeter* meter) const {
  if (v.kind() == ValueKind::LocalRef) {
    const auto goid = goid_of(v.as_local_ref(), meter);
    return goid ? Value(GlobalRef{*goid}) : Value::null();
  }
  if (v.kind() == ValueKind::LocalRefSet) {
    GlobalRefSet set;
    for (const LOid& target : v.as_local_ref_set())
      if (const auto goid = goid_of(target, meter))
        set.targets.push_back(*goid);
    return set.targets.empty() ? Value::null() : Value(std::move(set));
  }
  return v;
}

const GoidTable::Entry& GoidTable::entry(GOid entity) const {
  expects(entity.value() >= 1 && entity.value() < next_goid_,
          "unknown GOid");
  return entries_[entity.value() - 1];
}

std::ostream& operator<<(std::ostream& os, const GoidTable& table) {
  for (std::size_t i = 0; i < table.entity_count(); ++i) {
    const GOid id{static_cast<std::uint64_t>(i + 1)};
    os << "g" << id.value() << " (" << table.class_of(id) << "):";
    for (const LOid& isomer : table.isomers_of(id)) os << " " << isomer;
    os << "\n";
  }
  return os;
}

}  // namespace isomer
