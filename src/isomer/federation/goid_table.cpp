#include "isomer/federation/goid_table.hpp"

#include <algorithm>

#include "isomer/common/error.hpp"

namespace isomer {

GOid GoidTable::register_entity(std::string_view global_class,
                                const std::vector<LOid>& isomers) {
  if (isomers.empty())
    throw FederationError("cannot register an entity with no objects");
  const GOid id{next_goid_};
  Entry entry{id, std::string(global_class), isomers};
  std::sort(entry.isomers.begin(), entry.isomers.end(),
            [](const LOid& a, const LOid& b) { return a.db < b.db; });
  for (std::size_t i = 0; i < entry.isomers.size(); ++i) {
    const LOid& isomer = entry.isomers[i];
    if (i > 0 && entry.isomers[i - 1].db == isomer.db)
      throw FederationError("entity has two objects in DB" +
                            std::to_string(isomer.db.value()));
    if (by_loid_.find(isomer) != by_loid_.end())
      throw FederationError("LOid " + to_string(isomer) +
                            " already mapped to an entity");
  }
  for (const LOid& isomer : entry.isomers) by_loid_.emplace(isomer, id);
  by_class_[entry.global_class].push_back(id);
  entries_.push_back(std::move(entry));
  ++next_goid_;
  return id;
}

void GoidTable::add_isomer(GOid entity, LOid isomer) {
  expects(entity.value() >= 1 && entity.value() < next_goid_,
          "GoidTable::add_isomer on unknown entity");
  Entry& e = entries_[entity.value() - 1];
  if (by_loid_.find(isomer) != by_loid_.end())
    throw FederationError("LOid " + to_string(isomer) +
                          " already mapped to an entity");
  const auto same_db = [&](const LOid& other) { return other.db == isomer.db; };
  if (std::any_of(e.isomers.begin(), e.isomers.end(), same_db))
    throw FederationError("entity g" + std::to_string(entity.value()) +
                          " already has an object in DB" +
                          std::to_string(isomer.db.value()));
  e.isomers.insert(
      std::upper_bound(e.isomers.begin(), e.isomers.end(), isomer,
                       [](const LOid& a, const LOid& b) { return a.db < b.db; }),
      isomer);
  by_loid_.emplace(isomer, entity);
}

std::optional<GOid> GoidTable::goid_of(LOid local, AccessMeter* meter) const {
  if (meter != nullptr) ++meter->table_probes;
  const auto it = by_loid_.find(local);
  if (it == by_loid_.end()) return std::nullopt;
  return it->second;
}

std::optional<LOid> GoidTable::loid_in(GOid entity, DbId db,
                                       AccessMeter* meter) const {
  if (meter != nullptr) ++meter->table_probes;
  for (const LOid& isomer : entry(entity).isomers)
    if (isomer.db == db) return isomer;
  return std::nullopt;
}

const std::vector<LOid>& GoidTable::isomers_of(GOid entity) const {
  return entry(entity).isomers;
}

const std::string& GoidTable::class_of(GOid entity) const {
  return entry(entity).global_class;
}

const std::vector<GOid>& GoidTable::entities_of(
    std::string_view global_class) const {
  static const std::vector<GOid> empty;
  const auto it = by_class_.find(std::string(global_class));
  if (it == by_class_.end()) return empty;
  return it->second;
}

Value GoidTable::globalize(const Value& v, AccessMeter* meter) const {
  if (v.kind() == ValueKind::LocalRef) {
    const auto goid = goid_of(v.as_local_ref(), meter);
    return goid ? Value(GlobalRef{*goid}) : Value::null();
  }
  if (v.kind() == ValueKind::LocalRefSet) {
    GlobalRefSet set;
    for (const LOid& target : v.as_local_ref_set())
      if (const auto goid = goid_of(target, meter))
        set.targets.push_back(*goid);
    return set.targets.empty() ? Value::null() : Value(std::move(set));
  }
  return v;
}

const GoidTable::Entry& GoidTable::entry(GOid entity) const {
  expects(entity.value() >= 1 && entity.value() < next_goid_,
          "unknown GOid");
  return entries_[entity.value() - 1];
}

std::ostream& operator<<(std::ostream& os, const GoidTable& table) {
  for (std::size_t i = 0; i < table.entity_count(); ++i) {
    const GOid id{static_cast<std::uint64_t>(i + 1)};
    os << "g" << id.value() << " (" << table.class_of(id) << "):";
    for (const LOid& isomer : table.isomers_of(id)) os << " " << isomer;
    os << "\n";
  }
  return os;
}

}  // namespace isomer
