// GOid mapping tables (paper Fig. 5).
//
// Every object in the federation is assigned a global object identifier;
// isomeric objects — objects in different component databases representing
// the same real-world entity — share one GOid. The mapping tables are kept
// per global class and replicated at every site (paper §4.1), so both
// component databases and the global site can probe them; probes are charged
// to an AccessMeter as table_probes.
//
// The LOid -> GOid direction is the hottest probe path in the system (every
// surviving local row, every unknown predicate holder, every globalized
// reference goes through it), so it is implemented as a set of independent
// open-addressed hash shards rather than one std::unordered_map: linear
// probing over a flat slot array costs one cache line per probe in the
// common case, and the batch entry point `goids_of` prefetches upcoming
// slots so dependent misses overlap. Sharding keys on the top bits of the
// mixed hash while slot selection uses the low bits, so the two choices are
// independent.
#pragma once

#include <array>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "isomer/common/hash.hpp"
#include "isomer/common/ids.hpp"
#include "isomer/common/value.hpp"
#include "isomer/store/meter.hpp"

namespace isomer {

/// The federation-wide GOid mapping tables.
class GoidTable {
 public:
  /// Registers one real-world entity of `global_class` represented by the
  /// given isomeric LOids (at most one per database; at least one). Returns
  /// the assigned GOid. Throws FederationError when an LOid is already
  /// mapped or two LOids come from the same database.
  GOid register_entity(std::string_view global_class,
                       const std::vector<LOid>& isomers);

  /// Adds another isomeric object to an existing entity.
  void add_isomer(GOid entity, LOid isomer);

  /// Pre-sizes the table for roughly `objects` mapped LOids (and as many
  /// entities), avoiding shard growth during bulk registration.
  void reserve(std::size_t objects);

  /// GOid of a local object; nullopt when unmapped.
  [[nodiscard]] std::optional<GOid> goid_of(LOid local,
                                            AccessMeter* meter = nullptr) const;

  /// Batch probe: out[i] = GOid of locals[i], or GOid{0} when unmapped
  /// (real GOids start at 1). Charges one table probe per element — exactly
  /// what the same sequence of goid_of calls would charge — but overlaps
  /// the slot-array cache misses via software prefetch.
  void goids_of(std::span<const LOid> locals, GOid* out,
                AccessMeter* meter = nullptr) const;

  /// The entity's representative in database `db`; nullopt when the entity
  /// has no isomeric object there.
  [[nodiscard]] std::optional<LOid> loid_in(GOid entity, DbId db,
                                            AccessMeter* meter = nullptr) const;

  /// How many of `homes` (ascending DbId order) hold an isomeric object of
  /// `entity`. Charges one table probe per home — meter-identical to probing
  /// loid_in once per home — but walks the entity's isomer list once.
  [[nodiscard]] std::size_t present_in(GOid entity,
                                       std::span<const DbId> homes,
                                       AccessMeter* meter = nullptr) const;

  /// All isomeric LOids of an entity (ascending DbId order).
  [[nodiscard]] const std::vector<LOid>& isomers_of(GOid entity) const;

  /// Global class of an entity.
  [[nodiscard]] const std::string& class_of(GOid entity) const;

  /// All entities of a global class, in GOid order.
  [[nodiscard]] const std::vector<GOid>& entities_of(
      std::string_view global_class) const;

  [[nodiscard]] std::size_t entity_count() const noexcept {
    return entries_.size();
  }

  /// Rewrites a local value into its global form: LocalRef -> GlobalRef via
  /// the table (null when the referenced object is unmapped), LocalRefSet ->
  /// GlobalRefSet likewise; all other values pass through unchanged.
  [[nodiscard]] Value globalize(const Value& v,
                                AccessMeter* meter = nullptr) const;

 private:
  struct Entry {
    GOid id;
    std::string global_class;
    std::vector<LOid> isomers;  // kept sorted by DbId
  };

  /// One open-addressed LOid -> GOid shard: flat power-of-two slot array,
  /// linear probing, goid 0 marks an empty slot (GOids start at 1). Grows at
  /// 7/8 load.
  struct Shard {
    struct Slot {
      LOid key;
      std::uint64_t goid = 0;
    };
    std::vector<Slot> slots;
    std::size_t size = 0;
  };

  static constexpr std::size_t kShardBits = 4;
  static constexpr std::size_t kShardCount = std::size_t{1} << kShardBits;

  static std::size_t shard_of(std::uint64_t hash) noexcept {
    return static_cast<std::size_t>(hash >> (64 - kShardBits));
  }

  /// GOid value mapped to `key` (0 when unmapped).
  [[nodiscard]] std::uint64_t loid_lookup(LOid key) const noexcept;
  /// Maps `key` to `goid`; false when the key is already present.
  bool loid_insert(LOid key, std::uint64_t goid);
  void grow_shard(Shard& shard, std::size_t min_capacity);

  [[nodiscard]] const Entry& entry(GOid entity) const;

  std::vector<Entry> entries_;
  std::array<Shard, kShardCount> by_loid_;
  std::unordered_map<std::string, std::vector<GOid>, TransparentStringHash,
                     std::equal_to<>>
      by_class_;
  std::uint64_t next_goid_ = 1;
};

std::ostream& operator<<(std::ostream& os, const GoidTable& table);

}  // namespace isomer
