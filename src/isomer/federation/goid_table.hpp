// GOid mapping tables (paper Fig. 5).
//
// Every object in the federation is assigned a global object identifier;
// isomeric objects — objects in different component databases representing
// the same real-world entity — share one GOid. The mapping tables are kept
// per global class and replicated at every site (paper §4.1), so both
// component databases and the global site can probe them; probes are charged
// to an AccessMeter as table_probes.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "isomer/common/ids.hpp"
#include "isomer/common/value.hpp"
#include "isomer/store/meter.hpp"

namespace isomer {

/// The federation-wide GOid mapping tables.
class GoidTable {
 public:
  /// Registers one real-world entity of `global_class` represented by the
  /// given isomeric LOids (at most one per database; at least one). Returns
  /// the assigned GOid. Throws FederationError when an LOid is already
  /// mapped or two LOids come from the same database.
  GOid register_entity(std::string_view global_class,
                       const std::vector<LOid>& isomers);

  /// Adds another isomeric object to an existing entity.
  void add_isomer(GOid entity, LOid isomer);

  /// GOid of a local object; nullopt when unmapped.
  [[nodiscard]] std::optional<GOid> goid_of(LOid local,
                                            AccessMeter* meter = nullptr) const;

  /// The entity's representative in database `db`; nullopt when the entity
  /// has no isomeric object there.
  [[nodiscard]] std::optional<LOid> loid_in(GOid entity, DbId db,
                                            AccessMeter* meter = nullptr) const;

  /// All isomeric LOids of an entity (ascending DbId order).
  [[nodiscard]] const std::vector<LOid>& isomers_of(GOid entity) const;

  /// Global class of an entity.
  [[nodiscard]] const std::string& class_of(GOid entity) const;

  /// All entities of a global class, in GOid order.
  [[nodiscard]] const std::vector<GOid>& entities_of(
      std::string_view global_class) const;

  [[nodiscard]] std::size_t entity_count() const noexcept {
    return entries_.size();
  }

  /// Rewrites a local value into its global form: LocalRef -> GlobalRef via
  /// the table (null when the referenced object is unmapped), LocalRefSet ->
  /// GlobalRefSet likewise; all other values pass through unchanged.
  [[nodiscard]] Value globalize(const Value& v,
                                AccessMeter* meter = nullptr) const;

 private:
  struct Entry {
    GOid id;
    std::string global_class;
    std::vector<LOid> isomers;  // kept sorted by DbId
  };

  [[nodiscard]] const Entry& entry(GOid entity) const;

  std::vector<Entry> entries_;
  std::unordered_map<LOid, GOid> by_loid_;
  std::unordered_map<std::string, std::vector<GOid>> by_class_;
  std::uint64_t next_goid_ = 1;
};

std::ostream& operator<<(std::ostream& os, const GoidTable& table);

}  // namespace isomer
