#include "isomer/federation/indexes.hpp"

#include "isomer/common/error.hpp"

namespace isomer {

namespace {

std::string index_key(DbId db, std::string_view global_attr) {
  return std::to_string(db.value()) + "/" + std::string(global_attr);
}

}  // namespace

ExtentIndexes ExtentIndexes::build(const Federation& federation,
                                   const GlobalQuery& query) {
  ExtentIndexes out;
  const GlobalSchema& schema = federation.schema();
  const GlobalClass* range = schema.find_class(query.range_class);
  if (range == nullptr) return out;

  for (const Predicate& pred : query.predicates) {
    if (pred.path.length() != 1 || pred.op != CompOp::Eq) continue;
    const std::string& attr = pred.path.step(0);
    const auto global_index = range->def().find_attribute(attr);
    if (!global_index) continue;
    if (is_complex(range->def().attribute(*global_index).type)) continue;

    for (const DbId db : federation.db_ids()) {
      const auto constituent = range->constituent_in(db);
      if (!constituent) continue;
      const auto& local_name = range->local_attr(*constituent, *global_index);
      if (!local_name) continue;  // missing attribute here: nothing to index
      const ComponentDatabase& database = federation.db(db);
      const std::string& local_class =
          range->constituents()[*constituent].local_class;
      const auto attr_index =
          database.schema().cls(local_class).find_attribute(*local_name);
      ensures(attr_index.has_value(), "bound local attribute must exist");

      Index& index = out.indexes_[index_key(db, attr)];
      for (const Object& obj : database.extent(local_class).objects()) {
        const Value& v = obj.value(*attr_index);
        if (v.is_null())
          index.nulls.push_back(obj.id());
        else
          index.by_key[to_string(v)].push_back(obj.id());
      }
    }
  }
  return out;
}

std::optional<ExtentIndexes::Candidates> ExtentIndexes::lookup(
    DbId db, std::string_view global_attr, const Value& literal,
    AccessMeter* meter) const {
  const auto it = indexes_.find(index_key(db, global_attr));
  if (it == indexes_.end()) return std::nullopt;
  if (meter != nullptr) ++meter->comparisons;  // one index probe
  Candidates candidates;
  const auto hit = it->second.by_key.find(to_string(literal));
  candidates.matches =
      hit != it->second.by_key.end() ? &hit->second : &it->second.empty;
  candidates.unknowns = &it->second.nulls;
  return candidates;
}

bool ExtentIndexes::covers(std::string_view global_attr) const {
  for (const auto& [key, index] : indexes_)
    if (key.substr(key.find('/') + 1) == global_attr) return true;
  return false;
}

}  // namespace isomer
