// Extent indexes.
//
// An optional access-path substrate (future-work engineering, not in the
// paper's cost model, which is scan-based): equality indexes over the root
// class's locally present predicate attributes let a component database
// answer its local query from the matching objects instead of scanning the
// extent.
//
// The missing-data subtlety: an object whose indexed attribute is *null*
// does not match the key, but it is not eliminated either — it is a maybe
// candidate. Every index therefore keeps a dedicated null bucket, and a
// lookup returns matches ∪ nulls. Objects in neither set are provably False
// on that equality predicate, which is only a safe elimination when the
// query is purely conjunctive — the engine refuses to use indexes under
// disjunctive queries.
//
// Like the GOid tables and the signature index, indexes are maintained
// outside query execution; probes are comparison-priced and each candidate
// fetch pays its normal disk cost.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isomer/federation/federation.hpp"
#include "isomer/query/query.hpp"

namespace isomer {

class ExtentIndexes {
 public:
  /// Builds equality indexes for every (database, attribute) pair where the
  /// query has a single-step equality predicate on the range class and the
  /// database defines the attribute.
  [[nodiscard]] static ExtentIndexes build(const Federation& federation,
                                           const GlobalQuery& query);

  /// Candidate sets for `global_attr = literal` at database `db`:
  /// `matches` hold the key, `unknowns` are the null bucket. nullopt when
  /// no index covers the pair (caller falls back to a scan).
  struct Candidates {
    const std::vector<LOid>* matches = nullptr;
    const std::vector<LOid>* unknowns = nullptr;

    [[nodiscard]] std::size_t size() const noexcept {
      return (matches ? matches->size() : 0) +
             (unknowns ? unknowns->size() : 0);
    }
  };
  [[nodiscard]] std::optional<Candidates> lookup(
      DbId db, std::string_view global_attr, const Value& literal,
      AccessMeter* meter = nullptr) const;

  /// True when some database has an index for this global attribute.
  [[nodiscard]] bool covers(std::string_view global_attr) const;

  [[nodiscard]] std::size_t index_count() const noexcept {
    return indexes_.size();
  }

 private:
  struct Index {
    std::map<std::string, std::vector<LOid>> by_key;  ///< key = value repr
    std::vector<LOid> nulls;
    std::vector<LOid> empty;
  };
  /// key: "<db>/<global attr>"
  std::map<std::string, Index> indexes_;
};

}  // namespace isomer
