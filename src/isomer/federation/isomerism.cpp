#include "isomer/federation/isomerism.hpp"

#include <algorithm>
#include <map>

#include "isomer/common/error.hpp"

namespace isomer {

GoidTable detect_isomerism(
    const GlobalSchema& schema,
    const std::vector<const ComponentDatabase*>& databases) {
  std::vector<const ComponentDatabase*> ordered = databases;
  for (const ComponentDatabase* database : ordered)
    expects(database != nullptr, "null database passed to detect_isomerism");
  std::sort(ordered.begin(), ordered.end(),
            [](const ComponentDatabase* a, const ComponentDatabase* b) {
              return a->db() < b->db();
            });

  GoidTable table;
  for (const GlobalClass& cls : schema.classes()) {
    const auto& identity = cls.def().identity_attribute();

    // Identity value (as a printable key) -> isomeric LOids found so far.
    // std::map keeps key order deterministic but entity registration order
    // below follows first-appearance order for stable GOids.
    std::map<std::string, std::vector<LOid>> groups;
    std::vector<std::string> group_order;
    std::vector<LOid> singletons;

    for (const ComponentDatabase* database : ordered) {
      const auto constituent = cls.constituent_in(database->db());
      if (!constituent) continue;
      const Constituent& info = cls.constituents()[*constituent];
      const ClassDef& local_class = database->schema().cls(info.local_class);

      std::optional<std::size_t> id_index;
      if (identity) {
        const auto global_index = cls.def().find_attribute(*identity);
        ensures(global_index.has_value(), "identity attribute must exist");
        if (const auto& local_name = cls.local_attr(*constituent, *global_index))
          id_index = local_class.find_attribute(*local_name);
      }

      for (const Object& obj : database->extent(info.local_class).objects()) {
        Value key;
        if (id_index) key = obj.value(*id_index);
        if (key.is_null()) {
          singletons.push_back(obj.id());
          continue;
        }
        auto [it, inserted] = groups.try_emplace(to_string(key));
        if (inserted) group_order.push_back(it->first);
        if (!it->second.empty() && it->second.back().db == database->db())
          throw FederationError("database DB" +
                                std::to_string(database->db().value()) +
                                " has two objects of class " +
                                info.local_class + " with identity " +
                                to_string(key));
        it->second.push_back(obj.id());
      }
    }

    for (const std::string& key : group_order)
      table.register_entity(cls.name(), groups.at(key));
    for (const LOid& lone : singletons)
      table.register_entity(cls.name(), {lone});
  }
  return table;
}

}  // namespace isomer
