// Isomerism detection.
//
// The paper assumes isomeric objects have been identified by the authors'
// earlier strategy [5]. This module provides a reference implementation so
// the system is self-contained: objects of the constituent classes of one
// global class are matched on the global class's *identity attribute* (e.g.
// Student.s-no); objects agreeing on a non-null identity value are declared
// isomeric and share a GOid. Objects with a null identity value, and all
// objects of classes without an identity attribute, become singleton
// entities.
#pragma once

#include <vector>

#include "isomer/federation/goid_table.hpp"
#include "isomer/schema/global_schema.hpp"
#include "isomer/store/database.hpp"

namespace isomer {

/// Builds the GOid mapping tables for all global classes. Databases are
/// visited in ascending DbId order and extents in insertion order, so GOid
/// assignment is deterministic. Throws FederationError when two objects of
/// the *same* database claim the same identity value (isomerism is a
/// cross-database relation; duplicates within one database indicate broken
/// source data).
[[nodiscard]] GoidTable detect_isomerism(
    const GlobalSchema& schema,
    const std::vector<const ComponentDatabase*>& databases);

}  // namespace isomer
