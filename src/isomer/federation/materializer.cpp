#include "isomer/federation/materializer.hpp"

#include <algorithm>

#include "isomer/common/error.hpp"
#include "isomer/query/eval.hpp"

namespace isomer {

const GlobalClass& MaterializedExtent::cls() const {
  expects(cls_ != nullptr, "MaterializedExtent used before binding");
  return *cls_;
}

const MaterializedObject* MaterializedExtent::find(GOid id) const noexcept {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return nullptr;
  return &objects_[it->second];
}

void MaterializedExtent::reserve(std::size_t n) {
  objects_.reserve(n);
  by_id_.reserve(n);
}

void MaterializedExtent::insert(MaterializedObject obj) {
  const auto [it, inserted] = by_id_.emplace(obj.id, objects_.size());
  if (!inserted)
    throw FederationError("duplicate GOid g" + std::to_string(obj.id.value()) +
                          " in materialized extent of " + cls().name());
  objects_.push_back(std::move(obj));
}

bool MaterializedView::has_extent(std::string_view global_class) const noexcept {
  return extents_.find(std::string(global_class)) != extents_.end();
}

const MaterializedExtent& MaterializedView::extent(
    std::string_view global_class) const {
  const auto it = extents_.find(std::string(global_class));
  if (it == extents_.end())
    throw FederationError("no materialized extent for global class " +
                          std::string(global_class));
  return it->second;
}

MaterializedExtent& MaterializedView::add_extent(const GlobalClass& cls) {
  const auto [it, inserted] =
      extents_.emplace(cls.name(), MaterializedExtent(cls));
  return it->second;
}

std::vector<std::string> classes_involved(const GlobalSchema& schema,
                                          const GlobalQuery& query) {
  std::vector<std::string> classes{query.range_class};
  const auto add_path = [&](const PathExpr& path) {
    const ResolvedPath resolved =
        resolve_path(schema.lookup(), query.range_class, path);
    for (const std::string& name : resolved.classes_on_path())
      if (std::find(classes.begin(), classes.end(), name) == classes.end())
        classes.push_back(name);
  };
  for (const PathExpr& target : query.targets) add_path(target);
  for (const Predicate& pred : query.predicates) add_path(pred.path);
  return classes;
}

MaterializedView materialize(const Federation& federation,
                             const std::vector<std::string>& classes,
                             AccessMeter* meter, MergePolicy policy,
                             const std::set<DbId>* exclude) {
  const GlobalSchema& schema = federation.schema();
  const GoidTable& goids = federation.goids();

  MaterializedView view;
  for (const std::string& class_name : classes) {
    const GlobalClass& cls = schema.cls(class_name);
    MaterializedExtent& extent = view.add_extent(cls);

    // The GOid table knows the class's entity count before the outerjoin
    // starts: every entity yields exactly one materialized object.
    const std::vector<GOid>& entities = goids.entities_of(class_name);
    extent.reserve(entities.size());
    for (const GOid entity : entities) {
      MaterializedObject merged{entity,
                                std::vector<Value>(cls.def().attribute_count())};
      // Isomers are kept in ascending DbId order; first non-null wins.
      for (const LOid& isomer : goids.isomers_of(entity)) {
        if (exclude != nullptr && exclude->count(isomer.db) != 0) continue;
        const ComponentDatabase& db = federation.db(isomer.db);
        const Object* obj = db.fetch(isomer, meter);
        ensures(obj != nullptr, "GOid table validated at construction");
        if (meter != nullptr) ++meter->comparisons;  // outerjoin GOid probe

        const auto constituent = cls.constituent_in(isomer.db);
        ensures(constituent.has_value(),
                "isomer's database must hold a constituent");
        const ClassDef& local_class = db.schema().cls(db.class_of(isomer));
        for (std::size_t a = 0; a < cls.def().attribute_count(); ++a) {
          const AttrDef& attr = cls.def().attribute(a);
          const auto* cplx = std::get_if<ComplexType>(&attr.type);
          const bool union_merge = policy == MergePolicy::UnionSets &&
                                   cplx != nullptr && cplx->multi_valued;
          if (!union_merge && !merged.values[a].is_null()) continue;
          const auto& local_name = cls.local_attr(*constituent, a);
          if (!local_name) continue;
          const auto index = local_class.find_attribute(*local_name);
          ensures(index.has_value(), "bound local attribute must exist");
          const Value& raw = obj->value(*index);
          if (raw.is_null()) continue;
          Value global_value = goids.globalize(raw, meter);
          if (union_merge && !merged.values[a].is_null() &&
              !global_value.is_null()) {
            // Union this isomer's reference set into the accumulated one.
            GlobalRefSet combined{merged.values[a].as_global_ref_set()};
            for (const GOid target : global_value.as_global_ref_set())
              if (std::find(combined.targets.begin(), combined.targets.end(),
                            target) == combined.targets.end())
                combined.targets.push_back(target);
            std::sort(combined.targets.begin(), combined.targets.end());
            merged.values[a] = Value(std::move(combined));
            continue;
          }
          if (union_merge && global_value.kind() == ValueKind::GlobalRefSet) {
            GlobalRefSet sorted{global_value.as_global_ref_set()};
            std::sort(sorted.targets.begin(), sorted.targets.end());
            global_value = Value(std::move(sorted));
          }
          merged.values[a] = std::move(global_value);
        }
      }
      extent.insert(std::move(merged));
    }
  }
  return view;
}

namespace {

/// Where a materialized evaluation went Unknown: the object holding the
/// missing data and the global path step it stalled at — the residual atom
/// the row's condition names. Only the *first* Unknown site (in stored
/// evaluation order) is kept, matching the local evaluator's convention of
/// reporting the first unsolved site of set-valued branches.
struct MatStall {
  GOid holder;
  std::size_t step = 0;
  bool set = false;
};

void note_stall(MatStall* stall, GOid holder, std::size_t step) noexcept {
  if (stall == nullptr || stall->set) return;
  stall->holder = holder;
  stall->step = step;
  stall->set = true;
}

/// Predicate evaluation over materialized objects; mirrors query/eval.cpp
/// but navigates GOid references between materialized extents.
Truth eval_materialized(const MaterializedView& view, const GlobalSchema& schema,
                        const MaterializedObject& obj,
                        const GlobalClass& cls, const Predicate& pred,
                        std::size_t step, AccessMeter* meter,
                        MatStall* stall = nullptr) {
  const auto index = cls.def().find_attribute(pred.path.step(step));
  ensures(index.has_value(), "global query resolved before evaluation");
  const Value& v = obj.values[*index];
  const bool last = (step + 1 == pred.path.length());
  if (last) {
    if (meter != nullptr) ++meter->comparisons;
    const Truth t = apply(pred.op, v, pred.literal);
    if (is_unknown(t)) note_stall(stall, obj.id, step);
    return t;
  }
  if (v.is_null()) {
    note_stall(stall, obj.id, step);
    return Truth::Unknown;
  }
  const auto& cplx =
      std::get<ComplexType>(cls.def().attribute(*index).type);
  const GlobalClass& domain = schema.cls(cplx.domain_class);
  const MaterializedExtent& extent = view.extent(domain.name());

  const auto descend = [&](GOid target) -> Truth {
    const MaterializedObject* next = extent.find(target);
    if (next == nullptr) {
      note_stall(stall, obj.id, step);  // dangling: the referrer stalls
      return Truth::Unknown;
    }
    if (meter != nullptr) ++meter->objects_fetched;
    return eval_materialized(view, schema, *next, domain, pred, step + 1,
                             meter, stall);
  };

  if (v.kind() == ValueKind::GlobalRef) return descend(v.as_global_ref());
  if (v.kind() == ValueKind::GlobalRefSet) {
    Truth acc = Truth::False;
    for (const GOid target : v.as_global_ref_set()) {
      const Truth branch = descend(target);
      if (is_true(branch)) return branch;
      acc = acc || branch;
    }
    return acc;
  }
  throw QueryError("materialized path step " + pred.path.step(step) +
                   " is not a reference");
}

Value eval_materialized_path(const MaterializedView& view,
                             const GlobalSchema& schema,
                             const MaterializedObject& obj,
                             const GlobalClass& cls, const PathExpr& path,
                             std::size_t step, AccessMeter* meter) {
  const auto index = cls.def().find_attribute(path.step(step));
  ensures(index.has_value(), "global query resolved before evaluation");
  const Value& v = obj.values[*index];
  const bool last = (step + 1 == path.length());
  if (last) return v;
  if (v.is_null()) return Value::null();
  const auto& cplx = std::get<ComplexType>(cls.def().attribute(*index).type);
  const GlobalClass& domain = schema.cls(cplx.domain_class);
  const MaterializedExtent& extent = view.extent(domain.name());

  const auto descend = [&](GOid target) -> Value {
    const MaterializedObject* next = extent.find(target);
    if (next == nullptr) return Value::null();
    if (meter != nullptr) ++meter->objects_fetched;
    return eval_materialized_path(view, schema, *next, domain, path, step + 1,
                                  meter);
  };

  if (v.kind() == ValueKind::GlobalRef) return descend(v.as_global_ref());
  if (v.kind() == ValueKind::GlobalRefSet) {
    for (const GOid target : v.as_global_ref_set()) {
      Value rest = descend(target);
      if (!rest.is_null()) return rest;
    }
    return Value::null();
  }
  throw QueryError("materialized path step " + path.step(step) +
                   " is not a reference");
}

}  // namespace

QueryResult evaluate_global(const MaterializedView& view,
                            const GlobalSchema& schema,
                            const GlobalQuery& query, AccessMeter* meter) {
  // Resolve every path once up front so malformed queries fail loudly.
  for (const Predicate& pred : query.predicates)
    (void)resolve_path(schema.lookup(), query.range_class, pred.path);
  for (const PathExpr& target : query.targets)
    (void)resolve_path(schema.lookup(), query.range_class, target);

  const GlobalClass& range = schema.cls(query.range_class);
  const MaterializedExtent& extent = view.extent(range.name());

  QueryResult result;
  for (const MaterializedObject& obj : extent.objects()) {
    std::vector<Truth> truths;
    truths.reserve(query.predicates.size());
    std::vector<MatStall> stalls(query.predicates.size());
    for (std::size_t p = 0; p < query.predicates.size(); ++p)
      truths.push_back(eval_materialized(view, schema, obj, range,
                                         query.predicates[p], 0, meter,
                                         &stalls[p]));
    const Truth truth = query.combine(truths);
    if (is_false(truth)) continue;

    ResultRow row;
    row.entity = obj.id;
    row.status =
        is_true(truth) ? ResultStatus::Certain : ResultStatus::Maybe;
    // The centralized approach saw all the data at once, so a maybe row's
    // residual is one leaf per Unknown predicate: the materialized stall
    // site. (Syntactically simpler than, but truth-equivalent to, the pool
    // the localized approaches build from per-database rows — conditions
    // are deliberately outside ResultRow equality for this reason.)
    if (row.status == ResultStatus::Maybe) {
      std::vector<Condition> per_pred;
      per_pred.reserve(query.predicates.size());
      for (std::size_t p = 0; p < query.predicates.size(); ++p) {
        if (is_unknown(truths[p])) {
          const MatStall& s = stalls[p];
          ensures(s.set, "Unknown evaluation must report its stall site");
          per_pred.push_back(Condition::leaf(CondAtom{
              s.holder, p, s.step, s.step == 0 && s.holder == obj.id}));
        } else {
          per_pred.push_back(Condition::constant(truths[p]));
        }
      }
      row.condition =
          combine_conditions(query, std::move(per_pred)).simplify();
    }
    row.targets.reserve(query.targets.size());
    for (const PathExpr& target : query.targets)
      row.targets.push_back(eval_materialized_path(view, schema, obj, range,
                                                   target, 0, meter));
    result.rows.push_back(std::move(row));
  }
  result.normalize();
  return result;
}

}  // namespace isomer
