// Materialization of global classes (paper §2.2, Fig. 6).
//
// The centralized approach ships every object of the local root and branch
// classes to the global processing site and integrates the constituent
// extents with an *outerjoin over GOids*: isomeric objects collapse into one
// materialized object per real-world entity, missing attribute values are
// filled from whichever isomeric object defines them, and LOid references
// are rewritten to GOid references.
//
// Value combination policy: attributes are filled from constituents in
// ascending DbId order, first non-null value wins. On consistent federations
// (see Federation::check_consistency) the order cannot change the outcome.
#pragma once

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "isomer/federation/federation.hpp"
#include "isomer/query/query.hpp"
#include "isomer/query/result.hpp"

namespace isomer {

/// One integrated object: values aligned with the GlobalClass definition,
/// references expressed as GlobalRefs.
struct MaterializedObject {
  GOid id;
  std::vector<Value> values;
};

/// The integrated extent of one global class.
class MaterializedExtent {
 public:
  MaterializedExtent() = default;
  explicit MaterializedExtent(const GlobalClass& cls) : cls_(&cls) {}

  [[nodiscard]] const GlobalClass& cls() const;
  [[nodiscard]] std::size_t size() const noexcept { return objects_.size(); }
  [[nodiscard]] const std::vector<MaterializedObject>& objects()
      const noexcept {
    return objects_;
  }
  [[nodiscard]] const MaterializedObject* find(GOid id) const noexcept;

  void insert(MaterializedObject obj);

  /// Pre-sizes for `n` objects (the outerjoin knows the entity count of the
  /// class up front — reserve before inserting to avoid rehash churn).
  void reserve(std::size_t n);

 private:
  const GlobalClass* cls_ = nullptr;
  std::vector<MaterializedObject> objects_;
  std::unordered_map<GOid, std::size_t> by_id_;
};

/// A set of materialized global extents — the global site's integrated view.
class MaterializedView {
 public:
  [[nodiscard]] bool has_extent(std::string_view global_class) const noexcept;
  [[nodiscard]] const MaterializedExtent& extent(
      std::string_view global_class) const;
  MaterializedExtent& add_extent(const GlobalClass& cls);

 private:
  std::unordered_map<std::string, MaterializedExtent> extents_;
};

/// The global classes a query touches: its range class plus every branch
/// class reached by a target or predicate path.
[[nodiscard]] std::vector<std::string> classes_involved(
    const GlobalSchema& schema, const GlobalQuery& query);

/// How the outerjoin combines attribute values of isomeric objects.
enum class MergePolicy {
  /// Ascending DbId order, first non-null wins (the default; on consistent
  /// federations the order cannot change the outcome).
  FirstNonNull,
  /// Like FirstNonNull, but *multi-valued* complex attributes take the
  /// union of all isomers' reference sets — the paper's §5 third
  /// future-work item ("multi-valued attributes whose values come from
  /// attributes in different component databases"). Single-valued
  /// attributes are unaffected. Note the localized strategies evaluate
  /// set-valued attributes per database (the paper leaves their protocol
  /// for this case open), so union-merged answers are a centralized-only
  /// capability.
  UnionSets,
};

/// Integrates the given global classes from all component databases.
/// Charges one comparison per constituent object (the outerjoin's GOid
/// probe) and table probes for reference rewriting. When `exclude` is
/// non-null, isomeric objects living in those databases are skipped — the
/// integrated view a degraded federation can actually build when those
/// sites are unreachable (fault::DegradeMode::Partial). An entity whose
/// every isomer is excluded still gets a materialized object (all-null
/// values): the GOid table at the global site remembers the entity even
/// when no component can describe it.
[[nodiscard]] MaterializedView materialize(
    const Federation& federation, const std::vector<std::string>& classes,
    AccessMeter* meter = nullptr,
    MergePolicy policy = MergePolicy::FirstNonNull,
    const std::set<DbId>* exclude = nullptr);

/// Evaluates a global query against a materialized view (the centralized
/// approach's phase P): three-valued predicate evaluation over the
/// integrated objects; True conjunction => certain row, Unknown => maybe
/// row, False => eliminated.
[[nodiscard]] QueryResult evaluate_global(const MaterializedView& view,
                                          const GlobalSchema& schema,
                                          const GlobalQuery& query,
                                          AccessMeter* meter = nullptr);

}  // namespace isomer
