#include "isomer/federation/signature.hpp"

namespace isomer {

namespace {

std::uint64_t fnv1a(std::string_view text, std::uint64_t seed) noexcept {
  std::uint64_t hash = 1469598103934665603ULL ^ seed;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

Signature token_mask(std::string_view token) {
  Signature mask;
  for (unsigned i = 0; i < SignatureIndex::kHashes; ++i)
    mask.set(fnv1a(token, 0x9e3779b97f4a7c15ULL * (i + 1)) & 255);
  return mask;
}

void merge(Signature& into, const Signature& from) noexcept {
  for (std::size_t i = 0; i < into.bits.size(); ++i)
    into.bits[i] |= from.bits[i];
}

}  // namespace

Signature SignatureIndex::value_mask(std::string_view global_attr,
                                     const Value& value) {
  return token_mask(std::string(global_attr) + "=" + to_string(value));
}

Signature SignatureIndex::null_mask(std::string_view global_attr) {
  return token_mask(std::string(global_attr) + "\x01null");
}

SignatureIndex SignatureIndex::build(const Federation& federation) {
  SignatureIndex index;
  for (const DbId db_id : federation.db_ids()) {
    const ComponentDatabase& database = federation.db(db_id);
    for (const GlobalClass& cls : federation.schema().classes()) {
      const auto constituent = cls.constituent_in(db_id);
      if (!constituent) continue;
      const ClassDef& local_class = database.schema().cls(
          cls.constituents()[*constituent].local_class);

      // Precompute the local index (or absence) of every global attribute.
      struct Binding {
        std::string_view global_attr;
        std::optional<std::size_t> local_index;
        bool primitive;
      };
      std::vector<Binding> bindings;
      for (std::size_t a = 0; a < cls.def().attribute_count(); ++a) {
        const AttrDef& attr = cls.def().attribute(a);
        std::optional<std::size_t> local_index;
        if (const auto& local_name = cls.local_attr(*constituent, a))
          local_index = local_class.find_attribute(*local_name);
        bindings.push_back(
            Binding{attr.name, local_index, !is_complex(attr.type)});
      }

      for (const Object& obj :
           database.extent(local_class.name()).objects()) {
        Signature sig;
        for (const Binding& binding : bindings) {
          if (!binding.primitive) continue;  // only primitive values indexed
          const Value* v = nullptr;
          if (binding.local_index) v = &obj.value(*binding.local_index);
          if (v == nullptr || v->is_null())
            merge(sig, null_mask(binding.global_attr));
          else
            merge(sig, value_mask(binding.global_attr, *v));
        }
        index.signatures_.emplace(obj.id(), sig);
      }
    }
  }
  return index;
}

SignatureIndex::Screen SignatureIndex::screen(LOid obj,
                                              std::string_view global_attr,
                                              const Value& literal,
                                              AccessMeter* meter) const {
  if (meter != nullptr) ++meter->comparisons;
  const auto it = signatures_.find(obj);
  if (it == signatures_.end()) return Screen::MaybeSatisfies;
  if (it->second.contains(value_mask(global_attr, literal)))
    return Screen::MaybeSatisfies;
  if (it->second.contains(null_mask(global_attr)))
    return Screen::MaybeSatisfies;
  return Screen::CannotSatisfy;
}

}  // namespace isomer
