// Object signatures (paper §3 intro / §5 future work; Table 1's S_s,
// Table 2's R_ss).
//
// A signature is a fixed-size superimposed code (S_s = 32 bytes = 256 bits)
// over an object's attribute values: each (global attribute, value) pair
// hashes to k bit positions. The index is a replicated auxiliary structure,
// like the GOid mapping tables, so a home database can *screen* candidate
// assistant objects before shipping check requests:
//
//   * the (attr, literal) bits are present      -> may satisfy: ship it;
//   * the (attr, NULL) marker bits are present  -> may be null (Unknown):
//                                                  ship it — Unknown vs
//                                                  False must be resolved
//                                                  at the owning site;
//   * neither                                   -> provably violates the
//                                                  equality predicate: emit
//                                                  a local False verdict,
//                                                  no transfer.
//
// False positives in the filter only cause unnecessary transfers, never a
// wrong answer, so the signature variants return exactly the same results
// as BL/PL. Missing attributes are encoded like nulls (they make the
// predicate Unknown, not False).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "isomer/common/value.hpp"
#include "isomer/federation/federation.hpp"

namespace isomer {

/// One object's signature: 256 bits.
struct Signature {
  std::array<std::uint64_t, 4> bits{};

  void set(std::uint64_t position) noexcept {
    bits[(position >> 6) & 3] |= std::uint64_t{1} << (position & 63);
  }
  [[nodiscard]] bool contains(const Signature& mask) const noexcept {
    for (std::size_t i = 0; i < bits.size(); ++i)
      if ((bits[i] & mask.bits[i]) != mask.bits[i]) return false;
    return true;
  }
  [[nodiscard]] bool empty() const noexcept {
    return bits[0] == 0 && bits[1] == 0 && bits[2] == 0 && bits[3] == 0;
  }
};

/// Replicated signature index over every GOid-mapped object.
class SignatureIndex {
 public:
  /// Number of hash functions per token.
  static constexpr unsigned kHashes = 3;

  /// Builds signatures for all constituent objects of the federation, keyed
  /// by LOid, using global attribute names (so any site can screen any
  /// database's objects).
  [[nodiscard]] static SignatureIndex build(const Federation& federation);

  /// Screening outcome for an equality predicate `attr = literal`.
  enum class Screen {
    CannotSatisfy,  ///< provably violates: safe to report False locally
    MaybeSatisfies  ///< may satisfy or be null: must be checked at the owner
  };

  /// Screens object `obj` against `global_attr = literal`. Unindexed
  /// objects screen as MaybeSatisfies (no information). Charges one
  /// comparison to `meter`.
  [[nodiscard]] Screen screen(LOid obj, std::string_view global_attr,
                              const Value& literal,
                              AccessMeter* meter = nullptr) const;

  [[nodiscard]] std::size_t size() const noexcept { return signatures_.size(); }

  /// Token mask helpers, exposed for tests.
  [[nodiscard]] static Signature value_mask(std::string_view global_attr,
                                            const Value& value);
  [[nodiscard]] static Signature null_mask(std::string_view global_attr);

 private:
  std::unordered_map<LOid, Signature> signatures_;
};

}  // namespace isomer
