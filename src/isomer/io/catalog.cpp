#include "isomer/io/catalog.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <map>
#include <optional>
#include <sstream>

namespace isomer {

namespace {

// ---------------------------------------------------------------- writing --

void write_quoted(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void write_type(std::ostream& out, const AttrType& type) {
  if (const auto* prim = std::get_if<PrimType>(&type)) {
    out << to_string(*prim);
    return;
  }
  const auto& cplx = std::get<ComplexType>(type);
  out << (cplx.multi_valued ? "refset " : "ref ");
  write_quoted(out, cplx.domain_class);
}

void write_value(std::ostream& out, const Value& v) {
  switch (v.kind()) {
    case ValueKind::Bool:
      out << "bool " << (v.as_bool() ? "true" : "false");
      return;
    case ValueKind::Int:
      out << "int " << v.as_int();
      return;
    case ValueKind::Real:
      out << "real " << std::setprecision(17) << v.as_real();
      return;
    case ValueKind::String:
      out << "str ";
      write_quoted(out, v.as_string());
      return;
    case ValueKind::LocalRef:
      out << "ref " << v.as_local_ref().local;
      return;
    case ValueKind::LocalRefSet: {
      out << "refset";
      for (const LOid& target : v.as_local_ref_set()) out << " " << target.local;
      return;
    }
    default:
      throw CatalogError("value kind " + std::string(to_string(v.kind())) +
                         " is not storable in a catalog");
  }
}

void write_database(std::ostream& out, const ComponentDatabase& db) {
  out << "database " << db.db().value() << " ";
  write_quoted(out, db.schema().db_name());
  out << "\n";

  for (const ClassDef& cls : db.schema().classes()) {
    out << "class ";
    write_quoted(out, cls.name());
    out << "\n";
    for (const AttrDef& attr : cls.attributes()) {
      out << "  attr ";
      write_quoted(out, attr.name);
      out << " ";
      write_type(out, attr.type);
      out << "\n";
    }
    if (cls.identity_attribute()) {
      out << "  identity ";
      write_quoted(out, *cls.identity_attribute());
      out << "\n";
    }
  }

  // Objects across all classes, in ascending LOid order, so reloading
  // through the sequential allocator reproduces the identifiers.
  struct Entry {
    const Object* object;
    const ClassDef* cls;
  };
  std::vector<Entry> entries;
  for (const ClassDef& cls : db.schema().classes())
    for (const Object& obj : db.extent(cls.name()).objects())
      entries.push_back(Entry{&obj, &cls});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.object->id().local < b.object->id().local;
            });
  for (const Entry& entry : entries) {
    out << "object ";
    write_quoted(out, entry.cls->name());
    out << " " << entry.object->id().local << "\n";
    for (std::size_t a = 0; a < entry.cls->attribute_count(); ++a) {
      const Value& v = entry.object->value(a);
      if (v.is_null()) continue;
      out << "  ";
      write_quoted(out, entry.cls->attribute(a).name);
      out << " = ";
      write_value(out, v);
      out << "\n";
    }
  }
  out << "end database\n";
}

void write_global(std::ostream& out, const GlobalSchema& schema) {
  for (const GlobalClass& cls : schema.classes()) {
    out << "global ";
    write_quoted(out, cls.name());
    out << "\n";
    for (const AttrDef& attr : cls.def().attributes()) {
      out << "  attr ";
      write_quoted(out, attr.name);
      out << " ";
      write_type(out, attr.type);
      out << "\n";
    }
    if (cls.def().identity_attribute()) {
      out << "  identity ";
      write_quoted(out, *cls.def().identity_attribute());
      out << "\n";
    }
    for (std::size_t c = 0; c < cls.constituents().size(); ++c) {
      const Constituent& constituent = cls.constituents()[c];
      out << "  constituent " << constituent.db.value() << " ";
      write_quoted(out, constituent.local_class);
      out << "\n";
      for (std::size_t a = 0; a < cls.def().attribute_count(); ++a) {
        if (const auto& local = cls.local_attr(c, a)) {
          out << "    bind ";
          write_quoted(out, cls.def().attribute(a).name);
          out << " ";
          write_quoted(out, *local);
          out << "\n";
        }
      }
    }
  }
}

void write_entities(std::ostream& out, const GoidTable& goids) {
  for (std::size_t i = 0; i < goids.entity_count(); ++i) {
    const GOid entity{static_cast<std::uint64_t>(i + 1)};
    out << "entity ";
    write_quoted(out, goids.class_of(entity));
    for (const LOid& isomer : goids.isomers_of(entity))
      out << " " << isomer.db.value() << ":" << isomer.local;
    out << "\n";
  }
}

// ---------------------------------------------------------------- reading --

/// Whitespace-separated tokens with quoted strings; `"..."` tokens are
/// marked so "42" (a string) and 42 (a number) stay distinct.
struct Tok {
  std::string text;
  bool quoted = false;
};

std::vector<Tok> tokenize(const std::string& line, std::size_t line_no) {
  std::vector<Tok> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') break;  // comment
    if (c == '"') {
      std::string text;
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) ++i;
        text += line[i++];
      }
      if (i >= line.size())
        throw CatalogError("line " + std::to_string(line_no) +
                           ": unterminated string");
      ++i;
      tokens.push_back(Tok{std::move(text), true});
      continue;
    }
    std::size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j])) &&
           line[j] != '"')
      ++j;
    tokens.push_back(Tok{line.substr(i, j - i), false});
    i = j;
  }
  return tokens;
}

[[noreturn]] void bad(std::size_t line_no, const std::string& message) {
  throw CatalogError("line " + std::to_string(line_no) + ": " + message);
}

class Loader {
 public:
  std::unique_ptr<Federation> load(std::istream& in) {
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const std::vector<Tok> tokens = tokenize(line, line_no);
      if (tokens.empty()) continue;
      dispatch(tokens, line_no);
    }
    finish_database();
    flush_global(line_no + 1);
    std::vector<std::unique_ptr<ComponentDatabase>> databases;
    for (auto& [id, db] : databases_) databases.push_back(std::move(db));
    return std::make_unique<Federation>(std::move(global_), std::move(databases),
                                        std::move(goids_));
  }

 private:
  void dispatch(const std::vector<Tok>& t, std::size_t line_no) {
    const std::string& head = t[0].text;
    if (t[0].quoted) {  // a value line inside an object
      object_value(t, line_no);
      return;
    }
    if (head == "database") return begin_database(t, line_no);
    if (head == "class") return begin_class(t, line_no);
    if (head == "attr") return route_attr(t, line_no);
    if (head == "identity") return route_identity(t, line_no);
    if (head == "object") return begin_object(t, line_no);
    if (head == "end") return finish_database();
    if (head == "global") {
      flush_global(line_no);
      return begin_global(t, line_no);
    }
    if (head == "constituent") return add_constituent(t, line_no);
    if (head == "bind") return add_binding(t, line_no);
    if (head == "entity") return add_entity(t, line_no);
    bad(line_no, "unknown directive '" + head + "'");
  }

  AttrType parse_type(const std::vector<Tok>& t, std::size_t from,
                      std::size_t line_no) {
    const std::string& word = t.at(from).text;
    if (word == "bool") return PrimType::Bool;
    if (word == "int") return PrimType::Int;
    if (word == "real") return PrimType::Real;
    if (word == "string") return PrimType::String;
    if (word == "ref" || word == "refset") {
      if (from + 1 >= t.size()) bad(line_no, "ref needs a domain class");
      return ComplexType{t[from + 1].text, word == "refset"};
    }
    bad(line_no, "unknown attribute type '" + word + "'");
  }

  // --- component databases ---

  void begin_database(const std::vector<Tok>& t, std::size_t line_no) {
    finish_database();
    if (t.size() < 3) bad(line_no, "database needs an id and a name");
    current_db_id_ = DbId{static_cast<std::uint16_t>(std::stoul(t[1].text))};
    building_schema_ = ComponentSchema(current_db_id_, t[2].text);
    in_database_ = true;
    schema_done_ = false;
  }

  void begin_class(const std::vector<Tok>& t, std::size_t line_no) {
    if (!in_database_ || schema_done_) bad(line_no, "class outside a database");
    current_class_ = &building_schema_.add_class(t.at(1).text);
  }

  void route_attr(const std::vector<Tok>& t, std::size_t line_no) {
    const AttrType type = parse_type(t, 2, line_no);
    if (buffering_global_) {
      pending_attrs_.emplace_back(t.at(1).text, type);
      return;
    }
    if (current_class_ == nullptr) bad(line_no, "attr outside a class");
    current_class_->add_attribute(t.at(1).text, type);
  }

  void route_identity(const std::vector<Tok>& t, std::size_t line_no) {
    if (buffering_global_) {
      pending_identity_ = t.at(1).text;
      return;
    }
    if (current_class_ == nullptr) bad(line_no, "identity outside a class");
    current_class_->set_identity_attribute(t.at(1).text);
  }

  void ensure_store(std::size_t line_no) {
    if (!in_database_) bad(line_no, "object outside a database");
    if (!schema_done_) {
      building_schema_.validate();
      const auto [it, inserted] = databases_.emplace(
          current_db_id_.value(),
          std::make_unique<ComponentDatabase>(building_schema_));
      if (!inserted) bad(line_no, "duplicate database id");
      current_store_ = it->second.get();
      schema_done_ = true;
    }
  }

  void begin_object(const std::vector<Tok>& t, std::size_t line_no) {
    ensure_store(line_no);
    const auto declared = static_cast<std::uint32_t>(std::stoul(t.at(2).text));
    const LOid assigned = current_store_->insert(t.at(1).text);
    if (assigned.local != declared)
      bad(line_no, "object ids must appear in allocation order (expected " +
                       std::to_string(assigned.local) + ", declared " +
                       std::to_string(declared) + ")");
    current_object_ = assigned;
  }

  void object_value(const std::vector<Tok>& t, std::size_t line_no) {
    if (current_store_ == nullptr) bad(line_no, "value line outside an object");
    if (t.size() < 3 || t[1].text != "=") bad(line_no, "expected \"attr\" = ...");
    const std::string& kind = t[2].text;
    Value value;
    if (kind == "bool") {
      value = Value(t.at(3).text == "true");
    } else if (kind == "int") {
      value = Value(static_cast<std::int64_t>(std::stoll(t.at(3).text)));
    } else if (kind == "real") {
      value = Value(std::stod(t.at(3).text));
    } else if (kind == "str") {
      value = Value(t.at(3).text);
    } else if (kind == "ref") {
      value = Value(LocalRef{LOid{
          current_db_id_, static_cast<std::uint32_t>(std::stoul(t.at(3).text))}});
    } else if (kind == "refset") {
      LocalRefSet set;
      for (std::size_t i = 3; i < t.size(); ++i)
        set.targets.push_back(LOid{
            current_db_id_, static_cast<std::uint32_t>(std::stoul(t[i].text))});
      value = Value(std::move(set));
    } else {
      bad(line_no, "unknown value kind '" + kind + "'");
    }
    current_store_->set_attribute(current_object_, t[0].text,
                                  std::move(value));
  }

  void finish_database() {
    if (in_database_ && !schema_done_) {
      // A database with a schema but no objects still needs its store.
      building_schema_.validate();
      databases_.emplace(current_db_id_.value(),
                         std::make_unique<ComponentDatabase>(building_schema_));
    }
    in_database_ = false;
    current_class_ = nullptr;
    current_store_ = nullptr;
  }

  // --- global schema ---

  void begin_global(const std::vector<Tok>& t, std::size_t line_no) {
    finish_database();
    pending_global_name_ = t.at(1).text;
    pending_attrs_.clear();
    pending_identity_.reset();
    pending_constituents_.clear();
    pending_bindings_.clear();
    // Construction is deferred until the whole section has been read:
    // attrs/identity/constituents/bindings are buffered and flushed when
    // the next section begins.
    buffering_global_ = true;
    (void)line_no;
  }

  void add_constituent(const std::vector<Tok>& t, std::size_t line_no) {
    if (!buffering_global_) bad(line_no, "constituent outside a global class");
    pending_constituents_.push_back(
        Constituent{DbId{static_cast<std::uint16_t>(std::stoul(t.at(1).text))},
                    t.at(2).text});
    pending_bindings_.emplace_back();
  }

  void add_binding(const std::vector<Tok>& t, std::size_t line_no) {
    if (pending_bindings_.empty()) bad(line_no, "bind outside a constituent");
    pending_bindings_.back().emplace_back(t.at(1).text, t.at(2).text);
  }

  void add_entity(const std::vector<Tok>& t, std::size_t line_no) {
    flush_global(line_no);
    std::vector<LOid> isomers;
    for (std::size_t i = 2; i < t.size(); ++i) {
      const std::string& pair = t[i].text;
      const std::size_t colon = pair.find(':');
      if (colon == std::string::npos) bad(line_no, "entity pairs are db:loid");
      isomers.push_back(
          LOid{DbId{static_cast<std::uint16_t>(
                   std::stoul(pair.substr(0, colon)))},
               static_cast<std::uint32_t>(std::stoul(pair.substr(colon + 1)))});
    }
    if (isomers.empty()) bad(line_no, "entity needs at least one object");
    (void)goids_.register_entity(t.at(1).text, isomers);
  }

  /// Materializes the buffered global class (called when the section ends).
  void flush_global(std::size_t line_no) {
    if (!buffering_global_) return;
    if (pending_constituents_.empty())
      bad(line_no, "global class without constituents");
    GlobalClass cls(pending_global_name_, pending_constituents_);
    for (const auto& [name, type] : pending_attrs_)
      cls.mutable_def().add_attribute(name, type);
    cls.pad_local_names();
    for (std::size_t c = 0; c < pending_bindings_.size(); ++c)
      for (const auto& [global_attr, local_attr] : pending_bindings_[c]) {
        const auto index = cls.def().find_attribute(global_attr);
        if (!index) bad(line_no, "bind references unknown attribute");
        cls.bind_local_attr(c, *index, local_attr);
      }
    if (pending_identity_)
      cls.mutable_def().set_identity_attribute(*pending_identity_);
    global_.add_class(std::move(cls));
    buffering_global_ = false;
  }


  std::map<std::uint16_t, std::unique_ptr<ComponentDatabase>> databases_;
  ComponentSchema building_schema_;
  ComponentDatabase* current_store_ = nullptr;
  ClassDef* current_class_ = nullptr;
  DbId current_db_id_{};
  LOid current_object_{};
  bool in_database_ = false;
  bool schema_done_ = false;

  bool buffering_global_ = false;
  std::string pending_global_name_;
  std::vector<std::pair<std::string, AttrType>> pending_attrs_;
  std::optional<std::string> pending_identity_;
  std::vector<Constituent> pending_constituents_;
  std::vector<std::vector<std::pair<std::string, std::string>>>
      pending_bindings_;

  GlobalSchema global_;
  GoidTable goids_;
};

}  // namespace

void save_catalog(const Federation& federation, std::ostream& out) {
  out << "# isomer catalog v1\n";
  for (const DbId db : federation.db_ids())
    write_database(out, federation.db(db));
  write_global(out, federation.schema());
  write_entities(out, federation.goids());
}

std::string save_catalog(const Federation& federation) {
  std::ostringstream out;
  save_catalog(federation, out);
  return out.str();
}

std::unique_ptr<Federation> load_catalog(std::istream& in) {
  Loader loader;
  return loader.load(in);
}

std::unique_ptr<Federation> load_catalog(std::string_view text) {
  std::istringstream in{std::string(text)};
  return load_catalog(in);
}

void save_catalog_file(const Federation& federation, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw CatalogError("cannot open " + path + " for writing");
  save_catalog(federation, out);
  if (!out) throw CatalogError("failed writing " + path);
}

std::unique_ptr<Federation> load_catalog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CatalogError("cannot open " + path);
  return load_catalog(in);
}

}  // namespace isomer
