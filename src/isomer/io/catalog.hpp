// Federation catalogs: a line-oriented text format that round-trips an
// entire federation — component schemas, every object, the integrated
// global schema with its attribute bindings, and the GOid mapping tables.
//
//   # isomer catalog v1
//   database 1 "DB1"
//   class "Student"
//     attr "s-no" int
//     attr "advisor" ref "Teacher"
//   object "Student" 6
//     "s-no" = int 804301
//     "advisor" = ref 3
//   end database
//   global "Student" identity="s-no"
//     attr "s-no" int
//     attr "address" ref "Address"
//     constituent 1 "Student" "s-no"="s-no" "advisor"="advisor" ...
//   entity "Student" 1:6 2:6
//
// Design notes:
//  * objects are written in ascending LOid order; the loader re-inserts in
//    that order, and because LOid allocation is sequential per database the
//    original identifiers are reproduced exactly (asserted while loading);
//  * strings are quoted with backslash escapes; values are kind-tagged;
//  * entities appear in GOid order so the table round-trips bit-exactly;
//  * load_catalog() validates through the normal Federation constructor, so
//    a hand-edited catalog gets the same integrity checks as built data.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "isomer/common/error.hpp"
#include "isomer/federation/federation.hpp"

namespace isomer {

/// Thrown on malformed catalog text; carries the line number.
class CatalogError : public Error {
 public:
  using Error::Error;
};

/// Serializes the federation into catalog text.
[[nodiscard]] std::string save_catalog(const Federation& federation);
void save_catalog(const Federation& federation, std::ostream& out);

/// Parses catalog text back into a federation.
[[nodiscard]] std::unique_ptr<Federation> load_catalog(std::string_view text);
[[nodiscard]] std::unique_ptr<Federation> load_catalog(std::istream& in);

/// File convenience wrappers (throw CatalogError on I/O failure).
void save_catalog_file(const Federation& federation, const std::string& path);
[[nodiscard]] std::unique_ptr<Federation> load_catalog_file(
    const std::string& path);

}  // namespace isomer
