#include "isomer/objmodel/class_def.hpp"

#include <algorithm>

#include "isomer/common/error.hpp"

namespace isomer {

std::string_view to_string(PrimType t) noexcept {
  switch (t) {
    case PrimType::Bool:
      return "bool";
    case PrimType::Int:
      return "int";
    case PrimType::Real:
      return "real";
    case PrimType::String:
      return "string";
  }
  return "int";
}

bool is_complex(const AttrType& t) noexcept {
  return std::holds_alternative<ComplexType>(t);
}

std::string to_string(const AttrType& t) {
  if (const auto* prim = std::get_if<PrimType>(&t))
    return std::string(to_string(*prim));
  const auto& cplx = std::get<ComplexType>(t);
  return cplx.multi_valued ? "set<" + cplx.domain_class + ">"
                           : cplx.domain_class;
}

bool integration_compatible(const AttrType& a, const AttrType& b) {
  if (const auto* pa = std::get_if<PrimType>(&a)) {
    const auto* pb = std::get_if<PrimType>(&b);
    return pb != nullptr && *pa == *pb;
  }
  // Complex attributes integrate when both are complex with matching
  // multiplicity; the domain classes are unified via class correspondences.
  const auto& ca = std::get<ComplexType>(a);
  const auto* cb = std::get_if<ComplexType>(&b);
  return cb != nullptr && ca.multi_valued == cb->multi_valued;
}

ClassDef& ClassDef::add_attribute(std::string attr_name, AttrType type) {
  if (has_attribute(attr_name))
    throw SchemaError("class " + name_ + " already has attribute " +
                      attr_name);
  attrs_.push_back(AttrDef{std::move(attr_name), std::move(type)});
  return *this;
}

ClassDef& ClassDef::set_identity_attribute(const std::string& attr_name) {
  const auto index = find_attribute(attr_name);
  if (!index)
    throw SchemaError("class " + name_ + " has no attribute " + attr_name +
                      " to use as identity");
  if (is_complex(attrs_[*index].type))
    throw SchemaError("identity attribute " + attr_name + " of class " +
                      name_ + " must be primitive");
  identity_attr_ = attr_name;
  return *this;
}

const AttrDef& ClassDef::attribute(std::size_t index) const {
  expects(index < attrs_.size(), "ClassDef::attribute index out of range");
  return attrs_[index];
}

std::optional<std::size_t> ClassDef::find_attribute(
    std::string_view attr_name) const noexcept {
  const auto it = std::find_if(
      attrs_.begin(), attrs_.end(),
      [&](const AttrDef& attr) { return attr.name == attr_name; });
  if (it == attrs_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - attrs_.begin());
}

std::ostream& operator<<(std::ostream& os, const ClassDef& cls) {
  os << "class " << cls.name() << " {";
  const char* sep = " ";
  for (const AttrDef& attr : cls.attributes()) {
    os << sep << attr.name << ": " << to_string(attr.type);
    sep = ", ";
  }
  return os << " }";
}

}  // namespace isomer
