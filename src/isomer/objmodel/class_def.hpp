// Class definitions for the object data model.
//
// A class has named attributes; each attribute is either *primitive*
// (bool / int / real / string) or *complex* — its value is a reference to an
// object of a domain class, forming the class composition hierarchy that the
// paper's nested predicates traverse (e.g. Student.advisor.department.name).
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace isomer {

/// Primitive attribute types.
enum class PrimType : unsigned char { Bool, Int, Real, String };

[[nodiscard]] std::string_view to_string(PrimType t) noexcept;

/// A complex attribute: its values are references to objects of
/// `domain_class`. `multi_valued` marks set-valued complex attributes
/// (paper §5 future work; supported as an extension).
struct ComplexType {
  std::string domain_class;
  bool multi_valued = false;

  friend bool operator==(const ComplexType&, const ComplexType&) = default;
};

/// Attribute type: primitive or complex.
using AttrType = std::variant<PrimType, ComplexType>;

[[nodiscard]] bool is_complex(const AttrType& t) noexcept;
[[nodiscard]] std::string to_string(const AttrType& t);

/// Two attribute types are integration-compatible when they are the same
/// primitive type, or both complex (their domain classes are matched through
/// the global schema's class correspondences, not by name).
[[nodiscard]] bool integration_compatible(const AttrType& a, const AttrType& b);

/// One attribute of a class.
struct AttrDef {
  std::string name;
  AttrType type;

  friend bool operator==(const AttrDef&, const AttrDef&) = default;
};

/// A class definition: ordered attributes plus an optional *identity
/// attribute* used by the isomerism detector to recognize objects that
/// represent the same real-world entity across databases (e.g. Student.s-no).
class ClassDef {
 public:
  ClassDef() = default;
  explicit ClassDef(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Appends an attribute; throws SchemaError on duplicate names.
  ClassDef& add_attribute(std::string attr_name, AttrType type);

  /// Declares which attribute identifies the real-world entity; throws
  /// SchemaError if the attribute does not exist or is complex.
  ClassDef& set_identity_attribute(const std::string& attr_name);

  [[nodiscard]] std::size_t attribute_count() const noexcept {
    return attrs_.size();
  }
  [[nodiscard]] const AttrDef& attribute(std::size_t index) const;
  [[nodiscard]] const std::vector<AttrDef>& attributes() const noexcept {
    return attrs_;
  }

  /// Index of the named attribute, or nullopt when this class does not
  /// define it (i.e. it is a *missing attribute* of this class).
  [[nodiscard]] std::optional<std::size_t> find_attribute(
      std::string_view attr_name) const noexcept;

  [[nodiscard]] bool has_attribute(std::string_view attr_name) const noexcept {
    return find_attribute(attr_name).has_value();
  }

  [[nodiscard]] const std::optional<std::string>& identity_attribute()
      const noexcept {
    return identity_attr_;
  }

 private:
  std::string name_;
  std::vector<AttrDef> attrs_;
  std::optional<std::string> identity_attr_;
};

std::ostream& operator<<(std::ostream& os, const ClassDef& cls);

}  // namespace isomer
