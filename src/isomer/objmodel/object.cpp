#include "isomer/objmodel/object.hpp"

#include "isomer/common/error.hpp"

namespace isomer {

const Value& Object::value(std::size_t attr_index) const {
  expects(attr_index < values_.size(), "Object::value index out of range");
  return values_[attr_index];
}

void Object::set_value(std::size_t attr_index, Value v) {
  expects(attr_index < values_.size(), "Object::set_value index out of range");
  values_[attr_index] = std::move(v);
}

std::ostream& operator<<(std::ostream& os, const Object& obj) {
  os << obj.id() << " {";
  const char* sep = " ";
  for (const Value& v : obj.values()) {
    os << sep << v;
    sep = ", ";
  }
  return os << " }";
}

}  // namespace isomer
