// Object instances.
//
// An object stores one value per attribute of its class, positionally aligned
// with the ClassDef's attribute list. Unset attributes are null — the paper's
// "original null values" source of missing data.
#pragma once

#include <ostream>
#include <vector>

#include "isomer/common/ids.hpp"
#include "isomer/common/value.hpp"
#include "isomer/objmodel/class_def.hpp"

namespace isomer {

/// One object instance of a component-database class.
class Object {
 public:
  Object() = default;
  Object(LOid id, const ClassDef& cls)
      : id_(id), values_(cls.attribute_count()) {}

  [[nodiscard]] LOid id() const noexcept { return id_; }

  [[nodiscard]] std::size_t attribute_count() const noexcept {
    return values_.size();
  }

  [[nodiscard]] const Value& value(std::size_t attr_index) const;
  void set_value(std::size_t attr_index, Value v);

  [[nodiscard]] const std::vector<Value>& values() const noexcept {
    return values_;
  }

 private:
  LOid id_{};
  std::vector<Value> values_;
};

/// Prints `LOid { attr values... }` for diagnostics.
std::ostream& operator<<(std::ostream& os, const Object& obj);

}  // namespace isomer
