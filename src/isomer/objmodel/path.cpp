#include "isomer/objmodel/path.hpp"

#include <sstream>

#include "isomer/common/error.hpp"

namespace isomer {

PathExpr PathExpr::parse(std::string_view dotted) {
  if (dotted.empty()) throw QueryError("empty path expression");
  std::vector<std::string> steps;
  std::size_t begin = 0;
  while (begin <= dotted.size()) {
    const std::size_t dot = dotted.find('.', begin);
    const std::size_t end = dot == std::string_view::npos ? dotted.size() : dot;
    if (end == begin)
      throw QueryError("empty step in path expression '" +
                       std::string(dotted) + "'");
    steps.emplace_back(dotted.substr(begin, end - begin));
    if (dot == std::string_view::npos) break;
    begin = dot + 1;
  }
  return PathExpr(std::move(steps));
}

const std::string& PathExpr::step(std::size_t i) const {
  expects(i < steps_.size(), "PathExpr::step index out of range");
  return steps_[i];
}

const std::string& PathExpr::last() const {
  expects(!steps_.empty(), "PathExpr::last on empty path");
  return steps_.back();
}

PathExpr PathExpr::prefix(std::size_t end) const {
  expects(end <= steps_.size(), "PathExpr::prefix end out of range");
  return PathExpr(std::vector<std::string>(steps_.begin(),
                                           steps_.begin() + static_cast<std::ptrdiff_t>(end)));
}

PathExpr PathExpr::suffix(std::size_t begin) const {
  expects(begin <= steps_.size(), "PathExpr::suffix begin out of range");
  return PathExpr(std::vector<std::string>(
      steps_.begin() + static_cast<std::ptrdiff_t>(begin), steps_.end()));
}

std::string PathExpr::dotted() const {
  std::ostringstream os;
  const char* sep = "";
  for (const std::string& s : steps_) {
    os << sep << s;
    sep = ".";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const PathExpr& path) {
  return os << path.dotted();
}

const AttrType& ResolvedPath::result_type() const {
  expects(!steps.empty(), "ResolvedPath::result_type on empty path");
  return steps.back().attr_type;
}

std::vector<std::string> ResolvedPath::classes_on_path() const {
  std::vector<std::string> names;
  names.reserve(steps.size() + 1);
  for (const ResolvedStep& step : steps) names.push_back(step.class_name);
  // The final step may open one more class (when it is complex).
  if (!steps.empty()) {
    if (const auto* cplx = std::get_if<ComplexType>(&steps.back().attr_type))
      names.push_back(cplx->domain_class);
  }
  return names;
}

ResolvedPath resolve_path(const ClassLookup& lookup,
                          std::string_view root_class, const PathExpr& path) {
  if (path.length() == 0) throw QueryError("cannot resolve an empty path");
  const ClassDef* cls = lookup(root_class);
  if (cls == nullptr)
    throw QueryError("unknown range class " + std::string(root_class));

  ResolvedPath resolved;
  resolved.steps.reserve(path.length());
  for (std::size_t i = 0; i < path.length(); ++i) {
    const std::string& attr_name = path.step(i);
    const auto index = cls->find_attribute(attr_name);
    if (!index)
      throw QueryError("class " + cls->name() + " has no attribute " +
                       attr_name + " (path " + path.dotted() + ")");
    const AttrDef& attr = cls->attribute(*index);
    resolved.steps.push_back(ResolvedStep{cls->name(), *index, attr.type});

    const bool last = (i + 1 == path.length());
    if (!last) {
      const auto* cplx = std::get_if<ComplexType>(&attr.type);
      if (cplx == nullptr)
        throw QueryError("attribute " + attr_name + " of class " +
                         cls->name() + " is primitive but path " +
                         path.dotted() + " continues past it");
      cls = lookup(cplx->domain_class);
      if (cls == nullptr)
        throw QueryError("attribute " + attr_name + " of class " +
                         resolved.steps.back().class_name +
                         " references unknown class " + cplx->domain_class);
    }
  }
  return resolved;
}

}  // namespace isomer
