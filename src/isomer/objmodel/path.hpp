// Path expressions.
//
// Nested attributes are written as path expressions rooted at a query's range
// class, e.g. `advisor.department.name` on Student (paper Fig. 3). All steps
// but the last must be complex attributes; the last may be primitive or
// complex.
#pragma once

#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "isomer/objmodel/class_def.hpp"

namespace isomer {

/// A dotted attribute path. A path of length 1 is a plain attribute; longer
/// paths are the paper's *nested* attributes.
class PathExpr {
 public:
  PathExpr() = default;
  explicit PathExpr(std::vector<std::string> steps)
      : steps_(std::move(steps)) {}

  /// Parses a dotted path such as "advisor.department.name"; throws
  /// QueryError on empty input or empty steps.
  [[nodiscard]] static PathExpr parse(std::string_view dotted);

  [[nodiscard]] const std::vector<std::string>& steps() const noexcept {
    return steps_;
  }
  [[nodiscard]] std::size_t length() const noexcept { return steps_.size(); }
  [[nodiscard]] bool is_nested() const noexcept { return steps_.size() > 1; }
  [[nodiscard]] const std::string& step(std::size_t i) const;
  [[nodiscard]] const std::string& last() const;

  /// The prefix of this path up to (excluding) `end`; prefix(0) is empty.
  [[nodiscard]] PathExpr prefix(std::size_t end) const;

  /// The suffix of this path starting at step `begin`.
  [[nodiscard]] PathExpr suffix(std::size_t begin) const;

  [[nodiscard]] std::string dotted() const;

  friend bool operator==(const PathExpr&, const PathExpr&) = default;

 private:
  std::vector<std::string> steps_;
};

std::ostream& operator<<(std::ostream& os, const PathExpr& path);

/// Maps a class name to its definition; abstracts over ComponentSchema and
/// GlobalSchema so path resolution can be shared.
using ClassLookup = std::function<const ClassDef*(std::string_view)>;

/// One resolved step of a path.
struct ResolvedStep {
  std::string class_name;   ///< class the step starts from
  std::size_t attr_index;   ///< attribute position within that class
  AttrType attr_type;       ///< the attribute's type
};

/// A path fully resolved against a schema: every step exists and every
/// non-final step is complex.
struct ResolvedPath {
  std::vector<ResolvedStep> steps;

  [[nodiscard]] const AttrType& result_type() const;
  /// Class names traversed by the path *including* the root class — i.e. the
  /// branch classes of the query, in order.
  [[nodiscard]] std::vector<std::string> classes_on_path() const;
};

/// Resolves `path` starting at `root_class`; throws QueryError when a step
/// is undefined, a non-final step is primitive, or the root class is unknown.
[[nodiscard]] ResolvedPath resolve_path(const ClassLookup& lookup,
                                        std::string_view root_class,
                                        const PathExpr& path);

}  // namespace isomer
