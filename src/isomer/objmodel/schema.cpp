#include "isomer/objmodel/schema.hpp"

#include "isomer/common/error.hpp"

namespace isomer {

ClassDef& ComponentSchema::add_class(ClassDef cls) {
  if (has_class(cls.name()))
    throw SchemaError("schema " + db_name_ + " already defines class " +
                      cls.name());
  by_name_.emplace(cls.name(), classes_.size());
  classes_.push_back(std::move(cls));
  return classes_.back();
}

bool ComponentSchema::has_class(std::string_view class_name) const noexcept {
  return by_name_.find(std::string(class_name)) != by_name_.end();
}

const ClassDef& ComponentSchema::cls(std::string_view class_name) const {
  const ClassDef* found = find_class(class_name);
  if (found == nullptr)
    throw SchemaError("schema " + db_name_ + " has no class " +
                      std::string(class_name));
  return *found;
}

const ClassDef* ComponentSchema::find_class(
    std::string_view class_name) const noexcept {
  const auto it = by_name_.find(std::string(class_name));
  if (it == by_name_.end()) return nullptr;
  return &classes_[it->second];
}

void ComponentSchema::validate() const {
  for (const ClassDef& cls : classes_) {
    for (const AttrDef& attr : cls.attributes()) {
      if (const auto* cplx = std::get_if<ComplexType>(&attr.type)) {
        if (!has_class(cplx->domain_class))
          throw SchemaError("class " + cls.name() + " attribute " + attr.name +
                            " references undefined class " +
                            cplx->domain_class + " in schema " + db_name_);
      }
    }
  }
}

std::ostream& operator<<(std::ostream& os, const ComponentSchema& schema) {
  os << "schema " << schema.db_name() << " (DB" << schema.db().value()
     << ")\n";
  for (const ClassDef& cls : schema.classes()) os << "  " << cls << "\n";
  return os;
}

}  // namespace isomer
