// Component database schemas.
//
// Each component database exposes a schema: a set of class definitions whose
// complex attributes reference other classes of the *same* component schema
// (class composition hierarchy, Fig. 1 of the paper).
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "isomer/common/ids.hpp"
#include "isomer/objmodel/class_def.hpp"

namespace isomer {

/// The schema of one component database.
class ComponentSchema {
 public:
  ComponentSchema() = default;
  ComponentSchema(DbId db, std::string db_name)
      : db_(db), db_name_(std::move(db_name)) {}

  [[nodiscard]] DbId db() const noexcept { return db_; }
  [[nodiscard]] const std::string& db_name() const noexcept {
    return db_name_;
  }

  /// Adds a class; throws SchemaError on duplicate class names.
  ClassDef& add_class(ClassDef cls);

  /// Convenience: add an empty class and return it for fluent definition.
  ClassDef& add_class(std::string class_name) {
    return add_class(ClassDef(std::move(class_name)));
  }

  [[nodiscard]] bool has_class(std::string_view class_name) const noexcept;

  /// Lookup by name; throws SchemaError when absent.
  [[nodiscard]] const ClassDef& cls(std::string_view class_name) const;

  /// Lookup by name; nullptr when absent.
  [[nodiscard]] const ClassDef* find_class(
      std::string_view class_name) const noexcept;

  [[nodiscard]] const std::vector<ClassDef>& classes() const noexcept {
    return classes_;
  }

  /// Checks that every complex attribute references a class defined in this
  /// schema; throws SchemaError otherwise. Call after the schema is built.
  void validate() const;

 private:
  DbId db_{};
  std::string db_name_;
  std::vector<ClassDef> classes_;
  std::unordered_map<std::string, std::size_t> by_name_;
};

std::ostream& operator<<(std::ostream& os, const ComponentSchema& schema);

}  // namespace isomer
