#include "isomer/obs/jsonl.hpp"

#include <cstdio>
#include <sstream>

namespace isomer::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string span_to_json(const PhaseSpan& span, const SpanContext* context) {
  std::ostringstream os;
  os << "{\"type\":\"span\"";
  if (context != nullptr && !context->figure.empty()) {
    os << ",\"figure\":\"" << json_escape(context->figure) << "\""
       << ",\"x_name\":\"" << json_escape(context->x_name) << "\""
       << ",\"x\":" << context->x << ",\"trial\":" << context->trial;
  }
  os << ",\"strategy\":\"" << json_escape(span.strategy) << "\""
     << ",\"query\":" << span.query << ",\"phase\":\""
     << to_string(span.phase) << "\",\"site\":\"" << json_escape(span.site)
     << "\",\"step\":\"" << json_escape(span.step) << "\""
     << ",\"start_ns\":" << span.start_ns << ",\"end_ns\":" << span.end_ns
     << ",\"meter\":{\"objects_scanned\":" << span.work.objects_scanned
     << ",\"objects_fetched\":" << span.work.objects_fetched
     << ",\"comparisons\":" << span.work.comparisons
     << ",\"table_probes\":" << span.work.table_probes
     << ",\"prim_slots\":" << span.work.prim_slots
     << ",\"ref_slots\":" << span.work.ref_slots << "}"
     << ",\"bytes\":" << span.bytes << ",\"messages\":" << span.messages
     << ",\"objects_in\":" << span.objects_in
     << ",\"objects_out\":" << span.objects_out
     << ",\"certs_resolved\":" << span.certs_resolved
     << ",\"certs_eliminated\":" << span.certs_eliminated << "}";
  return os.str();
}

std::string trace_header_json(std::string_view tool, unsigned jobs,
                              int samples, double scale, std::uint64_t seed) {
  std::ostringstream os;
  os << "{\"type\":\"header\",\"format\":\"isomer-trace-v1\",\"tool\":\""
     << json_escape(tool) << "\",\"jobs\":" << jobs
     << ",\"samples\":" << samples << ",\"scale\":" << scale
     << ",\"seed\":" << seed << "}";
  return os.str();
}

std::string metrics_to_json(const MetricsRegistry& registry) {
  std::ostringstream os;
  os << "{\"type\":\"metrics\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counter_values()) {
    os << (first ? "" : ",") << "\"" << json_escape(name) << "\":" << value;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : registry.histogram_values()) {
    os << (first ? "" : ",") << "\"" << json_escape(name)
       << "\":{\"count\":" << snap.count << ",\"sum\":" << snap.sum;
    // The summary fields only exist on non-empty histograms: an empty
    // snapshot's min/max are infinities, which JSON cannot carry.
    if (snap.count > 0)
      os << ",\"min\":" << snap.min << ",\"max\":" << snap.max
         << ",\"p50\":" << snap.p50() << ",\"p95\":" << snap.p95()
         << ",\"p99\":" << snap.p99();
    os << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

void write_spans(std::ostream& os, const TraceSession& session,
                 const SpanContext* context) {
  for (const PhaseSpan& span : session.spans())
    os << span_to_json(span, context) << "\n";
}

}  // namespace isomer::obs
