// The JSON Lines trace format ("isomer-trace-v1", docs/TRACING.md).
//
// A trace file is one JSON object per line:
//   line 1            a header record ({"type":"header", ...}) carrying the
//                     format name and the run parameters, including the
//                     harness's *effective* --jobs value;
//   following lines   span records ({"type":"span", ...}), one PhaseSpan
//                     each, optionally tagged with the emitting context
//                     (figure, sweep x, trial);
//   optionally last   a metrics record ({"type":"metrics", ...}) with the
//                     MetricsRegistry counter values.
//
// The encoding is a stable contract: downstream tooling diffs phase
// profiles between PRs, so fields are only ever added, never renamed or
// re-typed. tests/trace_schema_check.cpp validates emitted files against
// this schema.
#pragma once

#include <ostream>
#include <string>

#include "isomer/obs/metrics.hpp"
#include "isomer/obs/span.hpp"
#include "isomer/obs/trace_session.hpp"

namespace isomer::obs {

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Per-span context the bench harness attaches: which figure/sweep point
/// and Monte-Carlo trial produced the span. Empty figure = no context.
struct SpanContext {
  std::string figure;
  std::string x_name;
  double x = 0;
  std::uint64_t trial = 0;
};

/// One span record, without trailing newline.
[[nodiscard]] std::string span_to_json(const PhaseSpan& span,
                                       const SpanContext* context = nullptr);

/// The header record, without trailing newline. `jobs` must be the
/// effective thread count (never 0).
[[nodiscard]] std::string trace_header_json(std::string_view tool,
                                            unsigned jobs, int samples,
                                            double scale,
                                            std::uint64_t seed);

/// The metrics summary record, without trailing newline.
[[nodiscard]] std::string metrics_to_json(const MetricsRegistry& registry);

/// Writes a whole session as span records (no header), one line per span.
void write_spans(std::ostream& os, const TraceSession& session,
                 const SpanContext* context = nullptr);

}  // namespace isomer::obs
