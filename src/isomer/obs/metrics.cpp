#include "isomer/obs/metrics.hpp"

#include <cmath>
#include <sstream>

namespace isomer::obs {

void Histogram::record(double value) {
  std::size_t bucket = 0;
  if (value >= 1.0) {
    const double log2v = std::log2(value);
    bucket = log2v >= static_cast<double>(kBuckets - 1)
                 ? kBuckets - 1
                 : static_cast<std::size_t>(log2v);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++data_.count;
  data_.sum += value;
  if (value < data_.min) data_.min = value;
  if (value > data_.max) data_.max = value;
  ++data_.buckets[bucket];
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_ = Snapshot{.buckets = std::vector<std::uint64_t>(kBuckets, 0)};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    out.emplace_back(name, counter->value());
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
MetricsRegistry::histogram_values() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    out.emplace_back(name, histogram->snapshot());
  return out;
}

std::string MetricsRegistry::to_text() const {
  std::ostringstream os;
  for (const auto& [name, value] : counter_values())
    os << name << " = " << value << "\n";
  for (const auto& [name, snap] : histogram_values()) {
    os << name << ": count=" << snap.count << " mean=" << snap.mean();
    if (snap.count > 0) os << " min=" << snap.min << " max=" << snap.max;
    os << "\n";
  }
  return os.str();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace isomer::obs
