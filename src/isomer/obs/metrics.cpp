#include "isomer/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace isomer::obs {

void Histogram::record(double value) {
  std::size_t bucket = 0;
  if (value >= 1.0) {
    const double log2v = std::log2(value);
    bucket = log2v >= static_cast<double>(kBuckets - 1)
                 ? kBuckets - 1
                 : static_cast<std::size_t>(log2v);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++data_.count;
  data_.sum += value;
  if (value < data_.min) data_.min = value;
  if (value > data_.max) data_.max = value;
  ++data_.buckets[bucket];
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest-rank: the r-th smallest sample, r in [1, count].
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  const std::uint64_t r = rank == 0 ? 1 : rank;
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0 || before + in_bucket < r) {
      before += in_bucket;
      continue;
    }
    // Bucket b covers [2^b, 2^(b+1)), except bucket 0 which also absorbs
    // everything below 1 and the last bucket which is open-ended (it absorbs
    // everything >= 2^(kBuckets-1)). The open bucket has no meaningful upper
    // edge, so its interpolation runs toward the recorded max — otherwise a
    // quantile landing there (q=1.0 included) would aim at 2^kBuckets and
    // come out below the recorded max, or wildly above it.
    const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
    const double hi = b + 1 == buckets.size()
                          ? std::max(max, lo)
                          : std::ldexp(1.0, static_cast<int>(b) + 1);
    const double fraction =
        static_cast<double>(r - before) / static_cast<double>(in_bucket);
    const double estimate = lo + fraction * (hi - lo);
    return std::min(std::max(estimate, min), max);
  }
  return max;  // unreachable for a consistent snapshot
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_ = Snapshot{.buckets = std::vector<std::uint64_t>(kBuckets, 0)};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    out.emplace_back(name, counter->value());
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
MetricsRegistry::histogram_values() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    out.emplace_back(name, histogram->snapshot());
  return out;
}

std::string MetricsRegistry::to_text() const {
  std::ostringstream os;
  for (const auto& [name, value] : counter_values())
    os << name << " = " << value << "\n";
  for (const auto& [name, snap] : histogram_values()) {
    os << name << ": count=" << snap.count << " mean=" << snap.mean();
    if (snap.count > 0) os << " min=" << snap.min << " max=" << snap.max;
    os << "\n";
  }
  return os.str();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace isomer::obs
