// MetricsRegistry — named counters and histograms.
//
// Where TraceSession answers "what happened inside this execution",
// the registry answers "what has this process done so far": monotonic
// counters and value histograms keyed by name, shared between the library
// and the bench harness (bench/harness.hpp counts trials, executions and
// recorded spans into MetricsRegistry::global(), and --trace appends a
// metrics summary line to the JSONL output).
//
// Counters are lock-free atomics; histograms take a small mutex on record.
// Registration (the first use of a name) also takes the registry mutex, so
// hot paths should capture the Counter&/Histogram& once, not look it up per
// event.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace isomer::obs {

/// Monotonic counter. Thread-safe.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Summary histogram: count / sum / min / max plus powers-of-two buckets
/// (bucket i counts values in [2^i, 2^(i+1)); values < 1 land in bucket 0).
/// Thread-safe.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(double value);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::vector<std::uint64_t> buckets;  ///< kBuckets entries

    [[nodiscard]] double mean() const noexcept {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /// Bucket-interpolated quantile estimate for q in [0, 1] (0 when the
    /// histogram is empty). The nearest-rank sample is located in its
    /// power-of-two bucket and linearly interpolated across the bucket's
    /// range, then clamped to the recorded [min, max]. The last bucket is
    /// open-ended, so its interpolation runs toward the recorded max
    /// instead of a fictional 2^48 upper edge — q=1.0 always returns max.
    /// Depends only on the bucket counts and min/max — both are
    /// order-independent — so the estimate is identical however concurrent
    /// recorders interleaved.
    [[nodiscard]] double quantile(double q) const;

    [[nodiscard]] double p50() const { return quantile(0.50); }
    [[nodiscard]] double p95() const { return quantile(0.95); }
    [[nodiscard]] double p99() const { return quantile(0.99); }
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  Snapshot data_{.buckets = std::vector<std::uint64_t>(kBuckets, 0)};
};

class MetricsRegistry {
 public:
  /// Finds or creates the named metric. References stay valid for the
  /// registry's lifetime.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Stable-ordered (name, value) views for reporting.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_values() const;
  [[nodiscard]] std::vector<std::pair<std::string, Histogram::Snapshot>>
  histogram_values() const;

  /// Human-readable dump, one metric per line.
  [[nodiscard]] std::string to_text() const;

  /// Resets every registered metric to zero (tests and benchmark reruns).
  void reset();

  /// The process-wide registry the bench harness shares with the library.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace isomer::obs
