// Phase spans — the unit of observability (docs/TRACING.md).
//
// The paper's three strategies differ only in how they order the O
// (assistant lookup / checking), I (integration / certification) and P
// (predicate evaluation) phases; end-of-run aggregates cannot show *where*
// a strategy spends its messages, bytes, or maybe-to-certain conversions.
// A PhaseSpan captures one contiguous piece of simulated work at one site —
// its phase letter, its AccessMeter delta, the bytes and messages it put on
// the wire, and the object / certification counts flowing through it — so a
// completed trace decomposes Tables 1-2's totals phase by phase.
#pragma once

#include <cstdint>
#include <string>

#include "isomer/sim/cost_params.hpp"
#include "isomer/sim/trace.hpp"
#include "isomer/store/meter.hpp"

namespace isomer::obs {

/// One per-phase span of a strategy execution. Field semantics and the
/// stable JSONL encoding are documented in docs/TRACING.md (format
/// "isomer-trace-v1"); additions must stay backward-compatible.
struct PhaseSpan {
  std::string strategy;  ///< "CA", "BL", "PL", "BLS", "PLS"
  /// Query sequence number within the session: 0 for single-query runs,
  /// the stream index under run_query_stream.
  std::uint64_t query = 0;
  Phase phase = Phase::Setup;
  std::string site;  ///< "global", "DB<k>", or "A->B" for transfers
  std::string step;  ///< protocol step label, e.g. "CA_G2 outerjoin"
  /// Simulated wall-clock interval (queue-inclusive), in simulator ns.
  SimTime start_ns = 0;
  SimTime end_ns = 0;

  /// Logical work charged within this span (zero for transfer spans).
  AccessMeter work;

  /// Wire traffic of this span (non-zero only for transfer spans).
  Bytes bytes = 0;
  std::uint64_t messages = 0;

  /// Objects entering / surviving this span (0 when not applicable):
  /// e.g. phase P at a home database reports candidate roots in and
  /// shipped rows out; a check step reports tasks in and verdicts out.
  std::uint64_t objects_in = 0;
  std::uint64_t objects_out = 0;

  /// Certification outcomes (only the global certify / evaluate spans):
  /// entities resolved certain vs. eliminated by pooled evidence.
  std::uint64_t certs_resolved = 0;
  std::uint64_t certs_eliminated = 0;

  friend bool operator==(const PhaseSpan&, const PhaseSpan&) = default;
};

}  // namespace isomer::obs
