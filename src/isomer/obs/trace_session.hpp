// TraceSession — per-execution span recorder.
//
// A session collects the PhaseSpans of one or more strategy executions (a
// single execute_strategy call, or every query of a run_query_stream). It is
// attached through StrategyOptions::trace_session; a null pointer there is
// the disabled state, so the instrumented hot paths pay exactly one branch
// and never touch an AccessMeter when tracing is off (asserted by
// bench_micro and test_obs).
//
// Sessions are NOT thread-safe: the discrete-event simulator is single
// threaded, so one session per concurrently running trial is the rule (the
// bench harness gives every Monte-Carlo trial its own session and serializes
// them in trial order, keeping --trace output --jobs-invariant).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "isomer/obs/span.hpp"

namespace isomer::obs {

class TraceSession {
 public:
  void record(PhaseSpan span) { spans_.push_back(std::move(span)); }

  [[nodiscard]] const std::vector<PhaseSpan>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] bool empty() const noexcept { return spans_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return spans_.size(); }
  void clear() { spans_.clear(); }

  /// Sums a field over the spans of one phase (all strategies/queries).
  template <typename Fn>
  [[nodiscard]] std::uint64_t sum_over(Phase phase, Fn field) const {
    std::uint64_t total = 0;
    for (const PhaseSpan& span : spans_)
      if (span.phase == phase) total += field(span);
    return total;
  }

 private:
  std::vector<PhaseSpan> spans_;
};

}  // namespace isomer::obs
