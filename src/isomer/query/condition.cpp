#include "isomer/query/condition.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "isomer/common/error.hpp"
#include "isomer/query/query.hpp"

namespace isomer {

std::ostream& operator<<(std::ostream& os, const CondAtom& atom) {
  os << "g" << atom.item.value() << "#" << atom.predicate << "@" << atom.step;
  if (atom.root_level) os << "r";
  return os;
}

Condition Condition::constant(Truth value) {
  Condition c;
  c.kind_ = Kind::Constant;
  c.value_ = value;
  return c;
}

Condition Condition::leaf(CondAtom atom) {
  Condition c;
  c.kind_ = Kind::Leaf;
  c.atom_ = atom;
  return c;
}

Condition Condition::make_and(std::vector<Condition> children) {
  Condition c;
  c.kind_ = Kind::And;
  c.children_ = std::move(children);
  return c;
}

Condition Condition::make_or(std::vector<Condition> children) {
  Condition c;
  c.kind_ = Kind::Or;
  c.children_ = std::move(children);
  return c;
}

Condition Condition::pool(std::vector<Condition> children) {
  Condition c;
  c.kind_ = Kind::Pool;
  c.children_ = std::move(children);
  return c;
}

Condition Condition::negate() const {
  Condition c = *this;
  c.negated_ = !c.negated_;
  return c;
}

Truth Condition::truth(const Assignment& assignment) const {
  Truth base = Truth::Unknown;
  switch (kind_) {
    case Kind::Constant:
      base = value_;
      break;
    case Kind::Leaf: {
      const auto it =
          assignment.find(std::pair{atom_.item, atom_.predicate});
      base = it == assignment.end() ? Truth::Unknown : it->second;
      break;
    }
    case Kind::And: {
      base = Truth::True;
      for (const Condition& child : children_)
        base = base && child.truth(assignment);
      break;
    }
    case Kind::Or: {
      base = Truth::False;
      for (const Condition& child : children_)
        base = base || child.truth(assignment);
      break;
    }
    case Kind::Pool: {
      // The certification rule's evidence pool: any False refutes, else any
      // True solves, else Unknown. Not min, not max — see the header.
      bool any_true = false, any_false = false;
      for (const Condition& child : children_) {
        const Truth t = child.truth(assignment);
        if (is_true(t)) any_true = true;
        if (is_false(t)) any_false = true;
      }
      base = any_false  ? Truth::False
             : any_true ? Truth::True
                        : Truth::Unknown;
      break;
    }
  }
  return negated_ ? !base : base;
}

Condition Condition::substitute(GOid item, std::size_t predicate,
                                Truth value) const {
  switch (kind_) {
    case Kind::Constant:
      return *this;
    case Kind::Leaf:
      if (!atom_.root_level && atom_.item == item &&
          atom_.predicate == predicate) {
        // The negation flag folds into the constant right away — a negated
        // leaf decided True is the constant False.
        return constant(negated_ ? !value : value);
      }
      return *this;
    case Kind::And:
    case Kind::Or:
    case Kind::Pool: {
      Condition c;
      c.kind_ = kind_;
      c.negated_ = negated_;
      c.children_.reserve(children_.size());
      for (const Condition& child : children_)
        c.children_.push_back(child.substitute(item, predicate, value));
      return c;
    }
  }
  return *this;
}

Condition Condition::substitute_atom(const CondAtom& atom,
                                     Truth value) const {
  switch (kind_) {
    case Kind::Constant:
      return *this;
    case Kind::Leaf:
      if (atom_ == atom) return constant(negated_ ? !value : value);
      return *this;
    case Kind::And:
    case Kind::Or:
    case Kind::Pool: {
      Condition c;
      c.kind_ = kind_;
      c.negated_ = negated_;
      c.children_.reserve(children_.size());
      for (const Condition& child : children_)
        c.children_.push_back(child.substitute_atom(atom, value));
      return c;
    }
  }
  return *this;
}

Condition Condition::simplify() const {
  // Folds this node's negation into `base` and returns it.
  const auto finish = [this](Condition base) -> Condition {
    if (!negated_) return base;
    if (base.kind_ == Kind::Constant && !base.negated_)
      return constant(!base.value_);
    return base.negate();
  };

  switch (kind_) {
    case Kind::Constant:
    case Kind::Leaf: {
      Condition c = *this;
      c.negated_ = false;
      return finish(std::move(c));
    }
    case Kind::And:
    case Kind::Or: {
      const bool conj = kind_ == Kind::And;
      const Truth identity = conj ? Truth::True : Truth::False;
      const Truth annihilator = !identity;
      std::vector<Condition> kept;
      kept.reserve(children_.size());
      for (const Condition& child : children_) {
        Condition s = child.simplify();
        if (s.is_constant() && !s.negated_) {
          if (s.value_ == annihilator) return finish(constant(annihilator));
          if (s.value_ == identity) continue;  // no effect on min/max
        }
        kept.push_back(std::move(s));
      }
      if (kept.empty()) return finish(constant(identity));
      if (kept.size() == 1) return finish(std::move(kept.front()));
      Condition c;
      c.kind_ = kind_;
      c.children_ = std::move(kept);
      return finish(std::move(c));
    }
    case Kind::Pool: {
      bool any_true = false;
      std::vector<Condition> kept;
      kept.reserve(children_.size());
      for (const Condition& child : children_) {
        Condition s = child.simplify();
        if (s.is_constant() && !s.negated_) {
          if (is_false(s.value_)) return finish(constant(Truth::False));
          if (is_unknown(s.value_)) continue;  // contributes no evidence
          any_true = true;  // kept: Pool{True, x} still turns False with x
        }
        kept.push_back(std::move(s));
      }
      if (kept.empty()) return finish(constant(Truth::Unknown));
      // Only True constants left: no child can ever turn False.
      if (any_true &&
          static_cast<std::size_t>(std::count_if(
              kept.begin(), kept.end(), [](const Condition& c) {
                return c.is_constant() && !c.negated() && is_true(c.value_);
              })) == kept.size())
        return finish(constant(Truth::True));
      if (kept.size() == 1) return finish(std::move(kept.front()));
      Condition c;
      c.kind_ = Kind::Pool;
      c.children_ = std::move(kept);
      return finish(std::move(c));
    }
  }
  return *this;
}

void Condition::collect_atoms(std::vector<CondAtom>& out) const {
  switch (kind_) {
    case Kind::Constant:
      return;
    case Kind::Leaf:
      out.push_back(atom_);
      return;
    case Kind::And:
    case Kind::Or:
    case Kind::Pool:
      for (const Condition& child : children_) child.collect_atoms(out);
      return;
  }
}

std::vector<CondAtom> Condition::atoms() const {
  std::vector<CondAtom> out;
  collect_atoms(out);
  return out;
}

std::string Condition::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Condition& condition) {
  if (condition.negated()) os << "not ";
  switch (condition.kind()) {
    case Condition::Kind::Constant:
      return os << to_string(condition.constant_value());
    case Condition::Kind::Leaf:
      return os << condition.atom();
    case Condition::Kind::And:
    case Condition::Kind::Or:
    case Condition::Kind::Pool: {
      os << (condition.kind() == Condition::Kind::And  ? "and("
             : condition.kind() == Condition::Kind::Or ? "or("
                                                       : "pool(");
      bool first = true;
      for (const Condition& child : condition.children()) {
        if (!first) os << ", ";
        first = false;
        os << child;
      }
      return os << ")";
    }
  }
  return os;
}

Condition combine_conditions(const GlobalQuery& query,
                             std::vector<Condition> per_pred) {
  expects(per_pred.size() == query.predicates.size(),
          "combine_conditions needs one condition per predicate");
  // Mirrors GlobalQuery::combine exactly: AND(loose) AND OR(AND(group)).
  std::vector<bool> grouped(per_pred.size(), false);
  std::vector<Condition> alternatives;
  alternatives.reserve(query.disjuncts.size());
  for (const auto& group : query.disjuncts) {
    std::vector<Condition> conjuncts;
    conjuncts.reserve(group.size());
    for (const std::size_t index : group) {
      expects(index < per_pred.size(), "disjunct index out of range");
      grouped[index] = true;
      conjuncts.push_back(per_pred[index]);
    }
    alternatives.push_back(Condition::make_and(std::move(conjuncts)));
  }
  std::vector<Condition> loose;
  if (!query.disjuncts.empty())
    loose.push_back(Condition::make_or(std::move(alternatives)));
  for (std::size_t p = 0; p < per_pred.size(); ++p)
    if (!grouped[p]) loose.push_back(std::move(per_pred[p]));
  return Condition::make_and(std::move(loose));
}

std::uint64_t predicate_signature(const Predicate& predicate) {
  std::ostringstream os;
  os << predicate;
  const std::string text = os.str();
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV-1a prime
  }
  return hash;
}

}  // namespace isomer
