// Per-row residual conditions (conditional tables).
//
// A maybe row is maybe *because of something*: concrete predicate atoms that
// evaluated Unknown at concrete objects. Following Grahne's conditional
// tables, each ResultRow carries a small three-valued expression over
// (GOid, predicate) leaves recording exactly that residual. Certification
// becomes condition simplification: as assistant evidence arrives, each
// resolved atom substitutes a constant and the row flips to certain (the
// condition collapses to True) or eliminated (False) the moment enough
// leaves are decided — no re-evaluation of anything already known.
//
// The algebra has three connectives because the certification rule pools
// evidence three ways:
//
//  * And / Or — Kleene conjunction (min) and disjunction (max), mirroring
//    GlobalQuery::combine's AND(loose) AND OR(AND(group)) shape.
//  * Pool — the certification rule's per-predicate evidence pool across a
//    GOid's isomeric rows and check verdicts: any False refutes, else any
//    True solves, else Unknown. Pool is *neither* Kleene connective
//    (Pool{True, Unknown} = True where And gives Unknown; Pool{False,
//    Unknown} = False where Or gives Unknown), so it gets its own node.
//
// Every node carries a negation flag instead of a Not node: negation
// distributes over nothing here (Pool has no De Morgan dual), so flipping a
// flag is the only sound way to negate any subtree in O(1).
//
// See docs/CONDITIONS.md for the discharge rules and worked examples.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "isomer/common/ids.hpp"
#include "isomer/common/truth.hpp"

namespace isomer {

struct Predicate;
struct GlobalQuery;

/// One residual leaf: global predicate `predicate` is Unknown at the object
/// whose entity is `item`, stalled at global path `step`.
struct CondAtom {
  GOid item;                   ///< entity holding the missing data
  std::size_t predicate = 0;   ///< index into GlobalQuery::predicates
  std::size_t step = 0;        ///< global path step that was unsolved
  /// True when the holder is a row's root object at step 0. Such sites are
  /// certified through the *other* databases' rows (the Pool they sit in),
  /// never through assistant verdicts, so substitution skips them.
  bool root_level = false;

  friend constexpr auto operator<=>(const CondAtom&,
                                    const CondAtom&) noexcept = default;
};

std::ostream& operator<<(std::ostream& os, const CondAtom& atom);

/// A three-valued residual condition. Immutable value type; all rewrites
/// return new trees. The default-constructed condition is the constant True
/// (a row certain from the start has nothing residual).
class Condition {
 public:
  enum class Kind : unsigned char { Constant, Leaf, And, Or, Pool };

  /// Evidence assignment: (item, predicate) -> pooled verdict truth. This is
  /// the same key as certify's verdict index — one verdict decides every
  /// step of that (item, predicate), so steps do not key the assignment.
  using Assignment = std::map<std::pair<GOid, std::size_t>, Truth>;

  Condition() = default;  // constant True

  [[nodiscard]] static Condition constant(Truth value);
  [[nodiscard]] static Condition leaf(CondAtom atom);
  [[nodiscard]] static Condition make_and(std::vector<Condition> children);
  [[nodiscard]] static Condition make_or(std::vector<Condition> children);
  [[nodiscard]] static Condition pool(std::vector<Condition> children);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool negated() const noexcept { return negated_; }
  /// Meaningful for Kind::Constant only (the node's value before negation).
  [[nodiscard]] Truth constant_value() const noexcept { return value_; }
  /// Meaningful for Kind::Leaf only.
  [[nodiscard]] const CondAtom& atom() const noexcept { return atom_; }
  [[nodiscard]] const std::vector<Condition>& children() const noexcept {
    return children_;
  }

  [[nodiscard]] bool is_constant() const noexcept {
    return kind_ == Kind::Constant;
  }

  /// Logical negation: flips the node's negation flag. Sound for every kind
  /// (truth() applies Kleene NOT on top of the node's base value).
  [[nodiscard]] Condition negate() const;

  /// Evaluates under `assignment`; leaves not assigned evaluate Unknown.
  /// A pure function of the tree and the assignment — in particular the
  /// order evidence arrived in cannot matter.
  [[nodiscard]] Truth truth(const Assignment& assignment) const;
  /// Evaluates with no evidence (every remaining leaf Unknown).
  [[nodiscard]] Truth truth() const { return truth(Assignment{}); }

  /// Discharges one decided atom: every *non-root-level* leaf matching
  /// (item, predicate) — at any step — becomes the constant `value`.
  /// Root-level leaves are only ever decided by their enclosing Pool's row
  /// evidence, so they are left alone (substituting them would let a verdict
  /// about a GOid's nested role leak into its root role).
  [[nodiscard]] Condition substitute(GOid item, std::size_t predicate,
                                     Truth value) const;

  /// Discharges one *exact* leaf: every leaf whose CondAtom equals `atom` —
  /// root_level and step included — becomes the constant `value`. This is
  /// the IM strategy's residual-discharge primitive: unlike substitute(), a
  /// population estimate is an answer about one concrete atom (a root-level
  /// site included), never pooled protocol evidence, so it must only ever
  /// touch the leaf it was computed for.
  [[nodiscard]] Condition substitute_atom(const CondAtom& atom,
                                          Truth value) const;

  /// Sound simplification (idempotent; never changes truth() under any
  /// assignment):
  ///  * negated constants fold into their complement,
  ///  * And drops True children, collapses on a False child,
  ///  * Or drops False children, collapses on a True child,
  ///  * Pool drops Unknown children (they contribute no evidence),
  ///    collapses on a False child, folds when only constants remain,
  ///  * single-child connectives collapse to the child (Pool{x} ≡ x),
  ///  * empty And/Or/Pool fold to their identities (True/False/Unknown).
  /// Note Pool *keeps* True children: Pool{True, x} is True even while x is
  /// Unknown, but becomes False if x turns False — dropping the True would
  /// lose that, and collapsing early would mis-eliminate.
  [[nodiscard]] Condition simplify() const;

  /// Appends every leaf atom in the tree (duplicates included) to `out`.
  void collect_atoms(std::vector<CondAtom>& out) const;
  [[nodiscard]] std::vector<CondAtom> atoms() const;

  /// Renders e.g. "pool(g7#1@2, true)" — see docs/CONDITIONS.md.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Condition&, const Condition&) = default;

 private:
  Kind kind_ = Kind::Constant;
  bool negated_ = false;
  Truth value_ = Truth::True;        ///< Constant payload
  CondAtom atom_{};                  ///< Leaf payload
  std::vector<Condition> children_;  ///< And / Or / Pool payload
};

std::ostream& operator<<(std::ostream& os, const Condition& condition);

/// Combines per-predicate conditions (aligned with `query.predicates`) into
/// one row condition with exactly GlobalQuery::combine's shape:
/// AND(loose predicates) AND OR(AND(group) for each disjunct group). For
/// every assignment, combine_conditions(q, cs).truth(a) ==
/// q.combine([c.truth(a) for c in cs]).
[[nodiscard]] Condition combine_conditions(const GlobalQuery& query,
                                           std::vector<Condition> per_pred);

/// Stable signature of a predicate atom for certificate-cache keying: an
/// FNV-1a hash of the predicate's canonical print (`path op literal`), which
/// round-trips through the parser and is what EXPLAIN renders. Two queries
/// share certificates exactly when they ask the same printed predicate.
[[nodiscard]] std::uint64_t predicate_signature(const Predicate& predicate);

}  // namespace isomer
