#include "isomer/query/eval.hpp"

#include "isomer/common/error.hpp"

namespace isomer {

namespace {

/// Recursive walk evaluating `pred.path[step..]` from `obj`.
PredicateOutcome eval_from(const ComponentDatabase& db, const Object& obj,
                           const Predicate& pred, std::size_t step,
                           AccessMeter* meter) {
  const ClassDef& cls = db.schema().cls(db.class_of(obj.id()));
  const std::string& attr_name = pred.path.step(step);
  const auto index = cls.find_attribute(attr_name);
  if (!index) {
    // Schema-level missing attribute: this object holds the missing data.
    return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};
  }
  const Value& v = obj.value(*index);
  const bool last = (step + 1 == pred.path.length());

  if (last) {
    if (meter != nullptr) ++meter->comparisons;
    const Truth t = apply(pred.op, v, pred.literal);
    if (is_unknown(t))
      return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};
    return PredicateOutcome{t, std::nullopt};
  }

  if (v.is_null())
    return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};

  if (v.kind() == ValueKind::LocalRef) {
    const Object* next = db.deref(v, meter);
    if (next == nullptr)
      return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};
    return eval_from(db, *next, pred, step + 1, meter);
  }

  if (v.kind() == ValueKind::LocalRefSet) {
    // Existential semantics over the members, combined with Kleene-or.
    PredicateOutcome acc{Truth::False, std::nullopt};
    for (const LOid member : v.as_local_ref_set()) {
      const Object* next = db.fetch(member, meter);
      PredicateOutcome branch =
          next == nullptr
              ? PredicateOutcome{Truth::Unknown,
                                 UnsolvedSite{obj.id(), step}}
              : eval_from(db, *next, pred, step + 1, meter);
      if (is_true(branch.truth)) return branch;
      if (is_unknown(branch.truth) && !is_unknown(acc.truth)) acc = branch;
    }
    return acc;
  }

  throw QueryError("path " + pred.path.dotted() + " step " + attr_name +
                   " of class " + cls.name() +
                   " is primitive but the path continues");
}

}  // namespace

PredicateOutcome eval_predicate(const ComponentDatabase& db, const Object& root,
                                const Predicate& pred, AccessMeter* meter) {
  expects(pred.path.length() > 0, "predicate with empty path");
  expects(!pred.literal.is_null(), "predicate literal must not be null");
  return eval_from(db, root, pred, 0, meter);
}

Value eval_path(const ComponentDatabase& db, const Object& root,
                const PathExpr& path, AccessMeter* meter) {
  expects(path.length() > 0, "cannot evaluate an empty path");
  const Object* obj = &root;
  for (std::size_t step = 0; step < path.length(); ++step) {
    const ClassDef& cls = db.schema().cls(db.class_of(obj->id()));
    const auto index = cls.find_attribute(path.step(step));
    if (!index) return Value::null();
    const Value& v = obj->value(*index);
    const bool last = (step + 1 == path.length());
    if (last) return v;
    if (v.is_null()) return Value::null();
    if (v.kind() == ValueKind::LocalRef) {
      obj = db.deref(v, meter);
      if (obj == nullptr) return Value::null();
      continue;
    }
    if (v.kind() == ValueKind::LocalRefSet) {
      // Take the first member whose continuation yields a non-null value.
      for (const LOid member : v.as_local_ref_set()) {
        const Object* next = db.fetch(member, meter);
        if (next == nullptr) continue;
        Value rest = eval_path(db, *next, path.suffix(step + 1), meter);
        if (!rest.is_null()) return rest;
      }
      return Value::null();
    }
    throw QueryError("path " + path.dotted() + " continues past primitive " +
                     path.step(step));
  }
  return Value::null();
}

const Object* walk_prefix(const ComponentDatabase& db, const Object& root,
                          const PathExpr& path, AccessMeter* meter) {
  const Object* obj = &root;
  for (std::size_t step = 0; step < path.length(); ++step) {
    const ClassDef& cls = db.schema().cls(db.class_of(obj->id()));
    const auto index = cls.find_attribute(path.step(step));
    if (!index) return nullptr;
    const Value& v = obj->value(*index);
    if (v.kind() == ValueKind::LocalRef) {
      obj = db.deref(v, meter);
    } else if (v.kind() == ValueKind::LocalRefSet &&
               !v.as_local_ref_set().empty()) {
      obj = db.fetch(v.as_local_ref_set().front(), meter);
    } else {
      return nullptr;  // null or primitive: no object to reach
    }
    if (obj == nullptr) return nullptr;
  }
  return obj;
}

ObjectEval eval_conjunction(const ComponentDatabase& db, const Object& root,
                            const std::vector<Predicate>& preds,
                            AccessMeter* meter) {
  ObjectEval result;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const PredicateOutcome outcome = eval_predicate(db, root, preds[i], meter);
    result.truth = result.truth && outcome.truth;
    if (is_unknown(outcome.truth) && outcome.site)
      result.unknowns.push_back(ObjectEval::UnknownPredicate{i, *outcome.site});
  }
  return result;
}

}  // namespace isomer
