#include "isomer/query/eval.hpp"

#include "isomer/common/error.hpp"
#include "isomer/query/eval_cache.hpp"

namespace isomer {

namespace {

/// Recursive walk evaluating `pred.path[step..]` from `obj`.
PredicateOutcome eval_from(const ComponentDatabase& db, const Object& obj,
                           const Predicate& pred, std::size_t step,
                           AccessMeter* meter) {
  const ClassDef& cls = db.schema().cls(db.class_of(obj.id()));
  const std::string& attr_name = pred.path.step(step);
  const auto index = cls.find_attribute(attr_name);
  if (!index) {
    // Schema-level missing attribute: this object holds the missing data.
    return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};
  }
  const Value& v = obj.value(*index);
  const bool last = (step + 1 == pred.path.length());

  if (last) {
    if (meter != nullptr) ++meter->comparisons;
    const Truth t = apply(pred.op, v, pred.literal);
    if (is_unknown(t))
      return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};
    return PredicateOutcome{t, std::nullopt};
  }

  if (v.is_null())
    return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};

  if (v.kind() == ValueKind::LocalRef) {
    const Object* next = db.deref(v, meter);
    if (next == nullptr)
      return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};
    return eval_from(db, *next, pred, step + 1, meter);
  }

  if (v.kind() == ValueKind::LocalRefSet) {
    // Existential semantics over the members, combined with Kleene-or.
    PredicateOutcome acc{Truth::False, std::nullopt};
    for (const LOid member : v.as_local_ref_set()) {
      const Object* next = db.fetch(member, meter);
      PredicateOutcome branch =
          next == nullptr
              ? PredicateOutcome{Truth::Unknown,
                                 UnsolvedSite{obj.id(), step}}
              : eval_from(db, *next, pred, step + 1, meter);
      if (is_true(branch.truth)) return branch;
      if (is_unknown(branch.truth) && !is_unknown(acc.truth)) acc = branch;
    }
    return acc;
  }

  throw QueryError("path " + pred.path.dotted() + " step " + attr_name +
                   " of class " + cls.name() +
                   " is primitive but the path continues");
}

/// Cache-aware twin of eval_from: the current class rides along (resolved
/// through the deref memo instead of per-object hash lookups) and attribute
/// positions come from the path's memoized per-class column table. Identical
/// outcomes and meter counts by construction.
PredicateOutcome eval_from_cached(const ComponentDatabase& db, EvalCache& cache,
                                  const Object& obj, const ClassDef& cls,
                                  const Predicate& pred, PathResolution& res,
                                  std::size_t step, AccessMeter* meter) {
  const auto index = res.attr_index(step, cls);
  if (!index)
    return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};
  const Value& v = obj.value(*index);
  const bool last = (step + 1 == pred.path.length());

  if (last) {
    if (meter != nullptr) ++meter->comparisons;
    const Truth t = apply(pred.op, v, pred.literal);
    if (is_unknown(t))
      return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};
    return PredicateOutcome{t, std::nullopt};
  }

  if (v.is_null())
    return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};

  if (v.kind() == ValueKind::LocalRef) {
    const ResolvedObject next =
        db.resolve(v.as_local_ref(), meter, nullptr, &cache.derefs());
    if (next.obj == nullptr)
      return PredicateOutcome{Truth::Unknown, UnsolvedSite{obj.id(), step}};
    return eval_from_cached(db, cache, *next.obj, *next.cls, pred, res,
                            step + 1, meter);
  }

  if (v.kind() == ValueKind::LocalRefSet) {
    PredicateOutcome acc{Truth::False, std::nullopt};
    for (const LOid member : v.as_local_ref_set()) {
      const ResolvedObject next =
          db.resolve(member, meter, nullptr, &cache.derefs());
      PredicateOutcome branch =
          next.obj == nullptr
              ? PredicateOutcome{Truth::Unknown,
                                 UnsolvedSite{obj.id(), step}}
              : eval_from_cached(db, cache, *next.obj, *next.cls, pred, res,
                                 step + 1, meter);
      if (is_true(branch.truth)) return branch;
      if (is_unknown(branch.truth) && !is_unknown(acc.truth)) acc = branch;
    }
    return acc;
  }

  throw QueryError("path " + pred.path.dotted() + " step " +
                   pred.path.step(step) + " of class " + cls.name() +
                   " is primitive but the path continues");
}

/// The root object's class. class_of throws FederationError for an unknown
/// root, exactly as the uncached walk's first step does; the name-to-class
/// hop sits behind the cache's one-entry memo since an extent's objects all
/// share one class. The deref memo is deliberately not involved: roots are
/// handed in from outside and never re-resolved, so memoizing them would
/// only grow the map.
const ClassDef& root_class(const ComponentDatabase& db, const Object& root,
                           EvalCache& cache) {
  return cache.class_by_name(db.class_of(root.id()));
}

Value eval_path_cached(const ComponentDatabase& db, EvalCache& cache,
                       const Object& root, const ClassDef& root_cls,
                       const PathExpr& path, PathResolution& res,
                       std::size_t start, AccessMeter* meter) {
  const Object* obj = &root;
  const ClassDef* cls = &root_cls;
  for (std::size_t step = start; step < path.length(); ++step) {
    const auto index = res.attr_index(step, *cls);
    if (!index) return Value::null();
    const Value& v = obj->value(*index);
    const bool last = (step + 1 == path.length());
    if (last) return v;
    if (v.is_null()) return Value::null();
    if (v.kind() == ValueKind::LocalRef) {
      const ResolvedObject next =
          db.resolve(v.as_local_ref(), meter, nullptr, &cache.derefs());
      if (next.obj == nullptr) return Value::null();
      obj = next.obj;
      cls = next.cls;
      continue;
    }
    if (v.kind() == ValueKind::LocalRefSet) {
      // Take the first member whose continuation yields a non-null value.
      for (const LOid member : v.as_local_ref_set()) {
        const ResolvedObject next =
            db.resolve(member, meter, nullptr, &cache.derefs());
        if (next.obj == nullptr) continue;
        Value rest = eval_path_cached(db, cache, *next.obj, *next.cls, path,
                                      res, step + 1, meter);
        if (!rest.is_null()) return rest;
      }
      return Value::null();
    }
    throw QueryError("path " + path.dotted() + " continues past primitive " +
                     path.step(step));
  }
  return Value::null();
}

}  // namespace

PredicateOutcome eval_predicate(const ComponentDatabase& db, const Object& root,
                                const Predicate& pred, AccessMeter* meter,
                                EvalCache* cache) {
  expects(pred.path.length() > 0, "predicate with empty path");
  expects(!pred.literal.is_null(), "predicate literal must not be null");
  if (cache == nullptr) return eval_from(db, root, pred, 0, meter);
  return eval_from_cached(db, *cache, root, root_class(db, root, *cache), pred,
                          cache->resolution(pred.path), 0, meter);
}

Value eval_path(const ComponentDatabase& db, const Object& root,
                const PathExpr& path, AccessMeter* meter, EvalCache* cache) {
  expects(path.length() > 0, "cannot evaluate an empty path");
  if (cache != nullptr)
    return eval_path_cached(db, *cache, root, root_class(db, root, *cache),
                            path, cache->resolution(path), 0, meter);
  const Object* obj = &root;
  for (std::size_t step = 0; step < path.length(); ++step) {
    const ClassDef& cls = db.schema().cls(db.class_of(obj->id()));
    const auto index = cls.find_attribute(path.step(step));
    if (!index) return Value::null();
    const Value& v = obj->value(*index);
    const bool last = (step + 1 == path.length());
    if (last) return v;
    if (v.is_null()) return Value::null();
    if (v.kind() == ValueKind::LocalRef) {
      obj = db.deref(v, meter);
      if (obj == nullptr) return Value::null();
      continue;
    }
    if (v.kind() == ValueKind::LocalRefSet) {
      // Take the first member whose continuation yields a non-null value.
      for (const LOid member : v.as_local_ref_set()) {
        const Object* next = db.fetch(member, meter);
        if (next == nullptr) continue;
        Value rest = eval_path(db, *next, path.suffix(step + 1), meter);
        if (!rest.is_null()) return rest;
      }
      return Value::null();
    }
    throw QueryError("path " + path.dotted() + " continues past primitive " +
                     path.step(step));
  }
  return Value::null();
}

const Object* walk_prefix(const ComponentDatabase& db, const Object& root,
                          const PathExpr& path, AccessMeter* meter,
                          EvalCache* cache) {
  const Object* obj = &root;
  if (cache != nullptr) {
    if (path.length() == 0) return obj;
    const ClassDef* cls = &root_class(db, root, *cache);
    PathResolution& res = cache->resolution(path);
    for (std::size_t step = 0; step < path.length(); ++step) {
      const auto index = res.attr_index(step, *cls);
      if (!index) return nullptr;
      const Value& v = obj->value(*index);
      ResolvedObject next;
      if (v.kind() == ValueKind::LocalRef) {
        next = db.resolve(v.as_local_ref(), meter, nullptr, &cache->derefs());
      } else if (v.kind() == ValueKind::LocalRefSet &&
                 !v.as_local_ref_set().empty()) {
        next = db.resolve(v.as_local_ref_set().front(), meter, nullptr,
                          &cache->derefs());
      } else {
        return nullptr;  // null or primitive: no object to reach
      }
      if (next.obj == nullptr) return nullptr;
      obj = next.obj;
      cls = next.cls;
    }
    return obj;
  }
  for (std::size_t step = 0; step < path.length(); ++step) {
    const ClassDef& cls = db.schema().cls(db.class_of(obj->id()));
    const auto index = cls.find_attribute(path.step(step));
    if (!index) return nullptr;
    const Value& v = obj->value(*index);
    if (v.kind() == ValueKind::LocalRef) {
      obj = db.deref(v, meter);
    } else if (v.kind() == ValueKind::LocalRefSet &&
               !v.as_local_ref_set().empty()) {
      obj = db.fetch(v.as_local_ref_set().front(), meter);
    } else {
      return nullptr;  // null or primitive: no object to reach
    }
    if (obj == nullptr) return nullptr;
  }
  return obj;
}

ObjectEval eval_conjunction(const ComponentDatabase& db, const Object& root,
                            const std::vector<Predicate>& preds,
                            AccessMeter* meter, EvalCache* cache) {
  ObjectEval result;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const PredicateOutcome outcome =
        eval_predicate(db, root, preds[i], meter, cache);
    result.truth = result.truth && outcome.truth;
    if (is_unknown(outcome.truth) && outcome.site)
      result.unknowns.push_back(ObjectEval::UnknownPredicate{i, *outcome.site});
  }
  return result;
}

}  // namespace isomer
