// Three-valued predicate evaluation over one component database.
//
// Evaluation walks a (local-name) path expression from a root object,
// dereferencing complex attributes inside the same database. Whenever the
// walk hits missing data — an attribute the object's class does not define, a
// null value, or a dangling reference — the predicate evaluates to Unknown
// and the evaluator reports the *unsolved site*: which object holds the
// missing data and at which path step, exactly the information the paper's
// certification of "unsolved items" needs (§2.3).
#pragma once

#include <optional>
#include <vector>

#include "isomer/query/query.hpp"
#include "isomer/store/database.hpp"

namespace isomer {

class EvalCache;

/// Where a predicate evaluation became Unknown.
struct UnsolvedSite {
  LOid holder;        ///< object holding the missing attribute / null value
  std::size_t step;   ///< index of the path step that could not be evaluated

  friend constexpr auto operator<=>(const UnsolvedSite&,
                                    const UnsolvedSite&) noexcept = default;
};

/// Result of evaluating one predicate on one object.
struct PredicateOutcome {
  Truth truth = Truth::Unknown;
  /// Set iff truth == Unknown. When a set-valued attribute yields several
  /// unknown branches, the first one (in stored order) is reported.
  std::optional<UnsolvedSite> site;
};

/// Evaluates `pred` (local attribute names) on `root` within `db`.
/// Charges one comparison per comparison actually performed.
///
/// All evaluators accept an optional EvalCache (query/eval_cache.hpp). With
/// a cache, path steps are resolved to attribute column indices once per
/// class and dereferences are memoized; outcomes and meter counts are
/// identical to the uncached path.
[[nodiscard]] PredicateOutcome eval_predicate(const ComponentDatabase& db,
                                              const Object& root,
                                              const Predicate& pred,
                                              AccessMeter* meter = nullptr,
                                              EvalCache* cache = nullptr);

/// Evaluates a target path on `root`, returning the reached value, or null
/// when the walk crosses missing data. Set-valued steps take the first
/// member whose continuation is non-null.
[[nodiscard]] Value eval_path(const ComponentDatabase& db, const Object& root,
                              const PathExpr& path,
                              AccessMeter* meter = nullptr,
                              EvalCache* cache = nullptr);

/// Walks the pure-prefix of a path (no comparison): returns the object
/// reached after `path` steps, or nullptr when the walk crosses missing
/// data. Used to locate unsolved items for projection.
[[nodiscard]] const Object* walk_prefix(const ComponentDatabase& db,
                                        const Object& root,
                                        const PathExpr& path,
                                        AccessMeter* meter = nullptr,
                                        EvalCache* cache = nullptr);

/// The conjunctive evaluation of a whole predicate list on one object:
/// overall Kleene truth plus, per Unknown predicate, its index and unsolved
/// site. All conjuncts are evaluated (no short-circuiting) so that
/// comparison counts are deterministic and every unsolved site is known.
struct ObjectEval {
  Truth truth = Truth::True;
  struct UnknownPredicate {
    std::size_t predicate_index;
    UnsolvedSite site;
  };
  std::vector<UnknownPredicate> unknowns;
};

[[nodiscard]] ObjectEval eval_conjunction(const ComponentDatabase& db,
                                          const Object& root,
                                          const std::vector<Predicate>& preds,
                                          AccessMeter* meter = nullptr,
                                          EvalCache* cache = nullptr);

}  // namespace isomer
