#include "isomer/query/eval_cache.hpp"

namespace isomer {

std::optional<std::size_t> PathResolution::attr_index(std::size_t step,
                                                      const ClassDef& cls) {
  auto& entries = by_step_[step];
  for (const auto& [known, index] : entries)
    if (known == &cls)
      return index == kMissing ? std::nullopt
                               : std::optional<std::size_t>(index);
  const auto found = cls.find_attribute(steps_[step]);
  entries.emplace_back(&cls, found.value_or(kMissing));
  return found;
}

PathResolution& EvalCache::resolution(const PathExpr& path) {
  // The steps comparison is part of correctness, not just validation: a
  // temporary PathExpr can die and a different one take its address, so an
  // address match alone must never be trusted.
  for (const auto& [key, res] : mru_)
    if (key == &path && res->steps() == path.steps()) return *res;
  std::unique_ptr<PathResolution>& slot = by_path_[&path];
  if (slot == nullptr || slot->steps() != path.steps()) {
    // Rebuilding the slot deletes the old PathResolution; any MRU entry
    // still pointing at it would dangle and the scan above would read it on
    // the next address-reused lookup. Scrub those entries first (a null key
    // can never equal &path, so scrubbed pairs are inert).
    if (slot != nullptr)
      for (auto& entry : mru_)
        if (entry.second == slot.get()) entry = {nullptr, nullptr};
    slot = std::make_unique<PathResolution>(path);
  }
  mru_[mru_next_] = {&path, slot.get()};
  mru_next_ = (mru_next_ + 1) % mru_.size();
  return *slot;
}

}  // namespace isomer
