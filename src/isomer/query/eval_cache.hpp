// Hot-path resolution cache for the component-level evaluator.
//
// Without a cache, every predicate evaluation re-resolves each path step per
// object: an LOid-hash lookup for the object's class name, a string-hash
// lookup into the schema, and a string-keyed find_attribute over the class's
// attribute list. Over an extent those answers never change — the resolution
// depends only on (class, step) — so an EvalCache resolves each path step to
// its attribute column index once per class and evaluates the rest of the
// extent with integer indexing, and memoizes LOid dereferences through the
// store's DerefCache. Cached evaluation is observationally identical to the
// uncached path: same PredicateOutcomes (truth and unsolved site) and the
// same AccessMeter counts (see ComponentDatabase::resolve).
//
// The cache holds raw pointers into the database; build one per (database,
// unit of evaluation) and discard it when the database is mutated.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "isomer/objmodel/path.hpp"
#include "isomer/store/database.hpp"

namespace isomer {

/// Memoized resolution of one path's steps to attribute column indices.
/// The class reached at a step is a runtime property of the walked objects,
/// so each step keeps a tiny (class -> column) table — one entry in the
/// common case — scanned by pointer identity.
class PathResolution {
 public:
  explicit PathResolution(const PathExpr& path)
      : steps_(path.steps()), by_step_(path.length()) {}

  [[nodiscard]] const std::vector<std::string>& steps() const noexcept {
    return steps_;
  }

  /// Column index of `steps()[step]` in `cls`, or nullopt when the class
  /// does not define it (a schema-level missing attribute). The first call
  /// per (step, class) pays the string-keyed find_attribute; later calls
  /// are a pointer scan.
  [[nodiscard]] std::optional<std::size_t> attr_index(std::size_t step,
                                                      const ClassDef& cls);

 private:
  static constexpr std::size_t kMissing = static_cast<std::size_t>(-1);

  std::vector<std::string> steps_;
  std::vector<std::vector<std::pair<const ClassDef*, std::size_t>>> by_step_;
};

/// Evaluation cache for one ComponentDatabase: per-path step resolutions,
/// a class-name memo for root objects, plus the store-level deref memo
/// (for navigated branch objects only — roots are looked up per object
/// anyway, so memoizing them would just bloat the map). Pass to
/// eval_predicate / eval_path / walk_prefix / eval_conjunction
/// (query/eval.hpp).
class EvalCache {
 public:
  explicit EvalCache(const ComponentDatabase& db) : db_(&db) {}

  [[nodiscard]] const ComponentDatabase& db() const noexcept { return *db_; }

  /// The memoized resolution for `path`. Entries are keyed by the path's
  /// address but verified against its steps, so a temporary reusing a dead
  /// path's address cannot alias a stale resolution. A tiny MRU ring in
  /// front of the map makes the per-object re-lookup of a conjunction's
  /// few paths a pointer scan; when an address-reuse forces a slot rebuild,
  /// ring entries pointing at the replaced resolution are scrubbed so the
  /// scan never touches freed memory (test_eval_cache:
  /// AddressReusePoisoning).
  [[nodiscard]] PathResolution& resolution(const PathExpr& path);

  /// schema().cls(name) behind a one-entry memo (compared by value): an
  /// extent's objects all share one class, so after the first object the
  /// root-class lookup is a single short-string comparison.
  [[nodiscard]] const ClassDef& class_by_name(const std::string& name) {
    if (last_cls_ == nullptr || name != last_class_name_) {
      last_cls_ = &db_->schema().cls(name);
      last_class_name_ = name;
    }
    return *last_cls_;
  }

  [[nodiscard]] DerefCache& derefs() noexcept { return derefs_; }

 private:
  const ComponentDatabase* db_;
  std::unordered_map<const PathExpr*, std::unique_ptr<PathResolution>>
      by_path_;
  std::array<std::pair<const PathExpr*, PathResolution*>, 4> mru_{};
  std::size_t mru_next_ = 0;
  std::string last_class_name_;
  const ClassDef* last_cls_ = nullptr;
  DerefCache derefs_;
};

}  // namespace isomer
