#include "isomer/query/kernels.hpp"

#include <algorithm>
#include <bit>
#include <string_view>

#include "isomer/common/error.hpp"

namespace isomer {

namespace {

using ColKind = ColumnarExtent::ColKind;

/// Branch-free Kleene encode: valid row -> True/False from the comparison
/// bit, null row -> Unknown. Relies on Truth's False=0 / Unknown=1 / True=2
/// encoding: 1 + valid * (2*cmp - 1) in unsigned arithmetic.
inline Truth encode(unsigned valid, unsigned cmp) noexcept {
  return static_cast<Truth>(
      static_cast<std::uint8_t>(1u + valid * (2u * cmp - 1u)));
}

inline unsigned valid_bit(const std::uint64_t* bitmap,
                          std::size_t row) noexcept {
  return static_cast<unsigned>((bitmap[row >> 6] >> (row & 63)) & 1u);
}

/// Numeric kernel over the full column; Cmp is a double x double -> bool
/// stateless comparator, inlined so the loop auto-vectorizes.
///
/// Two passes: first a branch-free compare of every row as if it were valid
/// (True=2 / False=0 is just 2*cmp, so the loop is pure double compares and
/// byte stores — vectorizable even at the SSE2 baseline), then a patch pass
/// that walks only the *zero* bits of the validity bitmap and overwrites
/// those slots with Unknown. Null rows hold an arbitrary stored double (the
/// builder leaves 0.0), but their compare result is discarded, so the
/// output is identical to the row-at-a-time walk. Missing ratios are small
/// in practice, so the patch pass touches few rows.
template <typename Cmp>
void num_all(const ColumnarExtent::Column& col, std::size_t rows, double lit,
             Truth* out, Cmp cmp) {
  const double* vals = col.nums;
  const std::uint64_t* bitmap = col.valid;
#pragma omp simd
  for (std::size_t r = 0; r < rows; ++r)
    out[r] = static_cast<Truth>(
        static_cast<std::uint8_t>(2u * static_cast<unsigned>(cmp(vals[r], lit))));
  for (std::size_t word = 0; word * 64 < rows; ++word) {
    const std::size_t base = word * 64;
    const std::size_t width = std::min<std::size_t>(64, rows - base);
    // Bits beyond `rows` in the last word are zero in the bitmap; mask them
    // out of the complement so they are not patched.
    std::uint64_t missing = ~bitmap[word];
    if (width < 64) missing &= (std::uint64_t{1} << width) - 1;
    while (missing != 0) {
      out[base + static_cast<std::size_t>(std::countr_zero(missing))] =
          Truth::Unknown;
      missing &= missing - 1;
    }
  }
}

template <typename Cmp>
void num_sel(const ColumnarExtent::Column& col,
             std::span<const std::uint32_t> sel, double lit, Truth* out,
             Cmp cmp) {
  const double* vals = col.nums;
  const std::uint64_t* bitmap = col.valid;
  const std::size_t n = sel.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = sel[i];
    const unsigned v = valid_bit(bitmap, r);
    const unsigned c = static_cast<unsigned>(cmp(vals[r], lit));
    out[i] = encode(v, c);
  }
}

template <typename Cmp>
void dispatch_num(const ColumnarExtent::Column& col, std::size_t rows,
                  std::span<const std::uint32_t>* sel, double lit, Truth* out,
                  Cmp cmp) {
  if (sel != nullptr)
    num_sel(col, *sel, lit, out, cmp);
  else
    num_all(col, rows, lit, out, cmp);
}

/// One string row as a view into the column's byte arena.
inline std::string_view str_at(const ColumnarExtent::Column& col,
                               std::size_t row) noexcept {
  const std::uint32_t begin = col.str_offsets[row];
  return {col.str_bytes + begin, col.str_offsets[row + 1] - begin};
}

/// Shared full/selection walk: calls fn(i, r) for every output slot i and
/// its source row r.
template <typename Fn>
void for_each_row(std::size_t rows, std::span<const std::uint32_t>* sel,
                  Fn fn) {
  if (sel != nullptr) {
    for (std::size_t i = 0; i < sel->size(); ++i) fn(i, (*sel)[i]);
  } else {
    for (std::size_t r = 0; r < rows; ++r) fn(r, r);
  }
}

void eval_impl(const ColumnarExtent::Column& col, std::size_t rows,
               std::span<const std::uint32_t>* sel, CompOp op,
               const Value& literal, Truth* out) {
  expects(kernel_applicable(col.kind, op, literal),
          "predicate kernel invoked on a non-vectorizable predicate");

  const std::size_t n = sel != nullptr ? sel->size() : rows;

  // A null literal makes every comparison Unknown before any kind is even
  // inspected (compare_eq / compare_less return early) — as does a column
  // whose rows are all null.
  if (literal.is_null() || col.kind == ColKind::AllNull) {
    std::fill(out, out + n, Truth::Unknown);
    return;
  }

  switch (col.kind) {
    case ColKind::Num: {
      const double lit = literal.as_number();
      switch (op) {
        case CompOp::Eq:
          dispatch_num(col, rows, sel, lit, out,
                       [](double a, double b) { return a == b; });
          return;
        case CompOp::Ne:
          dispatch_num(col, rows, sel, lit, out,
                       [](double a, double b) { return a != b; });
          return;
        case CompOp::Lt:
          dispatch_num(col, rows, sel, lit, out,
                       [](double a, double b) { return a < b; });
          return;
        case CompOp::Le:
          // Not a <= b: the row path computes !(b < a), which differs from
          // <= exactly on NaN (unordered) operands.
          dispatch_num(col, rows, sel, lit, out,
                       [](double a, double b) { return !(b < a); });
          return;
        case CompOp::Gt:
          dispatch_num(col, rows, sel, lit, out,
                       [](double a, double b) { return b < a; });
          return;
        case CompOp::Ge:
          // Row path: !(a < b); again NaN-distinct from >=.
          dispatch_num(col, rows, sel, lit, out,
                       [](double a, double b) { return !(a < b); });
          return;
      }
      return;
    }
    case ColKind::Bool: {
      const std::uint8_t lit = static_cast<std::uint8_t>(literal.as_bool());
      const std::uint8_t* vals = col.bools;
      const std::uint64_t* bitmap = col.valid;
      const bool negate = (op == CompOp::Ne);
      for_each_row(rows, sel, [&](std::size_t i, std::size_t r) {
        const unsigned v = valid_bit(bitmap, r);
        const unsigned c =
            static_cast<unsigned>((vals[r] == lit) != negate);
        out[i] = encode(v, c);
      });
      return;
    }
    case ColKind::String: {
      const std::string_view lit = literal.as_string();
      const std::uint64_t* bitmap = col.valid;
      for_each_row(rows, sel, [&](std::size_t i, std::size_t r) {
        const unsigned v = valid_bit(bitmap, r);
        unsigned c = 0;
        if (v != 0) {
          const std::string_view s = str_at(col, r);
          switch (op) {
            case CompOp::Eq:
              c = static_cast<unsigned>(s == lit);
              break;
            case CompOp::Ne:
              c = static_cast<unsigned>(s != lit);
              break;
            case CompOp::Lt:
              c = static_cast<unsigned>(s < lit);
              break;
            case CompOp::Le:
              c = static_cast<unsigned>(s <= lit);
              break;
            case CompOp::Gt:
              c = static_cast<unsigned>(s > lit);
              break;
            case CompOp::Ge:
              c = static_cast<unsigned>(s >= lit);
              break;
          }
        }
        out[i] = encode(v, c);
      });
      return;
    }
    case ColKind::AllNull:
    case ColKind::Other:
      break;  // unreachable: guarded by kernel_applicable above
  }
}

}  // namespace

bool kernel_applicable(ColKind col_kind, CompOp op, const Value& literal) {
  // Null literal: Unknown for every row regardless of either side's kind.
  if (literal.is_null()) return true;
  switch (col_kind) {
    case ColKind::AllNull:
      return true;  // every row is null -> Unknown, literal never inspected
    case ColKind::Num:
      return literal.is_numeric();
    case ColKind::Bool:
      // Bools are equality-comparable only; ordered ops throw in the row
      // path, so they must take the fallback to reproduce the throw.
      return literal.kind() == ValueKind::Bool &&
             (op == CompOp::Eq || op == CompOp::Ne);
    case ColKind::String:
      return literal.kind() == ValueKind::String;
    case ColKind::Other:
      return false;
  }
  return false;
}

void eval_predicate_column(const ColumnarExtent::Column& col,
                           std::size_t rows, CompOp op, const Value& literal,
                           Truth* out) {
  eval_impl(col, rows, nullptr, op, literal, out);
}

void eval_predicate_column(const ColumnarExtent::Column& col,
                           std::span<const std::uint32_t> sel, CompOp op,
                           const Value& literal, Truth* out) {
  eval_impl(col, 0, &sel, op, literal, out);
}

std::size_t count_truth(std::span<const Truth> truths, Truth want) noexcept {
  const auto w = static_cast<std::uint8_t>(want);
  std::size_t n = 0;
  const Truth* data = truths.data();
  const std::size_t size = truths.size();
#pragma omp simd reduction(+ : n)
  for (std::size_t i = 0; i < size; ++i)
    n += static_cast<std::size_t>(static_cast<std::uint8_t>(data[i]) == w);
  return n;
}

std::size_t collect_rows(std::span<const Truth> truths, Truth want,
                         std::uint32_t* out) noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < truths.size(); ++i)
    if (truths[i] == want) out[n++] = static_cast<std::uint32_t>(i);
  return n;
}

}  // namespace isomer
