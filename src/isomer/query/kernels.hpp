// Vectorized predicate kernels.
//
// These kernels evaluate one simple comparison predicate (`attr op literal`)
// over a whole columnar extent at once, producing one Kleene Truth per row.
// They are the batch counterpart of query/query.hpp's `apply` and reproduce
// its semantics *exactly* — null rows map to Unknown, Ne/Ge/Le are the
// Kleene negations of Eq/Lt, numeric columns compare as doubles just like
// Value::as_number() — so the row-at-a-time evaluator and the kernels are
// interchangeable bit for bit.
//
// Dispatch contract: a caller may use a kernel only when
// `kernel_applicable(col.kind, op, literal)` says so. Applicability is
// decided from the *column's* storage kind (a whole-extent property), never
// per row, so the kernels are branch-light and auto-vectorizable; every
// combination the kernels cannot mirror exactly — mixed-kind columns,
// incompatible operand kinds whose row path throws QueryError, ordered
// comparison on bools — must take the row-at-a-time fallback.
#pragma once

#include <cstdint>
#include <span>

#include "isomer/common/truth.hpp"
#include "isomer/common/value.hpp"
#include "isomer/query/query.hpp"
#include "isomer/store/columnar.hpp"

namespace isomer {

/// True when `col_kind op literal` can be evaluated by a kernel with results
/// identical to row-at-a-time `apply` on every possible row — including the
/// rows where the row path would throw QueryError (those make the predicate
/// non-vectorizable, so the fallback reproduces the throw).
[[nodiscard]] bool kernel_applicable(ColumnarExtent::ColKind col_kind,
                                     CompOp op, const Value& literal);

/// Evaluates `col[r] op literal` for rows [0, rows), writing one Truth per
/// row into `out` (capacity >= rows). Precondition: kernel_applicable.
void eval_predicate_column(const ColumnarExtent::Column& col,
                           std::size_t rows, CompOp op, const Value& literal,
                           Truth* out);

/// Selection-vector variant: evaluates only the rows listed in `sel`,
/// writing out[i] = truth of row sel[i] (out capacity >= sel.size()).
void eval_predicate_column(const ColumnarExtent::Column& col,
                           std::span<const std::uint32_t> sel, CompOp op,
                           const Value& literal, Truth* out);

/// Number of entries in `truths` equal to `want`.
[[nodiscard]] std::size_t count_truth(std::span<const Truth> truths,
                                      Truth want) noexcept;

/// Writes the indices whose truth equals `want` into `out` (capacity >=
/// truths.size()) and returns how many were written — a selection vector
/// over the kernel's output.
std::size_t collect_rows(std::span<const Truth> truths, Truth want,
                         std::uint32_t* out) noexcept;

}  // namespace isomer
