#include "isomer/query/parser.hpp"

#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

namespace isomer {

namespace {

// ---------------------------------------------------------------- lexing --

enum class Tok : unsigned char {
  Ident,   // bareword: identifier, keyword, or unquoted string literal
  Int,
  Real,
  String,  // quoted
  Comma,
  Dot,
  Star,
  LParen,
  RParen,
  Op,      // comparison operator
  End,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;     // raw spelling (idents lowercased separately on use)
  std::size_t pos = 0;  // offset in the input, for error messages
};

[[noreturn]] void fail(const std::string& message, std::size_t pos) {
  std::ostringstream os;
  os << "SQL/X parse error at offset " << pos << ": " << message;
  throw ParseError(os.str());
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

std::vector<Token> lex(std::string_view text) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < text.size() && ident_char(text[j])) ++j;
      tokens.push_back(
          Token{Tok::Ident, std::string(text.substr(i, j - i)), start});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t j = i + 1;
      bool real = false;
      while (j < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[j])) ||
              text[j] == '.')) {
        if (text[j] == '.') {
          // A digit must follow, otherwise this dot belongs to a path.
          if (j + 1 >= text.size() ||
              !std::isdigit(static_cast<unsigned char>(text[j + 1])))
            break;
          real = true;
        }
        ++j;
      }
      tokens.push_back(Token{real ? Tok::Real : Tok::Int,
                             std::string(text.substr(i, j - i)), start});
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      std::size_t j = i + 1;
      while (j < text.size() && text[j] != c) ++j;
      if (j >= text.size()) fail("unterminated string literal", start);
      tokens.push_back(
          Token{Tok::String, std::string(text.substr(i + 1, j - i - 1)),
                start});
      i = j + 1;
      continue;
    }
    switch (c) {
      case ',':
        tokens.push_back(Token{Tok::Comma, ",", start});
        ++i;
        continue;
      case '.':
        tokens.push_back(Token{Tok::Dot, ".", start});
        ++i;
        continue;
      case '*':
        tokens.push_back(Token{Tok::Star, "*", start});
        ++i;
        continue;
      case '(':
        tokens.push_back(Token{Tok::LParen, "(", start});
        ++i;
        continue;
      case ')':
        tokens.push_back(Token{Tok::RParen, ")", start});
        ++i;
        continue;
      case '=':
        tokens.push_back(Token{Tok::Op, "=", start});
        ++i;
        continue;
      case '!':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          tokens.push_back(Token{Tok::Op, "<>", start});
          i += 2;
          continue;
        }
        fail("stray '!'", start);
      case '<':
        if (i + 1 < text.size() && (text[i + 1] == '=' || text[i + 1] == '>')) {
          tokens.push_back(
              Token{Tok::Op, std::string(text.substr(i, 2)), start});
          i += 2;
        } else {
          tokens.push_back(Token{Tok::Op, "<", start});
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          tokens.push_back(Token{Tok::Op, ">=", start});
          i += 2;
        } else {
          tokens.push_back(Token{Tok::Op, ">", start});
          ++i;
        }
        continue;
      default:
        fail(std::string("unexpected character '") + c + "'", start);
    }
  }
  tokens.push_back(Token{Tok::End, "", text.size()});
  return tokens;
}

std::string lowered(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

// --------------------------------------------------------------- parsing --

/// Boolean-formula AST over predicate indices, normalized afterwards.
struct Node {
  enum class Kind { Pred, And, Or } kind = Kind::Pred;
  std::size_t pred = 0;
  std::vector<Node> children;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : tokens_(lex(text)) {}

  GlobalQuery parse() {
    keyword("select");
    GlobalQuery query;
    parse_targets(query);
    keyword("from");
    query.range_class = expect(Tok::Ident, "range class name").text;
    const Token& declared = expect(Tok::Ident, "range variable");
    var_ = declared.text;
    if (!first_target_var_.empty() && first_target_var_ != var_)
      fail("target list uses variable '" + first_target_var_ +
               "' but the range variable is '" + var_ + "'",
           declared.pos);

    if (at_keyword("where")) {
      advance();
      const Node formula = parse_or(query);
      normalize(formula, query);
    }
    if (peek().kind != Tok::End) fail("trailing input", peek().pos);
    return query;
  }

 private:
  const Token& peek() const { return tokens_[index_]; }
  void advance() { ++index_; }

  const Token& expect(Tok kind, const char* what) {
    if (peek().kind != kind)
      fail(std::string("expected ") + what + ", found '" + peek().text + "'",
           peek().pos);
    const Token& token = peek();
    advance();
    return token;
  }

  bool at_keyword(const char* word) const {
    return peek().kind == Tok::Ident && lowered(peek().text) == word;
  }
  void keyword(const char* word) {
    if (!at_keyword(word))
      fail(std::string("expected keyword '") + word + "', found '" +
               peek().text + "'",
           peek().pos);
    advance();
  }

  /// `X.a.b.c` — checks the variable and returns the dotted path.
  PathExpr parse_path() {
    const Token& var = expect(Tok::Ident, "range variable");
    if (!var_.empty() && var.text != var_)
      fail("unknown range variable '" + var.text + "' (declared '" + var_ +
               "')",
           var.pos);
    std::vector<std::string> steps;
    do {
      expect(Tok::Dot, "'.'");
      steps.push_back(expect(Tok::Ident, "attribute name").text);
    } while (peek().kind == Tok::Dot);
    return PathExpr(std::move(steps));
  }

  void parse_targets(GlobalQuery& query) {
    if (peek().kind == Tok::Star) {  // Select * — project nothing extra
      advance();
      return;
    }
    // Targets reference the range variable before it is declared; record
    // the raw paths now and validate the variable afterwards.
    first_target_var_.clear();
    while (true) {
      const Token& var = expect(Tok::Ident, "range variable");
      if (first_target_var_.empty()) first_target_var_ = var.text;
      if (var.text != first_target_var_)
        fail("inconsistent range variables in the target list", var.pos);
      std::vector<std::string> steps;
      do {
        expect(Tok::Dot, "'.'");
        steps.push_back(expect(Tok::Ident, "attribute name").text);
      } while (peek().kind == Tok::Dot);
      query.targets.push_back(PathExpr(std::move(steps)));
      if (peek().kind != Tok::Comma) break;
      advance();
    }
  }

  Value parse_literal() {
    const Token& token = peek();
    switch (token.kind) {
      case Tok::Int:
        advance();
        return Value(static_cast<std::int64_t>(std::stoll(token.text)));
      case Tok::Real:
        advance();
        return Value(std::stod(token.text));
      case Tok::String:
        advance();
        return Value(token.text);
      case Tok::Ident: {
        const std::string word = lowered(token.text);
        advance();
        if (word == "true") return Value(true);
        if (word == "false") return Value(false);
        // Bareword string, as the paper writes `X.address.city=Taipei`.
        return Value(token.text);
      }
      default:
        fail("expected a literal, found '" + token.text + "'", token.pos);
    }
  }

  static CompOp to_op(const Token& token) {
    if (token.text == "=") return CompOp::Eq;
    if (token.text == "<>") return CompOp::Ne;
    if (token.text == "<") return CompOp::Lt;
    if (token.text == "<=") return CompOp::Le;
    if (token.text == ">") return CompOp::Gt;
    if (token.text == ">=") return CompOp::Ge;
    fail("unknown operator '" + token.text + "'", token.pos);
  }

  Node parse_or(GlobalQuery& query) {
    Node node = parse_and(query);
    while (at_keyword("or")) {
      advance();
      if (node.kind != Node::Kind::Or) {
        Node parent;
        parent.kind = Node::Kind::Or;
        parent.children.push_back(std::move(node));
        node = std::move(parent);
      }
      node.children.push_back(parse_and(query));
    }
    return node;
  }

  Node parse_and(GlobalQuery& query) {
    Node node = parse_factor(query);
    while (at_keyword("and")) {
      advance();
      if (node.kind != Node::Kind::And) {
        Node parent;
        parent.kind = Node::Kind::And;
        parent.children.push_back(std::move(node));
        node = std::move(parent);
      }
      node.children.push_back(parse_factor(query));
    }
    return node;
  }

  Node parse_factor(GlobalQuery& query) {
    if (peek().kind == Tok::LParen) {
      advance();
      Node inner = parse_or(query);
      expect(Tok::RParen, "')'");
      return inner;
    }
    const std::size_t pos = peek().pos;
    PathExpr path = parse_path();
    const CompOp op = to_op(expect(Tok::Op, "comparison operator"));
    Value literal = parse_literal();
    if (literal.is_null()) fail("null literal", pos);
    Node node;
    node.kind = Node::Kind::Pred;
    node.pred = query.predicates.size();
    query.predicates.push_back(
        Predicate{std::move(path), op, std::move(literal)});
    return node;
  }

  /// Flattens the formula into GlobalQuery's AND-of-at-most-one-OR shape.
  void normalize(const Node& root, GlobalQuery& query) {
    const auto conjunct_preds =
        [](const Node& node) -> std::optional<std::vector<std::size_t>> {
      if (node.kind == Node::Kind::Pred) return std::vector{node.pred};
      if (node.kind != Node::Kind::And) return std::nullopt;
      std::vector<std::size_t> preds;
      for (const Node& child : node.children) {
        if (child.kind != Node::Kind::Pred) return std::nullopt;
        preds.push_back(child.pred);
      }
      return preds;
    };

    const auto as_groups = [&](const Node& node) {
      std::vector<std::vector<std::size_t>> groups;
      for (const Node& alt : node.children) {
        const auto preds = conjunct_preds(alt);
        if (!preds)
          fail("this OR nests another OR inside an alternative; rewrite the "
               "formula as conjuncts AND one OR of conjunctions",
               0);
        groups.push_back(*preds);
      }
      return groups;
    };

    if (root.kind == Node::Kind::Pred) return;  // single conjunct
    if (root.kind == Node::Kind::Or) {
      query.disjuncts = as_groups(root);
      return;
    }
    // AND: all children predicates, except at most one OR child.
    bool saw_or = false;
    for (const Node& child : root.children) {
      if (child.kind == Node::Kind::Pred) continue;
      if (child.kind == Node::Kind::Or && !saw_or) {
        saw_or = true;
        query.disjuncts = as_groups(child);
        continue;
      }
      fail("at most one OR group is supported per query (the engine's "
           "formula shape is conjuncts AND one OR of conjunctions)",
           0);
    }
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
  std::string var_;
  std::string first_target_var_;
};

}  // namespace

GlobalQuery parse_sqlx(std::string_view text) {
  Parser parser(text);
  GlobalQuery query = parser.parse();
  return query;
}

}  // namespace isomer
