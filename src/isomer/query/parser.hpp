// SQL/X-subset parser.
//
// The paper writes global queries in UniSQL's SQL/X (Fig. 3a). This parser
// accepts that subset — single range variable, dotted path expressions,
// comparison predicates over string/int/real/bool literals, conjunctions —
// plus the library's disjunctive extension (`or`, with parentheses):
//
//   Select X.name, X.advisor.name
//   From Student X
//   Where X.address.city = 'Taipei'
//     and (X.advisor.speciality = 'database' or X.age >= 30)
//
// Grammar (case-insensitive keywords):
//
//   query     := SELECT targets FROM ident ident [WHERE formula]
//   targets   := target (',' target)*   | '*'            ('*' = no targets)
//   target    := var '.' path
//   formula   := conjunct (OR conjunct)*
//   conjunct  := factor (AND factor)*
//   factor    := predicate | '(' formula ')'
//   predicate := var '.' path op literal
//   op        := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//   literal   := integer | real | 'string' | "string" | TRUE | FALSE
//                | bareword                      (bareword = unquoted string,
//                                                 as the paper writes Taipei)
//
// The formula is normalized into GlobalQuery's shape: a pure conjunction
// uses no disjunct groups; a top-level OR of conjunctions becomes one group
// per alternative. Nested mixtures beyond that (an OR inside one AND-factor
// of another OR) exceed GlobalQuery's AND-of-OR shape and are rejected with
// a clear error.
#pragma once

#include <string>

#include "isomer/common/error.hpp"
#include "isomer/query/query.hpp"

namespace isomer {

/// Thrown on any lexical or syntactic error; the message carries the
/// offending position and token.
class ParseError : public QueryError {
 public:
  using QueryError::QueryError;
};

/// Parses one SQL/X query. Throws ParseError on malformed input.
[[nodiscard]] GlobalQuery parse_sqlx(std::string_view text);

}  // namespace isomer
