#include "isomer/query/printer.hpp"

#include <sstream>

namespace isomer {

namespace {

void print_predicates(std::ostringstream& os,
                      const std::vector<Predicate>& preds) {
  const char* sep = "";
  for (const Predicate& pred : preds) {
    os << sep << "X." << pred.path.dotted() << to_string(pred.op)
       << to_string(pred.literal);
    sep = " and ";
  }
}

}  // namespace

std::string to_sqlx(const GlobalQuery& query) {
  std::ostringstream os;
  os << "Select ";
  const char* sep = "";
  for (const PathExpr& target : query.targets) {
    os << sep << "X." << target.dotted();
    sep = ", ";
  }
  os << " From " << query.range_class << " X";
  if (query.predicates.empty()) return os.str();
  os << " Where ";

  if (query.disjuncts.empty()) {
    print_predicates(os, query.predicates);
    return os.str();
  }

  // Disjunctive form: plain conjuncts first, then the OR of the groups.
  std::vector<bool> grouped(query.predicates.size(), false);
  for (const auto& group : query.disjuncts)
    for (const std::size_t index : group) grouped[index] = true;
  const char* and_sep = "";
  for (std::size_t p = 0; p < query.predicates.size(); ++p) {
    if (grouped[p]) continue;
    const Predicate& pred = query.predicates[p];
    os << and_sep << "X." << pred.path.dotted() << to_string(pred.op)
       << to_string(pred.literal);
    and_sep = " and ";
  }
  os << and_sep << "(";
  const char* or_sep = "";
  for (const auto& group : query.disjuncts) {
    os << or_sep;
    or_sep = " or ";
    if (group.size() > 1) os << "(";
    const char* inner = "";
    for (const std::size_t index : group) {
      const Predicate& pred = query.predicates[index];
      os << inner << "X." << pred.path.dotted() << to_string(pred.op)
         << to_string(pred.literal);
      inner = " and ";
    }
    if (group.size() > 1) os << ")";
  }
  os << ")";
  return os.str();
}

std::string to_sqlx(const LocalQuery& query) {
  std::ostringstream os;
  os << "Select X.Oid";
  for (const PathExpr& item : query.unsolved_item_paths)
    os << ", X." << item.dotted();
  for (const PathExpr& target : query.targets) os << ", X." << target.dotted();
  os << " From " << query.root_class << "@DB" << query.db.value() << " X";
  if (!query.local_predicates.empty()) {
    os << " Where ";
    print_predicates(os, query.local_predicates);
  }
  return os.str();
}

}  // namespace isomer
