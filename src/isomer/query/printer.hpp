// SQL/X-style query formatting.
//
// The paper writes queries in UniSQL's SQL/X (Fig. 3). We do not parse SQL;
// queries are built through the AST. This printer renders the AST back into
// the paper's notation for logs, examples and documentation.
#pragma once

#include <string>

#include "isomer/query/query.hpp"

namespace isomer {

/// Renders a global query as
/// `Select X.name, X.advisor.name From Student X Where X.address.city=Taipei
///  and ...`.
[[nodiscard]] std::string to_sqlx(const GlobalQuery& query);

/// Renders a local query as
/// `Select X.Oid, X.advisor, ... From Student@DB1 X Where ...`
/// including the projected unsolved-item paths, mirroring Fig. 3(b).
[[nodiscard]] std::string to_sqlx(const LocalQuery& query);

}  // namespace isomer
