#include "isomer/query/query.hpp"

#include "isomer/common/error.hpp"

namespace isomer {

std::string_view to_string(CompOp op) noexcept {
  switch (op) {
    case CompOp::Eq:
      return "=";
    case CompOp::Ne:
      return "<>";
    case CompOp::Lt:
      return "<";
    case CompOp::Le:
      return "<=";
    case CompOp::Gt:
      return ">";
    case CompOp::Ge:
      return ">=";
  }
  return "=";
}

Truth apply(CompOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case CompOp::Eq:
      return compare_eq(lhs, rhs);
    case CompOp::Ne:
      return !compare_eq(lhs, rhs);
    case CompOp::Lt:
      return compare_less(lhs, rhs);
    case CompOp::Ge:
      return !compare_less(lhs, rhs);
    case CompOp::Gt:
      return compare_less(rhs, lhs);
    case CompOp::Le:
      return !compare_less(rhs, lhs);
  }
  return Truth::Unknown;
}

std::ostream& operator<<(std::ostream& os, const Predicate& pred) {
  return os << pred.path << to_string(pred.op) << pred.literal;
}

GlobalQuery& GlobalQuery::select(std::string_view dotted_path) {
  targets.push_back(PathExpr::parse(dotted_path));
  return *this;
}

GlobalQuery& GlobalQuery::where(std::string_view dotted_path, CompOp op,
                                Value literal) {
  predicates.push_back(
      Predicate{PathExpr::parse(dotted_path), op, std::move(literal)});
  return *this;
}

GlobalQuery& GlobalQuery::or_group(std::initializer_list<std::size_t> indices) {
  disjuncts.emplace_back(indices);
  return *this;
}

Truth GlobalQuery::combine(const std::vector<Truth>& truths) const {
  expects(truths.size() == predicates.size(),
          "GlobalQuery::combine needs one truth per predicate");
  std::vector<bool> grouped(predicates.size(), false);
  Truth alternatives = Truth::False;
  for (const auto& group : disjuncts) {
    Truth conjunct = Truth::True;
    for (const std::size_t index : group) {
      expects(index < predicates.size(), "disjunct index out of range");
      grouped[index] = true;
      conjunct = conjunct && truths[index];
    }
    alternatives = alternatives || conjunct;
  }
  Truth result = disjuncts.empty() ? Truth::True : alternatives;
  for (std::size_t p = 0; p < truths.size(); ++p)
    if (!grouped[p]) result = result && truths[p];
  return result;
}

}  // namespace isomer
