// Query model.
//
// A *global query* (paper Fig. 3a) names one range class of the global
// schema, a list of target path expressions, and a conjunction of
// (possibly nested) comparison predicates.
//
// A *local query* (Fig. 3b) is the translation of a global query for one
// component database: paths are in local attribute names, predicates that
// touch schema-level missing attributes have been stripped into
// `unsolved_predicates`, and the nested complex attributes holding missing
// data are projected so their objects can be certified later.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "isomer/common/ids.hpp"
#include "isomer/common/truth.hpp"
#include "isomer/common/value.hpp"
#include "isomer/objmodel/path.hpp"

namespace isomer {

/// Comparison operators usable in predicates.
enum class CompOp : unsigned char { Eq, Ne, Lt, Le, Gt, Ge };

[[nodiscard]] std::string_view to_string(CompOp op) noexcept;

/// Three-valued application of a comparison operator (Unknown when either
/// operand is null).
[[nodiscard]] Truth apply(CompOp op, const Value& lhs, const Value& rhs);

/// One conjunct: `path op literal`.
struct Predicate {
  PathExpr path;
  CompOp op = CompOp::Eq;
  Value literal;

  friend bool operator==(const Predicate&, const Predicate&) = default;
};

std::ostream& operator<<(std::ostream& os, const Predicate& pred);

/// A query against the global schema.
///
/// Predicates combine conjunctively by default (the paper's setting). The
/// paper's §5 extension — disjunctive form — is supported through
/// `disjuncts`: predicate indices grouped into alternatives. The matching
/// formula is then
///
///     AND(predicates not in any group)  AND  OR(AND(group) for each group)
///
/// evaluated in Kleene logic, so e.g. `A and (B or C)`.
struct GlobalQuery {
  std::string range_class;          ///< global class the variable ranges over
  std::vector<PathExpr> targets;    ///< projected paths
  std::vector<Predicate> predicates;

  /// Disjunctive structure; empty = pure conjunction.
  std::vector<std::vector<std::size_t>> disjuncts;

  /// Fluent builders used by examples and tests.
  GlobalQuery& select(std::string_view dotted_path);
  GlobalQuery& where(std::string_view dotted_path, CompOp op, Value literal);
  /// Declares one OR-alternative over previously added predicate indices.
  GlobalQuery& or_group(std::initializer_list<std::size_t> indices);

  /// Combines per-predicate truths (aligned with `predicates`) into the
  /// query's overall Kleene truth. Throws ContractViolation when a disjunct
  /// index is out of range or `truths` is misaligned.
  [[nodiscard]] Truth combine(const std::vector<Truth>& truths) const;
};

/// A predicate of the global query that is *schema-unsolved* for one
/// component database: its path crosses an attribute the constituent class
/// does not define. `item_prefix` is the global-name path from the range
/// class to the object that holds the missing attribute (empty when the
/// local root object itself holds it); `remaining` is the global-name suffix
/// that assistant objects must satisfy.
struct UnsolvedPredicate {
  std::size_t predicate_index = 0;  ///< index into GlobalQuery::predicates
  Predicate original;    ///< the global predicate (global names)
  PathExpr item_prefix;  ///< path to the unsolved item (global names)
  PathExpr remaining;    ///< suffix from the unsolved item (global names)

  friend bool operator==(const UnsolvedPredicate&,
                         const UnsolvedPredicate&) = default;
};

/// The translation of a global query for one component database.
struct LocalQuery {
  DbId db;
  std::string root_class;  ///< local root class (constituent of the range class)

  /// Predicates fully evaluable against this database's schema, in local
  /// attribute names. (Individual objects may still evaluate to Unknown via
  /// null values.)
  std::vector<Predicate> local_predicates;

  /// For each local predicate, the index of the global predicate it was
  /// translated from; statuses reported to the global site use these.
  std::vector<std::size_t> local_predicate_origin;

  /// Predicates stripped because this database's schema cannot evaluate
  /// them; kept in global names for assistant checking elsewhere.
  std::vector<UnsolvedPredicate> unsolved_predicates;

  /// Target paths in local names; a target whose path is schema-missing
  /// here is absent from this list (its value is null for local objects).
  std::vector<PathExpr> targets;

  /// For each local target, the index of the global target it translates.
  std::vector<std::size_t> target_origin;

  /// Local-name prefixes of the nested complex attributes that hold missing
  /// data — projected so unsolved items can be identified and certified.
  std::vector<PathExpr> unsolved_item_paths;
};

}  // namespace isomer
