#include "isomer/query/result.hpp"

namespace isomer {

std::ostream& operator<<(std::ostream& os, const QueryResult& result) {
  for (const ResultRow& row : result.rows) {
    os << "g" << row.entity.value() << " [" << to_string(row.status)
       << (row.unavailable ? ", unavailable" : "") << "]";
    for (const Value& v : row.targets) os << " " << v;
    os << "\n";
  }
  return os;
}

}  // namespace isomer
