#include "isomer/query/result.hpp"

#include <cstdio>

namespace isomer {

std::ostream& operator<<(std::ostream& os, const QueryResult& result) {
  for (const ResultRow& row : result.rows) {
    os << "g" << row.entity.value() << " [" << to_string(row.status)
       << (row.unavailable ? ", unavailable" : "");
    if (row.confidence < 1.0) {
      // Probabilistic certification (the IM strategy): annotate how sure
      // the imputed verdicts behind this row were.
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4g", row.confidence);
      os << ", conf=" << buf;
    }
    os << "]";
    for (const Value& v : row.targets) os << " " << v;
    os << "\n";
  }
  return os;
}

}  // namespace isomer
