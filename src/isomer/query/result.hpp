// Query results.
//
// Following Codd's maybe-result semantics the answer to a global query is
// two sets: *certain* results (every predicate True) and *maybe* results
// (no predicate False, at least one Unknown after certification). Rows are
// keyed by GOid — isomeric objects collapse to one row per real-world
// entity. Objects with any False predicate are eliminated and do not appear.
#pragma once

#include <algorithm>
#include <optional>
#include <ostream>
#include <vector>

#include "isomer/common/ids.hpp"
#include "isomer/common/value.hpp"
#include "isomer/query/condition.hpp"

namespace isomer {

enum class ResultStatus : unsigned char { Certain, Maybe };

[[nodiscard]] constexpr std::string_view to_string(ResultStatus s) noexcept {
  return s == ResultStatus::Certain ? "certain" : "maybe";
}

/// One answer row: the entity, its certainty, and the projected target
/// values (aligned with GlobalQuery::targets; references are GlobalRefs;
/// values unavailable in any component database are null). When a query
/// degrades gracefully over an unreachable component site, rows whose
/// certainty was affected by the outage carry the `unavailable` tag (see
/// fault/degrade.hpp for the tagging rule); on a fully live federation the
/// flag is always false.
struct ResultRow {
  GOid entity;
  ResultStatus status = ResultStatus::Maybe;
  std::vector<Value> targets;
  bool unavailable = false;
  /// The residual condition under which the row is in the certain answer
  /// (query/condition.hpp): True for certain rows; for maybe rows, the
  /// simplified expression over the still-undecided atoms. Deliberately
  /// *excluded* from equality: the centralized approach derives its
  /// residual from one materialized evaluation while the localized
  /// approaches pool per-database rows, so equivalent maybe rows carry
  /// syntactically different (truth-equivalent) conditions.
  Condition condition;
  /// Probabilistic-certification confidence (the IM strategy,
  /// docs/IMPUTATION.md): the product of the smoothed confidences of every
  /// imputed verdict this row's certification consumed. 1.0 — exact — for
  /// every row of the certifying strategies, and for IM rows certified
  /// without touching an estimate. Excluded from equality like `condition`:
  /// it annotates *how* the answer was reached, not what it is, and the
  /// thresh=1.0 bitwise-identity property compares IM rows (all confidence
  /// 1.0 there anyway) against reference rows that never carry one.
  double confidence = 1.0;

  friend bool operator==(const ResultRow& a, const ResultRow& b) {
    return a.entity == b.entity && a.status == b.status &&
           a.targets == b.targets && a.unavailable == b.unavailable;
  }
};

/// The full answer to a global query.
struct QueryResult {
  std::vector<ResultRow> rows;

  /// Sorts rows by GOid; all strategies normalize before returning so that
  /// results compare structurally.
  void normalize() {
    std::sort(rows.begin(), rows.end(),
              [](const ResultRow& a, const ResultRow& b) {
                return a.entity < b.entity;
              });
  }

  [[nodiscard]] const ResultRow* find(GOid entity) const noexcept {
    for (const ResultRow& row : rows)
      if (row.entity == entity) return &row;
    return nullptr;
  }

  [[nodiscard]] std::size_t certain_count() const noexcept {
    return static_cast<std::size_t>(
        std::count_if(rows.begin(), rows.end(), [](const ResultRow& r) {
          return r.status == ResultStatus::Certain;
        }));
  }
  [[nodiscard]] std::size_t maybe_count() const noexcept {
    return rows.size() - certain_count();
  }
  [[nodiscard]] std::size_t unavailable_count() const noexcept {
    return static_cast<std::size_t>(
        std::count_if(rows.begin(), rows.end(),
                      [](const ResultRow& r) { return r.unavailable; }));
  }

  friend bool operator==(const QueryResult&, const QueryResult&) = default;
};

std::ostream& operator<<(std::ostream& os, const QueryResult& result);

}  // namespace isomer
