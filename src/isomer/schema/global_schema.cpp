#include "isomer/schema/global_schema.hpp"

#include "isomer/common/error.hpp"

namespace isomer {

namespace {

std::string reverse_key(DbId db, std::string_view local_class) {
  return std::to_string(db.value()) + "/" + std::string(local_class);
}

}  // namespace

std::optional<std::size_t> GlobalClass::constituent_in(
    DbId db) const noexcept {
  for (std::size_t i = 0; i < constituents_.size(); ++i)
    if (constituents_[i].db == db) return i;
  return std::nullopt;
}

const std::optional<std::string>& GlobalClass::local_attr(
    std::size_t constituent_index, std::size_t attr_index) const {
  expects(constituent_index < local_names_.size(),
          "GlobalClass::local_attr constituent index out of range");
  const auto& names = local_names_[constituent_index];
  expects(attr_index < names.size(),
          "GlobalClass::local_attr attribute index out of range");
  return names[attr_index];
}

std::vector<std::string> GlobalClass::missing_attributes(
    std::size_t constituent_index) const {
  std::vector<std::string> missing;
  for (std::size_t a = 0; a < def_.attribute_count(); ++a)
    if (is_missing(constituent_index, a))
      missing.push_back(def_.attribute(a).name);
  return missing;
}

void GlobalClass::bind_local_attr(std::size_t constituent_index,
                                  std::size_t attr_index,
                                  std::string local_name) {
  expects(constituent_index < local_names_.size(),
          "GlobalClass::bind_local_attr constituent index out of range");
  auto& names = local_names_[constituent_index];
  if (names.size() <= attr_index) names.resize(def_.attribute_count());
  expects(attr_index < names.size(),
          "GlobalClass::bind_local_attr attribute index out of range");
  names[attr_index] = std::move(local_name);
}

void GlobalClass::pad_local_names() {
  for (auto& names : local_names_) names.resize(def_.attribute_count());
}

GlobalClass& GlobalSchema::add_class(GlobalClass cls) {
  if (find_class(cls.name()) != nullptr)
    throw SchemaError("global schema already defines class " + cls.name());
  for (const Constituent& constituent : cls.constituents()) {
    const auto key = reverse_key(constituent.db, constituent.local_class);
    if (reverse_.find(key) != reverse_.end())
      throw SchemaError("class " + constituent.local_class + " of DB" +
                        std::to_string(constituent.db.value()) +
                        " is already a constituent of another global class");
  }
  const std::size_t index = classes_.size();
  by_name_.emplace(cls.name(), index);
  for (const Constituent& constituent : cls.constituents())
    reverse_.emplace(reverse_key(constituent.db, constituent.local_class),
                     index);
  classes_.push_back(std::move(cls));
  return classes_.back();
}

const GlobalClass& GlobalSchema::cls(std::string_view name) const {
  const GlobalClass* found = find_class(name);
  if (found == nullptr)
    throw SchemaError("global schema has no class " + std::string(name));
  return *found;
}

const GlobalClass* GlobalSchema::find_class(
    std::string_view name) const noexcept {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return nullptr;
  return &classes_[it->second];
}

const GlobalClass* GlobalSchema::global_class_of(
    DbId db, std::string_view local_class) const noexcept {
  const auto it = reverse_.find(reverse_key(db, local_class));
  if (it == reverse_.end()) return nullptr;
  return &classes_[it->second];
}

ClassLookup GlobalSchema::lookup() const {
  return [this](std::string_view name) -> const ClassDef* {
    const GlobalClass* cls = find_class(name);
    return cls == nullptr ? nullptr : &cls->def();
  };
}

PathTranslation GlobalSchema::translate_path(std::string_view global_class,
                                             const PathExpr& path,
                                             DbId db) const {
  // Resolving first guarantees the path is well-formed against the global
  // schema, so the walk below only has to handle missing attributes.
  const ResolvedPath resolved = resolve_path(lookup(), global_class, path);

  const GlobalClass* current = &cls(global_class);
  PathTranslation result;
  std::vector<std::string> local_steps;
  for (std::size_t step = 0; step < path.length(); ++step) {
    const auto constituent = current->constituent_in(db);
    if (!constituent) {
      // The database does not participate in this branch class at all, so
      // every attribute of it is missing from this database's perspective.
      result.local = PathExpr(std::move(local_steps));
      result.missing_at = step;
      return result;
    }
    const auto attr_index =
        current->def().find_attribute(path.step(step));
    ensures(attr_index.has_value(), "resolved path step must exist globally");
    const auto& local_name = current->local_attr(*constituent, *attr_index);
    if (!local_name) {
      result.local = PathExpr(std::move(local_steps));
      result.missing_at = step;
      return result;
    }
    local_steps.push_back(*local_name);

    const bool last = (step + 1 == path.length());
    if (!last) {
      const auto& cplx = std::get<ComplexType>(resolved.steps[step].attr_type);
      current = &cls(cplx.domain_class);
    }
  }
  result.local = PathExpr(std::move(local_steps));
  return result;
}

std::ostream& operator<<(std::ostream& os, const GlobalSchema& schema) {
  os << "global schema\n";
  for (const GlobalClass& cls : schema.classes()) {
    os << "  " << cls.def() << "\n    constituents:";
    for (std::size_t c = 0; c < cls.constituents().size(); ++c) {
      const Constituent& constituent = cls.constituents()[c];
      os << " " << constituent.local_class << "@DB"
         << constituent.db.value();
      const auto missing = cls.missing_attributes(c);
      if (!missing.empty()) {
        os << "(missing:";
        for (const std::string& name : missing) os << " " << name;
        os << ")";
      }
    }
    os << "\n";
  }
  return os;
}

}  // namespace isomer
