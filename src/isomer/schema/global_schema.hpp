// The integrated global schema.
//
// Schema integration (paper §1, following the authors' earlier work [13,14])
// groups semantically equivalent classes of different component databases
// into *global classes*. A global class's attributes are the set union of
// its constituent classes' attributes; an attribute a constituent class does
// not define is a *missing attribute* of that constituent — the primary
// source of missing data.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "isomer/common/ids.hpp"
#include "isomer/objmodel/class_def.hpp"
#include "isomer/objmodel/path.hpp"

namespace isomer {

/// One constituent class of a global class.
struct Constituent {
  DbId db;
  std::string local_class;

  friend bool operator==(const Constituent&, const Constituent&) = default;
};

/// A class of the global schema. The embedded ClassDef uses *global* names
/// throughout: complex attribute domains name global classes.
class GlobalClass {
 public:
  GlobalClass(std::string name, std::vector<Constituent> constituents)
      : def_(std::move(name)), constituents_(std::move(constituents)),
        local_names_(constituents_.size()) {}

  [[nodiscard]] const std::string& name() const noexcept {
    return def_.name();
  }
  [[nodiscard]] const ClassDef& def() const noexcept { return def_; }
  [[nodiscard]] const std::vector<Constituent>& constituents() const noexcept {
    return constituents_;
  }

  /// Index of this global class's constituent in database `db` (at most one
  /// constituent per database), or nullopt when `db` does not participate.
  [[nodiscard]] std::optional<std::size_t> constituent_in(
      DbId db) const noexcept;

  /// The local attribute name implementing global attribute `attr_index` in
  /// constituent `constituent_index`, or nullopt when that constituent holds
  /// the attribute as missing.
  [[nodiscard]] const std::optional<std::string>& local_attr(
      std::size_t constituent_index, std::size_t attr_index) const;

  /// True when the constituent does not define the global attribute — the
  /// paper's "constituent class C holds the missing attribute".
  [[nodiscard]] bool is_missing(std::size_t constituent_index,
                                std::size_t attr_index) const {
    return !local_attr(constituent_index, attr_index).has_value();
  }

  /// Names of the global attributes missing in the given constituent.
  [[nodiscard]] std::vector<std::string> missing_attributes(
      std::size_t constituent_index) const;

  /// Construction API (used by the Integrator).
  ClassDef& mutable_def() noexcept { return def_; }
  void bind_local_attr(std::size_t constituent_index, std::size_t attr_index,
                       std::string local_name);
  void pad_local_names();

 private:
  ClassDef def_;
  std::vector<Constituent> constituents_;
  /// local_names_[c][a]: local name of global attribute a in constituent c.
  std::vector<std::vector<std::optional<std::string>>> local_names_;
};

/// Result of translating a global path into one component database's local
/// attribute names.
struct PathTranslation {
  /// Local-name steps translated so far. Complete when `missing_at` is
  /// empty; otherwise covers exactly the steps before the missing one.
  PathExpr local;
  /// Step index (into the global path) at which the constituent holds the
  /// attribute as missing; empty when the whole path translates.
  std::optional<std::size_t> missing_at;

  [[nodiscard]] bool complete() const noexcept {
    return !missing_at.has_value();
  }
};

/// The integrated global schema: global classes plus the reverse mapping
/// from (database, local class) to global class.
class GlobalSchema {
 public:
  /// Adds a global class; throws SchemaError on duplicate names or when a
  /// constituent already belongs to another global class.
  GlobalClass& add_class(GlobalClass cls);

  [[nodiscard]] const GlobalClass& cls(std::string_view name) const;
  [[nodiscard]] const GlobalClass* find_class(
      std::string_view name) const noexcept;
  [[nodiscard]] const std::vector<GlobalClass>& classes() const noexcept {
    return classes_;
  }

  /// Global class that the given local class is a constituent of; nullptr
  /// when the local class was not integrated.
  [[nodiscard]] const GlobalClass* global_class_of(
      DbId db, std::string_view local_class) const noexcept;

  /// Class lookup over global class definitions, for resolve_path().
  [[nodiscard]] ClassLookup lookup() const;

  /// Translates a global-name path rooted at `global_class` into the local
  /// attribute names of database `db`. Requires that `db` has a constituent
  /// of `global_class`; throws QueryError when the path does not resolve
  /// against the global schema.
  [[nodiscard]] PathTranslation translate_path(std::string_view global_class,
                                               const PathExpr& path,
                                               DbId db) const;

 private:
  std::vector<GlobalClass> classes_;
  std::unordered_map<std::string, std::size_t> by_name_;
  /// key: "<db>/<local class>"
  std::unordered_map<std::string, std::size_t> reverse_;
};

std::ostream& operator<<(std::ostream& os, const GlobalSchema& schema);

}  // namespace isomer
