#include "isomer/schema/integrator.hpp"

#include <algorithm>
#include <unordered_map>

#include "isomer/common/error.hpp"

namespace isomer {

ClassSpec& IntegrationSpec::add_class(std::string global_name) {
  classes.push_back(ClassSpec{std::move(global_name), {}, {}, std::nullopt});
  return classes.back();
}

namespace {

const ComponentSchema& schema_of(
    const std::vector<const ComponentSchema*>& schemas, DbId db) {
  for (const ComponentSchema* schema : schemas) {
    expects(schema != nullptr, "null component schema passed to integrate");
    if (schema->db() == db) return *schema;
  }
  throw SchemaError("integration references unknown database DB" +
                    std::to_string(db.value()));
}

/// The global attribute name a local attribute contributes to (identity
/// unless an explicit renaming applies).
std::string global_name_of(const ClassSpec& spec, DbId db,
                           const std::string& local_attr) {
  for (const AttrMapping& mapping : spec.attr_mappings)
    if (mapping.db == db && mapping.local_attr == local_attr)
      return mapping.global_attr;
  return local_attr;
}

/// The local attribute name implementing a global attribute in one
/// constituent, if any.
std::optional<std::string> local_name_of(const ClassSpec& spec, DbId db,
                                         const ClassDef& local_class,
                                         const std::string& global_attr) {
  for (const AttrMapping& mapping : spec.attr_mappings)
    if (mapping.db == db && mapping.global_attr == global_attr) {
      if (!local_class.has_attribute(mapping.local_attr))
        throw SchemaError("attribute mapping for global attribute " +
                          global_attr + " names missing local attribute " +
                          mapping.local_attr + " in class " +
                          local_class.name());
      return mapping.local_attr;
    }
  // Default: same name — but only when that local attribute is not itself
  // renamed to a different global attribute.
  if (local_class.has_attribute(global_attr) &&
      global_name_of(spec, db, global_attr) == global_attr)
    return global_attr;
  return std::nullopt;
}

}  // namespace

GlobalSchema integrate(const std::vector<const ComponentSchema*>& schemas,
                       const IntegrationSpec& spec) {
  GlobalSchema global;

  // Pass 1: create the global classes with their constituents so that the
  // reverse map (local class -> global class) exists before attribute types
  // are resolved (complex domains need it).
  for (const ClassSpec& class_spec : spec.classes) {
    if (class_spec.constituents.empty())
      throw SchemaError("global class " + class_spec.global_name +
                        " has no constituents");
    for (const Constituent& constituent : class_spec.constituents) {
      const ComponentSchema& schema = schema_of(schemas, constituent.db);
      if (!schema.has_class(constituent.local_class))
        throw SchemaError("DB" + std::to_string(constituent.db.value()) +
                          " has no class " + constituent.local_class +
                          " (constituent of " + class_spec.global_name + ")");
      const auto in_db = [&](const Constituent& other) {
        return other.db == constituent.db && &other != &constituent;
      };
      if (std::any_of(class_spec.constituents.begin(),
                      class_spec.constituents.end(), in_db))
        throw SchemaError("global class " + class_spec.global_name +
                          " has two constituents in DB" +
                          std::to_string(constituent.db.value()));
    }
    global.add_class(
        GlobalClass(class_spec.global_name, class_spec.constituents));
  }

  // Pass 2: attribute union per global class, resolving complex domains via
  // the reverse map.
  for (const ClassSpec& class_spec : spec.classes) {
    // add_class returns references into a vector that pass 1 has finished
    // growing, so taking a mutable pointer via find_class is safe here.
    auto& global_class =
        const_cast<GlobalClass&>(global.cls(class_spec.global_name));

    for (std::size_t c = 0; c < class_spec.constituents.size(); ++c) {
      const Constituent& constituent = class_spec.constituents[c];
      const ComponentSchema& schema = schema_of(schemas, constituent.db);
      const ClassDef& local_class = schema.cls(constituent.local_class);

      for (const AttrDef& local_attr : local_class.attributes()) {
        const std::string global_attr =
            global_name_of(class_spec, constituent.db, local_attr.name);

        // Resolve the global type of this local attribute.
        AttrType global_type = local_attr.type;
        if (const auto* cplx = std::get_if<ComplexType>(&local_attr.type)) {
          const GlobalClass* domain =
              global.global_class_of(constituent.db, cplx->domain_class);
          if (domain == nullptr)
            throw SchemaError(
                "complex attribute " + local_attr.name + " of " +
                local_class.name() + "@DB" +
                std::to_string(constituent.db.value()) +
                " references class " + cplx->domain_class +
                " which is not integrated into any global class");
          global_type = ComplexType{domain->name(), cplx->multi_valued};
        }

        const auto existing =
            global_class.def().find_attribute(global_attr);
        if (!existing) {
          global_class.mutable_def().add_attribute(global_attr, global_type);
        } else {
          const AttrType& prior = global_class.def().attribute(*existing).type;
          if (prior != global_type)
            throw SchemaError("global attribute " + global_attr + " of " +
                              class_spec.global_name +
                              " has incompatible types across constituents: " +
                              to_string(prior) + " vs " +
                              to_string(global_type));
        }
      }
    }

    // Pass 2b: now that the attribute union is complete, bind each global
    // attribute to its local name (or leave it missing) per constituent.
    global_class.pad_local_names();
    for (std::size_t c = 0; c < class_spec.constituents.size(); ++c) {
      const Constituent& constituent = class_spec.constituents[c];
      const ComponentSchema& schema = schema_of(schemas, constituent.db);
      const ClassDef& local_class = schema.cls(constituent.local_class);
      for (std::size_t a = 0; a < global_class.def().attribute_count(); ++a) {
        const std::string& global_attr = global_class.def().attribute(a).name;
        if (auto local = local_name_of(class_spec, constituent.db,
                                       local_class, global_attr))
          global_class.bind_local_attr(c, a, std::move(*local));
      }
    }

    if (class_spec.identity_attribute) {
      if (!global_class.def().has_attribute(*class_spec.identity_attribute))
        throw SchemaError("identity attribute " +
                          *class_spec.identity_attribute +
                          " is not an attribute of global class " +
                          class_spec.global_name);
      global_class.mutable_def().set_identity_attribute(
          *class_spec.identity_attribute);
    }
  }

  return global;
}

}  // namespace isomer
