// Schema integration.
//
// The Integrator builds a GlobalSchema from component schemas and an
// IntegrationSpec. The spec lists which local classes integrate into which
// global class (the semantic correspondence a human or the authors' earlier
// tooling [13] establishes); attribute correspondence defaults to matching
// by name, with explicit mappings for renamed attributes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "isomer/objmodel/schema.hpp"
#include "isomer/schema/global_schema.hpp"

namespace isomer {

/// Declares that a differently-named local attribute implements a global
/// attribute for one constituent database.
struct AttrMapping {
  std::string global_attr;
  DbId db;
  std::string local_attr;
};

/// One global class to construct.
struct ClassSpec {
  std::string global_name;
  std::vector<Constituent> constituents;
  std::vector<AttrMapping> attr_mappings;  ///< only renamed attributes
  /// Global attribute identifying the real-world entity (for isomerism
  /// detection); must be primitive and defined in at least one constituent.
  std::optional<std::string> identity_attribute;
};

/// The full integration specification.
struct IntegrationSpec {
  std::vector<ClassSpec> classes;

  ClassSpec& add_class(std::string global_name);
};

/// Integrates component schemas into a global schema.
///
/// * Global attributes are the set union of constituent attributes (after
///   applying renamings), ordered by first appearance across constituents.
/// * Primitive attributes must agree on type across constituents.
/// * Complex attributes must reference local classes that are themselves
///   integrated; their global domain is the corresponding global class, and
///   all constituents must agree on it and on multiplicity.
///
/// Throws SchemaError on any inconsistency.
[[nodiscard]] GlobalSchema integrate(
    const std::vector<const ComponentSchema*>& schemas,
    const IntegrationSpec& spec);

}  // namespace isomer
