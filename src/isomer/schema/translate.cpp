#include "isomer/schema/translate.hpp"

#include <algorithm>

#include "isomer/common/error.hpp"

namespace isomer {

std::optional<LocalQuery> derive_local_query(const GlobalSchema& schema,
                                             const GlobalQuery& query,
                                             DbId db) {
  const GlobalClass& range = schema.cls(query.range_class);
  const auto constituent = range.constituent_in(db);
  if (!constituent) return std::nullopt;

  LocalQuery local;
  local.db = db;
  local.root_class = range.constituents()[*constituent].local_class;

  for (std::size_t p = 0; p < query.predicates.size(); ++p) {
    const Predicate& pred = query.predicates[p];
    PathTranslation translation =
        schema.translate_path(query.range_class, pred.path, db);
    if (translation.complete()) {
      local.local_predicates.push_back(
          Predicate{std::move(translation.local), pred.op, pred.literal});
      local.local_predicate_origin.push_back(p);
    } else {
      const std::size_t missing_at = *translation.missing_at;
      local.unsolved_predicates.push_back(UnsolvedPredicate{
          p, pred, pred.path.prefix(missing_at), pred.path.suffix(missing_at)});
      // When the missing attribute sits on a branch class (missing_at > 0),
      // the object reached by the translated prefix is an unsolved item and
      // must be projected (Fig. 3b selects X.advisor for Q1').
      if (missing_at > 0) {
        // translation.local holds exactly the local steps before the missing
        // one, i.e. the path to the unsolved item.
        const PathExpr& item_path = translation.local;
        if (std::find(local.unsolved_item_paths.begin(),
                      local.unsolved_item_paths.end(),
                      item_path) == local.unsolved_item_paths.end())
          local.unsolved_item_paths.push_back(item_path);
      }
    }
  }

  for (std::size_t t = 0; t < query.targets.size(); ++t) {
    PathTranslation translation =
        schema.translate_path(query.range_class, query.targets[t], db);
    if (translation.complete()) {
      local.targets.push_back(std::move(translation.local));
      local.target_origin.push_back(t);
    }
  }

  return local;
}

std::vector<DbId> local_query_sites(const GlobalSchema& schema,
                                    const GlobalQuery& query) {
  const GlobalClass& range = schema.cls(query.range_class);
  std::vector<DbId> sites;
  sites.reserve(range.constituents().size());
  for (const Constituent& constituent : range.constituents())
    sites.push_back(constituent.db);
  std::sort(sites.begin(), sites.end());
  return sites;
}

}  // namespace isomer
