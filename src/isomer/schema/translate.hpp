// Global-to-local query translation (paper §2.3, Fig. 3b).
//
// For a component database holding a constituent of the query's range class,
// derive_local_query produces the local query: predicates whose paths fully
// translate become *local predicates*; predicates crossing a schema-level
// missing attribute are stripped into *unsolved predicates*, and the nested
// complex attributes holding the missing data are projected as
// *unsolved item paths* so their objects can be certified later.
#pragma once

#include <optional>

#include "isomer/query/query.hpp"
#include "isomer/schema/global_schema.hpp"

namespace isomer {

/// Derives the local query of `query` for database `db`, or nullopt when
/// `db` holds no constituent of the query's range class (no local query is
/// issued there). Throws QueryError when the global query does not resolve
/// against the global schema.
[[nodiscard]] std::optional<LocalQuery> derive_local_query(
    const GlobalSchema& schema, const GlobalQuery& query, DbId db);

/// Databases that receive a local query for `query` (those holding a
/// constituent of the range class), in ascending DbId order.
[[nodiscard]] std::vector<DbId> local_query_sites(const GlobalSchema& schema,
                                                  const GlobalQuery& query);

}  // namespace isomer
