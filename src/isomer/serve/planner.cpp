#include "isomer/serve/planner.hpp"

#include "isomer/common/error.hpp"

namespace isomer::serve {

std::string_view to_string(PlanMode mode) noexcept {
  switch (mode) {
    case PlanMode::Static:
      return "static";
    case PlanMode::Adaptive:
      return "adaptive";
    case PlanMode::Hybrid:
      return "hybrid";
  }
  return "static";
}

PlanMode parse_plan_mode(std::string_view text) {
  if (text == "static") return PlanMode::Static;
  if (text == "adaptive") return PlanMode::Adaptive;
  if (text == "hybrid") return PlanMode::Hybrid;
  throw ServeError("unknown plan mode '" + std::string(text) +
                   "' (expected static, adaptive, or hybrid)");
}

std::vector<ServeRequest> plan_pool(const Federation& federation,
                                    const std::vector<GlobalQuery>& pool,
                                    const PlannerOptions& options) {
  std::vector<ServeRequest> requests;
  requests.reserve(pool.size());

  if (options.mode != PlanMode::Static) {
    // Per-site planning. The knobs inherit the advisor's arithmetic so
    // static and adaptive runs price from identical samples.
    auto knobs = std::make_shared<PlannerKnobs>();
    knobs->costs = options.advisor.costs;
    knobs->sample_size = options.advisor.sample_size;
    knobs->seed = options.advisor.seed;
    knobs->jobs = options.advisor.jobs;
    knobs->batch = options.advisor.batch;
    knobs->switch_factor =
        options.mode == PlanMode::Hybrid ? options.knobs.switch_factor : 0;
    for (const GlobalQuery& query : pool) {
      const PlanChoice choice =
          plan_adaptive(federation, query, *knobs, options.book);
      ServeRequest request;
      request.query = query;
      request.kind = choice.plan.label;
      request.predicted_cost_s = options.optimize_response
                                     ? choice.est_response_s
                                     : choice.est_total_s;
      request.plan = std::make_shared<const ExecPlan>(choice.plan);
      // A serve() run with a stats book re-plans at launch from observed
      // payloads; without a book the up-front plan above runs as-is.
      request.replan = knobs;
      requests.push_back(std::move(request));
    }
    return requests;
  }

  for (const GlobalQuery& query : pool) {
    const Advice advice = advise_strategy(federation, query, options.advisor);
    ServeRequest request;
    request.query = query;
    request.kind =
        options.optimize_response ? advice.best_response : advice.best_total;
    for (const StrategyEstimate& estimate : advice.estimates) {
      if (estimate.kind != request.kind) continue;
      request.predicted_cost_s =
          options.optimize_response ? estimate.response_s : estimate.total_s;
      break;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

std::vector<ServeRequest> tag_tenants(const std::vector<ServeRequest>& pool,
                                      const std::vector<TenantSpec>& tenants) {
  if (tenants.empty())
    throw ServeError("tag_tenants wants at least one tenant");
  for (const ServeRequest& request : pool)
    if (!request.tenant.empty())
      throw ServeError("tag_tenants wants an untagged pool, found tenant '" +
                       request.tenant + "'");
  std::vector<ServeRequest> tagged;
  tagged.reserve(pool.size() * tenants.size());
  for (const TenantSpec& tenant : tenants)
    for (const ServeRequest& request : pool) {
      tagged.push_back(request);
      tagged.back().tenant = tenant.id;
    }
  return tagged;
}

}  // namespace isomer::serve
