#include "isomer/serve/planner.hpp"

namespace isomer::serve {

std::vector<ServeRequest> plan_pool(const Federation& federation,
                                    const std::vector<GlobalQuery>& pool,
                                    const PlannerOptions& options) {
  std::vector<ServeRequest> requests;
  requests.reserve(pool.size());
  for (const GlobalQuery& query : pool) {
    const Advice advice = advise_strategy(federation, query, options.advisor);
    ServeRequest request;
    request.query = query;
    request.kind =
        options.optimize_response ? advice.best_response : advice.best_total;
    for (const StrategyEstimate& estimate : advice.estimates) {
      if (estimate.kind != request.kind) continue;
      request.predicted_cost_s =
          options.optimize_response ? estimate.response_s : estimate.total_s;
      break;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace isomer::serve
