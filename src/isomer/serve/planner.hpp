// Advisor-backed planning for the serving layer.
//
// The scheduler's shortest-predicted-cost policy and the per-query strategy
// choice both need a *prediction*, and the repo already has the predictor:
// analytic/advisor.hpp prices CA/BL/PL for a concrete (federation, query)
// pair with Table-1 arithmetic. plan_pool runs the advisor once per pool
// entry — planning-time work, outside the simulated clock — and packages
// the recommendation as the ServeRequests the server executes.
#pragma once

#include <vector>

#include "isomer/analytic/advisor.hpp"
#include "isomer/serve/server.hpp"

namespace isomer::serve {

struct PlannerOptions {
  AdvisorOptions advisor{};
  /// Pick each query's strategy by best response time (what an interactive
  /// client feels) rather than best total work.
  bool optimize_response = true;
};

/// Plans every query of `pool`: asks the advisor for per-strategy cost
/// estimates, picks the recommended strategy, and records that strategy's
/// predicted cost (seconds) as the SPC priority. Deterministic at any
/// `advisor.jobs` value, like the advisor itself.
[[nodiscard]] std::vector<ServeRequest> plan_pool(
    const Federation& federation, const std::vector<GlobalQuery>& pool,
    const PlannerOptions& options = {});

}  // namespace isomer::serve
