// Advisor-backed planning for the serving layer.
//
// The scheduler's shortest-predicted-cost policy and the per-query strategy
// choice both need a *prediction*, and the repo already has the predictor:
// analytic/advisor.hpp prices CA/BL/PL for a concrete (federation, query)
// pair with Table-1 arithmetic. plan_pool runs the advisor once per pool
// entry — planning-time work, outside the simulated clock — and packages
// the recommendation as the ServeRequests the server executes.
#pragma once

#include <string_view>
#include <vector>

#include "isomer/analytic/advisor.hpp"
#include "isomer/analytic/planner.hpp"
#include "isomer/serve/server.hpp"

namespace isomer::serve {

/// How plan_pool chooses each query's execution plan (harness --plan=...).
enum class PlanMode : unsigned char {
  /// One whole-federation strategy per query, picked by the advisor — the
  /// paper's model, and the behavior of every pre-planner harness.
  Static,
  /// Per-site path choice (analytic/planner.hpp) without mid-flight
  /// switching; requests carry `replan` knobs, so a serve run with a
  /// stats book re-prices each launch from observed row payloads.
  Adaptive,
  /// Adaptive, plus ExecPlan::switch_factor armed: a Localized home whose
  /// observed rows overshoot the estimate re-decides mid-flight.
  Hybrid,
};

[[nodiscard]] std::string_view to_string(PlanMode mode) noexcept;
/// Parses "static" | "adaptive" | "hybrid"; throws ServeError otherwise.
[[nodiscard]] PlanMode parse_plan_mode(std::string_view text);

struct PlannerOptions {
  AdvisorOptions advisor{};
  /// Pick each query's strategy by best response time (what an interactive
  /// client feels) rather than best total work.
  bool optimize_response = true;
  PlanMode mode = PlanMode::Static;
  /// Adaptive/Hybrid: per-site pricing knobs. `costs`, `sample_size`,
  /// `seed`, `jobs` and `batch` are taken from `advisor` so the two
  /// predictors always price with the same arithmetic; only
  /// `switch_factor` is read from here (Hybrid mode).
  PlannerKnobs knobs{};
  /// Adaptive/Hybrid: consulted for already-observed sites when planning
  /// the pool up front. The serve() run's own feedback uses
  /// ServeOptions::stats_book instead.
  const SiteStatsBook* book = nullptr;
};

/// Plans every query of `pool`: asks the advisor (Static) or the adaptive
/// planner (Adaptive/Hybrid) for a plan and records its predicted cost
/// (seconds) as the SPC priority. Deterministic at any `advisor.jobs`
/// value, like the advisor itself.
[[nodiscard]] std::vector<ServeRequest> plan_pool(
    const Federation& federation, const std::vector<GlobalQuery>& pool,
    const PlannerOptions& options = {});

/// Replicates an anonymous planned pool once per tenant, tagging each copy:
/// entry t * pool.size() + p is pool[p] tagged tenants[t].id. Every tenant
/// then runs the same query mix, which is what makes per-tenant latency and
/// share comparisons apples-to-apples in the bench tenant panel. Requires a
/// non-empty tenant list; throws ServeError when `pool` is already tagged.
[[nodiscard]] std::vector<ServeRequest> tag_tenants(
    const std::vector<ServeRequest>& pool,
    const std::vector<TenantSpec>& tenants);

}  // namespace isomer::serve
