#include "isomer/serve/serve_spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <set>

#include "isomer/common/error.hpp"

namespace isomer::serve {

std::string_view to_string(ArrivalMode mode) noexcept {
  return mode == ArrivalMode::Open ? "open" : "closed";
}

std::string_view to_string(SchedPolicy policy) noexcept {
  return policy == SchedPolicy::Fifo ? "fifo" : "spc";
}

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw ServeError("malformed --serve spec '" + std::string(spec) + "': " +
                   why);
}

/// Parses a non-negative integer prefix of `text`; advances `pos`.
std::uint64_t parse_uint(std::string_view spec, std::string_view text,
                         std::size_t& pos) {
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
    bad_spec(spec, "expected a number in '" + std::string(text) + "'");
  std::uint64_t value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
    ++pos;
  }
  return value;
}

std::uint64_t parse_whole_uint(std::string_view spec, std::string_view text) {
  std::size_t pos = 0;
  const std::uint64_t value = parse_uint(spec, text, pos);
  if (pos != text.size())
    bad_spec(spec, "trailing junk in '" + std::string(text) + "'");
  return value;
}

/// Parses a duration "INT(ns|us|ms|s)" — the same grammar as --faults.
SimTime parse_duration(std::string_view spec, std::string_view text) {
  std::size_t pos = 0;
  const auto count = static_cast<SimTime>(parse_uint(spec, text, pos));
  const std::string_view rest = text.substr(pos);
  SimTime scale = 0;
  if (rest == "ns")
    scale = 1;
  else if (rest == "us")
    scale = 1'000;
  else if (rest == "ms")
    scale = 1'000'000;
  else if (rest == "s")
    scale = 1'000'000'000;
  else
    bad_spec(spec, "duration needs a unit (ns|us|ms|s) in '" +
                       std::string(text) + "'");
  return count * scale;
}

double parse_real(std::string_view spec, std::string_view text) {
  char* end = nullptr;
  const std::string owned(text);
  const double value = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str() || *end != '\0' || value < 0)
    bad_spec(spec, "expected a non-negative real, got '" + owned + "'");
  return value;
}

}  // namespace

ServeSpec parse_serve_spec(std::string_view spec) {
  ServeSpec out;
  const std::size_t colon = spec.find(':');
  const std::string_view mode = spec.substr(0, colon);
  if (mode == "open")
    out.mode = ArrivalMode::Open;
  else if (mode == "closed")
    out.mode = ArrivalMode::Closed;
  else
    bad_spec(spec, "mode must be 'open' or 'closed', got '" +
                       std::string(mode) + "'");
  if (colon == std::string_view::npos) return out;

  const std::string_view items = spec.substr(colon + 1);
  // Same rule as --faults: a repeated key is a hard error, never
  // last-one-wins — a duplicate is almost always a typo'd sweep script.
  std::set<std::string, std::less<>> seen;
  const auto note = [&](std::string_view key) {
    if (!seen.emplace(key).second)
      bad_spec(spec, "duplicate key '" + std::string(key) + "'");
  };
  std::size_t begin = 0;
  while (begin <= items.size()) {
    const std::size_t comma = items.find(',', begin);
    const std::string_view item =
        items.substr(begin, comma == std::string_view::npos
                                ? std::string_view::npos
                                : comma - begin);
    begin = comma == std::string_view::npos ? items.size() + 1 : comma + 1;
    if (item.empty()) bad_spec(spec, "empty item");

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      bad_spec(spec, "item '" + std::string(item) + "' has no '='");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (value.empty())
      bad_spec(spec, "item '" + std::string(item) + "' has no value");

    // Keys of the *other* arrival mode are hard errors, not silently
    // ignored settings: "closed:rate=50" means the author thinks they are
    // configuring an offered rate, and a closed loop has none.
    if (key == "rate") {
      note(key);
      if (out.mode != ArrivalMode::Open)
        bad_spec(spec, "'rate' only applies to open-loop arrivals");
      out.rate_qps = parse_real(spec, value);
      if (out.rate_qps <= 0) bad_spec(spec, "rate must be positive");
    } else if (key == "clients") {
      note(key);
      if (out.mode != ArrivalMode::Closed)
        bad_spec(spec, "'clients' only applies to closed-loop arrivals");
      out.clients = static_cast<std::size_t>(parse_whole_uint(spec, value));
      if (out.clients == 0) bad_spec(spec, "need at least one client");
    } else if (key == "think") {
      note(key);
      if (out.mode != ArrivalMode::Closed)
        bad_spec(spec, "'think' only applies to closed-loop arrivals");
      out.think_ns = parse_duration(spec, value);
    } else if (key == "n") {
      note(key);
      out.n_queries = static_cast<std::size_t>(parse_whole_uint(spec, value));
      if (out.n_queries == 0) bad_spec(spec, "need at least one query");
    } else if (key == "policy") {
      note(key);
      if (value == "fifo")
        out.policy = SchedPolicy::Fifo;
      else if (value == "spc")
        out.policy = SchedPolicy::Spc;
      else
        bad_spec(spec, "policy wants 'fifo' or 'spc'");
    } else if (key == "queue") {
      note(key);
      out.queue_limit = static_cast<std::size_t>(parse_whole_uint(spec, value));
    } else if (key == "inflight") {
      note(key);
      out.site_inflight =
          static_cast<std::size_t>(parse_whole_uint(spec, value));
    } else if (key == "seed") {
      note(key);
      out.seed = parse_whole_uint(spec, value);
    } else {
      bad_spec(spec, "unknown key '" + std::string(key) + "'");
    }
  }
  return out;
}

std::string to_string(const ServeSpec& spec) {
  std::string out(to_string(spec.mode));
  out += ":";
  if (spec.mode == ArrivalMode::Open) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", spec.rate_qps);
    out += "rate=" + std::string(buf);
  } else {
    out += "clients=" + std::to_string(spec.clients);
    out += ",think=" + std::to_string(spec.think_ns) + "ns";
  }
  out += ",n=" + std::to_string(spec.n_queries);
  out += ",policy=" + std::string(to_string(spec.policy));
  out += ",queue=" + std::to_string(spec.queue_limit);
  out += ",inflight=" + std::to_string(spec.site_inflight);
  out += ",seed=" + std::to_string(spec.seed);
  return out;
}

}  // namespace isomer::serve
