#include "isomer/serve/serve_spec.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <set>

#include "isomer/common/error.hpp"

namespace isomer::serve {

std::string_view to_string(ArrivalMode mode) noexcept {
  return mode == ArrivalMode::Open ? "open" : "closed";
}

std::string_view to_string(SchedPolicy policy) noexcept {
  switch (policy) {
    case SchedPolicy::Fifo: return "fifo";
    case SchedPolicy::Spc: return "spc";
    case SchedPolicy::Wfq: return "wfq";
    case SchedPolicy::Edf: return "edf";
  }
  return "fifo";
}

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw ServeError("malformed --serve spec '" + std::string(spec) + "': " +
                   why);
}

/// Parses a non-negative integer prefix of `text`; advances `pos`.
std::uint64_t parse_uint(std::string_view spec, std::string_view text,
                         std::size_t& pos) {
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
    bad_spec(spec, "expected a number in '" + std::string(text) + "'");
  std::uint64_t value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
    ++pos;
  }
  return value;
}

std::uint64_t parse_whole_uint(std::string_view spec, std::string_view text) {
  std::size_t pos = 0;
  const std::uint64_t value = parse_uint(spec, text, pos);
  if (pos != text.size())
    bad_spec(spec, "trailing junk in '" + std::string(text) + "'");
  return value;
}

/// Parses a duration "INT(ns|us|ms|s)" — the same grammar as --faults.
SimTime parse_duration(std::string_view spec, std::string_view text) {
  std::size_t pos = 0;
  const auto count = static_cast<SimTime>(parse_uint(spec, text, pos));
  const std::string_view rest = text.substr(pos);
  SimTime scale = 0;
  if (rest == "ns")
    scale = 1;
  else if (rest == "us")
    scale = 1'000;
  else if (rest == "ms")
    scale = 1'000'000;
  else if (rest == "s")
    scale = 1'000'000'000;
  else
    bad_spec(spec, "duration needs a unit (ns|us|ms|s) in '" +
                       std::string(text) + "'");
  return count * scale;
}

double parse_real(std::string_view spec, std::string_view text) {
  char* end = nullptr;
  const std::string owned(text);
  const double value = std::strtod(owned.c_str(), &end);
  // std::isfinite rejects the 'inf'/'nan' spellings strtod accepts — an
  // infinite rate or NaN weight would poison every downstream division.
  if (end == owned.c_str() || *end != '\0' || !std::isfinite(value) ||
      value < 0)
    bad_spec(spec, "expected a finite non-negative real, got '" + owned + "'");
  return value;
}

bool valid_tenant_id(std::string_view id) {
  if (id.empty()) return false;
  for (const char c : id)
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '_' || c == '-'))
      return false;
  return true;
}

/// Parses one '/'-separated 'tenant:ID,key=value,...' clause.
TenantSpec parse_tenant_clause(std::string_view spec, std::string_view clause,
                               ArrivalMode mode) {
  constexpr std::string_view kPrefix = "tenant:";
  if (clause.substr(0, kPrefix.size()) != kPrefix)
    bad_spec(spec, "expected a 'tenant:' clause, got '" + std::string(clause) +
                       "'");
  const std::string_view body = clause.substr(kPrefix.size());
  const std::size_t comma = body.find(',');
  TenantSpec tenant;
  tenant.id = std::string(body.substr(0, comma));
  if (!valid_tenant_id(tenant.id))
    bad_spec(spec, "tenant id must be non-empty [A-Za-z0-9_-]+, got '" +
                       tenant.id + "'");
  if (comma == std::string_view::npos) return tenant;

  const std::string_view items = body.substr(comma + 1);
  std::set<std::string, std::less<>> seen;
  const auto note = [&](std::string_view key) {
    if (!seen.emplace(key).second)
      bad_spec(spec, "duplicate key '" + std::string(key) + "' for tenant '" +
                         tenant.id + "'");
  };
  std::size_t begin = 0;
  while (begin <= items.size()) {
    const std::size_t next = items.find(',', begin);
    const std::string_view item =
        items.substr(begin, next == std::string_view::npos
                                ? std::string_view::npos
                                : next - begin);
    begin = next == std::string_view::npos ? items.size() + 1 : next + 1;
    if (item.empty()) bad_spec(spec, "empty item");

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      bad_spec(spec, "item '" + std::string(item) + "' has no '='");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (value.empty())
      bad_spec(spec, "item '" + std::string(item) + "' has no value");

    if (key == "weight") {
      note(key);
      tenant.weight = parse_real(spec, value);
      if (tenant.weight <= 0) bad_spec(spec, "tenant weight must be positive");
    } else if (key == "quota") {
      note(key);
      tenant.quota = static_cast<std::size_t>(parse_whole_uint(spec, value));
    } else if (key == "slo") {
      note(key);
      tenant.slo_ns = parse_duration(spec, value);
      if (tenant.slo_ns == 0) bad_spec(spec, "a zero SLO can never be met");
    } else if (key == "rate") {
      note(key);
      if (mode != ArrivalMode::Open)
        bad_spec(spec, "a tenant 'rate' only applies to open-loop arrivals");
      tenant.rate_qps = parse_real(spec, value);
      if (tenant.rate_qps <= 0) bad_spec(spec, "tenant rate must be positive");
    } else {
      bad_spec(spec, "unknown tenant key '" + std::string(key) + "'");
    }
  }
  return tenant;
}

}  // namespace

ServeSpec parse_serve_spec(std::string_view spec) {
  ServeSpec out;
  // Tenant clauses are '/'-separated so the main clause's comma grammar
  // stays untouched (and the separator survives CMake argument lists,
  // where ';' would split).
  const std::size_t slash = spec.find('/');
  const std::string_view main_clause = spec.substr(0, slash);

  const std::size_t colon = main_clause.find(':');
  const std::string_view mode = main_clause.substr(0, colon);
  if (mode == "open")
    out.mode = ArrivalMode::Open;
  else if (mode == "closed")
    out.mode = ArrivalMode::Closed;
  else
    bad_spec(spec, "mode must be 'open' or 'closed', got '" +
                       std::string(mode) + "'");

  if (colon != std::string_view::npos) {
    const std::string_view items = main_clause.substr(colon + 1);
    // Same rule as --faults: a repeated key is a hard error, never
    // last-one-wins — a duplicate is almost always a typo'd sweep script.
    std::set<std::string, std::less<>> seen;
    const auto note = [&](std::string_view key) {
      if (!seen.emplace(key).second)
        bad_spec(spec, "duplicate key '" + std::string(key) + "'");
    };
    std::size_t begin = 0;
    while (begin <= items.size()) {
      const std::size_t comma = items.find(',', begin);
      const std::string_view item =
          items.substr(begin, comma == std::string_view::npos
                                  ? std::string_view::npos
                                  : comma - begin);
      begin = comma == std::string_view::npos ? items.size() + 1 : comma + 1;
      if (item.empty()) bad_spec(spec, "empty item");

      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos)
        bad_spec(spec, "item '" + std::string(item) + "' has no '='");
      const std::string_view key = item.substr(0, eq);
      const std::string_view value = item.substr(eq + 1);
      if (value.empty())
        bad_spec(spec, "item '" + std::string(item) + "' has no value");

      // Keys of the *other* arrival mode are hard errors, not silently
      // ignored settings: "closed:rate=50" means the author thinks they are
      // configuring an offered rate, and a closed loop has none.
      if (key == "rate") {
        note(key);
        if (out.mode != ArrivalMode::Open)
          bad_spec(spec, "'rate' only applies to open-loop arrivals");
        out.rate_qps = parse_real(spec, value);
        if (out.rate_qps <= 0) bad_spec(spec, "rate must be positive");
      } else if (key == "clients") {
        note(key);
        if (out.mode != ArrivalMode::Closed)
          bad_spec(spec, "'clients' only applies to closed-loop arrivals");
        out.clients = static_cast<std::size_t>(parse_whole_uint(spec, value));
        if (out.clients == 0) bad_spec(spec, "need at least one client");
      } else if (key == "think") {
        note(key);
        if (out.mode != ArrivalMode::Closed)
          bad_spec(spec, "'think' only applies to closed-loop arrivals");
        out.think_ns = parse_duration(spec, value);
      } else if (key == "n") {
        note(key);
        out.n_queries = static_cast<std::size_t>(parse_whole_uint(spec, value));
        if (out.n_queries == 0) bad_spec(spec, "need at least one query");
      } else if (key == "policy") {
        note(key);
        if (value == "fifo")
          out.policy = SchedPolicy::Fifo;
        else if (value == "spc")
          out.policy = SchedPolicy::Spc;
        else if (value == "wfq")
          out.policy = SchedPolicy::Wfq;
        else if (value == "edf")
          out.policy = SchedPolicy::Edf;
        else
          bad_spec(spec, "policy wants 'fifo', 'spc', 'wfq' or 'edf'");
      } else if (key == "queue") {
        note(key);
        out.queue_limit =
            static_cast<std::size_t>(parse_whole_uint(spec, value));
      } else if (key == "inflight") {
        note(key);
        out.site_inflight =
            static_cast<std::size_t>(parse_whole_uint(spec, value));
      } else if (key == "autoscale") {
        note(key);
        if (value == "on")
          out.autoscale = true;
        else if (value == "off")
          out.autoscale = false;
        else
          bad_spec(spec, "autoscale wants 'on' or 'off'");
      } else if (key == "seed") {
        note(key);
        out.seed = parse_whole_uint(spec, value);
      } else {
        bad_spec(spec, "unknown key '" + std::string(key) + "'");
      }
    }
  } else if (slash != std::string_view::npos) {
    // "open/tenant:a" (no ':' in the main clause) is fine; anything else
    // between mode and '/' was caught by the mode check above.
  }

  std::size_t begin = slash == std::string_view::npos ? spec.size() + 1
                                                      : slash + 1;
  while (begin <= spec.size()) {
    const std::size_t next = spec.find('/', begin);
    const std::string_view clause =
        spec.substr(begin, next == std::string_view::npos
                               ? std::string_view::npos
                               : next - begin);
    begin = next == std::string_view::npos ? spec.size() + 1 : next + 1;
    if (clause.empty()) bad_spec(spec, "empty tenant clause");
    TenantSpec tenant = parse_tenant_clause(spec, clause, out.mode);
    for (const TenantSpec& existing : out.tenants)
      if (existing.id == tenant.id)
        bad_spec(spec, "duplicate tenant id '" + tenant.id + "'");
    out.tenants.push_back(std::move(tenant));
  }

  if (out.autoscale && out.site_inflight == 0)
    bad_spec(spec, "autoscale needs a per-site in-flight cap (inflight > 0)");
  return out;
}

std::string to_string(const ServeSpec& spec) {
  std::string out(to_string(spec.mode));
  out += ":";
  char buf[64];
  if (spec.mode == ArrivalMode::Open) {
    std::snprintf(buf, sizeof buf, "%.17g", spec.rate_qps);
    out += "rate=" + std::string(buf);
  } else {
    out += "clients=" + std::to_string(spec.clients);
    out += ",think=" + std::to_string(spec.think_ns) + "ns";
  }
  out += ",n=" + std::to_string(spec.n_queries);
  out += ",policy=" + std::string(to_string(spec.policy));
  out += ",queue=" + std::to_string(spec.queue_limit);
  out += ",inflight=" + std::to_string(spec.site_inflight);
  // Only printed when on, so pre-tenant specs re-print byte-identically.
  if (spec.autoscale) out += ",autoscale=on";
  out += ",seed=" + std::to_string(spec.seed);
  for (const TenantSpec& tenant : spec.tenants) {
    out += "/tenant:" + tenant.id;
    std::snprintf(buf, sizeof buf, "%.17g", tenant.weight);
    out += ",weight=" + std::string(buf);
    out += ",quota=" + std::to_string(tenant.quota);
    if (tenant.slo_ns > 0) out += ",slo=" + std::to_string(tenant.slo_ns) + "ns";
    if (spec.mode == ArrivalMode::Open && tenant.rate_qps > 0) {
      std::snprintf(buf, sizeof buf, "%.17g", tenant.rate_qps);
      out += ",rate=" + std::string(buf);
    }
  }
  return out;
}

void validate_serve_spec(const ServeSpec& spec) {
  const auto reject = [](const std::string& why) {
    throw ServeError("invalid ServeSpec: " + why);
  };
  if (spec.n_queries == 0) reject("need at least one query");
  if (spec.mode == ArrivalMode::Open &&
      (!std::isfinite(spec.rate_qps) || spec.rate_qps <= 0))
    reject("open-loop rate must be a positive finite rate");
  if (spec.mode == ArrivalMode::Closed && spec.clients == 0)
    reject("need at least one client");
  if (spec.think_ns < 0) reject("think time cannot be negative");
  if (spec.autoscale && spec.site_inflight == 0)
    reject("autoscale needs a per-site in-flight cap (inflight > 0)");
  for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
    const TenantSpec& tenant = spec.tenants[t];
    if (!valid_tenant_id(tenant.id))
      reject("tenant id must be non-empty [A-Za-z0-9_-]+");
    for (std::size_t u = t + 1; u < spec.tenants.size(); ++u)
      if (spec.tenants[u].id == tenant.id)
        reject("duplicate tenant id '" + tenant.id + "'");
    if (!std::isfinite(tenant.weight) || tenant.weight <= 0)
      reject("tenant '" + tenant.id + "' weight must be positive and finite");
    if (!std::isfinite(tenant.rate_qps) || tenant.rate_qps < 0)
      reject("tenant '" + tenant.id + "' rate must be finite");
    if (tenant.slo_ns < 0)
      reject("tenant '" + tenant.id + "' SLO cannot be negative");
  }
}

}  // namespace isomer::serve
