// The --serve specification: how a query-serving run offers load and
// schedules it.
//
// A ServeSpec describes one serving experiment over the shared simulated
// federation: the arrival process (open-loop Poisson at a fixed offered
// rate, or a closed loop of N clients that each submit, wait, think and
// resubmit), the total number of query submissions, and the scheduler
// knobs — policy, admission-queue bound, per-site in-flight cap. It is
// parsed from the same kind of comma-separated mini-language as --faults
// (fault/fault_plan.hpp) and --batch, with the same duplicate-key
// hard-error rule, and re-prints canonically so archived bench headers are
// self-describing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "isomer/sim/simulator.hpp"

namespace isomer::serve {

/// How queries arrive at the admission controller.
enum class ArrivalMode : unsigned char {
  Open,    ///< open loop: Poisson arrivals at `rate_qps`, blind to progress
  Closed,  ///< closed loop: `clients` submitters, one query in flight each
};

/// Which waiting query the scheduler starts next.
enum class SchedPolicy : unsigned char {
  Fifo,  ///< admission order
  /// Shortest predicted cost first: the advisor's per-query cost estimate
  /// (serve/planner.hpp) is the priority; ties fall back to admission order.
  Spc,
};

[[nodiscard]] std::string_view to_string(ArrivalMode mode) noexcept;
[[nodiscard]] std::string_view to_string(SchedPolicy policy) noexcept;

/// One parsed --serve=SPEC. Defaults describe a light open-loop run.
struct ServeSpec {
  ArrivalMode mode = ArrivalMode::Open;
  double rate_qps = 50.0;       ///< open loop: mean arrivals per second
  std::size_t clients = 4;      ///< closed loop: concurrent submitters
  SimTime think_ns = 0;         ///< closed loop: pause between completions
  std::size_t n_queries = 100;  ///< total submissions across the whole run
  SchedPolicy policy = SchedPolicy::Fifo;
  /// Admitted-but-not-started queries the queue holds before the admission
  /// controller rejects new arrivals (0 = unbounded).
  std::size_t queue_limit = 64;
  /// Concurrent executions a single site serves before the scheduler holds
  /// back further starts (0 = unbounded).
  std::size_t site_inflight = 4;
  std::uint64_t seed = 0;  ///< arrival / pool-pick RNG stream

  friend bool operator==(const ServeSpec&, const ServeSpec&) = default;
};

/// Parses the --serve specification mini-language:
///
///   SPEC    := MODE [':' item (',' item)*]
///   MODE    := 'open' | 'closed'
///   item    := 'rate=' REAL        open loop: offered queries per second
///            | 'clients=' INT      closed loop: concurrent submitters
///            | 'think=' DUR        closed loop: pause before resubmitting
///            | 'n=' INT            total query submissions
///            | 'policy=' ('fifo' | 'spc')
///            | 'queue=' INT        admission queue bound (0 = unbounded)
///            | 'inflight=' INT     per-site in-flight cap (0 = unbounded)
///            | 'seed=' INT
///   DUR     := INT ('ns' | 'us' | 'ms' | 's')
///
/// Every key may appear at most once — a repeated key is a hard parse
/// error, never last-one-wins (the rule established for --faults). Keys of
/// the other arrival mode ('rate' under closed, 'clients'/'think' under
/// open) are hard errors too. Example: "open:rate=50,n=500,policy=spc".
/// Throws ServeError on malformed input.
[[nodiscard]] ServeSpec parse_serve_spec(std::string_view spec);

/// Canonical re-print: mode, then every field of that mode in a fixed
/// order, durations in nanoseconds. parse_serve_spec(to_string(s))
/// reproduces `s` exactly; the bench harnesses archive this string in
/// their --json headers.
[[nodiscard]] std::string to_string(const ServeSpec& spec);

}  // namespace isomer::serve
