// The --serve specification: how a query-serving run offers load and
// schedules it.
//
// A ServeSpec describes one serving experiment over the shared simulated
// federation: the arrival process (open-loop Poisson at a fixed offered
// rate, or a closed loop of N clients that each submit, wait, think and
// resubmit), the total number of query submissions, and the scheduler
// knobs — policy, admission-queue bound, per-site in-flight cap. It is
// parsed from the same kind of comma-separated mini-language as --faults
// (fault/fault_plan.hpp) and --batch, with the same duplicate-key
// hard-error rule, and re-prints canonically so archived bench headers are
// self-describing.
//
// A spec may additionally carry tenant clauses ('/tenant:ID,...'): named
// traffic classes with a fairness weight, an admission quota and an
// optional latency SLO. Tenants turn the anonymous queue into a
// multi-tenant server (serve/server.hpp); a spec with no tenant clause
// behaves exactly as before.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isomer/sim/simulator.hpp"

namespace isomer::serve {

/// How queries arrive at the admission controller.
enum class ArrivalMode : unsigned char {
  Open,    ///< open loop: Poisson arrivals at `rate_qps`, blind to progress
  Closed,  ///< closed loop: `clients` submitters, one query in flight each
};

/// Which waiting query the scheduler starts next.
enum class SchedPolicy : unsigned char {
  Fifo,  ///< admission order
  /// Shortest predicted cost first: the advisor's per-query cost estimate
  /// (serve/planner.hpp) is the priority; ties fall back to admission order.
  Spc,
  /// Weighted fair queueing: start-time fair queueing over predicted cost,
  /// so each tenant's long-run service share tracks its configured weight.
  Wfq,
  /// Earliest deadline first: deadline = arrival + the tenant's SLO target;
  /// submissions without an SLO sort last, in admission order.
  Edf,
};

[[nodiscard]] std::string_view to_string(ArrivalMode mode) noexcept;
[[nodiscard]] std::string_view to_string(SchedPolicy policy) noexcept;

/// One named traffic class of a multi-tenant serving run.
struct TenantSpec {
  std::string id;      ///< non-empty; [A-Za-z0-9_-]+, unique within the spec
  double weight = 1.0; ///< WFQ service share (> 0, finite)
  /// Admitted-but-not-started submissions this tenant may hold in the
  /// shared queue before its arrivals are rejected (0 = unbounded). Keeps
  /// one tenant from starving the global admission queue.
  std::size_t quota = 0;
  SimTime slo_ns = 0;  ///< latency SLO target; 0 = no deadline
  /// Open loop only: this tenant's offered arrival rate. 0 = an equal share
  /// of the spec-level rate_qps.
  double rate_qps = 0.0;

  friend bool operator==(const TenantSpec&, const TenantSpec&) = default;
};

/// One parsed --serve=SPEC. Defaults describe a light open-loop run.
struct ServeSpec {
  ArrivalMode mode = ArrivalMode::Open;
  double rate_qps = 50.0;       ///< open loop: mean arrivals per second
  std::size_t clients = 4;      ///< closed loop: concurrent submitters
  SimTime think_ns = 0;         ///< closed loop: pause between completions
  std::size_t n_queries = 100;  ///< total submissions across the whole run
  SchedPolicy policy = SchedPolicy::Fifo;
  /// Admitted-but-not-started queries the queue holds before the admission
  /// controller rejects new arrivals (0 = unbounded).
  std::size_t queue_limit = 64;
  /// Concurrent executions a single site serves before the scheduler holds
  /// back further starts (0 = unbounded).
  std::size_t site_inflight = 4;
  std::uint64_t seed = 0;  ///< arrival / pool-pick RNG stream
  /// Adapt the per-site in-flight cap at runtime from the observed
  /// queue-wait histogram: raise it while queue-wait p95 grows and sites
  /// sit idle, lower it back toward `site_inflight` on the reverse.
  /// Requires site_inflight > 0 (the cap being scaled).
  bool autoscale = false;
  /// Traffic classes; empty = the classic anonymous single-tenant queue.
  std::vector<TenantSpec> tenants;

  friend bool operator==(const ServeSpec&, const ServeSpec&) = default;
};

/// Parses the --serve specification mini-language:
///
///   SPEC    := MODE [':' item (',' item)*] ('/' TENANT)*
///   MODE    := 'open' | 'closed'
///   item    := 'rate=' REAL        open loop: offered queries per second
///            | 'clients=' INT      closed loop: concurrent submitters
///            | 'think=' DUR        closed loop: pause before resubmitting
///            | 'n=' INT            total query submissions
///            | 'policy=' ('fifo' | 'spc' | 'wfq' | 'edf')
///            | 'queue=' INT        admission queue bound (0 = unbounded)
///            | 'inflight=' INT     per-site in-flight cap (0 = unbounded)
///            | 'autoscale=' ('on' | 'off')
///            | 'seed=' INT
///   TENANT  := 'tenant:' ID (',' titem)*
///   titem   := 'weight=' REAL      fairness weight (> 0, finite)
///            | 'quota=' INT        per-tenant queue share (0 = unbounded)
///            | 'slo=' DUR          latency SLO target
///            | 'rate=' REAL        open loop: this tenant's offered rate
///   DUR     := INT ('ns' | 'us' | 'ms' | 's')
///
/// Every key may appear at most once per clause — a repeated key is a hard
/// parse error, never last-one-wins (the rule established for --faults),
/// and a repeated tenant id is a hard error too. Keys of the other arrival
/// mode ('rate' under closed, 'clients'/'think' under open) are hard
/// errors. Reals must be finite ('inf'/'nan' are rejected).
/// Example: "open:rate=50,n=500,policy=wfq/tenant:gold,weight=3/tenant:free".
/// Throws ServeError on malformed input.
[[nodiscard]] ServeSpec parse_serve_spec(std::string_view spec);

/// Canonical re-print: mode, then every field of that mode in a fixed
/// order, durations in nanoseconds. New fields print only when set
/// (autoscale only when on, tenant clauses only when present, a tenant's
/// rate only when non-zero under open arrivals), so specs predating them
/// re-print byte-identically. parse_serve_spec(to_string(s)) reproduces
/// `s` exactly; the bench harnesses archive this string in their --json
/// headers.
[[nodiscard]] std::string to_string(const ServeSpec& spec);

/// Rejects specs the parser could never produce but hand-built code can:
/// non-positive/non-finite rates, zero clients, zero queries, bad tenant
/// weights, duplicate/empty tenant ids, autoscale without an in-flight
/// cap. serve() runs this before simulating. Throws ServeError.
void validate_serve_spec(const ServeSpec& spec);

}  // namespace isomer::serve
