#include "isomer/serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "isomer/common/error.hpp"
#include "isomer/core/operators.hpp"
#include "isomer/workload/arrivals.hpp"

namespace isomer::serve {

double ServeReport::mean_latency_ms() const {
  double total = 0;
  std::size_t n = 0;
  for (const ServeOutcome& outcome : outcomes) {
    if (outcome.rejected) continue;
    total += to_milliseconds(outcome.latency());
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double ServeReport::throughput_qps() const {
  if (makespan <= 0 || completed == 0) return 0.0;
  return static_cast<double>(completed) / to_seconds(makespan);
}

namespace {

/// Exact nearest-rank percentile over a latency sample (ServeReport keeps
/// the MetricsRegistry-independent ground truth).
SimTime nearest_rank(std::vector<SimTime>& latencies, double q) {
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  if (q > 1) q = 1;
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(latencies.size())));
  if (rank == 0) rank = 1;
  return latencies[rank - 1];
}

}  // namespace

SimTime ServeReport::latency_percentile(double q) const {
  std::vector<SimTime> latencies;
  latencies.reserve(outcomes.size());
  for (const ServeOutcome& outcome : outcomes)
    if (!outcome.rejected) latencies.push_back(outcome.latency());
  return nearest_rank(latencies, q);
}

SimTime ServeReport::tenant_latency_percentile(std::size_t tenant,
                                               double q) const {
  std::vector<SimTime> latencies;
  for (const ServeOutcome& outcome : outcomes)
    if (!outcome.rejected && outcome.tenant == tenant)
      latencies.push_back(outcome.latency());
  return nearest_rank(latencies, q);
}

double ServeReport::tenant_mean_latency_ms(std::size_t tenant) const {
  double total = 0;
  std::size_t n = 0;
  for (const ServeOutcome& outcome : outcomes) {
    if (outcome.rejected || outcome.tenant != tenant) continue;
    total += to_milliseconds(outcome.latency());
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double ServeReport::fairness_ratio(std::size_t tenant) const {
  double total_cost = 0, total_weight = 0;
  for (const TenantReport& t : tenants) {
    total_cost += t.served_cost_s;
    total_weight += t.weight;
  }
  if (tenant >= tenants.size() || total_cost <= 0 || total_weight <= 0)
    return 0.0;
  const double cost_share = tenants[tenant].served_cost_s / total_cost;
  const double weight_share = tenants[tenant].weight / total_weight;
  return weight_share <= 0 ? 0.0 : cost_share / weight_share;
}

namespace {

/// Extra pause a closed-loop client takes after a rejected submission, so a
/// zero-think client cannot re-hit a still-full queue at the same simulated
/// instant forever.
constexpr SimTime kRejectBackoffNs = 1'000'000;  // 1 ms

constexpr std::size_t kNoClient = static_cast<std::size_t>(-1);

/// EDF rank of a submission without an SLO: after every real deadline,
/// admission order among themselves.
constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();

/// Autoscaler tuning: evaluate every this-many starts, call a window
/// "idle" below this utilization, and never raise the cap beyond this
/// multiple of the configured base.
constexpr std::size_t kAutoscaleWindow = 8;
constexpr double kAutoscaleIdleUtil = 0.5;
constexpr std::size_t kAutoscaleMaxFactor = 8;

/// One admitted-but-not-started submission.
struct Waiting {
  std::size_t id = 0;
  double predicted_cost_s = 0;
  std::size_t tenant = 0;
  /// WFQ virtual start/finish tags (start-time fair queueing); only
  /// meaningful under SchedPolicy::Wfq.
  double start_tag = 0;
  double finish_tag = 0;
  /// Absolute deadline, kNoDeadline when the tenant has no SLO.
  SimTime deadline = kNoDeadline;
};

/// The admission controller + scheduler driving one serve() run. All state
/// mutation happens inside simulator callbacks, which the single-threaded
/// event loop serializes deterministically (FIFO among simultaneous
/// events), so the whole run is a pure function of its inputs.
class QueryServer {
 public:
  QueryServer(const Federation& federation,
              const std::vector<ServeRequest>& pool, const ServeSpec& spec,
              const ServeOptions& options)
      : fed_(federation),
        pool_(pool),
        spec_(spec),
        options_(options),
        cluster_(sim_, options.exec.costs, federation.db_count(),
                 options.exec.topology),
        inflight_(federation.db_count() + 1, 0),
        cap_(spec.site_inflight),
        tenant_state_(std::max<std::size_t>(1, spec.tenants.size())) {}

  ServeReport run();

 private:
  /// Per-tenant scheduler state (one anonymous slot for tenant-less specs).
  struct TenantState {
    std::size_t waiting = 0;   ///< admitted-not-started, for the quota
    double last_finish = 0;    ///< WFQ: finish tag of the latest admission
  };

  void map_tenants();
  void schedule_client(std::size_t client, SimTime at);
  void submit(std::size_t pool_index, std::size_t client);
  void try_dispatch();
  void start(const Waiting& next);
  void evaluate_autoscale();
  [[nodiscard]] bool capacity_free() const noexcept;

  const Federation& fed_;
  const std::vector<ServeRequest>& pool_;
  const ServeSpec& spec_;
  const ServeOptions& options_;
  Simulator sim_;
  Cluster cluster_;

  std::deque<Waiting> waiting_;  ///< admission order
  /// Executions currently holding each site (0 = global, 1.. components).
  /// Every strategy touches every site, so the entries move in lockstep and
  /// the per-site cap acts as a concurrency cap — the representation stays
  /// per-site so partial-footprint strategies keep working if added later.
  std::vector<std::size_t> inflight_;
  std::size_t running_ = 0;
  /// The effective per-site in-flight cap (0 = unbounded). Equals
  /// spec_.site_inflight unless autoscaling moves it.
  std::size_t cap_;
  std::size_t cap_high_ = 0;
  std::size_t cap_low_ = 0;

  std::vector<TenantState> tenant_state_;
  std::vector<std::size_t> tenant_of_pool_;  ///< pool index -> tenant index
  /// Per-tenant global pool indices (arrival picks draw within a tenant).
  std::vector<std::vector<std::size_t>> tenant_pool_;
  double vtime_ = 0;  ///< WFQ virtual time: start tag of the last dispatch

  /// Queue waits of the current autoscaler window; reset each evaluation.
  obs::Histogram window_waits_;
  double prev_window_p95_ = -1;
  SimTime window_begin_ns_ = 0;
  SimTime window_busy_ns_ = 0;
  std::size_t window_starts_ = 0;

  std::vector<ServeOutcome> outcomes_;   ///< submission order, grows in submit()
  std::vector<std::size_t> client_of_;   ///< aligned with outcomes_
  /// Envs and per-query fault plans in pointer-stable storage: the deferred
  /// simulation callbacks hold references into both.
  std::vector<std::unique_ptr<detail::ExecEnv>> envs_;
  std::deque<fault::FaultPlan> fault_plans_;

  std::vector<Rng> client_rngs_;  ///< closed loop: one pick-stream per client
  std::size_t planned_ = 0;       ///< submissions scheduled so far
  std::size_t max_queue_depth_ = 0;
  std::size_t max_inflight_ = 0;
};

/// Resolves every pool entry's tenant tag against the spec, strictly: with
/// tenant clauses, untagged entries and unknown tags are errors and every
/// tenant must own at least one entry (its arrival stream needs something
/// to pick); without tenant clauses, a tagged entry is an error — the tag
/// would silently mean nothing.
void QueryServer::map_tenants() {
  tenant_of_pool_.assign(pool_.size(), 0);
  if (spec_.tenants.empty()) {
    for (const ServeRequest& request : pool_)
      if (!request.tenant.empty())
        throw ServeError("pool entry tagged with tenant '" + request.tenant +
                         "' but the spec has no tenant clauses");
    tenant_pool_.assign(1, {});
    for (std::size_t p = 0; p < pool_.size(); ++p)
      tenant_pool_[0].push_back(p);
    return;
  }
  tenant_pool_.assign(spec_.tenants.size(), {});
  for (std::size_t p = 0; p < pool_.size(); ++p) {
    const std::string& tag = pool_[p].tenant;
    if (tag.empty())
      throw ServeError(
          "multi-tenant serving needs every pool entry tagged with a tenant");
    std::size_t tenant = spec_.tenants.size();
    for (std::size_t t = 0; t < spec_.tenants.size(); ++t)
      if (spec_.tenants[t].id == tag) {
        tenant = t;
        break;
      }
    if (tenant == spec_.tenants.size())
      throw ServeError("pool entry tagged with unknown tenant '" + tag + "'");
    tenant_of_pool_[p] = tenant;
    tenant_pool_[tenant].push_back(p);
  }
  for (std::size_t t = 0; t < spec_.tenants.size(); ++t)
    if (tenant_pool_[t].empty())
      throw ServeError("tenant '" + spec_.tenants[t].id +
                       "' owns no pool entry");
}

bool QueryServer::capacity_free() const noexcept {
  if (cap_ == 0) return true;
  for (const std::size_t site_load : inflight_)
    if (site_load >= cap_) return false;
  return true;
}

void QueryServer::schedule_client(std::size_t client, SimTime at) {
  sim_.schedule_at(at, [this, client] {
    // Pool pick drawn at submission time from the client's private stream;
    // the event loop fires these deterministically, so the draw order is a
    // function of the spec alone. A multi-tenant closed loop assigns
    // clients to tenants round-robin, and each client picks within its
    // tenant's slice of the pool.
    if (spec_.tenants.empty()) {
      submit(client_rngs_[client].index(pool_.size()), client);
    } else {
      const std::vector<std::size_t>& mine =
          tenant_pool_[client % spec_.tenants.size()];
      submit(mine[client_rngs_[client].index(mine.size())], client);
    }
  });
}

void QueryServer::submit(std::size_t pool_index, std::size_t client) {
  const SimTime now = sim_.now();
  const std::size_t id = outcomes_.size();
  outcomes_.emplace_back();
  client_of_.push_back(client);
  ServeOutcome& outcome = outcomes_.back();
  outcome.arrival = now;
  outcome.start = now;
  outcome.pool_index = pool_index;
  outcome.kind = pool_[pool_index].kind;
  const std::size_t tenant = tenant_of_pool_[pool_index];
  outcome.tenant = tenant;
  const SimTime slo =
      spec_.tenants.empty() ? 0 : spec_.tenants[tenant].slo_ns;
  if (slo > 0) outcome.deadline = now + slo;

  const std::size_t quota =
      spec_.tenants.empty() ? 0 : spec_.tenants[tenant].quota;
  const bool queue_full =
      spec_.queue_limit > 0 && waiting_.size() >= spec_.queue_limit;
  const bool quota_full =
      quota > 0 && tenant_state_[tenant].waiting >= quota;
  if (queue_full || quota_full) {
    // Backpressure: bounce rather than block the arrival process — off the
    // shared queue bound or off the tenant's own quota, so one tenant's
    // burst cannot occupy the whole shared queue. The submission completes
    // immediately as a tagged empty outcome, and a closed-loop client moves
    // on to its next think cycle after a backoff.
    outcome.rejected = true;
    outcome.completion = now;
    if (client != kNoClient && planned_ < spec_.n_queries) {
      ++planned_;
      schedule_client(client, now + spec_.think_ns + kRejectBackoffNs);
    }
    return;
  }

  Waiting admitted;
  admitted.id = id;
  admitted.predicted_cost_s = pool_[pool_index].predicted_cost_s;
  admitted.tenant = tenant;
  if (outcome.deadline > 0) admitted.deadline = outcome.deadline;
  if (spec_.policy == SchedPolicy::Wfq) {
    // Start-time fair queueing: the submission's virtual start is the later
    // of the server's virtual time and the tenant's previous finish; its
    // finish tag advances the tenant by cost / weight, so a heavy tenant's
    // backlog spaces out in virtual time exactly in proportion to weight.
    TenantState& state = tenant_state_[tenant];
    const double weight =
        spec_.tenants.empty() ? 1.0 : spec_.tenants[tenant].weight;
    admitted.start_tag = std::max(vtime_, state.last_finish);
    admitted.finish_tag =
        admitted.start_tag + admitted.predicted_cost_s / weight;
    state.last_finish = admitted.finish_tag;
  }
  ++tenant_state_[tenant].waiting;
  waiting_.push_back(admitted);
  max_queue_depth_ = std::max(max_queue_depth_, waiting_.size());
  try_dispatch();
}

void QueryServer::try_dispatch() {
  // Every query needs every site, so if the head-of-line query cannot start
  // neither can any other — the loop never starves a waiting query by
  // skipping over it.
  while (!waiting_.empty() && capacity_free()) {
    auto chosen = waiting_.begin();
    if (spec_.policy == SchedPolicy::Spc) {
      chosen = std::min_element(
          waiting_.begin(), waiting_.end(),
          [](const Waiting& a, const Waiting& b) {
            if (a.predicted_cost_s != b.predicted_cost_s)
              return a.predicted_cost_s < b.predicted_cost_s;
            return a.id < b.id;  // ties: admission order
          });
    } else if (spec_.policy == SchedPolicy::Wfq) {
      chosen = std::min_element(waiting_.begin(), waiting_.end(),
                                [](const Waiting& a, const Waiting& b) {
                                  if (a.finish_tag != b.finish_tag)
                                    return a.finish_tag < b.finish_tag;
                                  return a.id < b.id;
                                });
    } else if (spec_.policy == SchedPolicy::Edf) {
      chosen = std::min_element(waiting_.begin(), waiting_.end(),
                                [](const Waiting& a, const Waiting& b) {
                                  if (a.deadline != b.deadline)
                                    return a.deadline < b.deadline;
                                  return a.id < b.id;
                                });
    }
    const Waiting next = *chosen;
    waiting_.erase(chosen);
    --tenant_state_[next.tenant].waiting;
    if (spec_.policy == SchedPolicy::Wfq)
      vtime_ = std::max(vtime_, next.start_tag);
    start(next);
  }
}

/// One autoscaler step, run every kAutoscaleWindow starts: compare this
/// window's queue-wait p95 and cluster utilization against the previous
/// window. Growing waits over idle sites means the cap (not the hardware)
/// is the bottleneck — raise it; falling waits mean the pressure passed —
/// drain the cap back toward its configured base. Pure function of
/// simulated history, so runs replay bit-identically.
void QueryServer::evaluate_autoscale() {
  const SimTime now = sim_.now();
  const SimTime busy = cluster_.cpu_busy() + cluster_.disk_busy();
  const double p95 = window_waits_.snapshot().p95();
  const SimTime elapsed = now - window_begin_ns_;
  // "Sites idle" is site utilization: busy time across every site's CPU and
  // disk over wall-clock times the site-resource count. Deliberately not
  // the network — on a shared-bus cluster the wire can be the bottleneck
  // with every site idle, and raising the cap then buys contention, which
  // the next window's p95 reverses.
  const double resources = 2.0 * static_cast<double>(fed_.db_count() + 1);
  const double util =
      elapsed <= 0 ? 1.0
                   : static_cast<double>(busy - window_busy_ns_) /
                         (static_cast<double>(elapsed) * resources);
  if (prev_window_p95_ >= 0) {
    if (p95 > prev_window_p95_ && util < kAutoscaleIdleUtil &&
        cap_ < kAutoscaleMaxFactor * spec_.site_inflight)
      ++cap_;
    else if (p95 < prev_window_p95_ && cap_ > spec_.site_inflight)
      --cap_;
    cap_high_ = std::max(cap_high_, cap_);
    cap_low_ = std::min(cap_low_, cap_);
  }
  prev_window_p95_ = p95;
  window_waits_.reset();
  window_begin_ns_ = now;
  window_busy_ns_ = busy;
}

void QueryServer::start(const Waiting& next) {
  const std::size_t id = next.id;
  ServeOutcome& outcome = outcomes_[id];
  const ServeRequest& request = pool_[outcome.pool_index];
  outcome.start = sim_.now();

  if (spec_.autoscale) {
    window_waits_.record(static_cast<double>(outcome.queue_wait()) / 1e3);
    if (++window_starts_ % kAutoscaleWindow == 0) evaluate_autoscale();
  }

  StrategyOptions per_query = options_.exec;
  per_query.record_trace = false;  // per-step traces interleave; spans don't
  per_query.trace_session =
      options_.sessions ? &(*options_.sessions)[id] : nullptr;
  if (per_query.faults != nullptr && per_query.faults->enabled()) {
    // Each submission gets its own plan copy with a derived seed:
    // ExecEnv::init_faults seeds its RNG from the plan, so sharing one plan
    // would make concurrent queries share one fault stream and the replay
    // would depend on interleaving.
    fault_plans_.push_back(*per_query.faults);
    fault_plans_.back().seed = derive_stream(per_query.faults->seed, id);
    per_query.faults = &fault_plans_.back();
  }

  envs_.push_back(std::make_unique<detail::ExecEnv>(fed_, request.query,
                                                    per_query, sim_, cluster_));
  detail::ExecEnv* env = envs_.back().get();

  // Resolve the operator plan. A replanning request prices against the
  // stats book as of THIS simulated instant — completions that already
  // folded their telemetry steer it — which is the serving layer's adaptive
  // feedback loop (docs/PLANNING.md).
  std::shared_ptr<const ExecPlan> plan = request.plan;
  if (request.replan != nullptr && options_.stats_book != nullptr)
    plan = std::make_shared<const ExecPlan>(
        plan_adaptive(fed_, request.query, *request.replan,
                      options_.stats_book)
            .plan);
  if (plan == nullptr)
    plan = std::make_shared<const ExecPlan>(ExecPlan::pure(request.kind));
  outcome.hybrid = plan->hybrid;
  env->set_span_context(
      plan->hybrid ? std::string_view{"HY"} : to_string(request.kind), id);
  // Tenant attribution span: the interval this submission waited between
  // admission and launch, charged to its tenant (Phase::Serve, global
  // site). Only multi-tenant runs record it, so tenant-less traces stay
  // exactly as before.
  if (!spec_.tenants.empty())
    env->record_serve_event(0,
                            "serve.tenant/" + spec_.tenants[next.tenant].id,
                            outcome.arrival, outcome.start);

  for (std::size_t& site_load : inflight_) ++site_load;
  ++running_;
  max_inflight_ = std::max(max_inflight_, running_);

  const std::size_t client = client_of_[id];
  auto telemetry = std::make_shared<PlanTelemetry>();
  detail::launch_plan(
      *env, *plan, telemetry,
      [this, id, client, env, telemetry](QueryResult result, SimTime at) {
        ServeOutcome& done = outcomes_[id];
        done.result = std::move(result);
        done.completion = at;
        done.wire_bytes = env->wire_bytes();
        done.messages = env->wire_messages();
        done.plan_switches = telemetry->switches();
        done.cert_hits = env->cert_hits();
        done.cert_misses = env->cert_misses();
        if (options_.stats_book != nullptr)
          options_.stats_book->fold(*telemetry);
        for (std::size_t& site_load : inflight_) --site_load;
        --running_;
        if (client != kNoClient && planned_ < spec_.n_queries) {
          ++planned_;
          schedule_client(client, at + spec_.think_ns);
        }
        try_dispatch();
      });
}

ServeReport QueryServer::run() {
  if (pool_.empty()) throw ServeError("serve() needs a non-empty query pool");
  map_tenants();
  cap_high_ = cap_low_ = cap_;
  if (options_.sessions) {
    options_.sessions->clear();
    options_.sessions->resize(spec_.n_queries);
  }
  outcomes_.reserve(spec_.n_queries);
  client_of_.reserve(spec_.n_queries);
  envs_.reserve(spec_.n_queries);

  if (spec_.mode == ArrivalMode::Open) {
    std::vector<workload::Arrival> arrivals;
    if (spec_.tenants.empty()) {
      Rng arrival_rng(derive_stream(spec_.seed, 0));
      arrivals = workload::poisson_arrivals(
          spec_.rate_qps, spec_.n_queries, pool_.size(), arrival_rng);
    } else {
      // Superposed per-tenant Poisson streams: a tenant with an explicit
      // rate offers it, the rest split the spec-level rate evenly.
      std::vector<workload::TenantStream> streams(spec_.tenants.size());
      for (std::size_t t = 0; t < spec_.tenants.size(); ++t) {
        streams[t].rate_qps =
            spec_.tenants[t].rate_qps > 0
                ? spec_.tenants[t].rate_qps
                : spec_.rate_qps /
                      static_cast<double>(spec_.tenants.size());
        streams[t].pool = tenant_pool_[t];
      }
      arrivals = workload::tenant_poisson_arrivals(
          streams, spec_.n_queries, derive_stream(spec_.seed, 0));
    }
    planned_ = arrivals.size();
    for (const workload::Arrival& arrival : arrivals)
      sim_.schedule_at(arrival.at, [this, arrival] {
        submit(arrival.pool_index, kNoClient);
      });
  } else {
    client_rngs_.reserve(spec_.clients);
    for (std::size_t c = 0; c < spec_.clients; ++c)
      client_rngs_.emplace_back(derive_stream(spec_.seed, 1 + c));
    const std::size_t first = std::min(spec_.clients, spec_.n_queries);
    planned_ = first;
    for (std::size_t c = 0; c < first; ++c) schedule_client(c, 0);
  }

  sim_.run();

  ServeReport report;
  report.outcomes = std::move(outcomes_);
  report.tenants.reserve(spec_.tenants.size());
  for (const TenantSpec& tenant : spec_.tenants) {
    TenantReport slice;
    slice.id = tenant.id;
    slice.weight = tenant.weight;
    slice.slo_ns = tenant.slo_ns;
    report.tenants.push_back(std::move(slice));
  }
  for (const ServeOutcome& outcome : report.outcomes) {
    TenantReport* slice =
        report.tenants.empty() ? nullptr : &report.tenants[outcome.tenant];
    if (slice != nullptr) ++slice->submitted;
    if (outcome.rejected) {
      ++report.rejected;
      if (slice != nullptr) ++slice->rejected;
      continue;
    }
    ensures(outcome.completion >= outcome.arrival,
            "a served query did not complete");
    ++report.completed;
    report.makespan = std::max(report.makespan, outcome.completion);
    report.messages += outcome.messages;
    report.cert_hits += outcome.cert_hits;
    report.cert_misses += outcome.cert_misses;
    if (slice != nullptr) {
      ++slice->completed;
      slice->wire_bytes += outcome.wire_bytes;
      slice->messages += outcome.messages;
      slice->served_cost_s += pool_[outcome.pool_index].predicted_cost_s;
      if (outcome.missed_deadline()) ++slice->deadline_misses;
    }
  }
  ensures(report.completed + report.rejected == spec_.n_queries,
          "submission count mismatch");
  report.total_busy_ns = cluster_.total_busy();
  report.bytes_transferred = cluster_.bytes_transferred();
  report.max_queue_depth = max_queue_depth_;
  report.max_inflight = max_inflight_;
  report.inflight_cap_high = cap_high_;
  report.inflight_cap_low = cap_low_;
  return report;
}

}  // namespace

void record_serve_metrics(const ServeReport& report,
                          obs::MetricsRegistry& metrics) {
  obs::Histogram& latency = metrics.histogram("serve.latency_us");
  obs::Histogram& wait = metrics.histogram("serve.queue_wait_us");
  obs::Counter& completed = metrics.counter("serve.completed");
  obs::Counter& rejected = metrics.counter("serve.rejected");
  // Rejected submissions complete instantly at their arrival, so their
  // latency() is 0 by construction — recording them would drag every
  // quantile of a high-rejection run toward zero. They count only toward
  // serve.rejected, here and in the per-tenant figures below.
  for (const ServeOutcome& outcome : report.outcomes) {
    if (outcome.rejected) {
      rejected.add();
      continue;
    }
    completed.add();
    latency.record(static_cast<double>(outcome.latency()) / 1e3);
    wait.record(static_cast<double>(outcome.queue_wait()) / 1e3);
  }
  for (std::size_t t = 0; t < report.tenants.size(); ++t) {
    const TenantReport& tenant = report.tenants[t];
    const std::string prefix = "serve.tenant/" + tenant.id;
    obs::Histogram& tenant_latency =
        metrics.histogram(prefix + ".latency_us");
    for (const ServeOutcome& outcome : report.outcomes)
      if (!outcome.rejected && outcome.tenant == t)
        tenant_latency.record(static_cast<double>(outcome.latency()) / 1e3);
    metrics.counter(prefix + ".completed").add(tenant.completed);
    metrics.counter(prefix + ".rejected").add(tenant.rejected);
    metrics.counter(prefix + ".deadline_miss").add(tenant.deadline_misses);
  }
}

ServeReport serve(const Federation& federation,
                  const std::vector<ServeRequest>& pool, const ServeSpec& spec,
                  const ServeOptions& options) {
  validate_serve_spec(spec);
  QueryServer server(federation, pool, spec, options);
  ServeReport report = server.run();
  // Recorded after the run, in submission order: the registry's histogram
  // quantiles depend only on bucket counts and min/max, but recording
  // serially keeps even the sum and counter update order deterministic.
  if (options.metrics != nullptr) record_serve_metrics(report, *options.metrics);
  return report;
}

}  // namespace isomer::serve
