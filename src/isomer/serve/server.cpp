#include "isomer/serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <utility>

#include "isomer/common/error.hpp"
#include "isomer/core/operators.hpp"
#include "isomer/workload/arrivals.hpp"

namespace isomer::serve {

double ServeReport::mean_latency_ms() const {
  double total = 0;
  std::size_t n = 0;
  for (const ServeOutcome& outcome : outcomes) {
    if (outcome.rejected) continue;
    total += to_milliseconds(outcome.latency());
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double ServeReport::throughput_qps() const {
  if (makespan <= 0 || completed == 0) return 0.0;
  return static_cast<double>(completed) / to_seconds(makespan);
}

SimTime ServeReport::latency_percentile(double q) const {
  std::vector<SimTime> latencies;
  latencies.reserve(outcomes.size());
  for (const ServeOutcome& outcome : outcomes)
    if (!outcome.rejected) latencies.push_back(outcome.latency());
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  if (q > 1) q = 1;
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(latencies.size())));
  if (rank == 0) rank = 1;
  return latencies[rank - 1];
}

namespace {

/// Extra pause a closed-loop client takes after a rejected submission, so a
/// zero-think client cannot re-hit a still-full queue at the same simulated
/// instant forever.
constexpr SimTime kRejectBackoffNs = 1'000'000;  // 1 ms

constexpr std::size_t kNoClient = static_cast<std::size_t>(-1);

/// One admitted-but-not-started submission.
struct Waiting {
  std::size_t id = 0;
  double predicted_cost_s = 0;
};

/// The admission controller + scheduler driving one serve() run. All state
/// mutation happens inside simulator callbacks, which the single-threaded
/// event loop serializes deterministically (FIFO among simultaneous
/// events), so the whole run is a pure function of its inputs.
class QueryServer {
 public:
  QueryServer(const Federation& federation,
              const std::vector<ServeRequest>& pool, const ServeSpec& spec,
              const ServeOptions& options)
      : fed_(federation),
        pool_(pool),
        spec_(spec),
        options_(options),
        cluster_(sim_, options.exec.costs, federation.db_count(),
                 options.exec.topology),
        inflight_(federation.db_count() + 1, 0) {}

  ServeReport run();

 private:
  void schedule_client(std::size_t client, SimTime at);
  void submit(std::size_t pool_index, std::size_t client);
  void try_dispatch();
  void start(const Waiting& next);
  [[nodiscard]] bool capacity_free() const noexcept;

  const Federation& fed_;
  const std::vector<ServeRequest>& pool_;
  const ServeSpec& spec_;
  const ServeOptions& options_;
  Simulator sim_;
  Cluster cluster_;

  std::deque<Waiting> waiting_;  ///< admission order
  /// Executions currently holding each site (0 = global, 1.. components).
  /// Every strategy touches every site, so the entries move in lockstep and
  /// the per-site cap acts as a concurrency cap — the representation stays
  /// per-site so partial-footprint strategies keep working if added later.
  std::vector<std::size_t> inflight_;
  std::size_t running_ = 0;

  std::vector<ServeOutcome> outcomes_;   ///< submission order, grows in submit()
  std::vector<std::size_t> client_of_;   ///< aligned with outcomes_
  /// Envs and per-query fault plans in pointer-stable storage: the deferred
  /// simulation callbacks hold references into both.
  std::vector<std::unique_ptr<detail::ExecEnv>> envs_;
  std::deque<fault::FaultPlan> fault_plans_;

  std::vector<Rng> client_rngs_;  ///< closed loop: one pick-stream per client
  std::size_t planned_ = 0;       ///< submissions scheduled so far
  std::size_t max_queue_depth_ = 0;
  std::size_t max_inflight_ = 0;
};

bool QueryServer::capacity_free() const noexcept {
  if (spec_.site_inflight == 0) return true;
  for (const std::size_t site_load : inflight_)
    if (site_load >= spec_.site_inflight) return false;
  return true;
}

void QueryServer::schedule_client(std::size_t client, SimTime at) {
  sim_.schedule_at(at, [this, client] {
    // Pool pick drawn at submission time from the client's private stream;
    // the event loop fires these deterministically, so the draw order is a
    // function of the spec alone.
    const std::size_t pick = client_rngs_[client].index(pool_.size());
    submit(pick, client);
  });
}

void QueryServer::submit(std::size_t pool_index, std::size_t client) {
  const SimTime now = sim_.now();
  const std::size_t id = outcomes_.size();
  outcomes_.emplace_back();
  client_of_.push_back(client);
  ServeOutcome& outcome = outcomes_.back();
  outcome.arrival = now;
  outcome.start = now;
  outcome.pool_index = pool_index;
  outcome.kind = pool_[pool_index].kind;

  if (spec_.queue_limit > 0 && waiting_.size() >= spec_.queue_limit) {
    // Backpressure: bounce rather than block the arrival process. The
    // submission completes immediately as a tagged empty outcome, and a
    // closed-loop client moves on to its next think cycle after a backoff.
    outcome.rejected = true;
    outcome.completion = now;
    if (client != kNoClient && planned_ < spec_.n_queries) {
      ++planned_;
      schedule_client(client, now + spec_.think_ns + kRejectBackoffNs);
    }
    return;
  }

  waiting_.push_back({id, pool_[pool_index].predicted_cost_s});
  max_queue_depth_ = std::max(max_queue_depth_, waiting_.size());
  try_dispatch();
}

void QueryServer::try_dispatch() {
  // Every query needs every site, so if the head-of-line query cannot start
  // neither can any other — the loop never starves a waiting query by
  // skipping over it.
  while (!waiting_.empty() && capacity_free()) {
    auto chosen = waiting_.begin();
    if (spec_.policy == SchedPolicy::Spc) {
      chosen = std::min_element(
          waiting_.begin(), waiting_.end(),
          [](const Waiting& a, const Waiting& b) {
            if (a.predicted_cost_s != b.predicted_cost_s)
              return a.predicted_cost_s < b.predicted_cost_s;
            return a.id < b.id;  // ties: admission order
          });
    }
    const Waiting next = *chosen;
    waiting_.erase(chosen);
    start(next);
  }
}

void QueryServer::start(const Waiting& next) {
  const std::size_t id = next.id;
  ServeOutcome& outcome = outcomes_[id];
  const ServeRequest& request = pool_[outcome.pool_index];
  outcome.start = sim_.now();

  StrategyOptions per_query = options_.exec;
  per_query.record_trace = false;  // per-step traces interleave; spans don't
  per_query.trace_session =
      options_.sessions ? &(*options_.sessions)[id] : nullptr;
  if (per_query.faults != nullptr && per_query.faults->enabled()) {
    // Each submission gets its own plan copy with a derived seed:
    // ExecEnv::init_faults seeds its RNG from the plan, so sharing one plan
    // would make concurrent queries share one fault stream and the replay
    // would depend on interleaving.
    fault_plans_.push_back(*per_query.faults);
    fault_plans_.back().seed = derive_stream(per_query.faults->seed, id);
    per_query.faults = &fault_plans_.back();
  }

  envs_.push_back(std::make_unique<detail::ExecEnv>(fed_, request.query,
                                                    per_query, sim_, cluster_));
  detail::ExecEnv* env = envs_.back().get();

  // Resolve the operator plan. A replanning request prices against the
  // stats book as of THIS simulated instant — completions that already
  // folded their telemetry steer it — which is the serving layer's adaptive
  // feedback loop (docs/PLANNING.md).
  std::shared_ptr<const ExecPlan> plan = request.plan;
  if (request.replan != nullptr && options_.stats_book != nullptr)
    plan = std::make_shared<const ExecPlan>(
        plan_adaptive(fed_, request.query, *request.replan,
                      options_.stats_book)
            .plan);
  if (plan == nullptr)
    plan = std::make_shared<const ExecPlan>(ExecPlan::pure(request.kind));
  outcome.hybrid = plan->hybrid;
  env->set_span_context(
      plan->hybrid ? std::string_view{"HY"} : to_string(request.kind), id);

  for (std::size_t& site_load : inflight_) ++site_load;
  ++running_;
  max_inflight_ = std::max(max_inflight_, running_);

  const std::size_t client = client_of_[id];
  auto telemetry = std::make_shared<PlanTelemetry>();
  detail::launch_plan(
      *env, *plan, telemetry,
      [this, id, client, env, telemetry](QueryResult result, SimTime at) {
        ServeOutcome& done = outcomes_[id];
        done.result = std::move(result);
        done.completion = at;
        done.wire_bytes = env->wire_bytes();
        done.messages = env->wire_messages();
        done.plan_switches = telemetry->switches();
        done.cert_hits = env->cert_hits();
        done.cert_misses = env->cert_misses();
        if (options_.stats_book != nullptr)
          options_.stats_book->fold(*telemetry);
        for (std::size_t& site_load : inflight_) --site_load;
        --running_;
        if (client != kNoClient && planned_ < spec_.n_queries) {
          ++planned_;
          schedule_client(client, at + spec_.think_ns);
        }
        try_dispatch();
      });
}

ServeReport QueryServer::run() {
  if (pool_.empty()) throw ServeError("serve() needs a non-empty query pool");
  if (options_.sessions) {
    options_.sessions->clear();
    options_.sessions->resize(spec_.n_queries);
  }
  outcomes_.reserve(spec_.n_queries);
  client_of_.reserve(spec_.n_queries);
  envs_.reserve(spec_.n_queries);

  if (spec_.mode == ArrivalMode::Open) {
    Rng arrival_rng(derive_stream(spec_.seed, 0));
    const auto arrivals = workload::poisson_arrivals(
        spec_.rate_qps, spec_.n_queries, pool_.size(), arrival_rng);
    planned_ = arrivals.size();
    for (const workload::Arrival& arrival : arrivals)
      sim_.schedule_at(arrival.at, [this, arrival] {
        submit(arrival.pool_index, kNoClient);
      });
  } else {
    client_rngs_.reserve(spec_.clients);
    for (std::size_t c = 0; c < spec_.clients; ++c)
      client_rngs_.emplace_back(derive_stream(spec_.seed, 1 + c));
    const std::size_t first = std::min(spec_.clients, spec_.n_queries);
    planned_ = first;
    for (std::size_t c = 0; c < first; ++c) schedule_client(c, 0);
  }

  sim_.run();

  ServeReport report;
  report.outcomes = std::move(outcomes_);
  for (const ServeOutcome& outcome : report.outcomes) {
    if (outcome.rejected) {
      ++report.rejected;
      continue;
    }
    ensures(outcome.completion >= outcome.arrival,
            "a served query did not complete");
    ++report.completed;
    report.makespan = std::max(report.makespan, outcome.completion);
    report.messages += outcome.messages;
    report.cert_hits += outcome.cert_hits;
    report.cert_misses += outcome.cert_misses;
  }
  ensures(report.completed + report.rejected == spec_.n_queries,
          "submission count mismatch");
  report.total_busy_ns = cluster_.total_busy();
  report.bytes_transferred = cluster_.bytes_transferred();
  report.max_queue_depth = max_queue_depth_;
  report.max_inflight = max_inflight_;
  return report;
}

}  // namespace

void record_serve_metrics(const ServeReport& report,
                          obs::MetricsRegistry& metrics) {
  obs::Histogram& latency = metrics.histogram("serve.latency_us");
  obs::Histogram& wait = metrics.histogram("serve.queue_wait_us");
  obs::Counter& completed = metrics.counter("serve.completed");
  obs::Counter& rejected = metrics.counter("serve.rejected");
  for (const ServeOutcome& outcome : report.outcomes) {
    if (outcome.rejected) {
      rejected.add();
      continue;
    }
    completed.add();
    latency.record(static_cast<double>(outcome.latency()) / 1e3);
    wait.record(static_cast<double>(outcome.queue_wait()) / 1e3);
  }
}

ServeReport serve(const Federation& federation,
                  const std::vector<ServeRequest>& pool, const ServeSpec& spec,
                  const ServeOptions& options) {
  QueryServer server(federation, pool, spec, options);
  ServeReport report = server.run();
  // Recorded after the run, in submission order: the registry's histogram
  // quantiles depend only on bucket counts and min/max, but recording
  // serially keeps even the sum and counter update order deterministic.
  if (options.metrics != nullptr) record_serve_metrics(report, *options.metrics);
  return report;
}

}  // namespace isomer::serve
