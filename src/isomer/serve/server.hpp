// Query-serving layer: many independent global queries, one federation.
//
// The paper — and execute_strategy — simulate one query at a time, and
// core/stream.hpp already lets a fixed arrival schedule contend for one
// cluster. The serving layer closes the remaining gap to a deployed
// federation front-end: queries *arrive* (open-loop Poisson or a closed
// loop of clients), pass an admission controller with a bounded queue, and
// a scheduler decides which admitted query starts next (FIFO or shortest
// predicted cost, the prediction coming from the analytic advisor via
// serve/planner.hpp) subject to per-site in-flight caps. Everything runs
// inside ONE discrete-event simulation, so queueing delay, scheduling
// policy and strategy choice are all measured on the same clock.
//
// With tenant clauses in the spec the queue becomes multi-tenant: each
// submission belongs to a named traffic class with a fairness weight, an
// admission quota (its bounded share of the shared queue) and an optional
// latency SLO. Two schedulers join FIFO/SPC — weighted fair queueing
// (start-time fair queueing over predicted cost, long-run service share
// tracks the weights) and earliest deadline first (deadline = arrival +
// SLO) — and `autoscale=on` adapts the per-site in-flight cap from the
// observed queue-wait histogram. A spec without tenants behaves exactly
// as before.
//
// Backpressure never deadlocks: an arrival that finds the admission queue
// full is *rejected* — it completes immediately with a tagged, empty
// outcome — rather than blocking the arrival process. A closed-loop client
// whose submission is rejected backs off and submits again, so the run
// always terminates after exactly `spec.n_queries` submissions.
#pragma once

#include <memory>
#include <vector>

#include "isomer/analytic/planner.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/obs/metrics.hpp"
#include "isomer/obs/trace_session.hpp"
#include "isomer/serve/serve_spec.hpp"

namespace isomer::serve {

/// One plannable query of the serving pool: what to run, how, and what the
/// advisor predicted it costs (the SPC scheduling priority, in seconds).
/// Build these by hand or with serve/planner.hpp.
struct ServeRequest {
  GlobalQuery query;
  StrategyKind kind = StrategyKind::BL;
  double predicted_cost_s = 0;
  /// Optional explicit plan (plan_adaptive output); null runs
  /// ExecPlan::pure(kind). Shared: many submissions may run one pool entry.
  std::shared_ptr<const ExecPlan> plan;
  /// When set and ServeOptions::stats_book is attached, the server re-plans
  /// this query with these knobs AT LAUNCH against the book's state at that
  /// simulated instant — earlier completions already folded in — so a
  /// serving run adapts mid-stream. Overrides `plan`.
  std::shared_ptr<const PlannerKnobs> replan;
  /// Traffic class this pool entry belongs to. When the spec carries tenant
  /// clauses, every entry must name one of them (tag_tenants in
  /// serve/planner.hpp replicates an anonymous pool per tenant); when the
  /// spec has no tenants, every entry must stay untagged.
  std::string tenant;
};

/// One submission's fate, in submission order.
struct ServeOutcome {
  QueryResult result;
  SimTime arrival = 0;     ///< when the submission reached admission
  SimTime start = 0;       ///< when the scheduler launched it
  SimTime completion = 0;  ///< when its answer was ready (= arrival if rejected)
  bool rejected = false;   ///< bounced off the full admission queue
  StrategyKind kind = StrategyKind::BL;
  std::size_t pool_index = 0;  ///< which pool entry this submission ran
  /// Wire traffic attributable to this query alone (ExecEnv accounting);
  /// zero for rejected submissions.
  Bytes wire_bytes = 0;
  std::uint64_t messages = 0;
  bool hybrid = false;  ///< ran a hybrid plan (mixed per-site paths)
  /// Mid-flight Localized->Central switches this execution performed.
  std::uint64_t plan_switches = 0;
  /// Certificate-cache outcome for this submission (both zero unless
  /// ServeOptions::exec.cert_cache is set): first-round check atoms
  /// answered from the shared cache vs shipped to assistants.
  std::uint64_t cert_hits = 0;
  std::uint64_t cert_misses = 0;
  /// Index into ServeReport::tenants (0 when the spec has no tenants).
  std::size_t tenant = 0;
  /// Absolute completion deadline (arrival + the tenant's SLO target);
  /// 0 = no SLO attached.
  SimTime deadline = 0;

  [[nodiscard]] SimTime latency() const noexcept {
    return completion - arrival;
  }
  [[nodiscard]] SimTime queue_wait() const noexcept {
    return start - arrival;
  }
  /// Completed after its deadline (false when rejected or no SLO).
  [[nodiscard]] bool missed_deadline() const noexcept {
    return !rejected && deadline > 0 && completion > deadline;
  }
};

/// Per-tenant slice of a multi-tenant run, aligned with ServeSpec::tenants.
struct TenantReport {
  std::string id;
  double weight = 1.0;
  SimTime slo_ns = 0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::uint64_t deadline_misses = 0;  ///< completed past arrival + SLO
  Bytes wire_bytes = 0;               ///< Σ per-query wire of this tenant
  std::uint64_t messages = 0;
  double served_cost_s = 0;  ///< Σ predicted cost over completed submissions

  /// Fraction of this tenant's completed submissions that blew their SLO
  /// (0 when the tenant has no SLO or completed nothing).
  [[nodiscard]] double deadline_miss_rate() const noexcept {
    return completed == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(completed);
  }
};

struct ServeReport {
  std::vector<ServeOutcome> outcomes;  ///< submission order
  SimTime makespan = 0;                ///< when the last answer was ready
  SimTime total_busy_ns = 0;           ///< Σ busy across all resources
  Bytes bytes_transferred = 0;         ///< cluster total (= Σ per-query wire)
  std::uint64_t messages = 0;          ///< Σ per-query wire messages
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t max_queue_depth = 0;  ///< admitted-waiting high-water mark
  std::size_t max_inflight = 0;     ///< concurrent-execution high-water mark
  std::uint64_t cert_hits = 0;      ///< Σ per-submission cache hits
  std::uint64_t cert_misses = 0;    ///< Σ per-submission cache misses
  /// Per-tenant slices, aligned with ServeSpec::tenants (empty for a
  /// tenant-less spec). Per-tenant wire/messages partition the cluster
  /// totals the same way the per-outcome sums do.
  std::vector<TenantReport> tenants;
  /// Observed per-site in-flight cap range. Both equal spec.site_inflight
  /// unless autoscaling moved the cap during the run.
  std::size_t inflight_cap_high = 0;
  std::size_t inflight_cap_low = 0;

  /// Mean latency over *completed* submissions, milliseconds. Rejected
  /// submissions (latency() == 0 by construction) are always excluded —
  /// here, in the percentiles below and in record_serve_metrics — so a
  /// high-rejection run reports the latency of the work it actually did.
  [[nodiscard]] double mean_latency_ms() const;
  /// Completed answers per simulated second of makespan.
  [[nodiscard]] double throughput_qps() const;
  /// Exact nearest-rank latency percentile over completed submissions
  /// (q in (0, 1]; 0 when nothing completed). This is the ground truth the
  /// MetricsRegistry histogram estimates.
  [[nodiscard]] SimTime latency_percentile(double q) const;
  /// latency_percentile restricted to one tenant's completed submissions.
  [[nodiscard]] SimTime tenant_latency_percentile(std::size_t tenant,
                                                  double q) const;
  /// mean_latency_ms restricted to one tenant's completed submissions.
  [[nodiscard]] double tenant_mean_latency_ms(std::size_t tenant) const;
  /// This tenant's share of total served predicted cost divided by its
  /// share of total configured weight: 1.0 = served exactly its weighted
  /// fair share, below 1 = under-served. 0 when nothing was served.
  [[nodiscard]] double fairness_ratio(std::size_t tenant) const;
};

struct ServeOptions {
  /// Per-execution options (costs, topology, signatures, faults, batch...).
  /// `record_trace` is forced off per query — interleaved per-step traces
  /// of concurrent queries are not meaningful — and `trace_session` is
  /// superseded by `sessions` below. When a fault plan is attached, each
  /// submission runs under its own plan copy whose seed is
  /// derive_stream(plan.seed, submission index), so concurrent queries
  /// draw independent fault streams and the run replays bit-identically.
  StrategyOptions exec{};
  /// Per-submission span sessions: resized to the submission count, entry i
  /// collecting query i's PhaseSpans (sessions are not thread-safe, but the
  /// simulator is single-threaded — one session per query keeps them
  /// separable for serialization in submission order). Null disables spans.
  std::vector<obs::TraceSession>* sessions = nullptr;
  /// When set, serve() records per-submission figures after the run, in
  /// submission order (deterministic): histograms serve.latency_us and
  /// serve.queue_wait_us over completed submissions, counters
  /// serve.completed and serve.rejected. Leave null when running many
  /// serve() calls concurrently and record via record_serve_metrics in a
  /// deterministic order instead (a histogram's `sum` accumulates in
  /// recording order, so concurrent recording would make it float-unstable).
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, every completed hybrid execution folds its per-site observed
  /// row payloads into this book (in completion order — deterministic under
  /// the single-threaded event loop), and requests carrying `replan` knobs
  /// re-plan against it at launch. Pure executions run the frozen
  /// monolithic compositions and contribute no observations.
  SiteStatsBook* stats_book = nullptr;
};

/// Records one report's per-submission figures into `metrics` (see
/// ServeOptions::metrics for the metric names). Submission order. For a
/// multi-tenant report it additionally records, per tenant,
/// serve.tenant/<id>.latency_us (completed submissions only) and the
/// counters serve.tenant/<id>.completed / .rejected / .deadline_miss.
void record_serve_metrics(const ServeReport& report,
                          obs::MetricsRegistry& metrics);

/// Serves `spec.n_queries` submissions drawn from `pool` against
/// `federation` in one shared simulation. The whole run is a deterministic
/// function of (federation, pool, spec, options) — arrivals, pool picks and
/// client think-loops all derive from spec.seed. Throws ServeError when the
/// spec fails validate_serve_spec, when the pool is empty, or when pool
/// tenant tags disagree with the spec (an untagged entry or unknown tag
/// under a tenant spec, a tagged entry under a tenant-less spec, a tenant
/// owning no pool entry); QueryError when a pool query is malformed.
[[nodiscard]] ServeReport serve(const Federation& federation,
                                const std::vector<ServeRequest>& pool,
                                const ServeSpec& spec,
                                const ServeOptions& options = {});

}  // namespace isomer::serve
