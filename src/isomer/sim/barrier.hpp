// Fan-in helper for continuation-style simulation code.
//
// Strategies frequently wait for N parallel activities (e.g. "all component
// databases have responded") before continuing. A Barrier counts arrivals
// and fires its continuation exactly once when the expected number is
// reached; it is shared_ptr-managed because the arriving callbacks outlive
// the scope that created it.
#pragma once

#include <functional>
#include <memory>

#include "isomer/common/error.hpp"

namespace isomer {

class Barrier : public std::enable_shared_from_this<Barrier> {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] static std::shared_ptr<Barrier> create(std::size_t expected,
                                                       Callback on_complete) {
    auto barrier =
        std::shared_ptr<Barrier>(new Barrier(expected, std::move(on_complete)));
    // A barrier over zero activities completes immediately.
    if (barrier->expected_ == 0) barrier->fire();
    return barrier;
  }

  void arrive() {
    expects(arrived_ < expected_, "Barrier::arrive beyond expected count");
    ++arrived_;
    if (arrived_ == expected_) fire();
  }

  /// An arrival callback bound to this barrier (keeps it alive).
  [[nodiscard]] Callback arrival() {
    auto self = shared_from_this();
    return [self] { self->arrive(); };
  }

  [[nodiscard]] std::size_t pending() const noexcept {
    return expected_ - arrived_;
  }

 private:
  Barrier(std::size_t expected, Callback on_complete)
      : expected_(expected), on_complete_(std::move(on_complete)) {}

  void fire() {
    ensures(on_complete_ != nullptr, "Barrier fired twice");
    Callback cb = std::move(on_complete_);
    on_complete_ = nullptr;
    cb();
  }

  std::size_t expected_;
  std::size_t arrived_ = 0;
  Callback on_complete_;
};

}  // namespace isomer
