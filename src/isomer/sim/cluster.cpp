#include "isomer/sim/cluster.hpp"

namespace isomer {

std::string_view to_string(NetworkTopology t) noexcept {
  switch (t) {
    case NetworkTopology::SharedBus:
      return "shared-bus";
    case NetworkTopology::PointToPoint:
      return "point-to-point";
    case NetworkTopology::Contentionless:
      return "contentionless";
    case NetworkTopology::CollisionBus:
      return "collision-bus";
  }
  return "shared-bus";
}

Cluster::Cluster(Simulator& sim, const CostParams& params,
                 std::size_t components, NetworkTopology topology)
    : sim_(&sim), params_(params), topology_(topology) {
  sites_.push_back(std::make_unique<SiteNode>(sim, "global"));
  for (std::size_t i = 1; i <= components; ++i)
    sites_.push_back(
        std::make_unique<SiteNode>(sim, "DB" + std::to_string(i)));
}

SiteNode& Cluster::site(SiteIndex index) {
  expects(index < sites_.size(), "site index out of range");
  return *sites_[index];
}

Resource& Cluster::link(SiteIndex from, SiteIndex to) {
  const bool shared = topology_ == NetworkTopology::SharedBus ||
                      topology_ == NetworkTopology::CollisionBus;
  const auto key = shared ? std::pair<SiteIndex, SiteIndex>{0, 0}
                          : std::pair<SiteIndex, SiteIndex>{from, to};
  auto it = links_.find(key);
  if (it == links_.end()) {
    const std::string name =
        shared ? std::string("net")
               : "net." + std::to_string(from) + "->" + std::to_string(to);
    it = links_.emplace(key, std::make_unique<Resource>(*sim_, name)).first;
  }
  return *it->second;
}

void Cluster::transfer(SiteIndex from, SiteIndex to, Bytes bytes,
                       Simulator::Callback on_delivered) {
  expects(from < sites_.size() && to < sites_.size(),
          "transfer endpoint out of range");
  expects(from != to, "transfer endpoints must differ");
  bytes_transferred_ += bytes;
  ++messages_;
  SimTime duration = params_.net_time(bytes);
  if (topology_ == NetworkTopology::Contentionless) {
    contentionless_busy_ += duration;
    sim_->schedule_after(duration, std::move(on_delivered));
    return;
  }
  if (topology_ == NetworkTopology::CollisionBus) {
    // Collisions burn bandwidth in proportion to the backlog present when
    // this transfer starts contending for the medium. The backlog count k
    // is per-Cluster state mutated only from simulator callbacks, and every
    // Monte-Carlo trial owns a private Simulator+Cluster pair — so k (and
    // the (1 + alpha*k) factor) depends only on the trial's own
    // deterministic event order, never on --jobs scheduling across trials
    // (test_harness_determinism: RunPointIdenticalOnCollisionBus).
    duration += static_cast<SimTime>(
        static_cast<double>(duration) * params_.collision_alpha *
        static_cast<double>(pending_transfers_));
    ++pending_transfers_;
    link(from, to).use(duration, [this, cb = std::move(on_delivered)] {
      --pending_transfers_;
      cb();
    });
    return;
  }
  link(from, to).use(duration, std::move(on_delivered));
}

SimTime Cluster::network_busy() const noexcept {
  SimTime total = contentionless_busy_;
  for (const auto& [key, resource] : links_) total += resource->busy();
  return total;
}

SimTime Cluster::cpu_busy() const noexcept {
  SimTime total = 0;
  for (const auto& site : sites_) total += site->cpu().busy();
  return total;
}

SimTime Cluster::disk_busy() const noexcept {
  SimTime total = 0;
  for (const auto& site : sites_) total += site->disk().busy();
  return total;
}

}  // namespace isomer
