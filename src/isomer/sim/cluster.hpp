// The simulated federation hardware: sites and network.
//
// The model follows paper §4.1: "a number of component DBMSs connected by a
// communication network. There is a processor, a memory, and a hard disk in
// each component DBMS", plus a global processing site. The default network
// is a single shared medium on which transfers serialize — this is what
// makes "the transfer time get longer when more component databases transfer
// data simultaneously" (paper §4.2, the Fig. 10 effect). Point-to-point and
// contention-free models are provided for ablation studies.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isomer/sim/cost_params.hpp"
#include "isomer/sim/resource.hpp"
#include "isomer/sim/simulator.hpp"

namespace isomer {

/// Index of a site within a Cluster: 0 is the global processing site,
/// 1..n are the component databases.
using SiteIndex = std::size_t;
inline constexpr SiteIndex kGlobalSite = 0;

/// One site: a CPU and a disk, each FIFO-serialized.
class SiteNode {
 public:
  SiteNode(Simulator& sim, std::string name)
      : name_(name), cpu_(sim, name + ".cpu"), disk_(sim, name + ".disk") {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Resource& cpu() noexcept { return cpu_; }
  [[nodiscard]] Resource& disk() noexcept { return disk_; }
  [[nodiscard]] const Resource& cpu() const noexcept { return cpu_; }
  [[nodiscard]] const Resource& disk() const noexcept { return disk_; }

 private:
  std::string name_;
  Resource cpu_;
  Resource disk_;
};

/// How transfers contend with each other.
enum class NetworkTopology {
  SharedBus,     ///< one medium; all transfers serialize (paper's model)
  PointToPoint,  ///< one full-duplex link per ordered site pair
  Contentionless,///< pure latency; unlimited parallel capacity (ablation)
  /// Shared medium where contention burns real bandwidth, as on CSMA/CD
  /// Ethernet: a transfer enqueued while k others are pending takes
  /// (1 + alpha*k) times its nominal time. Ablation model for the paper's
  /// "the transfer time gets longer when more component databases transfer
  /// data simultaneously".
  CollisionBus
};

[[nodiscard]] std::string_view to_string(NetworkTopology t) noexcept;

/// The simulated cluster.
class Cluster {
 public:
  Cluster(Simulator& sim, const CostParams& params, std::size_t components,
          NetworkTopology topology = NetworkTopology::SharedBus);

  [[nodiscard]] std::size_t component_count() const noexcept {
    return sites_.size() - 1;
  }
  [[nodiscard]] SiteNode& site(SiteIndex index);
  [[nodiscard]] SiteNode& global() { return site(kGlobalSite); }

  /// Ships `bytes` from one site to another; `on_delivered` fires when the
  /// transfer completes under the configured contention model. Transfers of
  /// zero bytes model pure control signals and still traverse the network
  /// event path (with zero service time).
  void transfer(SiteIndex from, SiteIndex to, Bytes bytes,
                Simulator::Callback on_delivered);

  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept {
    return bytes_transferred_;
  }
  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

  /// Cumulative busy time across all network links.
  [[nodiscard]] SimTime network_busy() const noexcept;
  /// Cumulative busy time of all site CPUs / disks.
  [[nodiscard]] SimTime cpu_busy() const noexcept;
  [[nodiscard]] SimTime disk_busy() const noexcept;
  /// Everything: the paper's total execution time.
  [[nodiscard]] SimTime total_busy() const noexcept {
    return cpu_busy() + disk_busy() + network_busy();
  }

 private:
  [[nodiscard]] Resource& link(SiteIndex from, SiteIndex to);

  Simulator* sim_;
  CostParams params_;
  NetworkTopology topology_;
  std::vector<std::unique_ptr<SiteNode>> sites_;
  /// SharedBus uses links_[{0,0}]; PointToPoint one entry per used pair.
  std::map<std::pair<SiteIndex, SiteIndex>, std::unique_ptr<Resource>> links_;
  std::uint64_t bytes_transferred_ = 0;
  std::uint64_t messages_ = 0;
  SimTime contentionless_busy_ = 0;
  std::size_t pending_transfers_ = 0;  ///< CollisionBus backlog
};

}  // namespace isomer
