#include "isomer/sim/cost_params.hpp"

namespace isomer {

Bytes CostParams::stored_attr_bytes(const AttrType& type,
                                    Bytes set_arity) const noexcept {
  if (const auto* cplx = std::get_if<ComplexType>(&type))
    return cplx->multi_valued ? set_arity * loid_bytes : loid_bytes;
  return attr_bytes;
}

Bytes CostParams::stored_object_bytes(const ClassDef& cls) const noexcept {
  Bytes total = loid_bytes;
  for (const AttrDef& attr : cls.attributes())
    total += stored_attr_bytes(attr.type);
  return total;
}

}  // namespace isomer
