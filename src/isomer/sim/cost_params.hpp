// Table 1 — the system cost parameters.
//
// | parameter | description                     | setting            |
// |-----------|---------------------------------|--------------------|
// | S_a       | average size of attributes      | 32 bytes           |
// | S_GOid    | size of GOid                    | 16 bytes           |
// | S_LOid    | size of LOid                    | 16 bytes           |
// | S_s       | size of object signatures       | 32 bytes           |
// | T_d       | average disk access time        | 15 us/byte         |
// | T_net     | average network transfer time   | 8 us/byte          |
// | T_c       | average cpu processing time     | 0.5 us/comparison  |
// | N_iso     | avg isomeric objects per entity | 2                  |
//
// All rates are exact in nanoseconds, so simulated times are exact integers.
#pragma once

#include <cstdint>

#include "isomer/objmodel/class_def.hpp"
#include "isomer/sim/simulator.hpp"
#include "isomer/store/meter.hpp"

namespace isomer {

using Bytes = std::uint64_t;

/// Framing overhead of one batched wire frame (core/exec_common.hpp:
/// ShipmentBatcher): source/destination site ids, a record count, a phase
/// tag and a checksum. Charged once per frame on top of the records'
/// payload bytes, replacing the per-message headers the records drop when
/// they travel batched.
inline constexpr Bytes kBatchHeaderBytes = 32;

struct CostParams {
  // --- sizes (bytes) ---
  Bytes attr_bytes = 32;  ///< S_a
  Bytes goid_bytes = 16;  ///< S_GOid
  Bytes loid_bytes = 16;  ///< S_LOid
  Bytes sig_bytes = 32;   ///< S_s

  // --- rates ---
  SimTime disk_ns_per_byte = 15'000;  ///< T_d = 15 us/byte
  SimTime net_ns_per_byte = 8'000;    ///< T_net = 8 us/byte
  SimTime cpu_ns_per_cmp = 500;       ///< T_c = 0.5 us/comparison

  // --- workload-level constant reported with Table 1 ---
  double avg_isomers = 2.0;  ///< N_iso

  /// CollisionBus only: fractional slowdown per concurrently pending
  /// transfer (collisions / backoff on a shared CSMA/CD-style medium).
  double collision_alpha = 0.5;

  [[nodiscard]] SimTime disk_time(Bytes bytes) const noexcept {
    return static_cast<SimTime>(bytes) * disk_ns_per_byte;
  }
  [[nodiscard]] SimTime net_time(Bytes bytes) const noexcept {
    return static_cast<SimTime>(bytes) * net_ns_per_byte;
  }
  [[nodiscard]] SimTime cpu_time(std::uint64_t comparisons) const noexcept {
    return static_cast<SimTime>(comparisons) * cpu_ns_per_cmp;
  }
  /// CPU time for the logical work in a meter (comparisons + GOid-mapping
  /// probes; both are comparison-priced).
  [[nodiscard]] SimTime cpu_time(const AccessMeter& meter) const noexcept {
    return cpu_time(meter.comparisons + meter.table_probes);
  }

  /// On-disk size of one attribute value: primitives average S_a, single
  /// references store an LOid, multi-valued references store `set_arity`
  /// LOids on average.
  [[nodiscard]] Bytes stored_attr_bytes(const AttrType& type,
                                        Bytes set_arity = 2) const noexcept;

  /// On-disk size of one object of `cls` (LOid + all attributes).
  [[nodiscard]] Bytes stored_object_bytes(const ClassDef& cls) const noexcept;

  /// Wire size of an object projected onto `attrs` primitive attributes and
  /// `refs` references (paper §3.1: objects are projected onto the LOid and
  /// the attributes involved in the query before transfer; refs travel as
  /// GOids after mapping, per Fig. 6).
  [[nodiscard]] Bytes projected_object_bytes(std::uint64_t attrs,
                                             std::uint64_t refs) const noexcept {
    return loid_bytes + attrs * attr_bytes + refs * goid_bytes;
  }

  /// Wire size of a query/control message carrying `predicates` predicates
  /// (each roughly one attribute name plus a literal).
  [[nodiscard]] Bytes request_bytes(std::uint64_t predicates) const noexcept {
    return attr_bytes + predicates * 2 * attr_bytes;
  }

  /// Wire size of one assistant-check task: the assistant's LOid, the
  /// item's GOid, and the suffix predicate (attribute + literal).
  [[nodiscard]] Bytes check_task_bytes() const noexcept {
    return loid_bytes + goid_bytes + 2 * attr_bytes;
  }

  /// Wire size of one tri-state check verdict (item GOid + predicate index
  /// + truth).
  [[nodiscard]] Bytes verdict_bytes() const noexcept { return goid_bytes + 8; }

  /// Wire size of one *semijoin* assistant-check task (batched shipping
  /// only): the item's GOid plus a predicate index — the assistant site
  /// re-derives the assistant LOid from its replicated GOid table
  /// (federation/goid_table.hpp) and already knows the query's predicates
  /// from the G1 broadcast, so neither travels per task. A cascaded task
  /// additionally carries the originating row's GOid so verdicts key back
  /// to it.
  [[nodiscard]] Bytes semijoin_task_bytes(bool cascaded) const noexcept {
    return goid_bytes + 8 + (cascaded ? goid_bytes : 0);
  }

  /// Bytes read from disk for the objects recorded in a meter: every
  /// scanned/fetched object contributes its OID plus its attribute slots
  /// (primitive slots average S_a, reference slots store an LOid).
  [[nodiscard]] Bytes disk_bytes(const AccessMeter& meter) const noexcept {
    return (meter.objects_scanned + meter.objects_fetched) * loid_bytes +
           meter.prim_slots * attr_bytes + meter.ref_slots * loid_bytes;
  }
};

}  // namespace isomer
