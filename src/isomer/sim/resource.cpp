#include "isomer/sim/resource.hpp"

namespace isomer {

void Resource::use(SimTime duration, Simulator::Callback on_done) {
  if (duration < 0) throw SimError("negative service duration");
  const SimTime start =
      available_at_ > sim_->now() ? available_at_ : sim_->now();
  const SimTime end = start + duration;
  available_at_ = end;
  busy_ += duration;
  ++requests_;
  sim_->schedule_at(end, std::move(on_done));
}

}  // namespace isomer
