// FIFO-serialized resources.
//
// A Resource models a device that serves one request at a time in arrival
// order: a site's disk, a site's CPU, or a shared network bus. Requests are
// issued with a known service duration; the resource tracks its cumulative
// busy time, which is what the paper's *total execution time* sums, while
// the completion times drive the *response time* (makespan).
#pragma once

#include <string>

#include "isomer/sim/simulator.hpp"

namespace isomer {

class Resource {
 public:
  Resource(Simulator& sim, std::string name)
      : sim_(&sim), name_(std::move(name)) {}

  /// Enqueues a request of the given duration; `on_done` fires when the
  /// request completes (FIFO order). Zero-duration requests are legal and
  /// complete at the time the resource becomes free.
  void use(SimTime duration, Simulator::Callback on_done);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Cumulative service time.
  [[nodiscard]] SimTime busy() const noexcept { return busy_; }
  /// Time the last enqueued request will complete.
  [[nodiscard]] SimTime available_at() const noexcept { return available_at_; }
  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }

 private:
  Simulator* sim_;
  std::string name_;
  SimTime available_at_ = 0;
  SimTime busy_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace isomer
