#include "isomer/sim/simulator.hpp"

namespace isomer {

void Simulator::schedule_at(SimTime at, Callback cb) {
  expects(cb != nullptr, "cannot schedule a null callback");
  if (at < now_) throw SimError("cannot schedule an event in the past");
  queue_.push(Event{at, next_seq_++, std::move(cb)});
}

void Simulator::run() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the callback must be moved out
    // before pop, so copy the header fields and steal the callback.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    ++processed_;
    event.cb();
  }
}

}  // namespace isomer
