// Discrete-event simulation core.
//
// The performance study (paper §4) is a simulation: sites with a CPU and a
// disk connected by a network, with the Table-1 cost rates. This engine is
// deliberately minimal and fully deterministic: an integer-nanosecond clock
// (every Table-1 rate is an exact number of nanoseconds per unit) and a
// stable event queue (ties broken by scheduling order), so a given workload
// and seed always reproduce bit-identical times.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "isomer/common/error.hpp"

namespace isomer {

/// Simulated time in nanoseconds.
using SimTime = std::int64_t;

[[nodiscard]] constexpr SimTime microseconds(std::int64_t us) noexcept {
  return us * 1000;
}
[[nodiscard]] constexpr double to_milliseconds(SimTime t) noexcept {
  return static_cast<double>(t) / 1e6;
}
[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / 1e9;
}

/// Event-driven scheduler.
class Simulator {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `at` (>= now).
  void schedule_at(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` (>= 0) from now.
  void schedule_after(SimTime delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Runs until no events remain. Callbacks may schedule further events.
  void run();

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  ///< tie-breaker: FIFO among simultaneous events
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace isomer
