#include "isomer/sim/trace.hpp"

#include <algorithm>

namespace isomer {

std::string_view to_string(Phase phase) noexcept {
  switch (phase) {
    case Phase::Setup:
      return "setup";
    case Phase::O:
      return "O";
    case Phase::I:
      return "I";
    case Phase::P:
      return "P";
    case Phase::Transfer:
      return "transfer";
    case Phase::Fault:
      return "fault";
    case Phase::Plan:
      return "plan";
    case Phase::Cert:
      return "cert";
    case Phase::Serve:
      return "serve";
    case Phase::Impute:
      return "impute";
  }
  return "setup";
}

void ExecutionTrace::record(std::string site, std::string step, Phase phase,
                            SimTime start, SimTime end) {
  events_.push_back(
      TraceEvent{std::move(site), std::move(step), phase, start, end});
}

std::vector<Phase> ExecutionTrace::phase_order(
    std::optional<std::string> site) const {
  std::vector<TraceEvent> sorted;
  for (const TraceEvent& event : events_) {
    if (event.phase == Phase::Setup || event.phase == Phase::Transfer ||
        event.phase == Phase::Fault || event.phase == Phase::Plan ||
        event.phase == Phase::Cert || event.phase == Phase::Serve ||
        event.phase == Phase::Impute)
      continue;
    if (site && event.site != *site) continue;
    sorted.push_back(event);
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start < b.start;
                   });
  std::vector<Phase> order;
  for (const TraceEvent& event : sorted)
    if (std::find(order.begin(), order.end(), event.phase) == order.end())
      order.push_back(event.phase);
  return order;
}

std::optional<SimTime> ExecutionTrace::first_start(Phase phase) const {
  std::optional<SimTime> best;
  for (const TraceEvent& event : events_)
    if (event.phase == phase && (!best || event.start < *best))
      best = event.start;
  return best;
}

std::optional<SimTime> ExecutionTrace::last_end(Phase phase) const {
  std::optional<SimTime> best;
  for (const TraceEvent& event : events_)
    if (event.phase == phase && (!best || event.end > *best))
      best = event.end;
  return best;
}

std::ostream& operator<<(std::ostream& os, const ExecutionTrace& trace) {
  for (const TraceEvent& event : trace.events())
    os << "[" << to_milliseconds(event.start) << "ms - "
       << to_milliseconds(event.end) << "ms] " << event.site << " "
       << to_string(event.phase) << " " << event.step << "\n";
  return os;
}

}  // namespace isomer
