// Execution traces (paper Fig. 8).
//
// Each strategy tags its simulated steps with the paper's phase letters:
// O (assistant lookup / checking), I (integration / certification),
// P (predicate evaluation), plus Transfer and Setup for communication and
// bookkeeping steps. Recorded traces let tests assert the characteristic
// phase orders — CA: O -> I -> P, BL: P -> O -> I, PL: O -> P -> I — straight
// from the executed schedule.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "isomer/sim/simulator.hpp"

namespace isomer {

enum class Phase : unsigned char {
  Setup, O, I, P, Transfer, Fault, Plan, Cert,
  /// Serving-layer attribution: time a submission spent between admission
  /// and launch, attributed to its tenant (serve/server.hpp).
  Serve,
  /// IM-strategy markers (core/im.cpp): check atoms answered from the
  /// population model instead of the wire (`im.impute/<n>` /
  /// `im.decline/<n>` steps).
  Impute,
};

[[nodiscard]] std::string_view to_string(Phase phase) noexcept;

struct TraceEvent {
  std::string site;  ///< "global" or "DB<k>"
  std::string step;  ///< e.g. "CA_G2 outerjoin"
  Phase phase = Phase::Setup;
  SimTime start = 0;
  SimTime end = 0;
};

class ExecutionTrace {
 public:
  void record(std::string site, std::string step, Phase phase, SimTime start,
              SimTime end);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

  /// The O/I/P phases in order of first start time, duplicates collapsed —
  /// the strategy's executing flow in Fig. 8's terms. Setup/Transfer events
  /// are ignored. Optionally restricted to one site.
  [[nodiscard]] std::vector<Phase> phase_order(
      std::optional<std::string> site = std::nullopt) const;

  /// First start time of a phase (nullopt when the phase never ran).
  [[nodiscard]] std::optional<SimTime> first_start(Phase phase) const;
  /// Last end time of a phase.
  [[nodiscard]] std::optional<SimTime> last_end(Phase phase) const;

  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

std::ostream& operator<<(std::ostream& os, const ExecutionTrace& trace);

}  // namespace isomer
