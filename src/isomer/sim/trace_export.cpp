#include "isomer/sim/trace_export.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace isomer {

namespace {

void json_escape(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
}

char glyph(Phase phase) {
  switch (phase) {
    case Phase::O:
      return 'O';
    case Phase::I:
      return 'I';
    case Phase::P:
      return 'P';
    case Phase::Transfer:
      return '-';
    case Phase::Setup:
      return '.';
    case Phase::Fault:
      return '!';
    case Phase::Plan:
      return '@';
    case Phase::Cert:
      return '#';
    case Phase::Serve:
      return '~';
  }
  return '?';
}

}  // namespace

std::string to_chrome_json(const ExecutionTrace& trace) {
  // Stable lane ids per site, in order of first appearance.
  std::map<std::string, int> lanes;
  for (const TraceEvent& event : trace.events())
    lanes.try_emplace(event.site, static_cast<int>(lanes.size()) + 1);

  std::ostringstream out;
  out << "[";
  const char* sep = "\n";
  // Thread-name metadata so viewers label the lanes.
  for (const auto& [site, lane] : lanes) {
    out << sep
        << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << lane
        << R"(,"args":{"name":")";
    json_escape(out, site);
    out << "\"}}";
    sep = ",\n";
  }
  for (const TraceEvent& event : trace.events()) {
    out << sep << R"({"name":")";
    json_escape(out, event.step);
    out << R"(","cat":")" << to_string(event.phase) << R"(","ph":"X","pid":1)"
        << R"(,"tid":)" << lanes.at(event.site) << R"(,"ts":)"
        << static_cast<double>(event.start) / 1000.0 << R"(,"dur":)"
        << static_cast<double>(event.end - event.start) / 1000.0 << "}";
    sep = ",\n";
  }
  out << "\n]\n";
  return out.str();
}

std::string to_gantt(const ExecutionTrace& trace, std::size_t width) {
  if (trace.events().empty()) return "(empty trace)\n";
  SimTime makespan = 0;
  for (const TraceEvent& event : trace.events())
    makespan = std::max(makespan, event.end);
  if (makespan == 0) makespan = 1;

  std::map<std::string, std::string> rows;
  std::vector<std::string> order;
  for (const TraceEvent& event : trace.events()) {
    auto [it, inserted] = rows.try_emplace(event.site, std::string(width, ' '));
    if (inserted) order.push_back(event.site);
    const auto cell = [&](SimTime t) {
      return std::min(width - 1, static_cast<std::size_t>(
                                     static_cast<double>(t) /
                                     static_cast<double>(makespan) *
                                     static_cast<double>(width)));
    };
    const std::size_t from = cell(event.start);
    const std::size_t to = std::max(from, cell(event.end));
    for (std::size_t i = from; i <= to; ++i) it->second[i] = glyph(event.phase);
  }

  std::size_t label = 0;
  for (const std::string& site : order) label = std::max(label, site.size());
  std::ostringstream out;
  for (const std::string& site : order) {
    out << site << std::string(label - site.size(), ' ') << " |"
        << rows.at(site) << "|\n";
  }
  out << std::string(label, ' ') << " 0" << std::string(width - 1, ' ')
      << to_milliseconds(makespan) << "ms\n";
  return out.str();
}

}  // namespace isomer
