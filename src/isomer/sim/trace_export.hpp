// Trace export.
//
// ExecutionTrace records what each site did and when; this module renders a
// trace for humans and tools:
//
//  * to_chrome_json(): the Chrome trace-event format ("Trace Event Format",
//    complete events, microsecond timestamps) — open in chrome://tracing or
//    https://ui.perfetto.dev to see the per-site timelines of Fig. 8 live;
//  * to_gantt(): a fixed-width ASCII Gantt chart, one row per site, one
//    glyph per phase (O/I/P, '-' for transfers), for terminals and logs.
#pragma once

#include <string>

#include "isomer/sim/trace.hpp"

namespace isomer {

/// Serializes the trace as a Chrome trace-event JSON array. Each O/I/P or
/// transfer event becomes a complete ("ph":"X") event; sites map to thread
/// names so the viewer shows one lane per site.
[[nodiscard]] std::string to_chrome_json(const ExecutionTrace& trace);

/// Renders an ASCII Gantt chart, `width` characters across the full
/// makespan. Overlapping events on one site print the later phase glyph.
[[nodiscard]] std::string to_gantt(const ExecutionTrace& trace,
                                   std::size_t width = 72);

}  // namespace isomer
