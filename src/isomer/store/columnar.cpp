#include "isomer/store/columnar.hpp"

#include <limits>

#include "isomer/common/error.hpp"
#include "isomer/store/extent.hpp"

namespace isomer {

namespace {

/// What one column looks like after the classification pass.
struct ColPlan {
  ColumnarExtent::ColKind kind = ColumnarExtent::ColKind::AllNull;
  std::size_t str_bytes = 0;  ///< total string payload (String columns)
};

/// Folds one value's kind into the column's running classification.
void classify(ColPlan& plan, const Value& v) {
  using ColKind = ColumnarExtent::ColKind;
  if (v.is_null()) return;
  ColKind vk;
  std::size_t bytes = 0;
  switch (v.kind()) {
    case ValueKind::Int:
    case ValueKind::Real:
      vk = ColKind::Num;
      break;
    case ValueKind::Bool:
      vk = ColKind::Bool;
      break;
    case ValueKind::String:
      vk = ColKind::String;
      bytes = v.as_string().size();
      break;
    default:
      vk = ColKind::Other;
      break;
  }
  if (plan.kind == ColKind::AllNull)
    plan.kind = vk;
  else if (plan.kind != vk)
    plan.kind = ColKind::Other;  // mixed non-numeric kinds: row path only
  if (plan.kind == ColKind::String) plan.str_bytes += bytes;
}

}  // namespace

ColumnarExtent::ColumnarExtent(const Extent& extent) {
  const std::vector<Object>& objects = extent.objects();
  rows_ = objects.size();
  const std::size_t attrs = extent.cls().attribute_count();
  cols_.resize(attrs);
  if (attrs == 0) return;

  // ---- Pass 1: classify every column and size the arenas.
  std::vector<ColPlan> plans(attrs);
  for (const Object& obj : objects)
    for (std::size_t a = 0; a < attrs; ++a) classify(plans[a], obj.value(a));

  const std::size_t bitmap_words = (rows_ + 63) / 64;
  const std::size_t bool_words = (rows_ + 7) / 8;
  std::size_t words = 0;
  std::size_t str_total = 0;
  std::size_t offset_total = 0;
  for (const ColPlan& plan : plans) {
    words += bitmap_words;  // every column gets a validity bitmap
    switch (plan.kind) {
      case ColKind::Num:
        words += rows_;  // one 64-bit word per double
        break;
      case ColKind::Bool:
        words += bool_words;
        break;
      case ColKind::String:
        expects(plan.str_bytes <
                    std::numeric_limits<std::uint32_t>::max(),
                "string column exceeds 4 GiB arena");
        str_total += plan.str_bytes;
        offset_total += rows_ + 1;
        break;
      case ColKind::AllNull:
      case ColKind::Other:
        break;
    }
  }
  arena_.assign(words, 0);
  str_arena_.resize(str_total);
  offset_arena_.assign(offset_total, 0);

  // ---- Carve per-column views out of the arenas.
  std::size_t word_at = 0;
  std::size_t str_at = 0;
  std::size_t offset_at = 0;
  for (std::size_t a = 0; a < attrs; ++a) {
    Column& col = cols_[a];
    col.kind = plans[a].kind;
    col.valid = arena_.data() + word_at;
    word_at += bitmap_words;
    switch (col.kind) {
      case ColKind::Num:
        col.nums = reinterpret_cast<const double*>(arena_.data() + word_at);
        word_at += rows_;
        break;
      case ColKind::Bool:
        col.bools =
            reinterpret_cast<const std::uint8_t*>(arena_.data() + word_at);
        word_at += bool_words;
        break;
      case ColKind::String:
        col.str_offsets = offset_arena_.data() + offset_at;
        offset_at += rows_ + 1;
        col.str_bytes = str_arena_.data() + str_at;
        str_at += plans[a].str_bytes;
        break;
      case ColKind::AllNull:
      case ColKind::Other:
        break;
    }
  }

  // ---- Pass 2: fill values and validity bits.
  for (std::size_t r = 0; r < rows_; ++r) {
    const Object& obj = objects[r];
    for (std::size_t a = 0; a < attrs; ++a) {
      Column& col = cols_[a];
      const Value& v = obj.value(a);
      // String offsets advance for every row (null rows get length 0).
      if (col.kind == ColKind::String) {
        auto* offsets = const_cast<std::uint32_t*>(col.str_offsets);
        offsets[r + 1] = offsets[r];
      }
      if (v.is_null()) continue;
      const_cast<std::uint64_t*>(col.valid)[r >> 6] |= std::uint64_t{1}
                                                       << (r & 63);
      switch (col.kind) {
        case ColKind::Num:
          const_cast<double*>(col.nums)[r] = v.as_number();
          break;
        case ColKind::Bool:
          const_cast<std::uint8_t*>(col.bools)[r] =
              static_cast<std::uint8_t>(v.as_bool());
          break;
        case ColKind::String: {
          const std::string& s = v.as_string();
          auto* offsets = const_cast<std::uint32_t*>(col.str_offsets);
          char* base = const_cast<char*>(col.str_bytes);
          std::copy(s.begin(), s.end(), base + offsets[r]);
          offsets[r + 1] =
              offsets[r] + static_cast<std::uint32_t>(s.size());
          break;
        }
        case ColKind::AllNull:
        case ColKind::Other:
          break;
      }
    }
  }
}

const ColumnarExtent::Column& ColumnarExtent::column(
    std::size_t attr_index) const {
  expects(attr_index < cols_.size(), "columnar attribute index out of range");
  return cols_[attr_index];
}

std::size_t ColumnarExtent::arena_bytes() const noexcept {
  return arena_.size() * sizeof(std::uint64_t) + str_arena_.size() +
         offset_arena_.size() * sizeof(std::uint32_t);
}

}  // namespace isomer
