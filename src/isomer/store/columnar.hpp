// Columnar extent mirror.
//
// A ColumnarExtent re-lays one class extent per attribute: each attribute's
// values sit in one contiguous arena-backed array with a validity bitmap
// marking where the value is non-null — the paper's missing data, preserved
// exactly. The mirror is a read-only *projection* of the row extent (the
// Extent stays the system of record, so point lookups, mutation and the
// existing API are untouched); the vectorized predicate kernels in
// query/kernels.hpp scan these arrays instead of walking Object values
// variant by variant, which is where the 10-100x on the local hot path
// comes from.
//
// Numeric columns deliberately store doubles regardless of the declared
// Int/Real type: three-valued comparison (common/value.cpp) converts *both*
// operands through Value::as_number() before comparing, so a double array
// reproduces the row path's results bit for bit — including the places where
// an int64 beyond 2^53 would round. Columns whose values the kernels cannot
// mirror exactly (references, ref sets, non-numeric kind mixes) are tagged
// Other and predicate evaluation falls back to the row walk.
#pragma once

#include <cstdint>
#include <vector>

namespace isomer {

class Extent;

/// Per-attribute columnar projection of one Extent. Immutable once built;
/// Extent::columnar() caches one per extent and rebuilds it after mutation.
class ColumnarExtent {
 public:
  /// Storage class of a column, chosen from the values actually present.
  enum class ColKind : unsigned char {
    AllNull,  ///< every row is null (schema present, data all missing)
    Num,      ///< every non-null value is Int or Real -> double array
    Bool,     ///< every non-null value is Bool -> byte array
    String,   ///< every non-null value is String -> offset + byte arena
    Other,    ///< references / ref sets / mixed kinds: row-path only
  };

  /// One attribute laid out contiguously. Pointers alias the extent-owned
  /// arenas and stay valid as long as the ColumnarExtent lives.
  struct Column {
    ColKind kind = ColKind::AllNull;
    /// Validity bitmap, bit r set = row r non-null; never null for a built
    /// column (AllNull columns carry an all-zero bitmap).
    const std::uint64_t* valid = nullptr;
    const double* nums = nullptr;          ///< Num: one double per row
    const std::uint8_t* bools = nullptr;   ///< Bool: one byte per row
    /// String: rows+1 offsets into `str_bytes`.
    const std::uint32_t* str_offsets = nullptr;
    const char* str_bytes = nullptr;

    [[nodiscard]] bool is_valid(std::size_t row) const noexcept {
      return ((valid[row >> 6] >> (row & 63)) & 1) != 0;
    }
  };

  /// Builds the projection of `extent` (two passes: classify + fill).
  explicit ColumnarExtent(const Extent& extent);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return cols_.size();
  }
  [[nodiscard]] const Column& column(std::size_t attr_index) const;

  /// Bytes held by the arenas (diagnostics / bench reporting).
  [[nodiscard]] std::size_t arena_bytes() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::vector<Column> cols_;
  /// One arena for all fixed-width data: per column, bitmap words followed
  /// by the value array (doubles stored as bit patterns, bools packed one
  /// byte each). Single allocation, 8-byte aligned.
  std::vector<std::uint64_t> arena_;
  std::vector<char> str_arena_;             ///< all string bytes
  std::vector<std::uint32_t> offset_arena_;  ///< rows+1 offsets per string col
};

}  // namespace isomer
