#include "isomer/store/database.hpp"

#include "isomer/common/error.hpp"

namespace isomer {

namespace {

/// True when value `v` may be stored under attribute type `t` (null is
/// storable everywhere; ints are storable into real attributes).
bool storable(const AttrType& t, const Value& v) {
  if (v.is_null()) return true;
  if (const auto* prim = std::get_if<PrimType>(&t)) {
    switch (*prim) {
      case PrimType::Bool:
        return v.kind() == ValueKind::Bool;
      case PrimType::Int:
        return v.kind() == ValueKind::Int;
      case PrimType::Real:
        return v.is_numeric();
      case PrimType::String:
        return v.kind() == ValueKind::String;
    }
    return false;
  }
  const auto& cplx = std::get<ComplexType>(t);
  if (cplx.multi_valued) return v.kind() == ValueKind::LocalRefSet;
  return v.kind() == ValueKind::LocalRef;
}

struct SlotCounts {
  std::uint64_t prims = 0;
  std::uint64_t refs = 0;
};

SlotCounts slot_counts(const ClassDef& cls) {
  SlotCounts counts;
  for (const AttrDef& attr : cls.attributes()) {
    if (is_complex(attr.type))
      ++counts.refs;
    else
      ++counts.prims;
  }
  return counts;
}

}  // namespace

ComponentDatabase::ComponentDatabase(ComponentSchema schema)
    : schema_(std::move(schema)) {
  schema_.validate();
  for (const ClassDef& cls : schema_.classes())
    extents_.emplace(cls.name(), Extent(cls));
}

void ComponentDatabase::check_type(const ClassDef& cls, std::size_t attr_index,
                                   const Value& v) const {
  const AttrDef& attr = cls.attribute(attr_index);
  if (!storable(attr.type, v))
    throw QueryError("value of kind " + std::string(to_string(v.kind())) +
                     " not storable into attribute " + attr.name +
                     " of class " + cls.name() + " (type " +
                     to_string(attr.type) + ")");
}

LOid ComponentDatabase::insert(std::string_view class_name,
                               std::initializer_list<NamedValue> values) {
  return insert(class_name, std::vector<NamedValue>(values));
}

LOid ComponentDatabase::insert(std::string_view class_name,
                               const std::vector<NamedValue>& values) {
  Extent& ext = mutable_extent(class_name);
  const ClassDef& cls = ext.cls();
  const LOid id{db(), next_loid_++};
  Object obj(id, cls);
  for (const auto& [attr_name, value] : values) {
    const auto index = cls.find_attribute(attr_name);
    if (!index)
      throw QueryError("class " + cls.name() + " has no attribute " +
                       attr_name);
    check_type(cls, *index, value);
    obj.set_value(*index, value);
  }
  ext.insert(std::move(obj));
  loid_to_extent_.emplace(id, &ext);
  return id;
}

void ComponentDatabase::reserve(std::string_view class_name, std::size_t n) {
  Extent& ext = mutable_extent(class_name);
  ext.reserve(ext.size() + n);
  loid_to_extent_.reserve(loid_to_extent_.size() + n);
}

void ComponentDatabase::set_attribute(LOid id, std::string_view attr_name,
                                      Value v) {
  const auto it = loid_to_extent_.find(id);
  if (it == loid_to_extent_.end())
    throw FederationError("LOid " + to_string(id) + " unknown to database " +
                          schema_.db_name());
  Extent& ext = *it->second;
  Object* obj = ext.find(id);
  ensures(obj != nullptr, "LOid registered but absent from extent");
  const auto index = ext.cls().find_attribute(attr_name);
  if (!index)
    throw QueryError("class " + ext.cls().name() + " has no attribute " +
                     std::string(attr_name));
  check_type(ext.cls(), *index, v);
  obj->set_value(*index, std::move(v));
}

const Extent& ComponentDatabase::extent(std::string_view class_name) const {
  const auto it = extents_.find(class_name);
  if (it == extents_.end())
    throw SchemaError("database " + schema_.db_name() + " has no class " +
                      std::string(class_name));
  return it->second;
}

bool ComponentDatabase::has_extent(std::string_view class_name) const noexcept {
  return extents_.find(class_name) != extents_.end();
}

Extent& ComponentDatabase::mutable_extent(std::string_view class_name) {
  const auto it = extents_.find(class_name);
  if (it == extents_.end())
    throw SchemaError("database " + schema_.db_name() + " has no class " +
                      std::string(class_name));
  return it->second;
}

const std::string& ComponentDatabase::class_of(LOid id) const {
  const auto it = loid_to_extent_.find(id);
  if (it == loid_to_extent_.end())
    throw FederationError("LOid " + to_string(id) + " unknown to database " +
                          schema_.db_name());
  return it->second->cls().name();
}

const Object* ComponentDatabase::fetch(LOid id, AccessMeter* meter,
                                       FetchCache* cache) const {
  const auto it = loid_to_extent_.find(id);
  if (it == loid_to_extent_.end()) return nullptr;
  const Extent& ext = *it->second;
  const Object* obj = ext.find(id);
  if (obj != nullptr && meter != nullptr &&
      (cache == nullptr || cache->admit(id))) {
    ++meter->objects_fetched;
    const SlotCounts counts = slot_counts(ext.cls());
    meter->prim_slots += counts.prims;
    meter->ref_slots += counts.refs;
  }
  return obj;
}

const Object* ComponentDatabase::deref(const Value& ref, AccessMeter* meter,
                                       FetchCache* cache) const {
  if (ref.kind() != ValueKind::LocalRef) return nullptr;
  return fetch(ref.as_local_ref(), meter, cache);
}

ResolvedObject ComponentDatabase::resolve(LOid id, AccessMeter* meter,
                                          FetchCache* cache,
                                          DerefCache* resolved) const {
  const auto charge = [&](const Object* obj, std::uint64_t prims,
                          std::uint64_t refs) {
    if (obj != nullptr && meter != nullptr &&
        (cache == nullptr || cache->admit(id))) {
      ++meter->objects_fetched;
      meter->prim_slots += prims;
      meter->ref_slots += refs;
    }
  };
  if (resolved != nullptr) {
    const auto it = resolved->entries.find(id);
    if (it != resolved->entries.end()) {
      const DerefCache::Entry& entry = it->second;
      charge(entry.obj, entry.prim_slots, entry.ref_slots);
      return ResolvedObject{entry.obj, entry.cls};
    }
  }
  const auto it = loid_to_extent_.find(id);
  if (it == loid_to_extent_.end()) {
    if (resolved != nullptr)
      resolved->entries.emplace(id, DerefCache::Entry{});
    return ResolvedObject{};
  }
  const Extent& ext = *it->second;
  const Object* obj = ext.find(id);
  const SlotCounts counts = slot_counts(ext.cls());
  charge(obj, counts.prims, counts.refs);
  if (resolved != nullptr)
    resolved->entries.emplace(
        id, DerefCache::Entry{obj, &ext.cls(), counts.prims, counts.refs});
  return ResolvedObject{obj, &ext.cls()};
}

const std::vector<Object>& ComponentDatabase::scan(std::string_view class_name,
                                                   AccessMeter* meter,
                                                   FetchCache* cache) const {
  const Extent& ext = extent(class_name);
  if (meter != nullptr) {
    meter->objects_scanned += ext.size();
    const SlotCounts counts = slot_counts(ext.cls());
    meter->prim_slots += counts.prims * ext.size();
    meter->ref_slots += counts.refs * ext.size();
  }
  if (cache != nullptr)
    for (const Object& obj : ext.objects()) cache->seen.insert(obj.id());
  return ext.objects();
}

}  // namespace isomer
