// Component databases.
//
// A ComponentDatabase owns one component schema and one extent per class,
// allocates LOids, and offers the navigation primitives (point lookup,
// reference dereference) the query evaluator and the execution strategies
// are built on. Physical work is counted into an optional AccessMeter.
#pragma once

#include <initializer_list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "isomer/common/hash.hpp"
#include "isomer/objmodel/schema.hpp"
#include "isomer/store/deref_cache.hpp"
#include "isomer/store/extent.hpp"
#include "isomer/store/meter.hpp"

namespace isomer {

/// Named attribute value used when inserting objects:
/// `db.insert("Student", {{"name", "John"}, {"age", 31}})`.
using NamedValue = std::pair<std::string, Value>;

/// One component database: schema + extents + LOid allocation.
class ComponentDatabase {
 public:
  /// Takes ownership of the (validated) schema.
  explicit ComponentDatabase(ComponentSchema schema);

  [[nodiscard]] DbId db() const noexcept { return schema_.db(); }
  [[nodiscard]] const ComponentSchema& schema() const noexcept {
    return schema_;
  }

  /// Inserts a new object of `class_name` with the given attribute values;
  /// unlisted attributes stay null. Values are type-checked against the
  /// schema (QueryError on mismatch). Returns the allocated LOid.
  LOid insert(std::string_view class_name,
              std::initializer_list<NamedValue> values);
  LOid insert(std::string_view class_name,
              const std::vector<NamedValue>& values);

  /// Inserts an object with all attributes null.
  LOid insert(std::string_view class_name) { return insert(class_name, {}); }

  /// Pre-sizes the class extent (and the LOid directory) for `n` more
  /// objects; call before bulk-loading a known cardinality.
  void reserve(std::string_view class_name, std::size_t n);

  /// Overwrites one attribute of an existing object (type-checked).
  void set_attribute(LOid id, std::string_view attr_name, Value v);

  [[nodiscard]] const Extent& extent(std::string_view class_name) const;
  [[nodiscard]] bool has_extent(std::string_view class_name) const noexcept;

  /// The class an LOid belongs to; throws FederationError when unknown.
  [[nodiscard]] const std::string& class_of(LOid id) const;

  /// Point lookup; nullptr when the LOid is not in this database. Charges
  /// one fetched object to the meter when found — unless `cache` says the
  /// object is already buffered in memory.
  [[nodiscard]] const Object* fetch(LOid id, AccessMeter* meter = nullptr,
                                    FetchCache* cache = nullptr) const;

  /// Dereferences a local reference value; null / dangling refs yield
  /// nullptr. Charges one fetched object when followed (cache-aware).
  [[nodiscard]] const Object* deref(const Value& ref,
                                    AccessMeter* meter = nullptr,
                                    FetchCache* cache = nullptr) const;

  /// Point lookup that also returns the object's class, optionally memoized
  /// in `resolved` so repeated navigations skip the LOid- and class-name
  /// hash lookups. Metering is identical to fetch(): one fetched object
  /// (plus its slot widths) is charged per successful call unless `cache`
  /// says the object is already buffered — a memo hit never changes what
  /// the meter sees. The memo holds raw pointers; discard it when the
  /// database is mutated.
  [[nodiscard]] ResolvedObject resolve(LOid id, AccessMeter* meter = nullptr,
                                       FetchCache* cache = nullptr,
                                       DerefCache* resolved = nullptr) const;

  /// Scans the extent of `class_name`, charging every object to the meter,
  /// and returns the objects. When `cache` is given, all scanned objects
  /// enter the buffer pool so later point lookups are memory hits.
  [[nodiscard]] const std::vector<Object>& scan(std::string_view class_name,
                                                AccessMeter* meter,
                                                FetchCache* cache = nullptr) const;

  [[nodiscard]] std::size_t object_count() const noexcept {
    return loid_to_extent_.size();
  }

  /// Monotone mutation counter: the sum of every extent's version (see
  /// Extent::version()), so any insert or attribute write anywhere in the
  /// database changes the value. Epoch-tagged caches compare this to decide
  /// whether their entries still describe the current data.
  [[nodiscard]] std::uint64_t mutation_epoch() const noexcept {
    std::uint64_t epoch = 0;
    for (const auto& [name, extent] : extents_) epoch += extent.version();
    return epoch;
  }

 private:
  Extent& mutable_extent(std::string_view class_name);
  void check_type(const ClassDef& cls, std::size_t attr_index,
                  const Value& v) const;

  ComponentSchema schema_;
  /// Extents keyed by class name; node-based, so Extent addresses are
  /// stable and the LOid directory below can point straight at them.
  std::unordered_map<std::string, Extent, TransparentStringHash,
                     std::equal_to<>>
      extents_;
  /// LOid directory: one hash lookup resolves an LOid to its extent (and
  /// through it its class), keeping fetch() to a single probe on the hot
  /// navigation path.
  std::unordered_map<LOid, Extent*> loid_to_extent_;
  std::uint32_t next_loid_ = 1;
};

}  // namespace isomer
