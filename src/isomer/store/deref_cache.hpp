// Memoized LOid resolution.
//
// Navigation-heavy evaluation dereferences the same objects over and over;
// every ComponentDatabase::fetch pays an LOid-hash lookup to learn the class
// name, a string-hash lookup to reach the extent, and another LOid-hash
// lookup inside it. A DerefCache remembers the final (object, class, stored
// slot widths) answer per LOid so repeated resolutions are a single hash
// probe — *without* touching the metering contract: a cached resolution
// charges the AccessMeter exactly what an uncached fetch would (see
// ComponentDatabase::resolve). The buffer-pool question — has this object
// already been read from disk? — remains FetchCache's job.
//
// Entries hold raw pointers into the database; discard the cache whenever
// the database is mutated.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "isomer/common/ids.hpp"

namespace isomer {

class ClassDef;
class Object;

/// An object paired with its class definition, as returned by
/// ComponentDatabase::resolve. `obj == nullptr` means the LOid is unknown
/// (or dangling) in that database.
struct ResolvedObject {
  const Object* obj = nullptr;
  const ClassDef* cls = nullptr;
};

/// Memo of LOid resolutions within one ComponentDatabase.
struct DerefCache {
  struct Entry {
    const Object* obj = nullptr;  ///< nullptr = remembered miss
    const ClassDef* cls = nullptr;
    std::uint64_t prim_slots = 0;  ///< stored widths, for meter charging
    std::uint64_t ref_slots = 0;
  };
  std::unordered_map<LOid, Entry> entries;
};

}  // namespace isomer
