#include "isomer/store/extent.hpp"

#include <utility>

#include "isomer/common/error.hpp"

namespace isomer {

const ClassDef& Extent::cls() const {
  expects(cls_ != nullptr, "Extent used before binding to a class");
  return *cls_;
}

void Extent::reserve(std::size_t n) {
  objects_.reserve(n);
  by_id_.reserve(n);
}

Object& Extent::insert(Object obj) {
  const auto [it, inserted] = by_id_.emplace(obj.id(), objects_.size());
  if (!inserted)
    throw FederationError("duplicate LOid " + to_string(obj.id()) +
                          " in extent of class " + cls().name());
  objects_.push_back(std::move(obj));
  invalidate_columnar();
  return objects_.back();
}

const Object* Extent::find(LOid id) const noexcept {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return nullptr;
  return &objects_[it->second];
}

Object* Extent::find(LOid id) noexcept {
  invalidate_columnar();  // mutable handle: assume the caller writes
  return const_cast<Object*>(std::as_const(*this).find(id));
}

std::optional<std::size_t> Extent::row_of(LOid id) const noexcept {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

const ColumnarExtent& Extent::columnar() const {
  const std::lock_guard<std::mutex> lock(mirror_->m);
  if (!mirror_->built)
    mirror_->built = std::make_shared<const ColumnarExtent>(*this);
  return *mirror_->built;
}

void Extent::invalidate_columnar() noexcept {
  const std::lock_guard<std::mutex> lock(mirror_->m);
  mirror_->built.reset();
  ++version_;  // one counter for both mirror staleness and cache epochs
}

}  // namespace isomer
