#include "isomer/store/extent.hpp"

#include <utility>

#include "isomer/common/error.hpp"

namespace isomer {

const ClassDef& Extent::cls() const {
  expects(cls_ != nullptr, "Extent used before binding to a class");
  return *cls_;
}

Object& Extent::insert(Object obj) {
  const auto [it, inserted] = by_id_.emplace(obj.id(), objects_.size());
  if (!inserted)
    throw FederationError("duplicate LOid " + to_string(obj.id()) +
                          " in extent of class " + cls().name());
  objects_.push_back(std::move(obj));
  return objects_.back();
}

const Object* Extent::find(LOid id) const noexcept {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return nullptr;
  return &objects_[it->second];
}

Object* Extent::find(LOid id) noexcept {
  return const_cast<Object*>(std::as_const(*this).find(id));
}

}  // namespace isomer
