// Class extents.
//
// An extent holds every object of one class in one component database, with
// an LOid index for point lookups. The row store (`objects_`) is the system
// of record; a columnar per-attribute mirror (store/columnar.hpp) is built
// lazily for the vectorized predicate kernels and invalidated whenever the
// extent mutates, so the two layouts can never disagree.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "isomer/objmodel/class_def.hpp"
#include "isomer/objmodel/object.hpp"
#include "isomer/store/columnar.hpp"

namespace isomer {

/// All objects of one class within one component database. The extent does
/// not own the class definition; it lives in the database's schema and must
/// outlive the extent.
class Extent {
 public:
  Extent() : mirror_(std::make_unique<Mirror>()) {}
  explicit Extent(const ClassDef& cls)
      : cls_(&cls), mirror_(std::make_unique<Mirror>()) {}

  [[nodiscard]] const ClassDef& cls() const;

  [[nodiscard]] std::size_t size() const noexcept { return objects_.size(); }
  [[nodiscard]] bool empty() const noexcept { return objects_.empty(); }

  /// Pre-sizes the row store and LOid index for `n` objects; call before
  /// bulk-appending a known cardinality to avoid rehash/realloc churn.
  void reserve(std::size_t n);

  /// Appends an object; throws FederationError when the LOid already exists.
  Object& insert(Object obj);

  [[nodiscard]] const Object* find(LOid id) const noexcept;
  [[nodiscard]] Object* find(LOid id) noexcept;

  /// Row position of an LOid (index into objects()); nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> row_of(LOid id) const noexcept;

  [[nodiscard]] const std::vector<Object>& objects() const noexcept {
    return objects_;
  }
  [[nodiscard]] std::vector<Object>& objects() noexcept {
    invalidate_columnar();  // mutable view: assume the caller writes
    return objects_;
  }

  /// The columnar mirror of this extent, built on first use and cached.
  /// Thread-safe against concurrent readers; any mutation (insert, find
  /// non-const, set_attribute through the database) invalidates it, so the
  /// returned reference is valid until the next mutation.
  [[nodiscard]] const ColumnarExtent& columnar() const;

  /// Drops the cached columnar mirror (called by every mutating path).
  void invalidate_columnar() noexcept;

  /// Mutation counter: bumped by every path that invalidates the columnar
  /// mirror (insert, mutable objects()/find(), set_attribute through the
  /// database). Summed into ComponentDatabase::mutation_epoch() /
  /// Federation::epoch() so epoch-tagged caches (core/cert_cache.hpp) can
  /// drop entries derived from data that has since changed.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  const ClassDef* cls_ = nullptr;
  std::vector<Object> objects_;
  std::unordered_map<LOid, std::size_t> by_id_;
  std::uint64_t version_ = 0;

  /// Lazily built columnar projection. Boxed so Extent stays movable; the
  /// mutex only guards the build/reset handshake, never the scan itself.
  struct Mirror {
    std::mutex m;
    std::shared_ptr<const ColumnarExtent> built;
  };
  std::unique_ptr<Mirror> mirror_;
};

}  // namespace isomer
