// Class extents.
//
// An extent holds every object of one class in one component database, with
// an LOid index for point lookups.
#pragma once

#include <unordered_map>
#include <vector>

#include "isomer/objmodel/class_def.hpp"
#include "isomer/objmodel/object.hpp"

namespace isomer {

/// All objects of one class within one component database. The extent does
/// not own the class definition; it lives in the database's schema and must
/// outlive the extent.
class Extent {
 public:
  Extent() = default;
  explicit Extent(const ClassDef& cls) : cls_(&cls) {}

  [[nodiscard]] const ClassDef& cls() const;

  [[nodiscard]] std::size_t size() const noexcept { return objects_.size(); }
  [[nodiscard]] bool empty() const noexcept { return objects_.empty(); }

  /// Appends an object; throws FederationError when the LOid already exists.
  Object& insert(Object obj);

  [[nodiscard]] const Object* find(LOid id) const noexcept;
  [[nodiscard]] Object* find(LOid id) noexcept;

  [[nodiscard]] const std::vector<Object>& objects() const noexcept {
    return objects_;
  }
  [[nodiscard]] std::vector<Object>& objects() noexcept { return objects_; }

 private:
  const ClassDef* cls_ = nullptr;
  std::vector<Object> objects_;
  std::unordered_map<LOid, std::size_t> by_id_;
};

}  // namespace isomer
