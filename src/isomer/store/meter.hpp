// Access metering.
//
// The simulation charges time per byte read from disk, per byte shipped over
// the network, and per comparison (Table 1). The store and the query
// evaluator do not know those rates; they only count *what* they did into an
// AccessMeter — objects, attribute slots, comparisons, mapping-table probes —
// and the execution strategies convert counts into simulated time via
// sim::CostParams.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "isomer/common/ids.hpp"

namespace isomer {

/// Counters of physical work performed by a store / evaluator.
struct AccessMeter {
  std::uint64_t objects_scanned = 0;  ///< objects touched by extent scans
  std::uint64_t objects_fetched = 0;  ///< objects fetched by LOid lookup
  std::uint64_t comparisons = 0;      ///< predicate / join comparisons
  std::uint64_t table_probes = 0;     ///< GOid-mapping-table probes

  /// Attribute slots of every scanned/fetched object, split by kind so byte
  /// sizes can be derived (primitive slots average S_a bytes, reference
  /// slots store an OID). Multi-valued references count as one slot.
  std::uint64_t prim_slots = 0;
  std::uint64_t ref_slots = 0;

  AccessMeter& operator+=(const AccessMeter& other) noexcept {
    objects_scanned += other.objects_scanned;
    objects_fetched += other.objects_fetched;
    comparisons += other.comparisons;
    table_probes += other.table_probes;
    prim_slots += other.prim_slots;
    ref_slots += other.ref_slots;
    return *this;
  }

  friend bool operator==(const AccessMeter&, const AccessMeter&) = default;
};

/// Models a site's buffer pool within one unit of work (paper §4.1 gives
/// every component DBMS a memory): the first access to an object reads it
/// from disk and is charged to the meter; repeated accesses hit memory and
/// charge nothing. Pass one cache per logical execution (a local query, a
/// check batch) to the store's fetch/deref/scan.
struct FetchCache {
  std::unordered_set<LOid> seen;

  /// True when `id` was not yet cached (caller must charge the read).
  bool admit(LOid id) { return seen.insert(id).second; }
};

}  // namespace isomer
