#include "isomer/workload/arrivals.hpp"

#include <algorithm>
#include <cmath>

#include "isomer/common/error.hpp"

namespace isomer::workload {

std::vector<Arrival> poisson_arrivals(double rate_qps, std::size_t n,
                                      std::size_t pool_size, Rng& rng) {
  expects(rate_qps > 0, "poisson_arrivals wants a positive rate");
  expects(pool_size > 0, "poisson_arrivals wants a non-empty pool");
  std::vector<Arrival> out;
  out.reserve(n);
  double clock_s = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Inverse-transform exponential gap. uniform_real never returns 1, so
    // log(1 - u) is finite.
    const double u = rng.uniform_real(0.0, 1.0);
    clock_s += -std::log(1.0 - u) / rate_qps;
    Arrival arrival;
    arrival.at = static_cast<SimTime>(std::llround(clock_s * 1e9));
    arrival.pool_index = rng.index(pool_size);
    out.push_back(arrival);
  }
  return out;
}

std::vector<Arrival> tenant_poisson_arrivals(
    const std::vector<TenantStream>& streams, std::size_t n,
    std::uint64_t seed) {
  expects(!streams.empty(), "tenant_poisson_arrivals wants >= 1 stream");
  struct Tagged {
    Arrival arrival;
    std::size_t stream = 0;
    std::size_t seq = 0;
  };
  std::vector<Tagged> merged;
  merged.reserve(streams.size() * n);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const TenantStream& stream = streams[i];
    expects(stream.rate_qps > 0, "tenant stream wants a positive rate");
    expects(!stream.pool.empty(), "tenant stream wants a non-empty pool");
    // Each stream over-draws to n arrivals: the merged prefix of length n
    // can contain at most n from any one stream.
    Rng rng(derive_stream(seed, static_cast<std::uint64_t>(i)));
    const std::vector<Arrival> local =
        poisson_arrivals(stream.rate_qps, n, stream.pool.size(), rng);
    for (std::size_t seq = 0; seq < local.size(); ++seq)
      merged.push_back(Tagged{
          Arrival{local[seq].at, stream.pool[local[seq].pool_index]}, i, seq});
  }
  std::sort(merged.begin(), merged.end(), [](const Tagged& a, const Tagged& b) {
    if (a.arrival.at != b.arrival.at) return a.arrival.at < b.arrival.at;
    if (a.stream != b.stream) return a.stream < b.stream;
    return a.seq < b.seq;
  });
  std::vector<Arrival> out;
  out.reserve(std::min(n, merged.size()));
  for (std::size_t i = 0; i < merged.size() && i < n; ++i)
    out.push_back(merged[i].arrival);
  return out;
}

std::vector<GlobalQuery> derive_query_pool(const GlobalQuery& base,
                                           std::size_t count, Rng& rng) {
  expects(count > 0, "derive_query_pool wants a positive count");
  std::vector<GlobalQuery> pool;
  pool.reserve(count);
  pool.push_back(base);
  for (std::size_t i = 1; i < count; ++i) {
    GlobalQuery variant;
    variant.range_class = base.range_class;

    // A non-empty subset of the targets (a target-less base stays
    // target-less), in the base query's order so the variant is
    // deterministic given the drawn index set.
    if (!base.targets.empty()) {
      const std::size_t n_targets = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(base.targets.size())));
      auto picked = rng.sample_indices(base.targets.size(), n_targets);
      std::sort(picked.begin(), picked.end());
      for (const std::size_t t : picked)
        variant.targets.push_back(base.targets[t]);
    }

    if (base.disjuncts.empty()) {
      // Pure conjunction: any predicate subset (possibly empty) is still a
      // well-formed query.
      for (const Predicate& pred : base.predicates)
        if (rng.bernoulli(0.7)) variant.predicates.push_back(pred);
    } else {
      // Dropping predicates would invalidate the indices in `disjuncts`;
      // keep the matching formula intact and vary only the projection.
      variant.predicates = base.predicates;
      variant.disjuncts = base.disjuncts;
    }
    pool.push_back(std::move(variant));
  }
  return pool;
}

}  // namespace isomer::workload
