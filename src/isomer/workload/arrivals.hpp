// Arrival processes and query pools for the serving layer.
//
// The serving layer (serve/server.hpp) admits a stream of *independent*
// global queries into one shared simulated federation. This header supplies
// the two workload-side ingredients: a Poisson arrival schedule for the
// open-loop mode, and a pool of query variants derived from one base query
// so concurrent requests are heterogeneous (different target sets,
// different predicate subsets) while staying answerable against the same
// synthesized federation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isomer/common/rng.hpp"
#include "isomer/query/query.hpp"
#include "isomer/sim/simulator.hpp"

namespace isomer::workload {

/// One scheduled open-loop submission: which pool entry arrives when.
struct Arrival {
  SimTime at = 0;
  std::size_t pool_index = 0;

  friend bool operator==(const Arrival&, const Arrival&) = default;
};

/// Draws `n` Poisson arrivals at mean rate `rate_qps` (queries per second):
/// inter-arrival gaps are exponential with mean 1/rate, rounded to whole
/// simulated nanoseconds, and each arrival picks a uniformly random entry
/// of a `pool_size`-entry query pool. All randomness comes from `rng`, so a
/// fixed seed replays the exact schedule. Requires rate_qps > 0 and
/// pool_size > 0.
[[nodiscard]] std::vector<Arrival> poisson_arrivals(double rate_qps,
                                                    std::size_t n,
                                                    std::size_t pool_size,
                                                    Rng& rng);

/// One tenant's open-loop arrival stream: its offered rate and the global
/// pool indices its submissions draw from (serve/server.hpp tags pool
/// entries per tenant).
struct TenantStream {
  double rate_qps = 0;
  std::vector<std::size_t> pool;
};

/// Draws the first `n` arrivals of the superposition of independent
/// per-tenant Poisson streams. Stream i derives its own generator from
/// `derive_stream(seed, i)`, so adding, removing or re-rating one tenant
/// never perturbs another tenant's schedule; the merged order breaks
/// simultaneous arrivals by stream index then draw order, which keeps the
/// schedule a pure function of (streams, n, seed). Each returned
/// pool_index is already a *global* pool index (mapped through the
/// stream's `pool`). Requires every stream rate > 0 and pool non-empty.
[[nodiscard]] std::vector<Arrival> tenant_poisson_arrivals(
    const std::vector<TenantStream>& streams, std::size_t n,
    std::uint64_t seed);

/// Derives a pool of `count` query variants from `base`. Entry 0 is always
/// `base` itself; later entries keep the range class but select a random
/// non-empty subset of the targets (a target-less base stays target-less)
/// and (for purely conjunctive queries) a random subset of the predicates.
/// Queries with disjunctive structure only vary their targets — dropping a
/// predicate would invalidate the indices in `disjuncts`. Requires
/// count > 0.
[[nodiscard]] std::vector<GlobalQuery> derive_query_pool(
    const GlobalQuery& base, std::size_t count, Rng& rng);

}  // namespace isomer::workload
