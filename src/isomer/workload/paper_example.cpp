#include "isomer/workload/paper_example.hpp"

#include "isomer/common/error.hpp"
#include "isomer/schema/integrator.hpp"

namespace isomer::paper {

namespace {

constexpr DbId kDb1{1};
constexpr DbId kDb2{2};
constexpr DbId kDb3{3};

ComponentSchema schema_db1() {
  ComponentSchema schema(kDb1, "DB1");
  schema.add_class("Student")
      .add_attribute("s-no", PrimType::Int)
      .add_attribute("name", PrimType::String)
      .add_attribute("age", PrimType::Int)
      .add_attribute("advisor", ComplexType{"Teacher"})
      .add_attribute("sex", PrimType::String);
  schema.add_class("Teacher")
      .add_attribute("name", PrimType::String)
      .add_attribute("department", ComplexType{"Department"});
  schema.add_class("Department").add_attribute("name", PrimType::String);
  schema.validate();
  return schema;
}

ComponentSchema schema_db2() {
  ComponentSchema schema(kDb2, "DB2");
  schema.add_class("Student")
      .add_attribute("s-no", PrimType::Int)
      .add_attribute("name", PrimType::String)
      .add_attribute("sex", PrimType::String)
      .add_attribute("address", ComplexType{"Address"})
      .add_attribute("advisor", ComplexType{"Teacher"});
  schema.add_class("Teacher")
      .add_attribute("name", PrimType::String)
      .add_attribute("speciality", PrimType::String);
  schema.add_class("Address")
      .add_attribute("city", PrimType::String)
      .add_attribute("street", PrimType::String)
      .add_attribute("zipcode", PrimType::Int);
  schema.validate();
  return schema;
}

ComponentSchema schema_db3() {
  ComponentSchema schema(kDb3, "DB3");
  schema.add_class("Department")
      .add_attribute("name", PrimType::String)
      .add_attribute("location", PrimType::String);
  schema.add_class("Teacher")
      .add_attribute("name", PrimType::String)
      .add_attribute("department", ComplexType{"Department"});
  schema.validate();
  return schema;
}

IntegrationSpec integration_spec() {
  IntegrationSpec spec;
  auto& student = spec.add_class("Student");
  student.constituents = {{kDb1, "Student"}, {kDb2, "Student"}};
  student.identity_attribute = "s-no";
  auto& teacher = spec.add_class("Teacher");
  teacher.constituents = {{kDb1, "Teacher"}, {kDb2, "Teacher"},
                          {kDb3, "Teacher"}};
  teacher.identity_attribute = "name";
  auto& department = spec.add_class("Department");
  department.constituents = {{kDb1, "Department"}, {kDb3, "Department"}};
  department.identity_attribute = "name";
  auto& address = spec.add_class("Address");
  address.constituents = {{kDb2, "Address"}};
  return spec;
}

}  // namespace

GOid UniversityExample::entity(LOid id) const {
  const auto goid = federation->goids().goid_of(id);
  expects(goid.has_value(), "notable object must be mapped");
  return *goid;
}

UniversityExample make_university() {
  auto db1 = std::make_unique<ComponentDatabase>(schema_db1());
  auto db2 = std::make_unique<ComponentDatabase>(schema_db2());
  auto db3 = std::make_unique<ComponentDatabase>(schema_db3());

  UniversityIds ids;

  // --- DB1 instances (Fig. 4a). '-' entries are nulls.
  ids.d1 = db1->insert("Department", {{"name", "CS"}});
  ids.d2 = db1->insert("Department", {{"name", "EE"}});
  ids.t1 = db1->insert("Teacher",
                       {{"name", "Jeffery"}, {"department", LocalRef{ids.d1}}});
  ids.t2 = db1->insert("Teacher", {{"name", "Abel"}});  // department null
  ids.t3 = db1->insert("Teacher",
                       {{"name", "Haley"}, {"department", LocalRef{ids.d1}}});
  ids.s1 = db1->insert("Student", {{"s-no", 804301},
                                   {"name", "John"},
                                   {"age", 31},
                                   {"advisor", LocalRef{ids.t1}}});  // sex null
  ids.s2 = db1->insert("Student", {{"s-no", 798302},
                                   {"name", "Tony"},
                                   {"age", 28},
                                   {"advisor", LocalRef{ids.t3}},
                                   {"sex", "male"}});
  ids.s3 = db1->insert("Student", {{"s-no", 808301},
                                   {"name", "Mary"},
                                   {"age", 24},
                                   {"advisor", LocalRef{ids.t2}},
                                   {"sex", "female"}});

  // --- DB2 instances (Fig. 4b).
  ids.a1p = db2->insert(
      "Address", {{"city", "Taipei"}, {"street", "Park"}, {"zipcode", 100}});
  ids.a2p = db2->insert("Address", {{"city", "HsinChu"},
                                    {"street", "Horber"},
                                    {"zipcode", 800}});
  ids.t1p = db2->insert("Teacher",
                        {{"name", "Kelly"}, {"speciality", "database"}});
  ids.t2p = db2->insert("Teacher",
                        {{"name", "Jeffery"}, {"speciality", "network"}});
  ids.s1p = db2->insert("Student", {{"s-no", 762315},
                                    {"name", "Hedy"},
                                    {"sex", "female"},
                                    {"address", LocalRef{ids.a1p}},
                                    {"advisor", LocalRef{ids.t1p}}});
  ids.s2p = db2->insert("Student", {{"s-no", 804301},
                                    {"name", "John"},
                                    {"sex", "male"},
                                    {"address", LocalRef{ids.a2p}},
                                    {"advisor", LocalRef{ids.t2p}}});
  ids.s3p = db2->insert("Student", {{"s-no", 828307},
                                    {"name", "Fanny"},
                                    {"sex", "female"},
                                    {"address", LocalRef{ids.a1p}},
                                    {"advisor", LocalRef{ids.t2p}}});

  // --- DB3 instances (Fig. 4c).
  ids.d1pp = db3->insert("Department",
                         {{"name", "EE"}, {"location", "building E"}});
  ids.d2pp = db3->insert("Department", {{"name", "CS"}});  // location null
  ids.d3pp = db3->insert("Department",
                         {{"name", "PH"}, {"location", "building D"}});
  ids.t1pp = db3->insert(
      "Teacher", {{"name", "Abel"}, {"department", LocalRef{ids.d1pp}}});
  ids.t2pp = db3->insert(
      "Teacher", {{"name", "Kelly"}, {"department", LocalRef{ids.d2pp}}});

  // --- Global schema (Fig. 2) by integration.
  GlobalSchema schema = integrate(
      {&db1->schema(), &db2->schema(), &db3->schema()}, integration_spec());

  // --- GOid mapping tables (Fig. 5), asserted to match the paper.
  GoidTable goids;
  const GOid gs1 = goids.register_entity("Student", {ids.s1, ids.s2p});
  const GOid gs2 = goids.register_entity("Student", {ids.s2});
  const GOid gs3 = goids.register_entity("Student", {ids.s3});
  const GOid gs4 = goids.register_entity("Student", {ids.s1p});
  const GOid gs5 = goids.register_entity("Student", {ids.s3p});
  const GOid gt1 = goids.register_entity("Teacher", {ids.t1, ids.t2p});
  const GOid gt2 = goids.register_entity("Teacher", {ids.t2, ids.t1pp});
  const GOid gt3 = goids.register_entity("Teacher", {ids.t3});
  const GOid gt4 = goids.register_entity("Teacher", {ids.t1p, ids.t2pp});
  const GOid gd1 = goids.register_entity("Department", {ids.d1, ids.d2pp});
  const GOid gd2 = goids.register_entity("Department", {ids.d2, ids.d1pp});
  const GOid gd3 = goids.register_entity("Department", {ids.d3pp});
  const GOid ga1 = goids.register_entity("Address", {ids.a1p});
  const GOid ga2 = goids.register_entity("Address", {ids.a2p});
  (void)gs1; (void)gs2; (void)gs3; (void)gs4; (void)gs5;
  (void)gt1; (void)gt2; (void)gt3; (void)gt4;
  (void)gd1; (void)gd2; (void)gd3; (void)ga1; (void)ga2;

  std::vector<std::unique_ptr<ComponentDatabase>> databases;
  databases.push_back(std::move(db1));
  databases.push_back(std::move(db2));
  databases.push_back(std::move(db3));

  UniversityExample example;
  example.federation = std::make_unique<Federation>(
      std::move(schema), std::move(databases), std::move(goids));
  example.ids = ids;
  return example;
}

GlobalQuery q1() {
  GlobalQuery query;
  query.range_class = "Student";
  query.select("name").select("advisor.name");
  query.where("address.city", CompOp::Eq, "Taipei");
  query.where("advisor.speciality", CompOp::Eq, "database");
  query.where("advisor.department.name", CompOp::Eq, "CS");
  return query;
}

}  // namespace isomer::paper
