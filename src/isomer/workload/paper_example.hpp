// The paper's running example (Figures 1-7).
//
// Three component databases storing personal information at the same school:
//   DB1: Student(s-no, name, age, advisor, sex), Teacher(name, department),
//        Department(name)
//   DB2: Student(s-no, name, sex, address, advisor), Teacher(name,
//        speciality), Address(city, street, zipcode)
//   DB3: Department(name, location), Teacher(name, department)
// integrated into the global classes Student, Teacher, Department, Address,
// with the GOid mapping tables of Fig. 5 and the instances of Fig. 4.
//
// Query Q1 (Fig. 3a): "Retrieve the name and the name of the advisor for the
// students living in Taipei, whose advisors are teachers in department of
// computer science and specialize in database."
#pragma once

#include <memory>

#include "isomer/federation/federation.hpp"
#include "isomer/query/query.hpp"

namespace isomer::paper {

/// Notable object ids of the running example, for assertions and printing.
struct UniversityIds {
  // DB1
  LOid s1, s2, s3, t1, t2, t3, d1, d2;
  // DB2 (primes in the paper)
  LOid s1p, s2p, s3p, t1p, t2p, a1p, a2p;
  // DB3 (double primes)
  LOid d1pp, d2pp, d3pp, t1pp, t2pp;
};

struct UniversityExample {
  std::unique_ptr<Federation> federation;
  UniversityIds ids;

  /// GOid of a notable object.
  [[nodiscard]] GOid entity(LOid id) const;
};

/// Builds the federation of Figures 1-5. The GOid tables are reproduced via
/// assertion (matching the paper's Fig. 5), not via the detector, so the
/// example is byte-for-byte the paper's.
[[nodiscard]] UniversityExample make_university();

/// Q1 of Fig. 3(a).
[[nodiscard]] GlobalQuery q1();

}  // namespace isomer::paper
