#include "isomer/workload/params.hpp"

#include <algorithm>
#include <cmath>

namespace isomer {

double ParamConfig::iso_ratio() const noexcept {
  if (n_db <= 1) return 0;
  return 1.0 - std::pow(iso_decay, static_cast<double>(n_db - 1));
}

double ParamConfig::per_predicate_selectivity(int n) const noexcept {
  if (n <= 0) return 1.0;
  // Combined selectivity of n predicates is base^sqrt(n); with independent
  // equally selective predicates each must select base^(1/sqrt(n)).
  return std::pow(pred_selectivity_base,
                  1.0 / std::sqrt(static_cast<double>(n)));
}

SampleParams draw_sample(const ParamConfig& config, Rng& rng) {
  SampleParams sample;
  sample.n_db = config.n_db;
  sample.iso_ratio = config.iso_ratio();
  sample.missing_mechanism = config.missing_mechanism;
  sample.n_targets = static_cast<int>(
      rng.uniform_int(config.n_targets.first, config.n_targets.second));
  sample.materialize_seed = rng();

  const int n_classes = static_cast<int>(
      rng.uniform_int(config.n_classes.first, config.n_classes.second));
  sample.classes.resize(static_cast<std::size_t>(n_classes));
  bool is_root = true;
  for (auto& cls : sample.classes) {
    cls.n_preds = static_cast<int>(
        rng.uniform_int(config.n_preds.first, config.n_preds.second));
    cls.pred_selectivity = config.per_predicate_selectivity(cls.n_preds);
    if (is_root && config.forced_root_selectivity) {
      // Fig. 11: pin the selectivity of the root class's local predicates.
      cls.n_preds = std::max(cls.n_preds, 1);
      cls.pred_selectivity = *config.forced_root_selectivity;
    }
    is_root = false;
    cls.ref_ratio =
        rng.uniform_real(config.ref_ratio.first, config.ref_ratio.second);
    cls.dbs.resize(config.n_db);
    for (auto& db : cls.dbs) {
      db.n_objects = static_cast<int>(
          rng.uniform_int(config.n_objects.first, config.n_objects.second));
      // N_pa: how many of the class's predicate attributes this database
      // defines; the remaining ones are schema-level missing attributes.
      const auto n_pa = rng.uniform_int(0, cls.n_preds);
      db.present_preds = rng.sample_indices(
          static_cast<std::size_t>(cls.n_preds),
          static_cast<std::size_t>(n_pa));
      db.extra_missing =
          n_pa == cls.n_preds
              ? rng.uniform_real(config.extra_missing.first,
                                 config.extra_missing.second)
              : 0.0;
    }
    // Every predicate attribute must exist in at least one constituent, or
    // the global attribute union would not contain it and the predicate
    // would be meaningless (Table 2 implicitly assumes this).
    for (std::size_t j = 0; j < static_cast<std::size_t>(cls.n_preds); ++j) {
      const auto defines = [j](const SampleParams::PerDb& db) {
        return std::find(db.present_preds.begin(), db.present_preds.end(),
                         j) != db.present_preds.end();
      };
      if (std::none_of(cls.dbs.begin(), cls.dbs.end(), defines))
        cls.dbs[rng.index(cls.dbs.size())].present_preds.push_back(j);
    }
    // The missingness-rate override runs after every draw above, so pinning
    // R_m perturbs nothing else in the sample (the RNG stream is untouched).
    if (config.forced_missing_rate.has_value())
      for (auto& db : cls.dbs) db.extra_missing = *config.forced_missing_rate;
  }
  return sample;
}

}  // namespace isomer
