// Table 2 — the database and query parameters.
//
// | parameter  | description                                  | default                    |
// |------------|----------------------------------------------|----------------------------|
// | N_db       | number of component databases involved       | 3                          |
// | N_c        | number of global classes involved            | 1 ~ 4                      |
// | N_p^k      | predicates on class k                        | 0 ~ 3                      |
// | R_ps^k     | selectivity of the predicates on class k     | 0.45^sqrt(N_p^k)           |
// | R_r^k      | ratio of objects to be referenced            | 0.5 ~ 1                    |
// | R_iso^k    | ratio of objects having isomeric objects     | 1 - 0.9^(N_db - 1)         |
// | N_o^{i,k}  | number of objects                            | 5000 ~ 6000                |
// | N_qa^{i,k} | attributes involved in the subquery          | max(N_pa,N_ta)~(N_pa+N_ta) |
// | N_pa^{i,k} | attributes involved in the local predicates  | 0 ~ N_p^k                  |
// | N_ta^{i,k} | target attributes in the subquery            | 0 ~ 2                      |
// | R_pps^{i,k}| selectivity of the local predicates          | 0.45^sqrt(N_pa^{i,k})      |
// | R_m^{i,k}  | ratio of objects which have missing data     | 1 if N_p^k > N_pa^{i,k},   |
// |            |                                              | else 0 ~ 0.2               |
// | R_as^{i,k} | selectivity on the assistant objects         | 0.55^sqrt(N_p^k-N_pa^{i,k})|
// | R_ss^{i,k} | selectivity on assistants' signatures        | 0.6^sqrt(N_p^k-N_pa^{i,k}) |
//
// The involved global classes form a composition chain rooted at the range
// class; predicates on class k are nested predicates whose path navigates
// k-1 references. Generated target paths are root-class attributes (nested
// targets are supported by the engine — see the running example — but kept
// out of the generated workloads so that all strategies' merged target
// values are provably identical; see DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "isomer/common/rng.hpp"

namespace isomer {

/// How value-level nulls are injected into the generated objects
/// (docs/IMPUTATION.md). MCAR nulls a predicate attribute independently of
/// everything else — today's behavior and the default. MAR conditions the
/// injection on the object's stored covariate `x0`: objects in the lower
/// half of x0's range get double the configured rate, objects in the upper
/// half none, keeping the marginal rate while making the missingness
/// predictable from an observable — exactly the signal the IM strategy's
/// mechanism model is built to detect.
enum class MissingMechanism : unsigned char { MCAR, MAR };

/// Sampling ranges (the right column of Table 2).
struct ParamConfig {
  std::size_t n_db = 3;                        ///< N_db
  std::pair<int, int> n_classes{1, 4};         ///< N_c
  std::pair<int, int> n_preds{0, 3};           ///< N_p^k
  std::pair<double, double> ref_ratio{0.5, 1}; ///< R_r^k
  std::pair<int, int> n_objects{5000, 6000};   ///< N_o^{i,k}
  std::pair<int, int> n_targets{0, 2};         ///< N_ta
  std::pair<double, double> extra_missing{0, 0.2};  ///< R_m when N_pa == N_p
  double pred_selectivity_base = 0.45;         ///< R_ps / R_pps base
  double iso_decay = 0.9;                      ///< R_iso = 1 - decay^(N_db-1)
  /// Primitive attributes per class beyond the query-involved ones; they
  /// size the stored objects (disk) but are projected away before transfer.
  std::size_t extra_attrs = 3;

  /// Fig. 11's knob: when set, the root class carries at least one
  /// predicate and its per-predicate selectivity is forced to this value
  /// ("the selectivity of one local predicate is adjusted").
  std::optional<double> forced_root_selectivity;

  /// Missingness-rate knob for the imputation sweeps (bench_impute): when
  /// set, every database's R_m is pinned to this value (in [0, 1]) instead
  /// of the drawn one — applied *after* the normal draws, so the RNG stream
  /// (and therefore every other drawn parameter) is byte-identical to the
  /// default configuration.
  std::optional<double> forced_missing_rate;

  /// Mechanism of the injected value-level nulls; MCAR (the default) keeps
  /// today's generator behavior bit for bit.
  MissingMechanism missing_mechanism = MissingMechanism::MCAR;

  /// R_iso for this configuration.
  [[nodiscard]] double iso_ratio() const noexcept;

  /// Per-predicate selectivity when a class carries `n` predicates, chosen
  /// so the combined selectivity is base^sqrt(n) as in Table 2.
  [[nodiscard]] double per_predicate_selectivity(int n) const noexcept;
};

/// One drawn parameter set (one of the paper's 500 samples per setting).
struct SampleParams {
  struct PerDb {
    int n_objects = 0;                        ///< N_o^{i,k}
    std::vector<std::size_t> present_preds;   ///< attrs NOT missing here
    double extra_missing = 0;                 ///< nulls when nothing missing
  };
  struct PerClass {
    int n_preds = 0;
    double pred_selectivity = 1;  ///< per predicate
    double ref_ratio = 1;
    std::vector<PerDb> dbs;       ///< one entry per database
  };

  std::size_t n_db = 0;
  int n_targets = 0;                    ///< root-class target attributes
  double iso_ratio = 0;
  std::vector<PerClass> classes;        ///< chain, root first
  std::uint64_t materialize_seed = 0;   ///< seed for object generation
  /// How materialize_sample injects the R_m nulls (see MissingMechanism).
  MissingMechanism missing_mechanism = MissingMechanism::MCAR;

  [[nodiscard]] std::size_t n_classes() const noexcept {
    return classes.size();
  }
};

/// Draws one sample from the configuration.
[[nodiscard]] SampleParams draw_sample(const ParamConfig& config, Rng& rng);

}  // namespace isomer
